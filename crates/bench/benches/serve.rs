//! Serve-scheduler benches: how fast the discrete-event loop chews
//! through a trace per routing policy, and how the qps scan scales with
//! worker count.
//!
//! Run with `cargo bench --offline -p edgebench-bench --bench serve`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edgebench::serve::{
    BreakerConfig, Fleet, ReplicaSpec, RetryBudgetConfig, RoutePolicy, ServeConfig, Traffic,
};
use edgebench_devices::Device;
use edgebench_models::Model;
use std::hint::black_box;

fn hetero_fleet() -> Fleet {
    let specs = [Device::RaspberryPi3, Device::JetsonNano, Device::JetsonTx2]
        .map(|d| ReplicaSpec::best_for(Model::MobileNetV2, d).expect("mobilenet deploys"));
    Fleet::new(specs).unwrap()
}

/// One 5000-request trace through the event loop per routing policy —
/// the scheduler's per-request cost, with batching and admission active.
fn bench_scheduler(c: &mut Criterion) {
    let fleet = hetero_fleet();
    let traffic = Traffic::poisson(150.0, 7);
    let mut g = c.benchmark_group("serve_scheduler");
    g.sample_size(20);
    for policy in [
        RoutePolicy::RoundRobin,
        RoutePolicy::JoinShortestQueue,
        RoutePolicy::LeastExpectedLatency,
    ] {
        let cfg = ServeConfig::new(100.0).with_policy(policy);
        g.bench_with_input(BenchmarkId::new("policy", policy.name()), &cfg, |b, cfg| {
            b.iter(|| black_box(fleet.serve(&traffic, 5000, cfg).unwrap()))
        });
    }
    g.finish();
}

/// The same rate ladder at increasing worker counts; probes are identical
/// for every count, so the spread is pure wall-clock scaling.
fn bench_qps_scan(c: &mut Criterion) {
    let fleet = hetero_fleet();
    let rates: Vec<f64> = vec![25.0, 50.0, 100.0, 200.0, 400.0, 800.0];
    let cfg = ServeConfig::new(100.0);
    let mut g = c.benchmark_group("qps_scan");
    g.sample_size(10);
    for jobs in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| black_box(fleet.qps_scan(&rates, 800, &cfg, jobs).unwrap()))
        });
    }
    g.finish();
}

/// The resilience layer's overhead on the event loop: the same trace
/// with everything off, then with stragglers + hedging + retries +
/// breakers + the ladder all armed. The gap is the per-request cost of
/// fault draws, hedge timers, and breaker bookkeeping.
fn bench_resilience(c: &mut Criterion) {
    let fleet = hetero_fleet();
    let traffic = Traffic::poisson(150.0, 7);
    let base = ServeConfig::new(150.0);
    let full = ServeConfig::new(150.0)
        .with_straggler(0.05, 6.0)
        .with_loss(0.02)
        .with_hedge_ms(2.0)
        .with_retry_budget(RetryBudgetConfig::default())
        .with_breaker(BreakerConfig::default())
        .with_ladder(true);
    let mut g = c.benchmark_group("serve_resilience");
    g.sample_size(20);
    for (label, cfg) in [("off", &base), ("full", &full)] {
        g.bench_with_input(BenchmarkId::new("resilience", label), cfg, |b, cfg| {
            b.iter(|| black_box(fleet.serve(&traffic, 5000, cfg).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scheduler, bench_qps_scan, bench_resilience);
criterion_main!(benches);
