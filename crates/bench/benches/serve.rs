//! Serve-scheduler benches: how fast the discrete-event loop chews
//! through a trace per routing policy, and how the qps scan scales with
//! worker count.
//!
//! Run with `cargo bench --offline -p edgebench-bench --bench serve`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edgebench::serve::{Fleet, ReplicaSpec, RoutePolicy, ServeConfig, Traffic};
use edgebench_devices::Device;
use edgebench_models::Model;
use std::hint::black_box;

fn hetero_fleet() -> Fleet {
    let specs = [Device::RaspberryPi3, Device::JetsonNano, Device::JetsonTx2]
        .map(|d| ReplicaSpec::best_for(Model::MobileNetV2, d).expect("mobilenet deploys"));
    Fleet::new(specs).unwrap()
}

/// One 5000-request trace through the event loop per routing policy —
/// the scheduler's per-request cost, with batching and admission active.
fn bench_scheduler(c: &mut Criterion) {
    let fleet = hetero_fleet();
    let traffic = Traffic::poisson(150.0, 7);
    let mut g = c.benchmark_group("serve_scheduler");
    g.sample_size(20);
    for policy in [
        RoutePolicy::RoundRobin,
        RoutePolicy::JoinShortestQueue,
        RoutePolicy::LeastExpectedLatency,
    ] {
        let cfg = ServeConfig::new(100.0).with_policy(policy);
        g.bench_with_input(BenchmarkId::new("policy", policy.name()), &cfg, |b, cfg| {
            b.iter(|| black_box(fleet.serve(&traffic, 5000, cfg).unwrap()))
        });
    }
    g.finish();
}

/// The same rate ladder at increasing worker counts; probes are identical
/// for every count, so the spread is pure wall-clock scaling.
fn bench_qps_scan(c: &mut Criterion) {
    let fleet = hetero_fleet();
    let rates: Vec<f64> = vec![25.0, 50.0, 100.0, 200.0, 400.0, 800.0];
    let cfg = ServeConfig::new(100.0);
    let mut g = c.benchmark_group("qps_scan");
    g.sample_size(10);
    for jobs in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| black_box(fleet.qps_scan(&rates, 800, &cfg, jobs).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scheduler, bench_qps_scan);
criterion_main!(benches);
