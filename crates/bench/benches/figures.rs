//! One bench per paper table/figure: times the regeneration of each
//! artifact through the experiment registry, and prints the regenerated
//! table once so a `cargo bench` log contains the full reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for exp in edgebench::experiments::all() {
        // Print each regenerated artifact once (this *is* the reproduction
        // output; see EXPERIMENTS.md).
        println!("{}", exp.run().to_table_string());
        group.bench_function(exp.id(), |b| b.iter(|| black_box(exp.run())));
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
