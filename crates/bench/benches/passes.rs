//! Graph construction, cost accounting and optimization-pass throughput on
//! the model zoo.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edgebench_frameworks::passes;
use edgebench_models::Model;
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("build");
    for m in [
        Model::ResNet50,
        Model::MobileNetV2,
        Model::InceptionV4,
        Model::YoloV3,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(m.name()), &m, |b, m| {
            b.iter(|| black_box(m.build()))
        });
    }
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats");
    for m in [Model::ResNet50, Model::InceptionV4] {
        let graph = m.build();
        g.bench_with_input(BenchmarkId::from_parameter(m.name()), &graph, |b, graph| {
            b.iter(|| black_box(graph.stats()))
        });
    }
    g.finish();
}

fn bench_fusion(c: &mut Criterion) {
    let mut g = c.benchmark_group("fuse_conv_bn_act");
    for m in [Model::ResNet50, Model::MobileNetV2, Model::InceptionV4] {
        let graph = m.build();
        g.bench_with_input(BenchmarkId::from_parameter(m.name()), &graph, |b, graph| {
            b.iter(|| black_box(passes::fuse_conv_bn_act(graph).unwrap()))
        });
    }
    g.finish();
}

fn bench_deploy(c: &mut Criterion) {
    use edgebench_devices::Device;
    use edgebench_frameworks::deploy::compile;
    use edgebench_frameworks::Framework;
    let mut g = c.benchmark_group("deploy_pipeline");
    for (fw, d) in [
        (Framework::TensorRt, Device::JetsonNano),
        (Framework::TfLite, Device::RaspberryPi3),
        (Framework::PyTorch, Device::JetsonTx2),
    ] {
        g.bench_function(format!("{}+{}", fw.name(), d.name()), |b| {
            b.iter(|| {
                let c = compile(fw, Model::ResNet50, d).unwrap();
                black_box(c.latency_ms().unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_stats,
    bench_fusion,
    bench_deploy
);
criterion_main!(benches);
