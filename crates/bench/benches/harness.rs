//! Harness-level benches for the PR's two speedups: the materialized-weight
//! executor cache (repeated inference without re-deriving weights per node)
//! and the parallel sweep/experiment runner.
//!
//! Run with `cargo bench --offline -p edgebench-bench --bench harness`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edgebench::sweep::Sweep;
use edgebench_devices::Device;
use edgebench_frameworks::Framework;
use edgebench_models::Model;
use edgebench_tensor::{Executor, Precision, Tensor};
use std::hint::black_box;

/// Repeated inference on CifarNet: the on-the-fly executor regenerates and
/// lowers every weight tensor per run; `PreparedExecutor` materializes them
/// once at `prepare()` time, so the steady-state gap is the cache win.
fn bench_weight_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("weight_cache");
    g.sample_size(20);
    for (label, p) in [("f32", Precision::F32), ("int8", Precision::Int8)] {
        let graph = Model::CifarNet.build();
        let x = Tensor::random([1, 3, 32, 32], 7);
        let exec = Executor::new(&graph).with_seed(1).with_precision(p);
        g.bench_with_input(
            BenchmarkId::new("on_the_fly", label),
            &(&exec, &x),
            |b, (exec, x)| b.iter(|| black_box(exec.run(x).unwrap())),
        );
        let prepared = Executor::new(&graph)
            .with_seed(1)
            .with_precision(p)
            .prepare()
            .expect("prepare");
        g.bench_with_input(
            BenchmarkId::new("prepared", label),
            &(&prepared, &x),
            |b, (prepared, x)| b.iter(|| black_box(prepared.run(x).unwrap())),
        );
    }
    g.finish();
}

/// Amortized cost of `prepare()` itself: one materialization plus a run,
/// against a plain run — the break-even point for one-shot callers.
fn bench_prepare_overhead(c: &mut Criterion) {
    let graph = Model::CifarNet.build();
    let x = Tensor::random([1, 3, 32, 32], 7);
    let mut g = c.benchmark_group("prepare_overhead");
    g.sample_size(20);
    g.bench_function("prepare_then_run", |b| {
        b.iter(|| {
            let prepared = Executor::new(&graph)
                .with_seed(1)
                .prepare()
                .expect("prepare");
            black_box(prepared.run(&x).unwrap())
        })
    });
    g.bench_function("plain_run", |b| {
        let exec = Executor::new(&graph).with_seed(1);
        b.iter(|| black_box(exec.run(&x).unwrap()))
    });
    g.finish();
}

/// The same sweep grid at increasing worker counts; rows are identical for
/// every count, so the spread is pure wall-clock scaling. (On a single-core
/// host all worker counts degenerate to serial plus thread overhead.)
fn bench_parallel_sweep(c: &mut Criterion) {
    let sweep = Sweep::new()
        .models(Model::all().iter().copied())
        .frameworks([Framework::PyTorch, Framework::TensorFlow, Framework::TfLite])
        .devices([
            Device::JetsonTx2,
            Device::RaspberryPi3,
            Device::JetsonNano,
            Device::XeonCpu,
        ])
        .batches([1, 8]);
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    for jobs in [1usize, 2, 4, 0] {
        g.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            let s = sweep.clone().jobs(jobs);
            b.iter(|| black_box(s.run()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_weight_cache,
    bench_prepare_overhead,
    bench_parallel_sweep
);
criterion_main!(benches);
