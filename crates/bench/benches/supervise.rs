//! Micro-benchmarks of the self-healing supervision layer: the cost of a
//! full supervised replay that absorbs one stage kill (detect → restart →
//! reattach → resume), against the same replay with no chaos, plus the
//! isolated ring-reattach step a restarted stage pays before its first
//! frame.

use criterion::{criterion_group, criterion_main, Criterion};
use edgebench::runtime::ring::RingBuffer;
use edgebench::runtime::shm::SharedMap;
use edgebench::runtime::{self, RuntimeConfig, SuperviseConfig};
use edgebench::serve::{TraceFile, Traffic};
use edgebench_devices::faults::ChaosPlan;
use edgebench_devices::Device;
use edgebench_models::Model;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Frames per replay: small enough for a tight iteration, large enough
/// that the kill at frame 20 has traffic on every stage before and after.
const FRAMES: usize = 40;

fn cfg(chaos: Option<ChaosPlan>) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::new(Model::CifarNet, Device::JetsonNano)
        .with_seed(23)
        .with_ring_capacity(8)
        .with_supervise(SuperviseConfig::default().with_restart_budget(3));
    cfg.chaos = chaos;
    cfg
}

fn trace() -> TraceFile {
    TraceFile::generate(&Traffic::poisson(200.0, 23), FRAMES, 0.0, 23).expect("trace")
}

/// A supervised replay that rides through one inference kill: the restart
/// cycle (death, reattach to live rings, resume from the committed seq)
/// is the delta against `replay_supervised_clean`.
fn bench_restart_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("supervise");
    let t = trace();
    let clean = cfg(None);
    g.bench_function("replay_supervised_clean_40f", |b| {
        b.iter(|| {
            black_box(
                runtime::run_replay(&clean, &t)
                    .expect("clean replay")
                    .completed,
            )
        })
    });
    let killed = cfg(Some(ChaosPlan::parse("kill@2:20").expect("spec")));
    g.bench_function("replay_restart_one_kill_40f", |b| {
        b.iter(|| {
            black_box(
                runtime::run_replay(&killed, &t)
                    .expect("chaos replay")
                    .restarts,
            )
        })
    });
    g.finish();
}

static RING_ID: AtomicU64 = AtomicU64::new(0);

/// The shared-memory step of a stage restart in process mode: reopen the
/// ring file and re-validate its header, without tearing anything down.
fn bench_ring_reattach(c: &mut Criterion) {
    let mut g = c.benchmark_group("supervise");
    let path = std::env::temp_dir().join(format!(
        "ebrt-bench-sup-{}-{}",
        std::process::id(),
        RING_ID.fetch_add(1, Ordering::Relaxed)
    ));
    const CAP: usize = 8;
    const ELEMS: usize = 3072;
    let map = SharedMap::create(&path, RingBuffer::required_bytes(CAP, ELEMS)).unwrap();
    let ring = RingBuffer::create(map, CAP, ELEMS).unwrap();
    g.bench_function("ring_reattach_8x3072f32", |b| {
        b.iter(|| {
            let map = SharedMap::open(&path).expect("reopen ring file");
            black_box(RingBuffer::attach(map).expect("reattach").capacity())
        })
    });
    ring.map().unlink();
    g.finish();
}

criterion_group!(benches, bench_restart_cycle, bench_ring_reattach);
criterion_main!(benches);
