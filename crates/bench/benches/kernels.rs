//! Micro-benchmarks of the numeric tensor kernels (the compute substrate
//! behind the functional executor).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use edgebench_graph::{ActivationKind, PoolKind};
use edgebench_tensor::kernels;
use edgebench_tensor::{f16, quant, Tensor};
use std::hint::black_box;

fn bench_conv2d(c: &mut Criterion) {
    let mut g = c.benchmark_group("conv2d");
    for &(cin, cout, hw, k) in &[
        (3usize, 16usize, 32usize, 3usize),
        (16, 32, 16, 3),
        (64, 64, 8, 3),
        (64, 128, 8, 1),
    ] {
        let x = Tensor::random([1, cin, hw, hw], 1);
        let w = Tensor::random([cout, cin, k, k], 2);
        let macs = (cout * cin * k * k * hw * hw) as u64;
        g.throughput(Throughput::Elements(macs));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{cin}x{hw}x{hw}->{cout}k{k}")),
            &(x, w, k),
            |b, (x, w, k)| {
                b.iter(|| black_box(kernels::conv2d(x, w, None, (1, 1), (*k / 2, *k / 2), 1)))
            },
        );
    }
    g.finish();
}

fn bench_depthwise(c: &mut Criterion) {
    let x = Tensor::random([1, 64, 16, 16], 1);
    let w = Tensor::random([64, 1, 3, 3], 2);
    c.bench_function("depthwise_64x16x16", |b| {
        b.iter(|| black_box(kernels::depthwise_conv2d(&x, &w, None, (1, 1), (1, 1), 1)))
    });
}

fn bench_conv3d(c: &mut Criterion) {
    let x = Tensor::random([1, 3, 8, 16, 16], 1);
    let w = Tensor::random([16, 3, 3, 3, 3], 2);
    c.bench_function("conv3d_3x8x16x16->16", |b| {
        b.iter(|| black_box(kernels::conv3d(&x, &w, None, (1, 1, 1), (1, 1, 1))))
    });
}

fn bench_dense(c: &mut Criterion) {
    let mut g = c.benchmark_group("dense");
    for &(fin, fout) in &[(256usize, 256usize), (1024, 1024), (4096, 1000)] {
        let x = Tensor::random([1, fin], 1);
        let w = Tensor::random([fout, fin], 2);
        g.throughput(Throughput::Elements((fin * fout) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{fin}->{fout}")),
            &(x, w),
            |b, (x, w)| b.iter(|| black_box(kernels::dense(x, w, None))),
        );
    }
    g.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let x = Tensor::random([1, 64, 32, 32], 1);
    c.bench_function("relu_64x32x32", |b| {
        b.iter(|| black_box(kernels::activation(&x, ActivationKind::Relu)))
    });
    c.bench_function("batch_norm_64x32x32", |b| {
        let gamma = vec![1.0f32; 64];
        let beta = vec![0.1f32; 64];
        b.iter(|| black_box(kernels::batch_norm(&x, &gamma, &beta)))
    });
    c.bench_function("maxpool2x2_64x32x32", |b| {
        b.iter(|| black_box(kernels::pool2d(&x, PoolKind::Max, (2, 2), (2, 2), (0, 0))))
    });
    let logits = Tensor::random([1, 1000], 3);
    c.bench_function("softmax_1000", |b| {
        b.iter(|| black_box(kernels::softmax(&logits)))
    });
}

fn bench_precision(c: &mut Criterion) {
    let mut x = Tensor::random([1, 64, 32, 32], 4);
    c.bench_function("f16_round_trip_64k", |b| {
        b.iter(|| {
            let mut y = x.clone();
            f16::round_slice_f16(y.data_mut());
            black_box(y)
        })
    });
    c.bench_function("int8_fake_quant_64k", |b| {
        b.iter(|| {
            let mut y = x.clone();
            black_box(quant::fake_quantize_tensor(&mut y))
        })
    });
    c.bench_function("quant_observe_64k", |b| {
        b.iter(|| black_box(quant::QuantParams::observe(&x)))
    });
    // Keep `x` mutable usage meaningful.
    x.data_mut()[0] = 0.0;
}

fn bench_gemm(c: &mut Criterion) {
    use edgebench_tensor::gemm::{self, GemmScratch};
    use edgebench_tensor::KernelKind;
    // The SIMD micro-kernel (runtime-dispatched) vs the forced-scalar
    // kernel vs the naive triple loop, at the shapes the executor's
    // im2col lowering actually produces. `packed` is the production path;
    // `packed-scalar` isolates the vectorization win (same packing, same
    // blocking, scalar FMAs); `naive` is the unpacked baseline.
    let mut g = c.benchmark_group("gemm");
    for &(m, k, n) in &[(32usize, 128usize, 128usize), (64, 576, 256)] {
        let a = Tensor::random([m, k], 1);
        let b_ = Tensor::random([k, n], 2);
        g.throughput(Throughput::Elements((m * k * n) as u64));
        for (label, kind) in [
            ("packed", KernelKind::Auto),
            ("packed-scalar", KernelKind::Scalar),
        ] {
            let mut scratch = GemmScratch::default();
            scratch.set_kernel(kind);
            let mut out = Tensor::zeros([m, n]);
            g.bench_with_input(
                BenchmarkId::new(label, format!("{m}x{k}x{n}")),
                &(&a, &b_),
                |bch, (a, b_)| {
                    bch.iter(|| {
                        gemm::matmul_into(
                            a.data(),
                            b_.data(),
                            (m, k, n),
                            out.data_mut(),
                            1,
                            &mut scratch,
                        );
                        black_box(out.data()[0])
                    })
                },
            );
        }
        g.bench_with_input(
            BenchmarkId::new("naive", format!("{m}x{k}x{n}")),
            &(&a, &b_),
            |bch, (a, b_)| bch.iter(|| black_box(gemm::matmul_reference(a, b_))),
        );
    }
    g.finish();
    // Direct vs im2col+GEMM convolution at a representative layer.
    let x = Tensor::random([1, 32, 28, 28], 3);
    let w = Tensor::random([64, 32, 3, 3], 4);
    c.bench_function("conv_direct_32x28->64", |b| {
        b.iter(|| black_box(kernels::conv2d(&x, &w, None, (1, 1), (1, 1), 1)))
    });
    c.bench_function("conv_gemm_32x28->64", |b| {
        b.iter(|| black_box(gemm::conv2d_gemm(&x, &w, None, (1, 1), (1, 1))))
    });
}

fn bench_fused_conv(c: &mut Criterion) {
    use edgebench_tensor::gemm::{self, Epilogue, GemmScratch};
    // conv+bias+BN+ReLU as one fused kernel pass vs the four-kernel chain
    // the unfused graph executes. Same arithmetic, same order, one memory
    // sweep instead of four.
    let x = Tensor::random([1, 32, 28, 28], 3);
    let w = Tensor::random([64, 32, 3, 3], 4);
    let bias = vec![0.05f32; 64];
    let gamma = vec![1.1f32; 64];
    let beta = vec![-0.02f32; 64];
    let mut g = c.benchmark_group("fused_conv");
    g.bench_function("unfused_32x28->64", |b| {
        b.iter(|| {
            let y = kernels::conv2d(&x, &w, Some(&bias), (1, 1), (1, 1), 1);
            let y = kernels::batch_norm(&y, &gamma, &beta);
            black_box(kernels::activation(&y, ActivationKind::Relu))
        })
    });
    g.bench_function("fused_32x28->64", |b| {
        let epi = Epilogue {
            bias: Some(&bias),
            bn: Some((&gamma, &beta)),
            act: ActivationKind::Relu,
        };
        let mut out = Tensor::zeros([1, 64, 28, 28]);
        let mut scratch = GemmScratch::default();
        b.iter(|| {
            gemm::conv2d_gemm_into(
                &x,
                &w,
                (1, 1),
                (1, 1),
                &epi,
                false,
                1,
                &mut out,
                &mut scratch,
            );
            black_box(out.data()[0])
        })
    });
    g.finish();
}

fn bench_guards(c: &mut Criterion) {
    use edgebench_models::Model;
    use edgebench_tensor::{Executor, GuardConfig, GuardedExecutor};
    // The integrity-guard overhead budget: batch-8 CifarNet through the
    // plain prepared executor vs the same executor wrapped in
    // GuardedExecutor at cadence 1 (weight scrub every inference plus
    // per-node activation envelopes). The defended run must stay within
    // 3% of the bare run.
    let graph = Model::CifarNet.build().with_batch(8).unwrap();
    let dims = graph
        .node(graph.input_ids()[0])
        .output_shape()
        .dims()
        .to_vec();
    let x = Tensor::random(dims.clone(), 7);
    let mut g = c.benchmark_group("guards");
    g.sample_size(20);
    g.bench_function("cifarnet_b8_bare", |b| {
        let exec = Executor::new(&graph)
            .with_seed(1)
            .prepare()
            .expect("prepare");
        b.iter(|| black_box(exec.run(&x).unwrap()))
    });
    g.bench_function("cifarnet_b8_guarded", |b| {
        let exec = Executor::new(&graph)
            .with_seed(1)
            .prepare()
            .expect("prepare");
        let mut guarded = GuardedExecutor::new(exec, GuardConfig::default());
        let calib: Vec<Tensor> = (0..2)
            .map(|i| Tensor::random(dims.clone(), 100 + i))
            .collect();
        let refs: Vec<&Tensor> = calib.iter().collect();
        guarded.calibrate(&refs).expect("calibrate");
        b.iter(|| black_box(guarded.run(&x).unwrap()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_fused_conv,
    bench_guards,
    bench_conv2d,
    bench_depthwise,
    bench_conv3d,
    bench_dense,
    bench_elementwise,
    bench_precision
);
criterion_main!(benches);
