//! Ablation studies for the design choices called out in DESIGN.md. Each
//! group prints the ablated quantity once (the shape is the result) and
//! benches the computation.

use criterion::{criterion_group, criterion_main, Criterion};
use edgebench_devices::perf::RooflineModel;
use edgebench_devices::Device;
use edgebench_frameworks::deploy::{compile, compile_graph};
use edgebench_frameworks::{passes, Framework};
use edgebench_graph::{DType, MemoryPolicy};
use edgebench_models::Model;
use std::hint::black_box;

/// Ablation 1: operator fusion on/off (the TensorRT/TFLite gain, Fig 7/8).
fn ablate_fusion(c: &mut Criterion) {
    let model = Model::MobileNetV2;
    let unfused = model.build();
    let fused = passes::fuse_conv_bn_act(&unfused).unwrap();
    let d = Device::JetsonNano;
    let t_unfused = compile_graph(Framework::TensorRt, unfused.clone(), d)
        .unwrap()
        .latency_ms()
        .unwrap();
    // compile_graph applies the profile's own fusion; isolate it by timing
    // graphs of different node counts through the same roofline.
    println!(
        "[ablation:fusion] {model} on {d}: {} nodes -> {} nodes; latency via tensorrt {t_unfused:.2} ms",
        unfused.len(),
        fused.len()
    );
    c.bench_function("ablation_fusion_pass", |b| {
        b.iter(|| black_box(passes::fuse_conv_bn_act(&unfused).unwrap()))
    });
}

/// Ablation 2: precision sweep on devices with and without low-precision
/// hardware (paper §VI-B2: INT8 does not speed up the RPi).
fn ablate_precision(c: &mut Criterion) {
    let g = Model::ResNet18.build();
    for d in [Device::RaspberryPi3, Device::JetsonNano] {
        let m = RooflineModel::for_device(d);
        for dt in [DType::F32, DType::F16, DType::I8] {
            let t = m.time_graph(&g.with_dtype(dt)).map(|t| t.total_ms());
            println!("[ablation:precision] {d} {dt}: {t:?} ms");
        }
    }
    c.bench_function("ablation_precision_timing", |b| {
        let m = RooflineModel::for_device(Device::JetsonNano);
        let half = g.with_dtype(DType::F16);
        b.iter(|| black_box(m.time_graph(&half).unwrap()))
    });
}

/// Ablation 3: static vs dynamic allocation policy (TF vs PyTorch on the
/// 1 GB RPi — Table V's `^` cells).
fn ablate_memory_policy(c: &mut Criterion) {
    let g = Model::Vgg16.build();
    for policy in [MemoryPolicy::StaticGraph, MemoryPolicy::DynamicGraph] {
        let fp = RooflineModel::runtime_footprint(&g.stats(), policy);
        let t = RooflineModel::for_device(Device::RaspberryPi3)
            .with_memory_policy(policy)
            .time_graph(&g);
        println!(
            "[ablation:policy] vgg16 {policy:?}: footprint {:.0} MB, outcome {:?}",
            fp as f64 / 1e6,
            t.map(|t| format!("{:.1} s x{:.1} pressure", t.total_s, t.pressure_factor))
        );
    }
    c.bench_function("ablation_policy_footprint", |b| {
        let stats = g.stats();
        b.iter(|| {
            black_box(RooflineModel::runtime_footprint(
                &stats,
                MemoryPolicy::DynamicGraph,
            ))
        })
    });
}

/// Ablation 4: batch-size sweep on an HPC GPU (why single-batch HPC speedup
/// is "only 3x" — Figs 9/10).
fn ablate_batch(c: &mut Criterion) {
    for batch in [1usize, 2, 4, 8, 16, 32] {
        let t = compile(Framework::PyTorch, Model::ResNet50, Device::GtxTitanX)
            .unwrap()
            .with_batch(batch)
            .timing()
            .unwrap();
        println!(
            "[ablation:batch] gtx resnet-50 batch {batch}: {:.2} ms/inf, {:.0} inf/s",
            t.total_ms() / batch as f64,
            batch as f64 / t.total_s
        );
    }
    c.bench_function("ablation_batch_timing", |b| {
        let compiled = compile(Framework::PyTorch, Model::ResNet50, Device::GtxTitanX)
            .unwrap()
            .with_batch(16);
        b.iter(|| black_box(compiled.timing().unwrap()))
    });
}

/// Ablation 5: roofline vs compute-only timing (what ignoring the memory
/// wall would mispredict for FC-heavy models).
fn ablate_roofline(c: &mut Criterion) {
    for m in [Model::ResNet50, Model::Vgg16] {
        let g = m.build();
        let t = RooflineModel::for_device(Device::GtxTitanX)
            .time_graph(&g)
            .unwrap();
        let compute_only = t.compute_s;
        println!(
            "[ablation:roofline] {m} on gtx: roofline {:.2} ms vs compute-only {:.2} ms ({:.0}% memory-hidden)",
            (t.compute_s + t.memory_s) * 1e3,
            compute_only * 1e3,
            100.0 * t.memory_s / (t.compute_s + t.memory_s)
        );
    }
    c.bench_function("ablation_roofline_timing", |b| {
        let g = Model::Vgg16.build();
        let m = RooflineModel::for_device(Device::GtxTitanX);
        b.iter(|| black_box(m.time_graph(&g).unwrap()))
    });
}

/// Ablation 6: pruning exploitation (Table II's sparse-computation rows).
fn ablate_pruning(c: &mut Criterion) {
    for sparsity in [0.0, 0.5, 0.8, 0.9] {
        let with = passes::pruning_speedup(true, sparsity);
        let without = passes::pruning_speedup(false, sparsity);
        println!("[ablation:pruning] sparsity {sparsity}: exploiting {with:.2}x, not exploiting {without:.2}x");
    }
    c.bench_function("ablation_pruning_model", |b| {
        b.iter(|| black_box(passes::pruning_speedup(true, 0.9)))
    });
}

criterion_group!(
    benches,
    ablate_fusion,
    ablate_precision,
    ablate_memory_policy,
    ablate_batch,
    ablate_roofline,
    ablate_pruning
);
criterion_main!(benches);
