//! End-to-end numeric inference through the tensor substrate at every
//! simulated precision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edgebench_models::Model;
use edgebench_tensor::{Executor, Precision, Tensor};
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let mut g = c.benchmark_group("inference");
    g.sample_size(20);
    for m in [Model::CifarNet, Model::VggS32] {
        let graph = m.build();
        let x = Tensor::random([1, 3, 32, 32], 7);
        for (label, p) in [
            ("f32", Precision::F32),
            ("f16", Precision::F16),
            ("int8", Precision::Int8),
        ] {
            let exec = Executor::new(&graph).with_seed(1).with_precision(p);
            g.bench_with_input(
                BenchmarkId::new(m.name(), label),
                &(&exec, &x),
                |b, (exec, x)| b.iter(|| black_box(exec.run(x).unwrap())),
            );
        }
    }
    g.finish();
}

fn bench_fused_vs_unfused_execution(c: &mut Criterion) {
    // The functional counterpart of the fusion ablation: fewer nodes means
    // fewer intermediate tensors even in the reference interpreter.
    use edgebench_frameworks::passes;
    let graph = Model::CifarNet.build();
    let fused = passes::fuse_conv_bn_act(&graph).unwrap();
    let x = Tensor::random([1, 3, 32, 32], 7);
    let mut g = c.benchmark_group("fusion_exec");
    g.sample_size(20);
    g.bench_function("cifarnet_unfused", |b| {
        let e = Executor::new(&graph).with_seed(1);
        b.iter(|| black_box(e.run(&x).unwrap()))
    });
    g.bench_function("cifarnet_fused", |b| {
        let e = Executor::new(&fused).with_seed(1);
        b.iter(|| black_box(e.run(&x).unwrap()))
    });
    g.finish();
}

fn bench_prepared_batch(c: &mut Criterion) {
    // The tentpole throughput target: batch-8 inference through the
    // prepared executor (packed GEMM + fused kernels + zero-alloc arena),
    // at 1 and 4 intra-op threads. Output bytes are identical across the
    // thread axis; only wall-clock changes.
    let mut g = c.benchmark_group("prepared_batch8");
    g.sample_size(10);
    for m in [Model::CifarNet, Model::MobileNetV2] {
        let graph = m.build().with_batch(8).unwrap();
        let dims = graph
            .node(graph.input_ids()[0])
            .output_shape()
            .dims()
            .to_vec();
        let x = Tensor::random(dims, 7);
        for threads in [1usize, 4] {
            let exec = Executor::new(&graph)
                .with_seed(1)
                .with_intra_op_threads(threads)
                .prepare()
                .expect("prepare");
            g.bench_with_input(
                BenchmarkId::new(m.name(), format!("t{threads}")),
                &(&exec, &x),
                |b, (exec, x)| b.iter(|| black_box(exec.run(x).unwrap())),
            );
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_inference,
    bench_fused_vs_unfused_execution,
    bench_prepared_batch
);
criterion_main!(benches);
