//! Event-engine benches: events per second through the serving
//! simulator on the calendar queue vs the from-scratch binary-heap
//! oracle, and raw queue churn on the two structures alone.
//!
//! The full-simulation pairs share the identical zero-allocation sim
//! body, so their gap is purely the event queue (plus the calendar
//! engine's lazy arrival merge, which never materializes the trace as
//! queued events). The churn pairs strip the sim away entirely: push a
//! synthetic event population, then drain it in timestamp order — the
//! binary heap pays `O(log n)` cache-missing sift per operation at
//! million-event populations while the calendar queue stays `O(1)`
//! bucket arithmetic.
//!
//! Run with `cargo bench --offline -p edgebench-bench --bench sim`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use edgebench::serve::engine::{CalendarQueue, Event, EventKind};
use edgebench::serve::{EngineKind, Fleet, ReplicaSpec, ServeConfig, Traffic};
use edgebench_devices::Device;
use edgebench_models::Model;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

fn nano_fleet(n: usize) -> Fleet {
    let spec = ReplicaSpec::best_for(Model::MobileNetV2, Device::JetsonNano)
        .expect("mobilenet deploys on the nano");
    Fleet::new(vec![spec; n]).unwrap()
}

/// Requests per second the whole simulator sustains, per engine, at
/// 10k and 1M requests. Arrivals are pre-materialized so the trace
/// generator stays out of the measurement.
fn bench_sim_events(c: &mut Criterion) {
    let fleet = nano_fleet(4);
    let cfg_cal = ServeConfig::new(100.0).with_engine(EngineKind::Calendar);
    let cfg_heap = ServeConfig::new(100.0).with_engine(EngineKind::BinaryHeap);
    let mut g = c.benchmark_group("sim_events");
    for &n in &[10_000usize, 1_000_000] {
        let arrive_s = Traffic::poisson(4000.0, 7)
            .timestamps(n)
            .expect("positive rate");
        g.throughput(Throughput::Elements(n as u64));
        g.sample_size(10);
        for (engine, cfg) in [("calendar", &cfg_cal), ("heap", &cfg_heap)] {
            g.bench_with_input(
                BenchmarkId::new(engine, n),
                &arrive_s,
                |b, arrive_s: &Vec<f64>| {
                    b.iter(|| black_box(fleet.serve_arrivals(arrive_s, cfg).unwrap()))
                },
            );
        }
    }
    g.finish();
}

/// Arrival timestamps spread over a span: one event per request, plus
/// one dynamic completion each — the sim's steady-state event mix.
fn arrivals(n: usize, span_ns: u64) -> Vec<u64> {
    (0..n).map(|i| i as u64 * (span_ns / n as u64)).collect()
}

/// The trace sweep the two engine designs actually disagree on: the
/// heap materializes all `n` arrivals as queued events up front (the
/// seed design), so every operation sifts a million-entry heap; the
/// calendar engine merges the sorted arrival array lazily, so its
/// queue only ever holds the in-flight completions. Each arrival
/// spawns one completion 5 ms out, popped in order — 2n pops total,
/// no sim body.
fn bench_trace_sweep(c: &mut Criterion) {
    const SVC_NS: u64 = 5_000_000;
    let mut g = c.benchmark_group("trace_sweep");
    for &n in &[10_000usize, 1_000_000] {
        let span_ns = n as u64 * 250_000;
        let arrive_ns = arrivals(n, span_ns);
        g.throughput(Throughput::Elements(2 * n as u64));
        g.sample_size(10);
        g.bench_with_input(
            BenchmarkId::new("calendar_lazy_merge", n),
            &arrive_ns,
            |b, arrive_ns: &Vec<u64>| {
                b.iter(|| {
                    let mut q = CalendarQueue::new(span_ns + SVC_NS, n);
                    let mut seq = n as u64;
                    let mut next = 0usize;
                    let mut popped = 0usize;
                    loop {
                        let ev = if next < arrive_ns.len() {
                            match q.pop_if_before(arrive_ns[next]) {
                                Some(ev) => ev,
                                None => {
                                    let at = arrive_ns[next];
                                    next += 1;
                                    Event {
                                        time_ns: at,
                                        seq: next as u64,
                                        kind: EventKind::Arrival(next - 1),
                                    }
                                }
                            }
                        } else {
                            match q.pop() {
                                Some(ev) => ev,
                                None => break,
                            }
                        };
                        if let EventKind::Arrival(_) = ev.kind {
                            seq += 1;
                            q.push(Event {
                                time_ns: ev.time_ns + SVC_NS,
                                seq,
                                kind: EventKind::Flush(0),
                            });
                        }
                        popped += 1;
                        black_box(ev);
                    }
                    assert_eq!(popped, 2 * n);
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("heap_materialized", n),
            &arrive_ns,
            |b, arrive_ns: &Vec<u64>| {
                b.iter(|| {
                    let mut q = BinaryHeap::with_capacity(n + 8);
                    for (i, &at) in arrive_ns.iter().enumerate() {
                        q.push(Reverse(Event {
                            time_ns: at,
                            seq: i as u64 + 1,
                            kind: EventKind::Arrival(i),
                        }));
                    }
                    let mut seq = n as u64;
                    let mut popped = 0usize;
                    while let Some(Reverse(ev)) = q.pop() {
                        if let EventKind::Arrival(_) = ev.kind {
                            seq += 1;
                            q.push(Reverse(Event {
                                time_ns: ev.time_ns + SVC_NS,
                                seq,
                                kind: EventKind::Flush(0),
                            }));
                        }
                        popped += 1;
                        black_box(ev);
                    }
                    assert_eq!(popped, 2 * n);
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sim_events, bench_trace_sweep);
criterion_main!(benches);
