//! Micro-benchmarks of the zero-copy IPC substrate behind the runtime
//! pipeline: mmap ring throughput (single-thread reserve/commit/pop) and
//! cross-thread futex wakeup latency (SPSC ping-pong).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use edgebench::runtime::ring::{DropPolicy, FrameBuf, FrameMeta, Pop, Reserve, RingBuffer};
use edgebench::runtime::shm::SharedMap;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// CifarNet-sized frame payload: 1x3x32x32 f32.
const FRAME_ELEMS: usize = 3072;

static RING_ID: AtomicU64 = AtomicU64::new(0);

fn make_ring(capacity: usize, elems: usize) -> RingBuffer {
    let path = std::env::temp_dir().join(format!(
        "ebrt-bench-{}-{}",
        std::process::id(),
        RING_ID.fetch_add(1, Ordering::Relaxed)
    ));
    let map = SharedMap::create(&path, RingBuffer::required_bytes(capacity, elems)).unwrap();
    let ring = RingBuffer::create(map, capacity, elems).unwrap();
    ring.map().unlink(); // anonymous after creation: nothing to leak
    ring
}

fn deadline() -> Instant {
    Instant::now() + Duration::from_millis(100)
}

fn push(ring: &RingBuffer, payload: &[f32]) {
    let Reserve::Slot(mut slot) = ring.reserve(DropPolicy::Block, deadline()) else {
        panic!("ring reserve timed out");
    };
    slot.payload_mut()[..payload.len()].copy_from_slice(payload);
    slot.commit(&FrameMeta {
        payload_len: payload.len() as u32,
        ..FrameMeta::default()
    });
}

fn pop(ring: &RingBuffer, buf: &mut FrameBuf) {
    loop {
        match ring.pop_into(buf, deadline(), |_| 0) {
            Pop::Popped => return,
            Pop::TimedOut => continue,
            Pop::Drained => panic!("ring drained mid-bench"),
        }
    }
}

/// One frame through the ring on a single thread: reserve, copy the
/// payload in, commit (volatile header + futex wake), pop it back out.
fn bench_frame_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipc");
    let ring = make_ring(8, FRAME_ELEMS);
    let payload = vec![0.5f32; FRAME_ELEMS];
    let mut buf = FrameBuf::for_ring(&ring);
    g.throughput(Throughput::Bytes((FRAME_ELEMS * 4) as u64));
    g.bench_function("ring_roundtrip_3072f32", |b| {
        b.iter(|| {
            push(&ring, &payload);
            pop(&ring, &mut buf);
            black_box(buf.payload().len())
        })
    });
    g.finish();
}

/// Fill the ring to capacity, then drain it — the bulk-transfer shape a
/// backlogged consumer sees.
fn bench_burst_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipc");
    const BURST: usize = 16;
    let ring = make_ring(BURST, FRAME_ELEMS);
    let payload = vec![0.25f32; FRAME_ELEMS];
    let mut buf = FrameBuf::for_ring(&ring);
    g.throughput(Throughput::Bytes((BURST * FRAME_ELEMS * 4) as u64));
    g.bench_function("ring_burst_16x3072f32", |b| {
        b.iter(|| {
            for _ in 0..BURST {
                push(&ring, &payload);
            }
            for _ in 0..BURST {
                pop(&ring, &mut buf);
            }
            black_box(buf.seq)
        })
    });
    g.finish();
}

/// Cross-thread wakeup latency: a tiny frame bounces to an echo thread and
/// back through two rings, so each iteration pays two futex wake/wait
/// handoffs (producer→echo, echo→producer).
fn bench_wakeup_ping_pong(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipc");
    const PING_ELEMS: usize = 8;
    let forward = make_ring(4, PING_ELEMS);
    let back = make_ring(4, PING_ELEMS);
    let payload = [1.0f32; PING_ELEMS];

    std::thread::scope(|s| {
        let echo = s.spawn(|| {
            let mut buf = FrameBuf::for_ring(&forward);
            loop {
                match forward.pop_into(&mut buf, deadline(), |_| 0) {
                    Pop::Popped => push(&back, buf.payload()),
                    Pop::TimedOut => continue,
                    Pop::Drained => return,
                }
            }
        });

        let mut buf = FrameBuf::for_ring(&back);
        g.bench_function("futex_ping_pong_8f32", |b| {
            b.iter(|| {
                push(&forward, &payload);
                pop(&back, &mut buf);
                black_box(buf.seq)
            })
        });
        g.finish();

        forward.close();
        echo.join().unwrap();
    });
}

criterion_group!(
    benches,
    bench_frame_roundtrip,
    bench_burst_drain,
    bench_wakeup_ping_pong
);
criterion_main!(benches);
