//! # edgebench-bench
//!
//! Criterion benchmark targets for the reproduction:
//!
//! * `figures` — regenerates and times every paper table/figure through the
//!   experiment registry (the per-experiment index of DESIGN.md).
//! * `kernels` — micro-benchmarks of the real tensor kernels.
//! * `passes` — graph-transformation pass throughput on the model zoo.
//! * `executor` — end-to-end numeric inference at F32/F16/INT8.
//! * `ablations` — the design-choice ablations called out in DESIGN.md
//!   (fusion on/off, precision sweep, allocation policy, batch scaling,
//!   roofline vs compute-only timing).

/// Marker so the crate builds as a library target too.
pub const BENCH_TARGETS: [&str; 5] = ["figures", "kernels", "passes", "executor", "ablations"];
