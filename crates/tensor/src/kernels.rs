//! The CNN kernel set: direct (reference) implementations of every operator
//! in the IR.
//!
//! These are clarity-first reference kernels: correctness is established by
//! hand-computed cases and property tests, and Criterion micro-benches in
//! `edgebench-bench` measure them. Device *performance* modelling does not
//! use these timings — it uses the analytical roofline in
//! `edgebench-devices` — so simplicity here is a feature.

use crate::Tensor;
use edgebench_graph::{ActivationKind, PoolKind, TensorShape};

/// 2-D convolution over `NCHW` input.
///
/// `weight` is `[out_c, in_c/groups, kh, kw]`; `bias` (if any) is `[out_c]`.
///
/// # Panics
///
/// Panics if the shapes are inconsistent (callers construct them from a
/// validated graph).
pub fn conv2d(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: (usize, usize),
    padding: (usize, usize),
    groups: usize,
) -> Tensor {
    let (n, _, ih, iw) = dims4(x.shape());
    let wd = weight.shape().dims();
    let (out_c, kh, kw) = (wd[0], wd[2], wd[3]);
    let oh = TensorShape::conv_out_extent(ih, kh, stride.0, padding.0).expect("kernel fits");
    let ow = TensorShape::conv_out_extent(iw, kw, stride.1, padding.1).expect("kernel fits");
    let mut out = Tensor::zeros([n, out_c, oh, ow]);
    conv2d_into(x, weight, bias, stride, padding, groups, &mut out);
    out
}

/// [`conv2d`] into a caller-provided output tensor (every element is
/// overwritten, so recycled arena buffers are safe).
///
/// # Panics
///
/// Panics if shapes are inconsistent or `out` has the wrong size.
pub fn conv2d_into(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: (usize, usize),
    padding: (usize, usize),
    groups: usize,
    out: &mut Tensor,
) {
    let (n, in_c, ih, iw) = dims4(x.shape());
    let wd = weight.shape().dims();
    let (out_c, icg, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    assert_eq!(icg, in_c / groups, "weight in-channel mismatch");
    let oh = TensorShape::conv_out_extent(ih, kh, stride.0, padding.0).expect("kernel fits");
    let ow = TensorShape::conv_out_extent(iw, kw, stride.1, padding.1).expect("kernel fits");
    let ocg = out_c / groups;
    assert_eq!(
        out.len(),
        n * out_c * oh * ow,
        "conv2d output size mismatch"
    );

    let xd = x.data();
    let wv = weight.data();
    let od = out.data_mut();
    for b in 0..n {
        for g in 0..groups {
            for oc in 0..ocg {
                let oc_abs = g * ocg + oc;
                let b0 = bias.map_or(0.0, |bv| bv[oc_abs]);
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = b0;
                        for ic in 0..icg {
                            let ic_abs = g * icg + ic;
                            for ky in 0..kh {
                                let iy = oy * stride.0 + ky;
                                if iy < padding.0 || iy - padding.0 >= ih {
                                    continue;
                                }
                                let iy = iy - padding.0;
                                let xrow = ((b * in_c + ic_abs) * ih + iy) * iw;
                                let wrow = ((oc_abs * icg + ic) * kh + ky) * kw;
                                for kx in 0..kw {
                                    let ix = ox * stride.1 + kx;
                                    if ix < padding.1 || ix - padding.1 >= iw {
                                        continue;
                                    }
                                    acc += xd[xrow + (ix - padding.1)] * wv[wrow + kx];
                                }
                            }
                        }
                        od[((b * out_c + oc_abs) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
    }
}

/// Depthwise 2-D convolution. `weight` is `[in_c * multiplier, 1, kh, kw]`.
pub fn depthwise_conv2d(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: (usize, usize),
    padding: (usize, usize),
    multiplier: usize,
) -> Tensor {
    let (n, in_c, ih, iw) = dims4(x.shape());
    let wd = weight.shape().dims();
    let (kh, kw) = (wd[2], wd[3]);
    let out_c = in_c * multiplier;
    let oh = TensorShape::conv_out_extent(ih, kh, stride.0, padding.0).expect("kernel fits");
    let ow = TensorShape::conv_out_extent(iw, kw, stride.1, padding.1).expect("kernel fits");
    let mut out = Tensor::zeros([n, out_c, oh, ow]);
    depthwise_conv2d_into(x, weight, bias, stride, padding, multiplier, &mut out);
    out
}

/// [`depthwise_conv2d`] into a caller-provided output tensor (every
/// element is overwritten).
///
/// # Panics
///
/// Panics if shapes are inconsistent or `out` has the wrong size.
pub fn depthwise_conv2d_into(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: (usize, usize),
    padding: (usize, usize),
    multiplier: usize,
    out: &mut Tensor,
) {
    let (n, in_c, ih, iw) = dims4(x.shape());
    let wd = weight.shape().dims();
    let (kh, kw) = (wd[2], wd[3]);
    let out_c = in_c * multiplier;
    let oh = TensorShape::conv_out_extent(ih, kh, stride.0, padding.0).expect("kernel fits");
    let ow = TensorShape::conv_out_extent(iw, kw, stride.1, padding.1).expect("kernel fits");
    assert_eq!(out.len(), n * out_c * oh * ow, "depthwise output mismatch");

    let xd = x.data();
    let wv = weight.data();
    let od = out.data_mut();
    for b in 0..n {
        for oc in 0..out_c {
            let ic = oc / multiplier;
            let b0 = bias.map_or(0.0, |bv| bv[oc]);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = b0;
                    for ky in 0..kh {
                        let iy = oy * stride.0 + ky;
                        if iy < padding.0 || iy - padding.0 >= ih {
                            continue;
                        }
                        let iy = iy - padding.0;
                        let xrow = ((b * in_c + ic) * ih + iy) * iw;
                        let wrow = (oc * kh + ky) * kw;
                        for kx in 0..kw {
                            let ix = ox * stride.1 + kx;
                            if ix < padding.1 || ix - padding.1 >= iw {
                                continue;
                            }
                            acc += xd[xrow + (ix - padding.1)] * wv[wrow + kx];
                        }
                    }
                    od[((b * out_c + oc) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
}

/// 3-D convolution over `NCDHW` input. `weight` is
/// `[out_c, in_c, kd, kh, kw]`.
pub fn conv3d(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: (usize, usize, usize),
    padding: (usize, usize, usize),
) -> Tensor {
    let d = x.shape().dims();
    let (n, in_c, id, ih, iw) = (d[0], d[1], d[2], d[3], d[4]);
    let wd = weight.shape().dims();
    let (out_c, kd, kh, kw) = (wd[0], wd[2], wd[3], wd[4]);
    let od_ = TensorShape::conv_out_extent(id, kd, stride.0, padding.0).expect("kernel fits");
    let oh = TensorShape::conv_out_extent(ih, kh, stride.1, padding.1).expect("kernel fits");
    let ow = TensorShape::conv_out_extent(iw, kw, stride.2, padding.2).expect("kernel fits");

    let mut out = Tensor::zeros([n, out_c, od_, oh, ow]);
    let xd = x.data();
    let wv = weight.data();
    let ov = out.data_mut();
    for b in 0..n {
        for oc in 0..out_c {
            let b0 = bias.map_or(0.0, |bv| bv[oc]);
            for oz in 0..od_ {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = b0;
                        for ic in 0..in_c {
                            for kz in 0..kd {
                                let iz = oz * stride.0 + kz;
                                if iz < padding.0 || iz - padding.0 >= id {
                                    continue;
                                }
                                let iz = iz - padding.0;
                                for ky in 0..kh {
                                    let iy = oy * stride.1 + ky;
                                    if iy < padding.1 || iy - padding.1 >= ih {
                                        continue;
                                    }
                                    let iy = iy - padding.1;
                                    let xrow = (((b * in_c + ic) * id + iz) * ih + iy) * iw;
                                    let wrow = (((oc * in_c + ic) * kd + kz) * kh + ky) * kw;
                                    for kx in 0..kw {
                                        let ix = ox * stride.2 + kx;
                                        if ix < padding.2 || ix - padding.2 >= iw {
                                            continue;
                                        }
                                        acc += xd[xrow + (ix - padding.2)] * wv[wrow + kx];
                                    }
                                }
                            }
                        }
                        ov[(((b * out_c + oc) * od_ + oz) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
    }
    out
}

/// Dense layer: `y = x · Wᵀ + b`, with `x: [n, f]`, `weight: [units, f]`.
pub fn dense(x: &Tensor, weight: &Tensor, bias: Option<&[f32]>) -> Tensor {
    let n = x.shape().dim(0);
    let units = weight.shape().dim(0);
    let mut out = Tensor::zeros([n, units]);
    dense_act_into(x, weight, bias, ActivationKind::Linear, 1, &mut out);
    out
}

/// Fused dense + bias + activation into a caller-provided output tensor.
///
/// Thin wrapper over [`crate::gemm::dense_act_into`] with a transient
/// scratch buffer; the executor calls the GEMM entry point directly with
/// its arena-owned scratch so the steady state stays allocation-free.
/// Every in-build dense path shares that one implementation, so fused and
/// unfused layers agree bit-for-bit and any intra-op thread count yields
/// the same bytes.
///
/// # Panics
///
/// Panics if shapes are inconsistent or `out` has the wrong size.
pub fn dense_act_into(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    act: ActivationKind,
    threads: usize,
    out: &mut Tensor,
) {
    let mut scratch = crate::gemm::GemmScratch::default();
    crate::gemm::dense_act_into(x, weight, bias, act, threads, out, &mut scratch);
}

/// 2-D pooling (max / average / global average).
pub fn pool2d(
    x: &Tensor,
    kind: PoolKind,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
) -> Tensor {
    let (n, c, ih, iw) = dims4(x.shape());
    let (oh, ow) = if kind == PoolKind::GlobalAvg {
        (1, 1)
    } else {
        (
            TensorShape::conv_out_extent(ih, kernel.0, stride.0, padding.0).expect("window fits"),
            TensorShape::conv_out_extent(iw, kernel.1, stride.1, padding.1).expect("window fits"),
        )
    };
    let mut out = Tensor::zeros([n, c, oh, ow]);
    pool2d_into(x, kind, kernel, stride, padding, &mut out);
    out
}

/// [`pool2d`] into a caller-provided output tensor (every element is
/// overwritten).
///
/// # Panics
///
/// Panics if shapes are inconsistent or `out` has the wrong size.
pub fn pool2d_into(
    x: &Tensor,
    kind: PoolKind,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    out: &mut Tensor,
) {
    let (n, c, ih, iw) = dims4(x.shape());
    if kind == PoolKind::GlobalAvg {
        assert_eq!(out.len(), n * c, "pool output size mismatch");
        let xd = x.data();
        let od = out.data_mut();
        let area = (ih * iw) as f32;
        for b in 0..n {
            for ch in 0..c {
                let base = (b * c + ch) * ih * iw;
                let sum: f32 = xd[base..base + ih * iw].iter().sum();
                od[b * c + ch] = sum / area;
            }
        }
        return;
    }
    let (kh, kw) = kernel;
    let oh = TensorShape::conv_out_extent(ih, kh, stride.0, padding.0).expect("window fits");
    let ow = TensorShape::conv_out_extent(iw, kw, stride.1, padding.1).expect("window fits");
    assert_eq!(out.len(), n * c * oh * ow, "pool output size mismatch");
    let xd = x.data();
    let od = out.data_mut();
    // Fast path for the ubiquitous 2x2/stride-2 unpadded max pool: two row
    // slices per output row, pairwise max — no per-element padding or
    // bounds bookkeeping. `max` is exact, so this matches the generic loop
    // bit-for-bit.
    if kind == PoolKind::Max && kernel == (2, 2) && stride == (2, 2) && padding == (0, 0) {
        for p in 0..n * c {
            let ibase = p * ih * iw;
            let obase = p * oh * ow;
            for oy in 0..oh {
                let r0 = &xd[ibase + 2 * oy * iw..ibase + (2 * oy + 1) * iw];
                let r1 = &xd[ibase + (2 * oy + 1) * iw..ibase + (2 * oy + 2) * iw];
                for (ox, o) in od[obase + oy * ow..obase + (oy + 1) * ow]
                    .iter_mut()
                    .enumerate()
                {
                    let ix = 2 * ox;
                    *o = r0[ix].max(r0[ix + 1]).max(r1[ix].max(r1[ix + 1]));
                }
            }
        }
        return;
    }
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = if kind == PoolKind::Max {
                        f32::NEG_INFINITY
                    } else {
                        0.0
                    };
                    let mut count = 0usize;
                    for ky in 0..kh {
                        let iy = oy * stride.0 + ky;
                        if iy < padding.0 || iy - padding.0 >= ih {
                            continue;
                        }
                        let iy = iy - padding.0;
                        for kx in 0..kw {
                            let ix = ox * stride.1 + kx;
                            if ix < padding.1 || ix - padding.1 >= iw {
                                continue;
                            }
                            let v = xd[((b * c + ch) * ih + iy) * iw + (ix - padding.1)];
                            match kind {
                                PoolKind::Max => acc = acc.max(v),
                                _ => acc += v,
                            }
                            count += 1;
                        }
                    }
                    od[((b * c + ch) * oh + oy) * ow + ox] = match kind {
                        PoolKind::Max => {
                            if count == 0 {
                                0.0
                            } else {
                                acc
                            }
                        }
                        _ => acc / count.max(1) as f32,
                    };
                }
            }
        }
    }
}

/// 3-D max/avg pooling (no padding).
pub fn pool3d(
    x: &Tensor,
    kind: PoolKind,
    kernel: (usize, usize, usize),
    stride: (usize, usize, usize),
) -> Tensor {
    let d = x.shape().dims();
    let (n, c, id, ih, iw) = (d[0], d[1], d[2], d[3], d[4]);
    let od_ = TensorShape::conv_out_extent(id, kernel.0, stride.0, 0).expect("window fits");
    let oh = TensorShape::conv_out_extent(ih, kernel.1, stride.1, 0).expect("window fits");
    let ow = TensorShape::conv_out_extent(iw, kernel.2, stride.2, 0).expect("window fits");
    let mut out = Tensor::zeros([n, c, od_, oh, ow]);
    let xd = x.data();
    let ov = out.data_mut();
    for b in 0..n {
        for ch in 0..c {
            for oz in 0..od_ {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = if kind == PoolKind::Max {
                            f32::NEG_INFINITY
                        } else {
                            0.0
                        };
                        for kz in 0..kernel.0 {
                            for ky in 0..kernel.1 {
                                for kx in 0..kernel.2 {
                                    let v = xd[(((b * c + ch) * id + oz * stride.0 + kz) * ih
                                        + oy * stride.1
                                        + ky)
                                        * iw
                                        + ox * stride.2
                                        + kx];
                                    match kind {
                                        PoolKind::Max => acc = acc.max(v),
                                        _ => acc += v,
                                    }
                                }
                            }
                        }
                        let denom = (kernel.0 * kernel.1 * kernel.2) as f32;
                        ov[(((b * c + ch) * od_ + oz) * oh + oy) * ow + ox] = match kind {
                            PoolKind::Max => acc,
                            _ => acc / denom,
                        };
                    }
                }
            }
        }
    }
    out
}

/// Inference batch-norm: per-channel `y = gamma * x + beta` (statistics are
/// pre-folded into the scale and shift).
pub fn batch_norm(x: &Tensor, gamma: &[f32], beta: &[f32]) -> Tensor {
    let mut out = x.clone();
    batch_norm_inplace(&mut out, gamma, beta);
    out
}

/// [`batch_norm`] mutating the tensor in place — the executor's path when
/// the input buffer dies at this node.
///
/// # Panics
///
/// Panics if `gamma`/`beta` lengths disagree with the channel count.
pub fn batch_norm_inplace(x: &mut Tensor, gamma: &[f32], beta: &[f32]) {
    let c = x.shape().channels();
    assert_eq!(gamma.len(), c, "gamma length mismatch");
    assert_eq!(beta.len(), c, "beta length mismatch");
    let per_channel: usize = x.shape().dims()[2..].iter().product();
    let n = x.shape().batch();
    let od = x.data_mut();
    for b in 0..n {
        for ch in 0..c {
            let base = (b * c + ch) * per_channel;
            for v in &mut od[base..base + per_channel] {
                *v = gamma[ch] * *v + beta[ch];
            }
        }
    }
}

/// Batch-norm (optional) then activation in one in-place pass — the
/// epilogue of the direct (non-GEMM) fused convolution path. Applies the
/// same element-wise formulas in the same order as [`batch_norm`] followed
/// by [`activation`], so results are bit-identical to the unfused pair.
pub fn bn_act_inplace(x: &mut Tensor, bn: Option<(&[f32], &[f32])>, act: ActivationKind) {
    if let Some((gamma, beta)) = bn {
        batch_norm_inplace(x, gamma, beta);
    }
    if act != ActivationKind::Linear {
        activation_inplace(x, act);
    }
}

/// Local response normalization across channels (AlexNet formulation with
/// k=2, alpha=1e-4, beta=0.75).
pub fn lrn(x: &Tensor, size: usize) -> Tensor {
    let (n, c, ih, iw) = dims4(x.shape());
    let mut out = Tensor::zeros([n, c, ih, iw]);
    lrn_into(x, size, &mut out);
    out
}

/// [`lrn`] into a caller-provided output tensor (every element is
/// overwritten).
///
/// The channel-window sum of squares accumulates directly in the output
/// plane, one contiguous channel plane at a time in ascending channel
/// order, then a single sweep normalizes it — the per-element reduction
/// order is fixed regardless of layout or thread count. `t^0.75` is
/// computed as `sqrt(t · sqrt(t))`: both operations are IEEE-exact, so
/// the result is deterministic, and it is far cheaper than `powf`.
///
/// # Panics
///
/// Panics if `out` has the wrong size.
pub fn lrn_into(x: &Tensor, size: usize, out: &mut Tensor) {
    let (n, c, ih, iw) = dims4(x.shape());
    let (k, alpha) = (2.0f32, 1e-4f32);
    assert_eq!(out.len(), x.len(), "lrn output size mismatch");
    let xd = x.data();
    let od = out.data_mut();
    let half = size / 2;
    let hw = ih * iw;
    for b in 0..n {
        let base = b * c * hw;
        for ch in 0..c {
            let lo = ch.saturating_sub(half);
            let hi = (ch + half).min(c - 1);
            let plane = &mut od[base + ch * hw..base + (ch + 1) * hw];
            plane.fill(0.0);
            for cc in lo..=hi {
                let src = &xd[base + cc * hw..base + (cc + 1) * hw];
                for (s, &v) in plane.iter_mut().zip(src) {
                    *s += v * v;
                }
            }
            let src = &xd[base + ch * hw..base + (ch + 1) * hw];
            for (s, &v) in plane.iter_mut().zip(src) {
                let t = alpha.mul_add(*s, k);
                *s = v / (t * t.sqrt()).sqrt();
            }
        }
    }
}

/// One activation applied to one value — the single source of the
/// activation formulas, shared by every fused and standalone path so they
/// stay bit-identical.
#[inline]
pub fn apply_activation(v: f32, kind: ActivationKind) -> f32 {
    match kind {
        ActivationKind::Relu => v.max(0.0),
        ActivationKind::Relu6 => v.clamp(0.0, 6.0),
        ActivationKind::Leaky => {
            if v > 0.0 {
                v
            } else {
                0.1 * v
            }
        }
        ActivationKind::Sigmoid => 1.0 / (1.0 + (-v).exp()),
        ActivationKind::Tanh => v.tanh(),
        ActivationKind::Linear => v,
    }
}

/// Element-wise activation.
pub fn activation(x: &Tensor, kind: ActivationKind) -> Tensor {
    let mut out = x.clone();
    activation_inplace(&mut out, kind);
    out
}

/// [`activation`] mutating the tensor in place.
pub fn activation_inplace(x: &mut Tensor, kind: ActivationKind) {
    for v in x.data_mut() {
        *v = apply_activation(*v, kind);
    }
}

/// Element-wise addition of equal-shaped tensors.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = a.clone();
    add_assign(&mut out, b);
    out
}

/// `a += b` in place.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn add_assign(a: &mut Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape(), "add shape mismatch");
    for (o, &v) in a.data_mut().iter_mut().zip(b.data()) {
        *o += v;
    }
}

/// Element-wise (Hadamard) product of equal-shaped tensors.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = a.clone();
    mul_assign(&mut out, b);
    out
}

/// `a *= b` (Hadamard) in place.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mul_assign(a: &mut Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape(), "mul shape mismatch");
    for (o, &v) in a.data_mut().iter_mut().zip(b.data()) {
        *o *= v;
    }
}

/// Channel-axis concatenation.
///
/// # Panics
///
/// Panics if inputs disagree on batch or trailing dims.
pub fn concat(inputs: &[&Tensor]) -> Tensor {
    assert!(!inputs.is_empty(), "concat of zero tensors");
    let first = inputs[0].shape();
    let total_c: usize = inputs.iter().map(|t| t.shape().channels()).sum();
    let mut dims = first.dims().to_vec();
    dims[1] = total_c;
    let mut out = Tensor::zeros(dims);
    concat_into(inputs, &mut out);
    out
}

/// [`concat()`] into a caller-provided output tensor (every element is
/// overwritten — the inputs jointly cover the whole channel axis).
///
/// # Panics
///
/// Panics if inputs disagree on batch/trailing dims or `out` is missized.
pub fn concat_into(inputs: &[&Tensor], out: &mut Tensor) {
    assert!(!inputs.is_empty(), "concat of zero tensors");
    let first = inputs[0].shape();
    let n = first.batch();
    let trailing: usize = first.dims()[2..].iter().product();
    let total_c: usize = inputs.iter().map(|t| t.shape().channels()).sum();
    assert_eq!(out.len(), n * total_c * trailing, "concat output mismatch");
    let od = out.data_mut();
    for b in 0..n {
        let mut c_off = 0usize;
        for t in inputs {
            let c = t.shape().channels();
            assert_eq!(t.shape().batch(), n, "concat batch mismatch");
            assert_eq!(
                t.shape().dims()[2..].iter().product::<usize>(),
                trailing,
                "concat trailing mismatch"
            );
            let src = &t.data()[b * c * trailing..(b + 1) * c * trailing];
            let dst_base = (b * total_c + c_off) * trailing;
            od[dst_base..dst_base + c * trailing].copy_from_slice(src);
            c_off += c;
        }
    }
}

/// Feature-axis slice of a rank-2 `[N, features]` tensor.
///
/// # Panics
///
/// Panics if the range is out of bounds.
pub fn slice2(x: &Tensor, start: usize, len: usize) -> Tensor {
    let (n, f) = (x.shape().dim(0), x.shape().dim(1));
    assert!(
        start + len <= f,
        "slice [{start}, {}) out of {f}",
        start + len
    );
    let mut out = Tensor::zeros([n, len]);
    let od = out.data_mut();
    for b in 0..n {
        od[b * len..(b + 1) * len].copy_from_slice(&x.data()[b * f + start..b * f + start + len]);
    }
    out
}

/// Nearest-neighbour upsampling by an integer factor.
pub fn upsample(x: &Tensor, factor: usize) -> Tensor {
    let (n, c, ih, iw) = dims4(x.shape());
    let (oh, ow) = (ih * factor, iw * factor);
    let mut out = Tensor::zeros([n, c, oh, ow]);
    let xd = x.data();
    let od = out.data_mut();
    for b in 0..n {
        for ch in 0..c {
            for y in 0..oh {
                for xw in 0..ow {
                    od[((b * c + ch) * oh + y) * ow + xw] =
                        xd[((b * c + ch) * ih + y / factor) * iw + xw / factor];
                }
            }
        }
    }
    out
}

/// Softmax over the last dimension.
pub fn softmax(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    softmax_inplace(&mut out);
    out
}

/// [`softmax`] mutating the tensor in place.
pub fn softmax_inplace(x: &mut Tensor) {
    let last = *x.shape().dims().last().expect("softmax on rank >= 1");
    let rows = x.len() / last;
    let od = x.data_mut();
    for r in 0..rows {
        let row = &mut od[r * last..(r + 1) * last];
        let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

fn dims4(s: &TensorShape) -> (usize, usize, usize, usize) {
    let d = s.dims();
    assert_eq!(d.len(), 4, "expected rank-4 tensor, got {s}");
    (d[0], d[1], d[2], d[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_identity_kernel() {
        // 1x1 kernel with weight 1.0 reproduces the input.
        let x = Tensor::random([1, 1, 4, 4], 1);
        let w = Tensor::from_vec([1, 1, 1, 1], vec![1.0]);
        let y = conv2d(&x, &w, None, (1, 1), (0, 0), 1);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv2d_hand_computed_3x3() {
        // Input 3x3 of ones, 3x3 kernel of ones, pad 1: centre sees 9,
        // edges 6, corners 4.
        let x = Tensor::from_vec([1, 1, 3, 3], vec![1.0; 9]);
        let w = Tensor::from_vec([1, 1, 3, 3], vec![1.0; 9]);
        let y = conv2d(&x, &w, None, (1, 1), (1, 1), 1);
        assert_eq!(y.data(), &[4., 6., 4., 6., 9., 6., 4., 6., 4.]);
    }

    #[test]
    fn conv2d_bias_and_stride() {
        let x = Tensor::from_vec([1, 1, 4, 4], (0..16).map(|v| v as f32).collect());
        let w = Tensor::from_vec([1, 1, 2, 2], vec![1.0; 4]);
        let y = conv2d(&x, &w, Some(&[10.0]), (2, 2), (0, 0), 1);
        // Windows: (0+1+4+5)+10, (2+3+6+7)+10, (8+9+12+13)+10, (10+11+14+15)+10
        assert_eq!(y.data(), &[20., 28., 52., 60.]);
    }

    #[test]
    fn grouped_conv_partitions_channels() {
        // Two input channels, two groups; each output sees only its group.
        let x = Tensor::from_vec([1, 2, 1, 1], vec![3.0, 5.0]);
        let w = Tensor::from_vec([2, 1, 1, 1], vec![1.0, 1.0]);
        let y = conv2d(&x, &w, None, (1, 1), (0, 0), 2);
        assert_eq!(y.data(), &[3.0, 5.0]);
    }

    #[test]
    fn depthwise_equals_grouped_conv_with_groups_eq_channels() {
        let x = Tensor::random([1, 4, 6, 6], 11);
        let w = Tensor::random([4, 1, 3, 3], 12);
        let dw = depthwise_conv2d(&x, &w, None, (1, 1), (1, 1), 1);
        let gc = conv2d(&x, &w, None, (1, 1), (1, 1), 4);
        assert!(dw.mean_abs_diff(&gc) < 1e-6);
    }

    #[test]
    fn dense_hand_computed() {
        let x = Tensor::from_vec([1, 3], vec![1., 2., 3.]);
        let w = Tensor::from_vec([2, 3], vec![1., 0., 0., 0., 1., 1.]);
        let y = dense(&x, &w, Some(&[0.5, -0.5]));
        assert_eq!(y.data(), &[1.5, 4.5]);
    }

    #[test]
    fn conv3d_matches_conv2d_on_depth1() {
        // A depth-1 3-D conv with kd=1 equals a 2-D conv.
        let x2 = Tensor::random([1, 2, 5, 5], 21);
        let mut x3 = x2.clone();
        x3.reshape([1, 2, 1, 5, 5]);
        let w2 = Tensor::random([3, 2, 3, 3], 22);
        let mut w3 = w2.clone();
        w3.reshape([3, 2, 1, 3, 3]);
        let y2 = conv2d(&x2, &w2, None, (1, 1), (1, 1), 1);
        let mut y3 = conv3d(&x3, &w3, None, (1, 1, 1), (0, 1, 1));
        y3.reshape(y2.shape().dims().to_vec());
        assert!(y2.mean_abs_diff(&y3) < 1e-6);
    }

    #[test]
    fn max_pool_hand_computed() {
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 5., 3., 2.]);
        let y = pool2d(&x, PoolKind::Max, (2, 2), (2, 2), (0, 0));
        assert_eq!(y.data(), &[5.0]);
    }

    #[test]
    fn avg_pool_ignores_padding_in_denominator() {
        // 2x2 input, 2x2 window, stride 2, pad 1: corner windows see one
        // real element each.
        let x = Tensor::from_vec([1, 1, 2, 2], vec![4., 8., 12., 16.]);
        let y = pool2d(&x, PoolKind::Avg, (2, 2), (2, 2), (1, 1));
        assert_eq!(y.data(), &[4., 8., 12., 16.]);
    }

    #[test]
    fn global_avg_pool_averages_everything() {
        let x = Tensor::from_vec([1, 2, 2, 2], vec![1., 2., 3., 4., 10., 20., 30., 40.]);
        let y = pool2d(&x, PoolKind::GlobalAvg, (0, 0), (1, 1), (0, 0));
        assert_eq!(y.data(), &[2.5, 25.0]);
    }

    #[test]
    fn pool3d_max() {
        let x = Tensor::from_vec([1, 1, 2, 2, 2], (1..=8).map(|v| v as f32).collect());
        let y = pool3d(&x, PoolKind::Max, (2, 2, 2), (2, 2, 2));
        assert_eq!(y.data(), &[8.0]);
    }

    #[test]
    fn batch_norm_scales_and_shifts_per_channel() {
        let x = Tensor::from_vec([1, 2, 1, 2], vec![1., 2., 3., 4.]);
        let y = batch_norm(&x, &[2.0, 10.0], &[0.5, -1.0]);
        assert_eq!(y.data(), &[2.5, 4.5, 29.0, 39.0]);
    }

    #[test]
    fn activations_behave() {
        let x = Tensor::from_vec([1, 4], vec![-2.0, -0.5, 0.5, 8.0]);
        assert_eq!(
            activation(&x, ActivationKind::Relu).data(),
            &[0., 0., 0.5, 8.0]
        );
        assert_eq!(
            activation(&x, ActivationKind::Relu6).data(),
            &[0., 0., 0.5, 6.0]
        );
        let leaky = activation(&x, ActivationKind::Leaky);
        assert!((leaky.data()[0] + 0.2).abs() < 1e-6);
        assert_eq!(activation(&x, ActivationKind::Linear).data(), x.data());
        let sig = activation(&x, ActivationKind::Sigmoid);
        assert!(sig.data().iter().all(|v| (0.0..1.0).contains(v)));
    }

    #[test]
    fn mul_is_elementwise() {
        let a = Tensor::from_vec([1, 3], vec![2.0, -1.0, 0.5]);
        let b = Tensor::from_vec([1, 3], vec![3.0, 4.0, -2.0]);
        assert_eq!(mul(&a, &b).data(), &[6.0, -4.0, -1.0]);
    }

    #[test]
    fn concat_stacks_channels() {
        let a = Tensor::from_vec([1, 1, 1, 2], vec![1., 2.]);
        let b = Tensor::from_vec([1, 2, 1, 2], vec![3., 4., 5., 6.]);
        let y = concat(&[&a, &b]);
        assert_eq!(y.shape().dims(), &[1, 3, 1, 2]);
        assert_eq!(y.data(), &[1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    fn slice2_takes_feature_window() {
        let x = Tensor::from_vec([2, 4], vec![0., 1., 2., 3., 10., 11., 12., 13.]);
        let y = slice2(&x, 1, 2);
        assert_eq!(y.shape().dims(), &[2, 2]);
        assert_eq!(y.data(), &[1., 2., 11., 12.]);
    }

    #[test]
    fn upsample_repeats_pixels() {
        let x = Tensor::from_vec([1, 1, 1, 2], vec![7., 9.]);
        let y = upsample(&x, 2);
        assert_eq!(y.shape().dims(), &[1, 1, 2, 4]);
        assert_eq!(y.data(), &[7., 7., 9., 9., 7., 7., 9., 9.]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::random([3, 7], 5);
        let y = softmax(&x);
        for r in 0..3 {
            let s: f32 = y.data()[r * 7..(r + 1) * 7].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(y.data()[r * 7..(r + 1) * 7].iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn lrn_preserves_sign_and_reduces_magnitude() {
        let x = Tensor::from_vec([1, 3, 1, 1], vec![-1.0, 2.0, 3.0]);
        let y = lrn(&x, 5);
        for (a, b) in x.data().iter().zip(y.data()) {
            assert_eq!(a.signum(), b.signum());
            assert!(b.abs() <= a.abs());
        }
    }
}
