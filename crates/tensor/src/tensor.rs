//! Dense row-major `f32` tensors.

use edgebench_graph::TensorShape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A dense, row-major, `f32` tensor.
///
/// Layout follows the owning [`TensorShape`]: `NCHW` for feature maps,
/// `NCDHW` for video, `[N, features]` for flattened activations.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: TensorShape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(shape: impl Into<TensorShape>) -> Self {
        let shape = shape.into();
        let n = shape.num_elements();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: impl Into<TensorShape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.num_elements(),
            data.len(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// Creates a deterministic pseudo-random tensor in `[-0.5, 0.5)`.
    ///
    /// Used for synthetic weights and inputs; the same `seed` always yields
    /// the same tensor, making executions reproducible.
    pub fn random(shape: impl Into<TensorShape>, seed: u64) -> Self {
        let shape = shape.into();
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..shape.num_elements())
            .map(|_| rng.gen::<f32>() - 0.5)
            .collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &TensorShape {
        &self.shape
    }

    /// Immutable view of the underlying buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reshapes in place without moving data.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    pub fn reshape(&mut self, shape: impl Into<TensorShape>) {
        let shape = shape.into();
        assert_eq!(
            shape.num_elements(),
            self.data.len(),
            "cannot reshape {} elements to {shape}",
            self.data.len()
        );
        self.shape = shape;
    }

    /// Maximum absolute element (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Mean absolute difference to another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mean_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in mean_abs_diff");
        if self.data.is_empty() {
            return 0.0;
        }
        let sum: f32 = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        sum / self.data.len() as f32
    }

    /// Linear offset of `[n, c, h, w]` in an `NCHW` tensor.
    #[inline]
    pub fn idx4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        let d = self.shape.dims();
        ((n * d[1] + c) * d[2] + h) * d[3] + w
    }

    /// Linear offset of `[n, c, dd, h, w]` in an `NCDHW` tensor.
    #[inline]
    pub fn idx5(&self, n: usize, c: usize, dd: usize, h: usize, w: usize) -> usize {
        let d = self.shape.dims();
        (((n * d[1] + c) * d[2] + dd) * d[3] + h) * d[4] + w
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}; {} elems", self.shape, self.data.len())?;
        if !self.data.is_empty() {
            write!(f, "; first={:.4}", self.data[0])?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let t = Tensor::zeros([2, 3, 4, 4]);
        assert_eq!(t.len(), 96);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = Tensor::random([1, 8], 3);
        let b = Tensor::random([1, 8], 3);
        let c = Tensor::random([1, 8], 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.data().iter().all(|v| (-0.5..0.5).contains(v)));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec([2, 2], vec![1.0; 5]);
    }

    #[test]
    fn idx4_is_row_major() {
        let t = Tensor::zeros([1, 2, 3, 4]);
        assert_eq!(t.idx4(0, 0, 0, 0), 0);
        assert_eq!(t.idx4(0, 0, 0, 3), 3);
        assert_eq!(t.idx4(0, 0, 1, 0), 4);
        assert_eq!(t.idx4(0, 1, 0, 0), 12);
    }

    #[test]
    fn mean_abs_diff_of_identical_is_zero() {
        let t = Tensor::random([4, 4], 1);
        assert_eq!(t.mean_abs_diff(&t), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        t.reshape([1, 6]);
        assert_eq!(t.shape().dims(), &[1, 6]);
        assert_eq!(t.data()[4], 5.0);
    }
}
