//! Silent-data-corruption (SDC) defense: weight checksums, activation
//! range guards, and in-place recovery.
//!
//! Edge devices at thermal/power limits suffer DRAM bit flips that
//! silently corrupt resident model weights and in-flight activations —
//! and a wrong answer is worse than a slow one. This module layers a
//! defense on top of [`PreparedExecutor`]:
//!
//! * **Checksums** — [`Executor::prepare`](crate::Executor::prepare)
//!   records a lane-parallel FNV-style checksum of every node's cached
//!   parameter bits;
//!   [`GuardedExecutor`] re-verifies them on a configurable cadence and
//!   repairs mismatched nodes in place by re-materializing just that
//!   node's parameters from the pristine weight store (weights are a pure
//!   function of seed and node name, so repair restores the exact
//!   original bits — including pruning and precision lowering).
//! * **Activation guards** — a clean calibration pass records each node's
//!   output min/max envelope; at inference time any non-finite value is
//!   fatal immediately, and values escaping the slack-widened envelope
//!   trip the guard. On a trip the executor scrubs the weights and
//!   retries the inference once; a second trip surfaces as the typed
//!   [`ExecError::Corrupted`] outcome instead of serving a wrong answer.
//!
//! Everything here is deterministic: checksums are pure functions of the
//! parameter bits, envelopes are pure functions of the calibration
//! inputs, and because executor outputs are byte-identical across thread
//! counts and kernel tiers, guard verdicts are too. Recovery work is
//! reported in deterministic units (counts and bytes), never wall-clock.

use crate::{ExecError, PreparedExecutor, Tensor};
use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Lane-parallel FNV-style digest over the bit patterns of `words`,
/// mixed with the slice length so reshufflings between parts cannot
/// collide.
///
/// Eight independent xor-multiply chains each consume a pair of `f32`
/// bit patterns per step, then fold into one digest. Every step xors
/// data into the state and multiplies by an odd constant — both
/// injective on `u64` — so a *single* flipped bit anywhere in `words`
/// is guaranteed (not just probabilistically likely) to change the
/// digest. The lanes exist purely for speed: dependent 64-bit
/// multiplies cap a one-chain hash at a few hundred MB/s, while eight
/// interleaved chains keep the multiplier saturated and run at memory
/// bandwidth, cheap enough to re-verify every model weight before every
/// inference.
pub fn checksum_f32(words: &[f32]) -> u64 {
    fold_f32(FNV_OFFSET, words)
}

/// Chains [`checksum_f32`] across several slices (a node's weights, bias
/// and batch-norm parts) into one digest.
pub fn checksum_parts(parts: &[&[f32]]) -> u64 {
    parts.iter().fold(FNV_OFFSET, |h, p| fold_f32(h, p))
}

const HASH_LANES: usize = 8;

fn fold_f32(h: u64, words: &[f32]) -> u64 {
    // Diverge the lanes from the incoming chain state so the digest
    // still depends on part order when chained by `checksum_parts`.
    let mut lanes = [h; HASH_LANES];
    for (i, lane) in lanes.iter_mut().enumerate() {
        *lane = (*lane ^ (i as u64 + 1)).wrapping_mul(FNV_PRIME);
    }
    let pairs = words.len() / 2;
    let rounds = pairs / HASH_LANES;
    // SAFETY: `rounds * HASH_LANES` u64 reads cover exactly
    // `rounds * HASH_LANES * 2 <= words.len()` f32 words, all in bounds;
    // `read_unaligned` has no alignment requirement. The digest is a
    // function of the raw bytes (native byte order), which is all the
    // in-process verify-against-baseline contract needs.
    unsafe {
        let mut p = words.as_ptr().cast::<u64>();
        for _ in 0..rounds {
            for (i, lane) in lanes.iter_mut().enumerate() {
                *lane = (*lane ^ p.add(i).read_unaligned()).wrapping_mul(FNV_PRIME);
            }
            p = p.add(HASH_LANES);
        }
    }
    let mut out = h;
    for lane in lanes {
        out = (out ^ lane).wrapping_mul(FNV_PRIME);
    }
    for w in &words[rounds * HASH_LANES * 2..] {
        out = (out ^ w.to_bits() as u64).wrapping_mul(FNV_PRIME);
    }
    (out ^ words.len() as u64).wrapping_mul(FNV_PRIME)
}

/// A node's clean activation range, recorded during calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Smallest value seen in clean runs.
    pub lo: f32,
    /// Largest value seen in clean runs.
    pub hi: f32,
}

impl Envelope {
    /// The envelope widened by `slack` times its span on each side (with
    /// a small absolute floor so degenerate constant activations still
    /// get a tolerance band).
    pub fn widened(self, slack: f32) -> Envelope {
        let span = (self.hi - self.lo).max(1e-3);
        Envelope {
            lo: self.lo - slack * span,
            hi: self.hi + slack * span,
        }
    }

    fn absorb(&mut self, lo: f32, hi: f32) {
        self.lo = self.lo.min(lo);
        self.hi = self.hi.max(hi);
    }
}

/// Detection knobs of the [`GuardedExecutor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Verify weight checksums (and repair mismatches) every `cadence`
    /// inferences; `1` scrubs before every run, `0` never scrubs.
    pub cadence: u64,
    /// Fraction of each calibrated envelope's span added as tolerance on
    /// both sides before a value counts as out-of-range.
    pub slack: f32,
    /// Retry a tripped inference once (after a forced scrub) before
    /// reporting it corrupted.
    pub retry: bool,
}

impl Default for GuardConfig {
    fn default() -> GuardConfig {
        GuardConfig {
            // Cadence 4 amortizes the scrub's full-weight memory sweep
            // below the <3% overhead budget (the batch-8 CifarNet bench
            // tracks it); cadence 1 buys scrub-before-every-run coverage
            // for roughly one extra percent. The envelope guards run
            // every inference regardless and are effectively free.
            cadence: 4,
            slack: 0.5,
            retry: true,
        }
    }
}

impl GuardConfig {
    /// Returns the config with the given scrub cadence.
    pub fn with_cadence(mut self, cadence: u64) -> GuardConfig {
        self.cadence = cadence;
        self
    }

    /// Returns the config with the given envelope slack.
    pub fn with_slack(mut self, slack: f32) -> GuardConfig {
        self.slack = slack;
        self
    }

    /// Returns the config with retry-on-trip switched on or off.
    pub fn with_retry(mut self, retry: bool) -> GuardConfig {
        self.retry = retry;
        self
    }
}

/// Which activation guard tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardTrip {
    /// A NaN or infinity appeared in a node output (always fatal).
    NonFinite,
    /// A finite value escaped the node's slack-widened clean envelope.
    OutOfEnvelope,
}

impl fmt::Display for GuardTrip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardTrip::NonFinite => write!(f, "non-finite"),
            GuardTrip::OutOfEnvelope => write!(f, "out-of-envelope"),
        }
    }
}

/// Deterministic counters of everything the defense layer did. All units
/// are counts or bytes — never wall-clock — so reports stay byte-stable
/// across machines and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardStats {
    /// Inferences attempted through the guarded path.
    pub inferences: u64,
    /// Checksum verification sweeps performed.
    pub scrubs: u64,
    /// Nodes found with parameters differing from the baseline.
    pub checksum_mismatches: u64,
    /// Nodes repaired in place by re-materialization.
    pub repairs: u64,
    /// Total parameter bytes rewritten by repairs (the deterministic
    /// recovery-cost metric).
    pub repaired_bytes: u64,
    /// Activation-guard trips (non-finite or out-of-envelope).
    pub guard_trips: u64,
    /// Tripped inferences retried after a forced scrub.
    pub retries: u64,
    /// Retries whose re-run came back clean.
    pub recovered: u64,
    /// Inferences reported as [`ExecError::Corrupted`] to the caller.
    pub corrupted_outputs: u64,
}

/// One step of the defense layer's lifecycle, for byte-stable logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityEventKind {
    /// A node's parameter checksum no longer matched the baseline.
    ChecksumMismatch,
    /// The node's parameters were re-materialized in place.
    Repaired {
        /// Parameter bytes rewritten.
        bytes: usize,
    },
    /// An activation guard tripped on the node's output.
    GuardTrip {
        /// Which guard tripped.
        trip: GuardTrip,
    },
    /// The inference was retried after a forced scrub.
    Retried,
    /// The retry came back clean.
    Recovered,
    /// The retry tripped again; the inference was reported corrupted.
    CorruptedOutput,
}

/// One timestep-free entry of the integrity event log: what happened, at
/// which node, during which inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityEvent {
    /// 1-based guarded-inference counter when the event fired.
    pub inference: u64,
    /// Graph node index the event concerns.
    pub node: usize,
    /// What happened.
    pub kind: IntegrityEventKind,
}

impl fmt::Display for IntegrityEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[i{:>6} n{:>3}] ", self.inference, self.node)?;
        match self.kind {
            IntegrityEventKind::ChecksumMismatch => write!(f, "checksum-mismatch"),
            IntegrityEventKind::Repaired { bytes } => write!(f, "repaired bytes={bytes}"),
            IntegrityEventKind::GuardTrip { trip } => write!(f, "guard-trip {trip}"),
            IntegrityEventKind::Retried => write!(f, "retried"),
            IntegrityEventKind::Recovered => write!(f, "recovered"),
            IntegrityEventKind::CorruptedOutput => write!(f, "corrupted-output"),
        }
    }
}

/// A [`PreparedExecutor`] wrapped in the SDC defense layer: cadence-based
/// weight scrubbing, per-node activation guards, and retry-once recovery.
///
/// Build one from a prepared executor, [`calibrate`](Self::calibrate) it
/// on a few clean inputs (optional — NaN/Inf guards work uncalibrated),
/// then call [`run`](Self::run) per inference.
#[derive(Debug)]
pub struct GuardedExecutor<'g> {
    inner: PreparedExecutor<'g>,
    cfg: GuardConfig,
    envelopes: Vec<Option<Envelope>>,
    stats: GuardStats,
    events: Vec<IntegrityEvent>,
}

impl<'g> GuardedExecutor<'g> {
    /// Wraps `inner` with the given guard configuration.
    pub fn new(inner: PreparedExecutor<'g>, cfg: GuardConfig) -> GuardedExecutor<'g> {
        let n = inner.node_count();
        GuardedExecutor {
            inner,
            cfg,
            envelopes: vec![None; n],
            stats: GuardStats::default(),
            events: Vec::new(),
        }
    }

    /// Records each node's clean activation min/max over `inputs`,
    /// replacing any previous calibration. Inputs must be known-clean:
    /// the envelope *is* the definition of normal.
    ///
    /// # Errors
    ///
    /// Same as [`PreparedExecutor::run`].
    pub fn calibrate(&mut self, inputs: &[&Tensor]) -> Result<(), ExecError> {
        let mut envelopes: Vec<Option<Envelope>> = vec![None; self.inner.node_count()];
        for input in inputs {
            let inner = &self.inner;
            inner.run_observed(input, &mut |idx, t| {
                let (lo, hi) = min_max(t.data());
                match &mut envelopes[idx] {
                    Some(env) => env.absorb(lo, hi),
                    slot => *slot = Some(Envelope { lo, hi }),
                }
                Ok(())
            })?;
        }
        self.envelopes = envelopes;
        Ok(())
    }

    /// Whether [`calibrate`](Self::calibrate) has produced envelopes.
    pub fn calibrated(&self) -> bool {
        self.envelopes.iter().any(Option::is_some)
    }

    /// Runs one guarded inference: scrub on cadence, execute with
    /// activation guards, retry once after a forced scrub if a guard
    /// trips.
    ///
    /// # Errors
    ///
    /// Same as [`PreparedExecutor::run`], plus [`ExecError::Corrupted`]
    /// when the guards tripped and recovery did not produce a clean run.
    pub fn run(&mut self, input: &Tensor) -> Result<Tensor, ExecError> {
        self.run_injected(input, &mut |_, _, _| {})
    }

    /// Like [`run`](Self::run), but invoking `inject(attempt, node, out)`
    /// on every node output before the guards inspect it — the hook fault
    /// campaigns use to flip activation bits. `attempt` is `0` for the
    /// first pass and `1` for the post-scrub retry, so transient
    /// injectors can key their draws on it (a persistent fault that
    /// ignores `attempt` re-corrupts the retry and surfaces as
    /// [`ExecError::Corrupted`]).
    ///
    /// # Errors
    ///
    /// Same as [`GuardedExecutor::run`].
    pub fn run_injected(
        &mut self,
        input: &Tensor,
        inject: &mut dyn FnMut(u32, usize, &mut Tensor),
    ) -> Result<Tensor, ExecError> {
        if self.cfg.cadence > 0 && self.stats.inferences.is_multiple_of(self.cfg.cadence) {
            self.scrub()?;
        }
        self.stats.inferences += 1;
        match self.attempt(input, 0, inject) {
            Err(ExecError::Corrupted { .. }) if self.cfg.retry => {
                // Weight corruption may be what pushed the activations out
                // of range: repair before the one retry.
                self.scrub()?;
                self.stats.retries += 1;
                self.push_event(0, IntegrityEventKind::Retried);
                match self.attempt(input, 1, inject) {
                    Ok(out) => {
                        self.stats.recovered += 1;
                        self.push_event(0, IntegrityEventKind::Recovered);
                        Ok(out)
                    }
                    Err(e2 @ ExecError::Corrupted { .. }) => {
                        self.stats.corrupted_outputs += 1;
                        self.push_event(0, IntegrityEventKind::CorruptedOutput);
                        Err(e2)
                    }
                    Err(e2) => Err(e2),
                }
            }
            Err(e @ ExecError::Corrupted { .. }) => {
                self.stats.corrupted_outputs += 1;
                self.push_event(0, IntegrityEventKind::CorruptedOutput);
                Err(e)
            }
            other => other,
        }
    }

    /// Forces a checksum sweep now, repairing every mismatched node in
    /// place. Returns the number of nodes repaired.
    ///
    /// # Errors
    ///
    /// Same as [`PreparedExecutor::repair_node`].
    pub fn scrub(&mut self) -> Result<usize, ExecError> {
        self.stats.scrubs += 1;
        let corrupted = self.inner.verify_params();
        for &idx in &corrupted {
            self.stats.checksum_mismatches += 1;
            self.push_event(idx, IntegrityEventKind::ChecksumMismatch);
            let bytes = self.inner.repair_node(idx)?;
            self.stats.repairs += 1;
            self.stats.repaired_bytes += bytes as u64;
            self.push_event(idx, IntegrityEventKind::Repaired { bytes });
        }
        Ok(corrupted.len())
    }

    fn attempt(
        &mut self,
        input: &Tensor,
        attempt: u32,
        inject: &mut dyn FnMut(u32, usize, &mut Tensor),
    ) -> Result<Tensor, ExecError> {
        let inner = &self.inner;
        let envelopes = &self.envelopes;
        let slack = self.cfg.slack;
        let mut tripped: Option<(usize, GuardTrip)> = None;
        let res = inner.run_observed(input, &mut |idx, t| {
            inject(attempt, idx, t);
            if let Some(trip) = check_node(envelopes, slack, idx, t) {
                tripped = Some((idx, trip));
                return Err(ExecError::Corrupted {
                    node: inner.node_name(idx).to_string(),
                    reason: trip.to_string(),
                });
            }
            Ok(())
        });
        if let Some((idx, trip)) = tripped {
            self.stats.guard_trips += 1;
            self.push_event(idx, IntegrityEventKind::GuardTrip { trip });
        }
        res.map(|(t, _)| t)
    }

    fn push_event(&mut self, node: usize, kind: IntegrityEventKind) {
        self.events.push(IntegrityEvent {
            inference: self.stats.inferences,
            node,
            kind,
        });
    }

    /// The deterministic defense counters accumulated so far.
    pub fn stats(&self) -> GuardStats {
        self.stats
    }

    /// The integrity event log accumulated so far, in firing order.
    pub fn events(&self) -> &[IntegrityEvent] {
        &self.events
    }

    /// The wrapped prepared executor (e.g. for injecting weight faults
    /// through [`PreparedExecutor::corrupt_param_bit`]).
    pub fn inner_mut(&mut self) -> &mut PreparedExecutor<'g> {
        &mut self.inner
    }

    /// Shared view of the wrapped prepared executor.
    pub fn inner(&self) -> &PreparedExecutor<'g> {
        &self.inner
    }

    /// Unwraps the defense layer, returning the prepared executor.
    pub fn into_inner(self) -> PreparedExecutor<'g> {
        self.inner
    }
}

const SCAN_LANES: usize = 8;
const EXP_MASK: u32 = 0x7f80_0000;

/// One pass over `data`: min, max, and whether any value is non-finite.
///
/// The guards sweep every node output of every inference, so this runs
/// on the widest vector path the host offers (AVX2 where detected, a
/// lane-parallel portable loop otherwise). Both paths return identical
/// verdicts: the non-finite flag is an exact integer exponent-mask test,
/// and when it is clear every value is finite, where vector and scalar
/// min/max agree exactly (no rounding, no NaN ambiguity).
fn scan(data: &[f32]) -> (f32, f32, bool) {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::simd::simd_available() {
            // SAFETY: AVX2 presence was just runtime-checked.
            return unsafe { scan_avx2(data) };
        }
    }
    scan_portable(data)
}

/// Portable fallback: lane-wise compare-selects instead of `f32::min`'s
/// NaN bookkeeping, and an exponent-mask accumulator instead of an
/// early `is_finite` return (NaN compares false against everything, so
/// a NaN never displaces a lane accumulator — the mask is what catches
/// it).
fn scan_portable(data: &[f32]) -> (f32, f32, bool) {
    let mut lo = [f32::INFINITY; SCAN_LANES];
    let mut hi = [f32::NEG_INFINITY; SCAN_LANES];
    let mut bad = [0u32; SCAN_LANES];
    let mut chunks = data.chunks_exact(SCAN_LANES);
    for chunk in &mut chunks {
        for i in 0..SCAN_LANES {
            let v = chunk[i];
            bad[i] |= u32::from(v.to_bits() & EXP_MASK == EXP_MASK);
            lo[i] = if v < lo[i] { v } else { lo[i] };
            hi[i] = if v > hi[i] { v } else { hi[i] };
        }
    }
    let (mut lo, mut hi) = (lo.iter().copied().fold(f32::INFINITY, f32::min), {
        hi.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    });
    let mut nonfinite = bad.iter().any(|&b| b != 0);
    for &v in chunks.remainder() {
        nonfinite |= v.to_bits() & EXP_MASK == EXP_MASK;
        lo = if v < lo { v } else { lo };
        hi = if v > hi { v } else { hi };
    }
    (lo, hi, nonfinite)
}

/// AVX2 scan: 8-lane min/max plus an integer all-ones-exponent test per
/// load. `vminps`/`vmaxps` NaN semantics (a NaN operand can displace an
/// accumulator lane) don't matter here: any NaN also sets the non-finite
/// mask, and a set mask means lo/hi are never consulted.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn scan_avx2(data: &[f32]) -> (f32, f32, bool) {
    use core::arch::x86_64::*;
    let mut lo8 = _mm256_set1_ps(f32::INFINITY);
    let mut hi8 = _mm256_set1_ps(f32::NEG_INFINITY);
    let mut bad8 = _mm256_setzero_si256();
    let exp = _mm256_set1_epi32(EXP_MASK as i32);
    let n = data.len();
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm256_loadu_ps(data.as_ptr().add(i));
        lo8 = _mm256_min_ps(lo8, v);
        hi8 = _mm256_max_ps(hi8, v);
        let m = _mm256_and_si256(_mm256_castps_si256(v), exp);
        bad8 = _mm256_or_si256(bad8, _mm256_cmpeq_epi32(m, exp));
        i += 8;
    }
    let mut lo_l = [0.0f32; 8];
    let mut hi_l = [0.0f32; 8];
    _mm256_storeu_ps(lo_l.as_mut_ptr(), lo8);
    _mm256_storeu_ps(hi_l.as_mut_ptr(), hi8);
    let mut lo = lo_l.iter().copied().fold(f32::INFINITY, f32::min);
    let mut hi = hi_l.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut nonfinite = _mm256_movemask_epi8(bad8) != 0;
    for &v in &data[i..] {
        nonfinite |= v.to_bits() & EXP_MASK == EXP_MASK;
        lo = if v < lo { v } else { lo };
        hi = if v > hi { v } else { hi };
    }
    (lo, hi, nonfinite)
}

fn min_max(data: &[f32]) -> (f32, f32) {
    let (lo, hi, _) = scan(data);
    (lo, hi)
}

fn check_node(
    envelopes: &[Option<Envelope>],
    slack: f32,
    idx: usize,
    t: &Tensor,
) -> Option<GuardTrip> {
    let (lo, hi, nonfinite) = scan(t.data());
    if nonfinite {
        return Some(GuardTrip::NonFinite);
    }
    if let Some(env) = envelopes.get(idx).copied().flatten() {
        let w = env.widened(slack);
        if lo < w.lo || hi > w.hi {
            return Some(GuardTrip::OutOfEnvelope);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Executor;
    use edgebench_graph::{ActivationKind, Graph, GraphBuilder};

    fn tiny_graph() -> Graph {
        let mut b = GraphBuilder::new("tiny");
        let x = b.input([1, 3, 8, 8]);
        let c = b.conv2d(x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let r = b.activation(c, ActivationKind::Relu).unwrap();
        let f = b.flatten(r).unwrap();
        let d = b.dense(f, 10).unwrap();
        let s = b.softmax(d).unwrap();
        b.build(s).unwrap()
    }

    #[test]
    fn checksum_is_sensitive_to_every_bit() {
        let data = vec![0.5f32, -1.25, 3.0];
        let base = checksum_f32(&data);
        for elem in 0..data.len() {
            for bit in 0..32u8 {
                let mut flipped = data.clone();
                flipped[elem] = f32::from_bits(flipped[elem].to_bits() ^ (1 << bit));
                assert_ne!(checksum_f32(&flipped), base, "elem {elem} bit {bit}");
            }
        }
    }

    #[test]
    fn checksum_distinguishes_part_boundaries() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32];
        let c = [1.0f32];
        let d = [2.0f32, 3.0];
        assert_ne!(checksum_parts(&[&a, &b]), checksum_parts(&[&c, &d]));
    }

    #[test]
    fn flip_then_verify_then_repair_round_trips() {
        let g = tiny_graph();
        let x = Tensor::random([1, 3, 8, 8], 3);
        let mut prepared = Executor::new(&g).with_seed(5).prepare().unwrap();
        let clean = prepared.run(&x).unwrap();
        assert!(prepared.verify_params().is_empty());

        // Find a parameterized node and flip one weight bit.
        let node = (0..prepared.node_count())
            .find(|&i| prepared.param_elems(i) > 0)
            .unwrap();
        assert!(prepared.corrupt_param_bit(node, 0, 30));
        assert_eq!(prepared.verify_params(), vec![node]);

        let bytes = prepared.repair_node(node).unwrap();
        assert!(bytes > 0);
        assert!(prepared.verify_params().is_empty());
        assert_eq!(prepared.run(&x).unwrap(), clean);
    }

    #[test]
    fn guarded_run_matches_unguarded_when_clean() {
        let g = tiny_graph();
        let x = Tensor::random([1, 3, 8, 8], 3);
        let clean = Executor::new(&g).with_seed(5).run(&x).unwrap();
        let prepared = Executor::new(&g).with_seed(5).prepare().unwrap();
        let mut guarded = GuardedExecutor::new(prepared, GuardConfig::default().with_cadence(1));
        guarded.calibrate(&[&x]).unwrap();
        assert!(guarded.calibrated());
        for _ in 0..3 {
            assert_eq!(guarded.run(&x).unwrap(), clean);
        }
        let s = guarded.stats();
        assert_eq!(s.inferences, 3);
        assert_eq!(s.guard_trips, 0);
        assert_eq!(s.checksum_mismatches, 0);
        assert!(s.scrubs >= 3, "cadence 1 scrubs before every run");
    }

    #[test]
    fn weight_flip_is_repaired_on_cadence_and_output_stays_clean() {
        let g = tiny_graph();
        let x = Tensor::random([1, 3, 8, 8], 3);
        let prepared = Executor::new(&g).with_seed(5).prepare().unwrap();
        let mut guarded = GuardedExecutor::new(prepared, GuardConfig::default().with_cadence(1));
        guarded.calibrate(&[&x]).unwrap();
        let clean = guarded.run(&x).unwrap();

        let node = (0..guarded.inner().node_count())
            .find(|&i| guarded.inner().param_elems(i) > 0)
            .unwrap();
        assert!(guarded.inner_mut().corrupt_param_bit(node, 1, 27));
        // Cadence-1 scrub repairs the flip before the next run executes.
        assert_eq!(guarded.run(&x).unwrap(), clean);
        let s = guarded.stats();
        assert_eq!(s.checksum_mismatches, 1);
        assert_eq!(s.repairs, 1);
        assert!(s.repaired_bytes > 0);
        assert_eq!(s.corrupted_outputs, 0);
    }

    #[test]
    fn transient_nan_injection_trips_guard_and_recovers_via_retry() {
        let g = tiny_graph();
        let x = Tensor::random([1, 3, 8, 8], 3);
        let prepared = Executor::new(&g).with_seed(5).prepare().unwrap();
        let mut guarded = GuardedExecutor::new(prepared, GuardConfig::default());
        guarded.calibrate(&[&x]).unwrap();
        let clean = guarded.run(&x).unwrap();

        // Transient: corrupt only attempt 0; the retry runs clean.
        let out = guarded
            .run_injected(&x, &mut |attempt, idx, t| {
                if attempt == 0 && idx == 2 {
                    t.data_mut()[0] = f32::NAN;
                }
            })
            .unwrap();
        assert_eq!(out, clean);
        let s = guarded.stats();
        assert_eq!(s.guard_trips, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.recovered, 1);
        assert_eq!(s.corrupted_outputs, 0);
    }

    #[test]
    fn persistent_corruption_is_reported_as_typed_outcome() {
        let g = tiny_graph();
        let x = Tensor::random([1, 3, 8, 8], 3);
        let prepared = Executor::new(&g).with_seed(5).prepare().unwrap();
        let mut guarded = GuardedExecutor::new(prepared, GuardConfig::default());
        guarded.calibrate(&[&x]).unwrap();

        // Persistent (stuck-at) fault: corrupts every attempt.
        let err = guarded
            .run_injected(&x, &mut |_, idx, t| {
                if idx == 2 {
                    t.data_mut()[0] = f32::INFINITY;
                }
            })
            .unwrap_err();
        assert!(matches!(err, ExecError::Corrupted { .. }));
        let s = guarded.stats();
        assert_eq!(s.guard_trips, 2);
        assert_eq!(s.retries, 1);
        assert_eq!(s.recovered, 0);
        assert_eq!(s.corrupted_outputs, 1);
    }

    #[test]
    fn out_of_envelope_values_trip_calibrated_guards() {
        let g = tiny_graph();
        let x = Tensor::random([1, 3, 8, 8], 3);
        let prepared = Executor::new(&g).with_seed(5).prepare().unwrap();
        let mut guarded = GuardedExecutor::new(prepared, GuardConfig::default().with_retry(false));
        guarded.calibrate(&[&x]).unwrap();

        let err = guarded
            .run_injected(&x, &mut |_, idx, t| {
                if idx == 1 {
                    // Far outside any conv output's clean range, but finite.
                    t.data_mut()[0] = 1e20;
                }
            })
            .unwrap_err();
        assert!(matches!(err, ExecError::Corrupted { .. }));
        assert_eq!(guarded.stats().guard_trips, 1);
        assert_eq!(guarded.stats().retries, 0);
    }

    #[test]
    fn events_render_stably() {
        let e = IntegrityEvent {
            inference: 4,
            node: 2,
            kind: IntegrityEventKind::Repaired { bytes: 512 },
        };
        assert_eq!(e.to_string(), "[i     4 n  2] repaired bytes=512");
        let t = IntegrityEvent {
            inference: 12,
            node: 0,
            kind: IntegrityEventKind::GuardTrip {
                trip: GuardTrip::NonFinite,
            },
        };
        assert_eq!(t.to_string(), "[i    12 n  0] guard-trip non-finite");
    }
}
