//! True integer-arithmetic quantized execution: `i8` operands, `i32`
//! accumulation, requantized `i8` output — the arithmetic an EdgeTPU or a
//! TFLite INT8 kernel actually performs (as opposed to the executor's
//! fake-quantization, which emulates the *numerics* in `f32`).
//!
//! Provided so the repository contains the real integer pipeline and can
//! demonstrate that fake quantization is a faithful model of it: the two
//! agree to within one output quantization step (see tests).

use crate::quant::QuantParams;
use crate::Tensor;

/// An `i8`-quantized matrix with its affine parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    data: Vec<i8>,
    rows: usize,
    cols: usize,
    params: QuantParams,
}

impl QuantizedMatrix {
    /// Quantizes a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not rank 2.
    pub fn from_tensor(t: &Tensor) -> Self {
        assert_eq!(t.shape().rank(), 2, "expected rank-2 tensor");
        let params = QuantParams::observe(t);
        QuantizedMatrix {
            data: t.data().iter().map(|&v| params.quantize(v)).collect(),
            rows: t.shape().dim(0),
            cols: t.shape().dim(1),
            params,
        }
    }

    /// Rows of the matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantization parameters.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// Dequantizes back to `f32`.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            [self.rows, self.cols],
            self.data
                .iter()
                .map(|&q| self.params.dequantize(q))
                .collect(),
        )
    }
}

/// Register-tile extents of the packed integer micro-kernel (rows ×
/// columns of `C` computed per inner iteration). Integer accumulation is
/// exact, so tiling cannot change results — it only changes speed.
const MR: usize = 4;
const NR: usize = 8;

/// Integer GEMM: `C = A[m×k] · B[k×n]` entirely in integer arithmetic.
///
/// Accumulates `(a_q - a_zp) * (b_q - b_zp)` in `i32` and scales the
/// result back to real values with `a_scale * b_scale` — the standard
/// quantized-inference inner loop. Operands are packed into zero-offset
/// `i32` panels first (ragged edges padded with `0 == zp - zp`, which
/// contributes nothing), and a `4×8` register tile accumulates without
/// touching `C` inside the k-loop — the same panel/micro-kernel structure
/// as the f32 [`crate::gemm`] path. Because `i32` addition is associative,
/// the result is *exactly* equal to [`quantized_matmul_reference`].
///
/// # Panics
///
/// Panics if the inner dimensions differ.
pub fn quantized_matmul(a: &QuantizedMatrix, b: &QuantizedMatrix) -> Tensor {
    assert_eq!(
        a.cols, b.rows,
        "inner dims differ: {} vs {}",
        a.cols, b.rows
    );
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let a_zp = a.params.zero_point();
    let b_zp = b.params.zero_point();
    let scale = a.params.scale() * b.params.scale();
    let mut out = Tensor::zeros([m, n]);
    if m == 0 || n == 0 {
        return out;
    }
    // Pack B once: k-major NR-column panels, zero point pre-subtracted.
    let n_panels = n.div_ceil(NR);
    let mut pb = vec![0i32; n_panels * k * NR];
    for p in 0..n_panels {
        let j0 = p * NR;
        let nr = NR.min(n - j0);
        let panel = &mut pb[p * k * NR..][..k * NR];
        for kk in 0..k {
            for j in 0..nr {
                panel[kk * NR + j] = b.data[kk * n + j0 + j] as i32 - b_zp;
            }
        }
    }
    let od = out.data_mut();
    let mut pa = vec![0i32; k * MR];
    for i0 in (0..m).step_by(MR) {
        let mr = MR.min(m - i0);
        // Pack an MR-row slice of A, k-major interleaved; short panels pad
        // with 0, which the store step below never reads.
        pa.fill(0);
        for (r, row) in a.data[i0 * k..].chunks_exact(k).take(mr).enumerate() {
            for (kk, &q) in row.iter().enumerate() {
                pa[kk * MR + r] = q as i32 - a_zp;
            }
        }
        for p in 0..n_panels {
            let j0 = p * NR;
            let nr = NR.min(n - j0);
            let panel = &pb[p * k * NR..][..k * NR];
            let mut acc = [[0i32; NR]; MR];
            for (av, bv) in pa.chunks_exact(MR).zip(panel.chunks_exact(NR)) {
                for (i, row) in acc.iter_mut().enumerate() {
                    let ai = av[i];
                    for (slot, &bj) in row.iter_mut().zip(bv) {
                        *slot += ai * bj;
                    }
                }
            }
            for (i, row) in acc.iter().enumerate().take(mr) {
                let base = (i0 + i) * n + j0;
                for (o, &v) in od[base..base + nr].iter_mut().zip(&row[..nr]) {
                    *o = v as f32 * scale;
                }
            }
        }
    }
    out
}

/// The naive triple-loop integer GEMM — ground truth for the packed
/// [`quantized_matmul`], which must match it exactly.
///
/// # Panics
///
/// Panics if the inner dimensions differ.
pub fn quantized_matmul_reference(a: &QuantizedMatrix, b: &QuantizedMatrix) -> Tensor {
    assert_eq!(
        a.cols, b.rows,
        "inner dims differ: {} vs {}",
        a.cols, b.rows
    );
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let a_zp = a.params.zero_point();
    let b_zp = b.params.zero_point();
    let scale = a.params.scale() * b.params.scale();
    let mut out = Tensor::zeros([m, n]);
    let od = out.data_mut();
    for i in 0..m {
        for j in 0..n {
            let mut acc: i32 = 0;
            for kk in 0..k {
                let av = a.data[i * k + kk] as i32 - a_zp;
                let bv = b.data[kk * n + j] as i32 - b_zp;
                acc += av * bv;
            }
            od[i * n + j] = acc as f32 * scale;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    #[test]
    fn roundtrip_through_quantized_matrix() {
        let t = Tensor::random([8, 16], 3);
        let q = QuantizedMatrix::from_tensor(&t);
        let back = q.dequantize();
        assert!(
            t.mean_abs_diff(&back) <= q.params().scale(),
            "roundtrip error too large"
        );
        assert_eq!(q.rows(), 8);
        assert_eq!(q.cols(), 16);
    }

    #[test]
    fn integer_gemm_tracks_float_gemm() {
        let a = Tensor::random([6, 32], 1);
        let b = Tensor::random([32, 10], 2);
        let fq = matmul(&a, &b);
        let iq = quantized_matmul(
            &QuantizedMatrix::from_tensor(&a),
            &QuantizedMatrix::from_tensor(&b),
        );
        // Error bound: k * (scale_a*|b| + scale_b*|a|)/2 per element; with
        // values in [-0.5, 0.5] and k = 32, a loose practical bound:
        let diff = fq.mean_abs_diff(&iq);
        assert!(diff < 0.05, "integer vs float gemm diff {diff}");
        // And it should be meaningfully quantized (not bit-identical).
        assert!(diff > 0.0);
    }

    #[test]
    fn integer_gemm_is_exact_for_exactly_representable_inputs() {
        // Values on the quantization grid survive the roundtrip, so integer
        // accumulation reproduces the float product exactly.
        let a_q = QuantizedMatrix::from_tensor(&Tensor::from_vec([1, 2], vec![1.0, -1.0]));
        let b_q = QuantizedMatrix::from_tensor(&Tensor::from_vec([2, 1], vec![1.0, 1.0]));
        let a_rt = a_q.dequantize();
        let b_rt = b_q.dequantize();
        let float = matmul(&a_rt, &b_rt);
        let int = quantized_matmul(&a_q, &b_q);
        assert!(float.mean_abs_diff(&int) < 1e-6);
    }

    #[test]
    fn fake_quantization_models_real_integer_arithmetic() {
        // The executor's fake-quant path (quantize inputs, compute in f32)
        // must agree with the true integer pipeline up to accumulation
        // rounding — this is the claim that justifies simulating INT8.
        let a = Tensor::random([4, 24], 7);
        let b = Tensor::random([24, 6], 8);
        let a_q = QuantizedMatrix::from_tensor(&a);
        let b_q = QuantizedMatrix::from_tensor(&b);
        let int = quantized_matmul(&a_q, &b_q);
        let fake = matmul(&a_q.dequantize(), &b_q.dequantize());
        assert!(
            int.mean_abs_diff(&fake) < 1e-5,
            "diff {}",
            int.mean_abs_diff(&fake)
        );
    }

    #[test]
    fn packed_integer_gemm_exactly_matches_reference() {
        // i32 accumulation is associative, so packing must change nothing —
        // not even the last bit — across ragged and aligned shapes.
        for &(m, k, n) in &[(1, 1, 1), (4, 8, 8), (5, 7, 9), (13, 33, 17), (3, 1, 25)] {
            let a = QuantizedMatrix::from_tensor(&Tensor::random([m, k], (m * k) as u64));
            let b = QuantizedMatrix::from_tensor(&Tensor::random([k, n], (k * n + 1) as u64));
            let packed = quantized_matmul(&a, &b);
            let naive = quantized_matmul_reference(&a, &b);
            assert_eq!(packed.data(), naive.data(), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn mismatched_dims_panic() {
        let a = QuantizedMatrix::from_tensor(&Tensor::zeros([2, 3]));
        let b = QuantizedMatrix::from_tensor(&Tensor::zeros([4, 2]));
        let _ = quantized_matmul(&a, &b);
    }
}
