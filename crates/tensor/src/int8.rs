//! True integer-arithmetic quantized execution: `i8` operands, `i32`
//! accumulation, requantized `i8` output — the arithmetic an EdgeTPU or a
//! TFLite INT8 kernel actually performs (as opposed to the executor's
//! fake-quantization, which emulates the *numerics* in `f32`).
//!
//! Provided so the repository contains the real integer pipeline and can
//! demonstrate that fake quantization is a faithful model of it: the two
//! agree to within one output quantization step (see tests).

use crate::quant::QuantParams;
use crate::Tensor;

/// An `i8`-quantized matrix with its affine parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    data: Vec<i8>,
    rows: usize,
    cols: usize,
    params: QuantParams,
}

impl QuantizedMatrix {
    /// Quantizes a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not rank 2.
    pub fn from_tensor(t: &Tensor) -> Self {
        assert_eq!(t.shape().rank(), 2, "expected rank-2 tensor");
        let params = QuantParams::observe(t);
        QuantizedMatrix {
            data: t.data().iter().map(|&v| params.quantize(v)).collect(),
            rows: t.shape().dim(0),
            cols: t.shape().dim(1),
            params,
        }
    }

    /// Rows of the matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantization parameters.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// Dequantizes back to `f32`.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            [self.rows, self.cols],
            self.data
                .iter()
                .map(|&q| self.params.dequantize(q))
                .collect(),
        )
    }
}

/// Integer GEMM: `C = A[m×k] · B[k×n]` entirely in integer arithmetic.
///
/// Accumulates `(a_q - a_zp) * (b_q - b_zp)` in `i32` and scales the
/// result back to real values with `a_scale * b_scale` — the standard
/// quantized-inference inner loop.
///
/// # Panics
///
/// Panics if the inner dimensions differ.
pub fn quantized_matmul(a: &QuantizedMatrix, b: &QuantizedMatrix) -> Tensor {
    assert_eq!(
        a.cols, b.rows,
        "inner dims differ: {} vs {}",
        a.cols, b.rows
    );
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let a_zp = a.params.zero_point();
    let b_zp = b.params.zero_point();
    let scale = a.params.scale() * b.params.scale();
    let mut out = Tensor::zeros([m, n]);
    let od = out.data_mut();
    for i in 0..m {
        for j in 0..n {
            let mut acc: i32 = 0;
            for kk in 0..k {
                let av = a.data[i * k + kk] as i32 - a_zp;
                let bv = b.data[kk * n + j] as i32 - b_zp;
                acc += av * bv;
            }
            od[i * n + j] = acc as f32 * scale;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    #[test]
    fn roundtrip_through_quantized_matrix() {
        let t = Tensor::random([8, 16], 3);
        let q = QuantizedMatrix::from_tensor(&t);
        let back = q.dequantize();
        assert!(
            t.mean_abs_diff(&back) <= q.params().scale(),
            "roundtrip error too large"
        );
        assert_eq!(q.rows(), 8);
        assert_eq!(q.cols(), 16);
    }

    #[test]
    fn integer_gemm_tracks_float_gemm() {
        let a = Tensor::random([6, 32], 1);
        let b = Tensor::random([32, 10], 2);
        let fq = matmul(&a, &b);
        let iq = quantized_matmul(
            &QuantizedMatrix::from_tensor(&a),
            &QuantizedMatrix::from_tensor(&b),
        );
        // Error bound: k * (scale_a*|b| + scale_b*|a|)/2 per element; with
        // values in [-0.5, 0.5] and k = 32, a loose practical bound:
        let diff = fq.mean_abs_diff(&iq);
        assert!(diff < 0.05, "integer vs float gemm diff {diff}");
        // And it should be meaningfully quantized (not bit-identical).
        assert!(diff > 0.0);
    }

    #[test]
    fn integer_gemm_is_exact_for_exactly_representable_inputs() {
        // Values on the quantization grid survive the roundtrip, so integer
        // accumulation reproduces the float product exactly.
        let a_q = QuantizedMatrix::from_tensor(&Tensor::from_vec([1, 2], vec![1.0, -1.0]));
        let b_q = QuantizedMatrix::from_tensor(&Tensor::from_vec([2, 1], vec![1.0, 1.0]));
        let a_rt = a_q.dequantize();
        let b_rt = b_q.dequantize();
        let float = matmul(&a_rt, &b_rt);
        let int = quantized_matmul(&a_q, &b_q);
        assert!(float.mean_abs_diff(&int) < 1e-6);
    }

    #[test]
    fn fake_quantization_models_real_integer_arithmetic() {
        // The executor's fake-quant path (quantize inputs, compute in f32)
        // must agree with the true integer pipeline up to accumulation
        // rounding — this is the claim that justifies simulating INT8.
        let a = Tensor::random([4, 24], 7);
        let b = Tensor::random([24, 6], 8);
        let a_q = QuantizedMatrix::from_tensor(&a);
        let b_q = QuantizedMatrix::from_tensor(&b);
        let int = quantized_matmul(&a_q, &b_q);
        let fake = matmul(&a_q.dequantize(), &b_q.dequantize());
        assert!(
            int.mean_abs_diff(&fake) < 1e-5,
            "diff {}",
            int.mean_abs_diff(&fake)
        );
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn mismatched_dims_panic() {
        let a = QuantizedMatrix::from_tensor(&Tensor::zeros([2, 3]));
        let b = QuantizedMatrix::from_tensor(&Tensor::zeros([4, 2]));
        let _ = quantized_matmul(&a, &b);
    }
}
