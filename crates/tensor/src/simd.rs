//! Runtime-dispatched register micro-kernels for the packed GEMM.
//!
//! Three implementations of the same contract, selected once per executor
//! (never per call site) behind [`resolve`]:
//!
//! * **`Avx2`** — explicit AVX2/FMA intrinsics, `#[target_feature]`-gated
//!   and reached only after `is_x86_feature_detected!` confirms the host
//!   supports it. Two 8-lane `ymm` accumulators per row, rows processed in
//!   bands of four so the working set (8 accumulators + 2 B vectors + 1
//!   broadcast) stays inside the 16 architectural `ymm` registers.
//! * **`Wide`** — a portable-SIMD-style shim ([`F32x8`]): fixed 8-lane
//!   `[f32; 8]` arithmetic the autovectorizer lowers to whatever the
//!   target ISA offers. Compiles on every architecture; the non-x86 and
//!   no-AVX2 SIMD path.
//! * **`Scalar`** — the original PR-5 scalar loop, kept verbatim as the
//!   ground-truth fallback and the `--kernel scalar` A/B baseline.
//!
//! # Bitwise equivalence
//!
//! All three kernels perform, per output element, the **same sequence of
//! fused multiply-adds in strictly ascending `k`**. Vectorization spreads
//! *independent output elements* across lanes — it never reassociates a
//! reduction — and both `_mm256_fmadd_ps` and `f32::mul_add` are IEEE-754
//! fused operations with a single rounding. The three kernels are
//! therefore bit-identical on every input, which the unit tests here and
//! the workspace `numerical_equivalence` suite assert on raw panels and
//! whole models respectively.

/// Micro-kernel tile rows (register-blocked rows of `C`).
pub const MR: usize = 8;
/// Micro-kernel tile columns (register-blocked columns of `C`).
pub const NR: usize = 16;

/// User-facing kernel request, e.g. the CLI's `--kernel` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelKind {
    /// Pick the fastest kernel the host supports (AVX2 where detected,
    /// the portable wide shim otherwise).
    #[default]
    Auto,
    /// Force the scalar reference kernel.
    Scalar,
    /// Force a SIMD kernel: AVX2 when the host has it, else the portable
    /// wide shim (still lane-parallel after autovectorization).
    Simd,
}

impl KernelKind {
    /// Parses a CLI-style kernel name.
    pub fn from_name(s: &str) -> Option<KernelKind> {
        match s {
            "auto" => Some(KernelKind::Auto),
            "scalar" => Some(KernelKind::Scalar),
            "simd" => Some(KernelKind::Simd),
            _ => None,
        }
    }
}

/// A concrete, runtime-resolved micro-kernel implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Microkernel {
    /// Scalar `f32::mul_add` loops.
    Scalar,
    /// Portable 8-lane shim ([`F32x8`]).
    Wide,
    /// AVX2/FMA intrinsics (x86-64 only, runtime-detected).
    Avx2,
    /// AVX-512F intrinsics: the whole `NR`-wide tile row is one `zmm`
    /// accumulator and the A broadcast folds into the FMA as an
    /// embedded-broadcast operand (x86-64 only, runtime-detected).
    Avx512,
}

impl Microkernel {
    /// Short display name, printed by the CLI so A/B runs are labelled.
    pub fn name(self) -> &'static str {
        match self {
            Microkernel::Scalar => "scalar",
            Microkernel::Wide => "simd-wide",
            Microkernel::Avx2 => "avx2+fma",
            Microkernel::Avx512 => "avx512f",
        }
    }
}

/// Whether the host CPU offers an explicit vector path (AVX2/FMA at
/// minimum; [`resolve`] upgrades to AVX-512F where present).
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the host CPU offers the AVX-512F path.
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Resolves a [`KernelKind`] request against the host, once per executor.
/// `Auto` and `Simd` both pick the widest detected vector path (AVX-512F,
/// then AVX2/FMA, then the portable wide shim) — the scalar kernel runs
/// only when explicitly forced (or via [`Microkernel::Scalar`] directly).
pub fn resolve(kind: KernelKind) -> Microkernel {
    match kind {
        KernelKind::Scalar => Microkernel::Scalar,
        KernelKind::Auto | KernelKind::Simd => {
            if avx512_available() {
                Microkernel::Avx512
            } else if simd_available() {
                Microkernel::Avx2
            } else {
                Microkernel::Wide
            }
        }
    }
}

/// Portable 8-lane f32 vector: the shim the [`Microkernel::Wide`] kernel
/// is written against. Plain arrays + `f32::mul_add`, so semantics are
/// exactly the scalar kernel's; the layout merely hands the
/// autovectorizer eight independent lanes per operation.
#[derive(Debug, Clone, Copy)]
pub struct F32x8([f32; 8]);

impl F32x8 {
    /// Broadcasts one value to all lanes.
    #[inline(always)]
    pub fn splat(v: f32) -> F32x8 {
        F32x8([v; 8])
    }

    /// Loads eight consecutive values.
    ///
    /// # Panics
    ///
    /// Panics if `s` has fewer than eight elements.
    #[inline(always)]
    pub fn load(s: &[f32]) -> F32x8 {
        F32x8(s[..8].try_into().expect("8 lanes"))
    }

    /// Stores the lanes into `out[..8]`.
    ///
    /// # Panics
    ///
    /// Panics if `out` has fewer than eight elements.
    #[inline(always)]
    pub fn store(self, out: &mut [f32]) {
        out[..8].copy_from_slice(&self.0);
    }

    /// Lane-wise fused multiply-add: `a * b + self`, one rounding per
    /// lane — the vector twin of `f32::mul_add`.
    #[inline(always)]
    pub fn fma(self, a: F32x8, b: F32x8) -> F32x8 {
        let mut out = [0.0f32; 8];
        for ((o, &x), (&y, &acc)) in out.iter_mut().zip(&a.0).zip(b.0.iter().zip(&self.0)) {
            *o = x.mul_add(y, acc);
        }
        F32x8(out)
    }
}

/// Runs the resolved micro-kernel over one packed `MR×kc` A micro-panel
/// and one packed `kc×NR` B panel, continuing the accumulation already in
/// `acc` (zeros for the first `KC` block, the reloaded `C` tile after).
///
/// The reduction order per element is strictly ascending `k` in every
/// implementation.
#[inline]
pub(crate) fn run(kernel: Microkernel, apan: &[f32], bpan: &[f32], kc: usize, acc: &mut Acc) {
    debug_assert!(apan.len() >= kc * MR && bpan.len() >= kc * NR);
    match kernel {
        Microkernel::Scalar => microkernel_scalar(apan, bpan, kc, acc),
        Microkernel::Wide => microkernel_wide(apan, bpan, kc, acc),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `resolve` only yields `Avx2`/`Avx512` after runtime
        // detection of the matching features; callers never construct them
        // on unsupported hosts (tests guard construction with the
        // `*_available` checks).
        Microkernel::Avx2 => unsafe { microkernel_avx2(apan, bpan, kc, acc) },
        #[cfg(target_arch = "x86_64")]
        Microkernel::Avx512 => unsafe { microkernel_avx512(apan, bpan, kc, acc) },
        #[cfg(not(target_arch = "x86_64"))]
        Microkernel::Avx2 | Microkernel::Avx512 => microkernel_wide(apan, bpan, kc, acc),
    }
}

/// The `MR×NR` accumulator tile the micro-kernels update in place.
pub(crate) type Acc = [[f32; NR]; MR];

/// The PR-5 scalar kernel, verbatim: ground truth for the SIMD paths.
fn microkernel_scalar(apan: &[f32], bpan: &[f32], kc: usize, acc: &mut Acc) {
    for (av, bv) in apan.chunks_exact(MR).zip(bpan.chunks_exact(NR)).take(kc) {
        for (i, row) in acc.iter_mut().enumerate() {
            let ai = av[i];
            for (slot, &bj) in row.iter_mut().zip(bv) {
                *slot = ai.mul_add(bj, *slot);
            }
        }
    }
}

/// The portable wide-shim kernel: identical arithmetic to the scalar
/// kernel, expressed as 8-lane [`F32x8`] operations over independent
/// output columns.
fn microkernel_wide(apan: &[f32], bpan: &[f32], kc: usize, acc: &mut Acc) {
    let mut lanes = [[F32x8::splat(0.0); 2]; MR];
    for (l, row) in lanes.iter_mut().zip(acc.iter()) {
        l[0] = F32x8::load(&row[..8]);
        l[1] = F32x8::load(&row[8..]);
    }
    for (av, bv) in apan.chunks_exact(MR).zip(bpan.chunks_exact(NR)).take(kc) {
        let b0 = F32x8::load(&bv[..8]);
        let b1 = F32x8::load(&bv[8..]);
        for (i, l) in lanes.iter_mut().enumerate() {
            let a = F32x8::splat(av[i]);
            l[0] = l[0].fma(a, b0);
            l[1] = l[1].fma(a, b1);
        }
    }
    for (l, row) in lanes.iter().zip(acc.iter_mut()) {
        l[0].store(&mut row[..8]);
        l[1].store(&mut row[8..]);
    }
}

/// The explicit AVX2/FMA kernel. Rows run in two bands of four so the
/// eight accumulators, two B vectors and one broadcast stay in registers.
///
/// # Safety
///
/// The host must support AVX2 and FMA (checked by [`resolve`] /
/// [`simd_available`] before this variant is ever constructed).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn microkernel_avx2(apan: &[f32], bpan: &[f32], kc: usize, acc: &mut Acc) {
    use core::arch::x86_64::*;
    debug_assert!(apan.len() >= kc * MR && bpan.len() >= kc * NR);
    let ap = apan.as_ptr();
    let bp = bpan.as_ptr();
    for band in 0..2 {
        let r0 = band * 4;
        let mut c: [[__m256; 2]; 4] = [[_mm256_setzero_ps(); 2]; 4];
        for (i, row) in c.iter_mut().enumerate() {
            row[0] = _mm256_loadu_ps(acc[r0 + i].as_ptr());
            row[1] = _mm256_loadu_ps(acc[r0 + i].as_ptr().add(8));
        }
        // Four k-steps per iteration: eight independent accumulator chains
        // per band is marginal for the ~4-cycle FMA latency at two FMAs per
        // cycle, and the loop-carried pointer/branch overhead competes with
        // the loads for front-end slots — a deeper unroll amortizes both.
        // The accumulation *order* per element is unchanged: step `4i+j`
        // still retires into the chain before step `4i+j+1`.
        let quads = kc / 4;
        for kq in 0..quads {
            let bq = bp.add(kq * 4 * NR);
            let aq = ap.add(kq * 4 * MR + r0);
            for step in 0..4 {
                let b0 = _mm256_loadu_ps(bq.add(step * NR));
                let b1 = _mm256_loadu_ps(bq.add(step * NR + 8));
                let arow = aq.add(step * MR);
                for (i, row) in c.iter_mut().enumerate() {
                    let a = _mm256_broadcast_ss(&*arow.add(i));
                    row[0] = _mm256_fmadd_ps(a, b0, row[0]);
                    row[1] = _mm256_fmadd_ps(a, b1, row[1]);
                }
            }
        }
        for kk in quads * 4..kc {
            let b0 = _mm256_loadu_ps(bp.add(kk * NR));
            let b1 = _mm256_loadu_ps(bp.add(kk * NR + 8));
            let arow = ap.add(kk * MR + r0);
            for (i, row) in c.iter_mut().enumerate() {
                let a = _mm256_broadcast_ss(&*arow.add(i));
                row[0] = _mm256_fmadd_ps(a, b0, row[0]);
                row[1] = _mm256_fmadd_ps(a, b1, row[1]);
            }
        }
        for (i, row) in c.iter().enumerate() {
            _mm256_storeu_ps(acc[r0 + i].as_mut_ptr(), row[0]);
            _mm256_storeu_ps(acc[r0 + i].as_mut_ptr().add(8), row[1]);
        }
    }
}

/// The AVX-512F kernel: each of the `MR` tile rows is exactly one 16-lane
/// `zmm` accumulator, so the full 8×16 tile lives in eight registers, B
/// costs one load per `k` step, and the A broadcasts fold into the FMAs as
/// embedded-broadcast operands — the lowest front-end pressure of the
/// kernel family.
///
/// # Safety
///
/// The host must support AVX-512F (checked by [`resolve`] /
/// [`avx512_available`] before this variant is ever constructed).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn microkernel_avx512(apan: &[f32], bpan: &[f32], kc: usize, acc: &mut Acc) {
    use core::arch::x86_64::*;
    debug_assert!(apan.len() >= kc * MR && bpan.len() >= kc * NR);
    let ap = apan.as_ptr();
    let bp = bpan.as_ptr();
    let mut c: [__m512; MR] = [_mm512_setzero_ps(); MR];
    for (i, row) in c.iter_mut().enumerate() {
        *row = _mm512_loadu_ps(acc[i].as_ptr());
    }
    // Two k-steps per iteration: eight accumulator chains cover the FMA
    // latency-throughput product exactly, and the unroll halves the
    // loop-carried overhead. Order per element is still ascending k.
    let pairs = kc / 2;
    for kp in 0..pairs {
        let kk = kp * 2;
        let b0 = _mm512_loadu_ps(bp.add(kk * NR));
        let b1 = _mm512_loadu_ps(bp.add((kk + 1) * NR));
        let arow = ap.add(kk * MR);
        for (i, row) in c.iter_mut().enumerate() {
            let a0 = _mm512_set1_ps(*arow.add(i));
            *row = _mm512_fmadd_ps(a0, b0, *row);
            let a1 = _mm512_set1_ps(*arow.add(MR + i));
            *row = _mm512_fmadd_ps(a1, b1, *row);
        }
    }
    if kc % 2 == 1 {
        let kk = kc - 1;
        let b0 = _mm512_loadu_ps(bp.add(kk * NR));
        let arow = ap.add(kk * MR);
        for (i, row) in c.iter_mut().enumerate() {
            let a0 = _mm512_set1_ps(*arow.add(i));
            *row = _mm512_fmadd_ps(a0, b0, *row);
        }
    }
    for (i, row) in c.iter().enumerate() {
        _mm512_storeu_ps(acc[i].as_mut_ptr(), *row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    /// Random packed panels (including non-trivial accumulator seeds) for
    /// a given depth.
    fn panels(kc: usize, seed: u64) -> (Vec<f32>, Vec<f32>, Acc) {
        let a = Tensor::random([kc * MR], seed);
        let b = Tensor::random([kc * NR], seed ^ 0x5a5a);
        let init = Tensor::random([MR * NR], seed ^ 0xfeed);
        let mut acc = [[0.0f32; NR]; MR];
        for (i, row) in acc.iter_mut().enumerate() {
            row.copy_from_slice(&init.data()[i * NR..(i + 1) * NR]);
        }
        (a.data().to_vec(), b.data().to_vec(), acc)
    }

    #[test]
    fn wide_kernel_is_bitwise_identical_to_scalar() {
        for kc in [1usize, 2, 7, 64, 255] {
            let (a, b, acc0) = panels(kc, kc as u64);
            let (mut s, mut w) = (acc0, acc0);
            microkernel_scalar(&a, &b, kc, &mut s);
            microkernel_wide(&a, &b, kc, &mut w);
            assert_eq!(s, w, "kc={kc}");
        }
    }

    #[test]
    fn vector_kernels_are_bitwise_identical_to_scalar_when_available() {
        let mut kernels = Vec::new();
        if simd_available() {
            kernels.push(Microkernel::Avx2);
        }
        if avx512_available() {
            kernels.push(Microkernel::Avx512);
        }
        for kernel in kernels {
            for kc in [1usize, 3, 17, 128, 300] {
                let (a, b, acc0) = panels(kc, 1000 + kc as u64);
                let (mut s, mut v) = (acc0, acc0);
                microkernel_scalar(&a, &b, kc, &mut s);
                run(kernel, &a, &b, kc, &mut v);
                assert_eq!(s, v, "{kernel:?} kc={kc}");
            }
        }
    }

    #[test]
    fn resolve_honours_the_request() {
        assert_eq!(resolve(KernelKind::Scalar), Microkernel::Scalar);
        let auto = resolve(KernelKind::Auto);
        assert_ne!(auto, Microkernel::Scalar, "Auto must pick a SIMD path");
        assert_eq!(auto, resolve(KernelKind::Simd));
        if avx512_available() {
            assert_eq!(auto, Microkernel::Avx512);
        } else if simd_available() {
            assert_eq!(auto, Microkernel::Avx2);
        } else {
            assert_eq!(auto, Microkernel::Wide);
        }
    }

    #[test]
    fn kernel_kind_parses_cli_names() {
        assert_eq!(KernelKind::from_name("auto"), Some(KernelKind::Auto));
        assert_eq!(KernelKind::from_name("scalar"), Some(KernelKind::Scalar));
        assert_eq!(KernelKind::from_name("simd"), Some(KernelKind::Simd));
        assert_eq!(KernelKind::from_name("gpu"), None);
    }

    #[test]
    fn kernel_continuation_matches_single_pass() {
        // Splitting k into two blocks with an exact store/reload of the
        // accumulator tile must reproduce the single-pass bits — the
        // property KC blocking relies on.
        let kc = 96;
        let (a, b, acc0) = panels(kc, 77);
        let mut once = acc0;
        microkernel_scalar(&a, &b, kc, &mut once);
        let mut kernels = vec![Microkernel::Scalar, Microkernel::Wide];
        if simd_available() {
            kernels.push(Microkernel::Avx2);
        }
        if avx512_available() {
            kernels.push(Microkernel::Avx512);
        }
        for kernel in kernels {
            let mut split = acc0;
            run(kernel, &a, &b, 40, &mut split);
            // Round-trip through memory, as the blocked driver does.
            let spill = split;
            let mut resumed = spill;
            run(kernel, &a[40 * MR..], &b[40 * NR..], kc - 40, &mut resumed);
            assert_eq!(once, resumed, "{kernel:?}");
        }
    }
}
