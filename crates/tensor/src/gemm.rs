//! im2col + blocked GEMM: the production-style convolution lowering used by
//! every framework the paper studies (Caffe popularized it; TF/PyTorch CPU
//! paths still rely on it). Provided alongside the direct reference kernel
//! so the two can cross-validate, and so benches can measure the lowering's
//! cost/benefit.

use crate::Tensor;
use edgebench_graph::TensorShape;

/// Blocked matrix multiply: `C[m×n] = A[m×k] · B[k×n]`.
///
/// Straightforward register-blocked loops — no SIMD intrinsics, but cache
/// tiled so large GEMMs do not thrash.
///
/// # Panics
///
/// Panics if the shapes are incompatible.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (kb, n) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(k, kb, "matmul inner dims differ: {k} vs {kb}");
    let mut c = Tensor::zeros([m, n]);
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();
    const BK: usize = 64;
    const BN: usize = 64;
    for k0 in (0..k).step_by(BK) {
        let k1 = (k0 + BK).min(k);
        for n0 in (0..n).step_by(BN) {
            let n1 = (n0 + BN).min(n);
            for i in 0..m {
                let arow = i * k;
                let crow = i * n;
                for kk in k0..k1 {
                    let av = ad[arow + kk];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = kk * n;
                    for j in n0..n1 {
                        cd[crow + j] += av * bd[brow + j];
                    }
                }
            }
        }
    }
    c
}

/// Unfolds an `NCHW` input into the im2col matrix
/// `[in_c·kh·kw, oh·ow]` for batch element `b`.
fn im2col(
    x: &Tensor,
    b: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    oh: usize,
    ow: usize,
) -> Tensor {
    let (in_c, ih, iw) = (x.shape().channels(), x.shape().height(), x.shape().width());
    let (kh, kw) = kernel;
    let rows = in_c * kh * kw;
    let cols = oh * ow;
    let mut m = Tensor::zeros([rows, cols]);
    let xd = x.data();
    let md = m.data_mut();
    for c in 0..in_c {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (c * kh + ky) * kw + kx;
                for oy in 0..oh {
                    let iy = oy * stride.0 + ky;
                    if iy < padding.0 || iy - padding.0 >= ih {
                        continue;
                    }
                    let iy = iy - padding.0;
                    let xrow = ((b * in_c + c) * ih + iy) * iw;
                    let mrow = row * cols + oy * ow;
                    for ox in 0..ow {
                        let ix = ox * stride.1 + kx;
                        if ix < padding.1 || ix - padding.1 >= iw {
                            continue;
                        }
                        md[mrow + ox] = xd[xrow + (ix - padding.1)];
                    }
                }
            }
        }
    }
    m
}

/// 2-D convolution lowered to im2col + GEMM (groups = 1).
///
/// Produces results bit-comparable (within FP reassociation error) to
/// [`crate::kernels::conv2d`].
///
/// # Panics
///
/// Panics if the shapes are inconsistent.
pub fn conv2d_gemm(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: (usize, usize),
    padding: (usize, usize),
) -> Tensor {
    let (n, _in_c, ih, iw) = {
        let d = x.shape().dims();
        (d[0], d[1], d[2], d[3])
    };
    let wd = weight.shape().dims();
    let (out_c, icg, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    let oh = TensorShape::conv_out_extent(ih, kh, stride.0, padding.0).expect("kernel fits");
    let ow = TensorShape::conv_out_extent(iw, kw, stride.1, padding.1).expect("kernel fits");

    // Reshape weights to [out_c, icg*kh*kw] without copying.
    let mut wmat = weight.clone();
    wmat.reshape([out_c, icg * kh * kw]);

    let mut out = Tensor::zeros([n, out_c, oh, ow]);
    for b in 0..n {
        let cols = im2col(x, b, (kh, kw), stride, padding, oh, ow);
        let y = matmul(&wmat, &cols); // [out_c, oh*ow]
        let base = b * out_c * oh * ow;
        out.data_mut()[base..base + out_c * oh * ow].copy_from_slice(y.data());
        if let Some(bv) = bias {
            let od = out.data_mut();
            for (oc, &bias_v) in bv.iter().enumerate().take(out_c) {
                let row = base + oc * oh * ow;
                for v in &mut od[row..row + oh * ow] {
                    *v += bias_v;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn matmul_hand_computed() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::random([5, 5], 1);
        let mut i = Tensor::zeros([5, 5]);
        for k in 0..5 {
            let idx = k * 5 + k;
            i.data_mut()[idx] = 1.0;
        }
        let c = matmul(&a, &i);
        assert!(a.mean_abs_diff(&c) < 1e-7);
    }

    #[test]
    fn matmul_blocked_matches_naive_on_large() {
        // Exercise the blocking boundaries (k, n > 64).
        let a = Tensor::random([3, 150], 2);
        let b = Tensor::random([150, 130], 3);
        let c = matmul(&a, &b);
        // Naive reference.
        for i in 0..3 {
            for j in 0..130 {
                let mut acc = 0.0f32;
                for k in 0..150 {
                    acc += a.data()[i * 150 + k] * b.data()[k * 130 + j];
                }
                let got = c.data()[i * 130 + j];
                assert!((got - acc).abs() < 1e-3, "({i},{j}): {got} vs {acc}");
            }
        }
    }

    #[test]
    fn gemm_conv_matches_direct_conv() {
        for &(cin, cout, hw, k, s, p) in &[
            (3usize, 8usize, 11usize, 3usize, 1usize, 1usize),
            (4, 6, 9, 3, 2, 1),
            (2, 5, 8, 5, 1, 2),
            (3, 7, 10, 1, 1, 0),
        ] {
            let x = Tensor::random([2, cin, hw, hw], 10);
            let w = Tensor::random([cout, cin, k, k], 11);
            let bias: Vec<f32> = (0..cout).map(|i| i as f32 * 0.1).collect();
            let direct = kernels::conv2d(&x, &w, Some(&bias), (s, s), (p, p), 1);
            let gemm = conv2d_gemm(&x, &w, Some(&bias), (s, s), (p, p));
            assert_eq!(direct.shape(), gemm.shape());
            assert!(
                direct.mean_abs_diff(&gemm) < 1e-4,
                "cin={cin} cout={cout} k={k}: diff {}",
                direct.mean_abs_diff(&gemm)
            );
        }
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_rejects_mismatched_dims() {
        let _ = matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }
}
