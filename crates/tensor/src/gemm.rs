//! Panel-packed, cache-tiled GEMM and the im2col convolution lowering —
//! the production-style CPU hot path every framework the paper studies
//! builds on (Caffe popularized im2col + GEMM; TF/PyTorch CPU backends
//! still ship packed-panel kernels of exactly this shape).
//!
//! # Packing scheme
//!
//! `C[m×n] = A[m×k] · B[k×n]` is computed from two packed copies of the
//! operands:
//!
//! * **B** is packed once into column panels of `NR` — panel `j` holds
//!   `B[0..k, j·NR..(j+1)·NR]` k-major, so the micro-kernel streams it with
//!   unit stride. Ragged right edges are zero-padded.
//! * **A** is packed per row-panel of `MC` rows into micro-panels of `MR`
//!   interleaved rows, again k-major. Ragged bottom edges are zero-padded.
//!
//! The register micro-kernel accumulates an `MR×NR` tile of `C` in local
//! accumulators, walking `k` exactly once, and only then stores the valid
//! region — no partial-sum traffic through memory.
//!
//! # Determinism
//!
//! For every output element the reduction order is **strictly ascending
//! `k`**, regardless of tiling or thread count: packing permutes memory
//! layout, never the accumulation sequence, and zero-padded lanes add exact
//! `+0.0` terms that cannot change a finite accumulator. Parallelism splits
//! `C` into disjoint `MC`-row panels, each computed independently, so
//! results are byte-identical for 1..N threads (asserted by tests and by
//! `scripts/verify.sh`).

use crate::pool;
use crate::Tensor;
use edgebench_graph::{ActivationKind, TensorShape};

/// Micro-kernel tile rows (register-blocked rows of `C`).
const MR: usize = 8;
/// Micro-kernel tile columns (register-blocked columns of `C`).
const NR: usize = 16;
/// Rows per parallel row-panel: the unit of intra-op work distribution.
const MC: usize = 64;

/// Reusable packing / im2col buffers for the GEMM path.
///
/// Owned by the executor's arena (one per [`crate::PreparedExecutor`]) so
/// steady-state inference re-uses the same allocations; standalone calls
/// create a transient one.
#[derive(Debug, Default)]
pub struct GemmScratch {
    /// Packed B: `⌈n/NR⌉` panels of `k·NR` floats.
    pack_b: Vec<f32>,
    /// Per-worker packed-A buffers (one per intra-op worker).
    pack_a: Vec<Vec<f32>>,
    /// im2col matrix for the convolution lowering.
    im2col: Vec<f32>,
}

impl GemmScratch {
    /// Grows every buffer to what a `[_×k]·[k×n]` GEMM over an im2col
    /// matrix of `im2col_len` floats will need, so later runs allocate
    /// nothing. Called from `Executor::prepare`.
    pub(crate) fn reserve(&mut self, k: usize, n: usize, im2col_len: usize, workers: usize) {
        let need_b = n.div_ceil(NR) * k * NR;
        if self.pack_b.len() < need_b {
            self.pack_b.resize(need_b, 0.0);
        }
        if self.pack_a.len() < workers.max(1) {
            self.pack_a.resize(workers.max(1), Vec::new());
        }
        let need_a = MC.div_ceil(MR) * k * MR;
        for pa in &mut self.pack_a {
            if pa.len() < need_a {
                pa.resize(need_a, 0.0);
            }
        }
        if self.im2col.len() < im2col_len {
            self.im2col.resize(im2col_len, 0.0);
        }
    }
}

/// Packs `B[k×n]` into `⌈n/NR⌉` k-major column panels, zero-padding the
/// ragged edge. Every packed element is written (buffers are recycled).
fn pack_b(b: &[f32], k: usize, n: usize, out: &mut Vec<f32>) {
    let panels = n.div_ceil(NR);
    if out.len() < panels * k * NR {
        out.resize(panels * k * NR, 0.0);
    }
    for jp in 0..panels {
        let j0 = jp * NR;
        let width = (n - j0).min(NR);
        let panel = &mut out[jp * k * NR..(jp + 1) * k * NR];
        for kk in 0..k {
            let src = &b[kk * n + j0..kk * n + j0 + width];
            let dst = &mut panel[kk * NR..kk * NR + NR];
            dst[..width].copy_from_slice(src);
            dst[width..].fill(0.0);
        }
    }
}

/// Packs a row-major `[n×k]` matrix (a dense layer's weight, stored
/// output-major) into the same k-major `NR`-column panels [`pack_b`]
/// produces for its `[k×n]` transpose — so `x · Wᵀ` runs on the packed
/// kernel without materializing the transpose.
fn pack_b_transposed(w: &[f32], k: usize, n: usize, out: &mut Vec<f32>) {
    let panels = n.div_ceil(NR);
    if out.len() < panels * k * NR {
        out.resize(panels * k * NR, 0.0);
    }
    for jp in 0..panels {
        let j0 = jp * NR;
        let width = (n - j0).min(NR);
        let panel = &mut out[jp * k * NR..(jp + 1) * k * NR];
        panel.fill(0.0);
        for (j, row) in w[j0 * k..].chunks_exact(k).take(width).enumerate() {
            for (kk, &v) in row.iter().enumerate() {
                panel[kk * NR + j] = v;
            }
        }
    }
}

/// Packs `rows` rows of `A[m×k]` starting at `row0` into k-major
/// micro-panels of `MR` interleaved rows, zero-padding the ragged edge.
fn pack_a_panel(a: &[f32], row0: usize, rows: usize, k: usize, out: &mut Vec<f32>) {
    let blocks = rows.div_ceil(MR);
    if out.len() < blocks * k * MR {
        out.resize(blocks * k * MR, 0.0);
    }
    for mb in 0..blocks {
        let block = &mut out[mb * k * MR..(mb + 1) * k * MR];
        for kk in 0..k {
            for ir in 0..MR {
                let r = mb * MR + ir;
                block[kk * MR + ir] = if r < rows {
                    a[(row0 + r) * k + kk]
                } else {
                    0.0
                };
            }
        }
    }
}

/// The register micro-kernel over one packed row-panel: multiplies every
/// `MR` micro-block of `pa` against every `NR` panel of `pb`, accumulating
/// each `MR×NR` tile of `C` in registers with strictly ascending `k`.
fn gemm_panel(pa: &[f32], pb: &[f32], rows: usize, k: usize, n: usize, c: &mut [f32]) {
    let col_panels = n.div_ceil(NR);
    for mb in 0..rows.div_ceil(MR) {
        let apan = &pa[mb * k * MR..(mb + 1) * k * MR];
        let mr = (rows - mb * MR).min(MR);
        for jp in 0..col_panels {
            let bpan = &pb[jp * k * NR..(jp + 1) * k * NR];
            let j0 = jp * NR;
            let nr = (n - j0).min(NR);
            let mut acc = [[0.0f32; NR]; MR];
            for (av, bv) in apan.chunks_exact(MR).zip(bpan.chunks_exact(NR)) {
                for (i, row) in acc.iter_mut().enumerate() {
                    let ai = av[i];
                    for (slot, &bj) in row.iter_mut().zip(bv) {
                        *slot = ai.mul_add(bj, *slot);
                    }
                }
            }
            for (i, row) in acc.iter().enumerate().take(mr) {
                let crow = (mb * MR + i) * n + j0;
                c[crow..crow + nr].copy_from_slice(&row[..nr]);
            }
        }
    }
}

/// The packed GEMM over explicit pack buffers (disjoint from whatever owns
/// the operands, so callers can keep `b` inside the same scratch arena).
fn matmul_packed(
    a: &[f32],
    b: &[f32],
    (m, k, n): (usize, usize, usize),
    c: &mut [f32],
    threads: usize,
    pb_buf: &mut Vec<f32>,
    pa_bufs: &mut Vec<Vec<f32>>,
) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    pack_b(b, k, n, pb_buf);
    gemm_prepacked_b(a, pb_buf, (m, k, n), c, threads, pa_bufs);
}

/// The row-panel loop over an already-packed B: packs A per `MC`-row panel
/// and runs the micro-kernel, fanning disjoint panels over the worker pool.
fn gemm_prepacked_b(
    a: &[f32],
    pb_buf: &[f32],
    (m, k, n): (usize, usize, usize),
    c: &mut [f32],
    threads: usize,
    pa_bufs: &mut Vec<Vec<f32>>,
) {
    let row_panels = m.div_ceil(MC);
    let workers = pool::effective_threads(threads).min(row_panels).max(1);
    if pa_bufs.len() < workers {
        pa_bufs.resize(workers, Vec::new());
    }
    let tasks: Vec<(usize, &mut [f32])> = c.chunks_mut(MC * n).enumerate().collect();
    pool::run_tasks(tasks, &mut pa_bufs[..workers], |pa, (pi, cpanel)| {
        let row0 = pi * MC;
        let rows = (m - row0).min(MC);
        pack_a_panel(a, row0, rows, k, pa);
        gemm_panel(pa, pb_buf, rows, k, n, cpanel);
    });
}

/// Packed GEMM into a caller-provided buffer: `c[m×n] = a[m×k] · b[k×n]`.
///
/// Every element of `c` is overwritten. `threads` is the intra-op worker
/// count (`0` = machine parallelism); work splits over independent
/// `MC`-row panels of `c`, so output is byte-identical at any count.
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`/`k`/`n`.
pub fn matmul_into(
    a: &[f32],
    b: &[f32],
    dims: (usize, usize, usize),
    c: &mut [f32],
    threads: usize,
    scratch: &mut GemmScratch,
) {
    matmul_packed(
        a,
        b,
        dims,
        c,
        threads,
        &mut scratch.pack_b,
        &mut scratch.pack_a,
    );
}

/// Sparsity-aware GEMM into a caller-provided buffer: identical contract to
/// [`matmul_into`] but skips zero elements of `a` (the weight operand).
///
/// Selected by the executor when the `WeightStore` is pruned; skipping a
/// `0.0 · x` term removes an exact `±0.0` addend, so for finite data the
/// result is byte-identical to the dense path (see tests) — only the work
/// drops with sparsity.
pub fn matmul_sparse_into(
    a: &[f32],
    b: &[f32],
    (m, k, n): (usize, usize, usize),
    c: &mut [f32],
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    let row_panels = m.div_ceil(MC).max(1);
    let workers = pool::effective_threads(threads).min(row_panels).max(1);
    // Workers carry no packing state on the sparse path; `Vec<()>` never
    // touches the heap.
    let mut slots = vec![(); workers];
    let tasks: Vec<(usize, &mut [f32])> = c.chunks_mut(MC * n).enumerate().collect();
    pool::run_tasks(tasks, &mut slots, |(), (pi, cpanel)| {
        let row0 = pi * MC;
        let rows = (m - row0).min(MC);
        for i in 0..rows {
            let crow = &mut cpanel[i * n..(i + 1) * n];
            crow.fill(0.0);
            let arow = (row0 + i) * k;
            // Ascending k over the non-zeros: the same per-element
            // reduction order as the dense kernel, minus exact-zero terms.
            for kk in 0..k {
                let av = a[arow + kk];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..kk * n + n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv = av.mul_add(bv, *cv);
                }
            }
        }
    });
}

/// Packed matrix multiply: `C[m×n] = A[m×k] · B[k×n]`, single-threaded.
///
/// # Panics
///
/// Panics if the shapes are incompatible.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_threaded(a, b, 1)
}

/// [`matmul`] with an explicit intra-op worker count (`0` = machine
/// parallelism). Byte-identical to the single-threaded result.
///
/// # Panics
///
/// Panics if the shapes are incompatible.
pub fn matmul_threaded(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (kb, n) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(k, kb, "matmul inner dims differ: {k} vs {kb}");
    let mut c = Tensor::zeros([m, n]);
    let mut scratch = GemmScratch::default();
    matmul_into(
        a.data(),
        b.data(),
        (m, k, n),
        c.data_mut(),
        threads,
        &mut scratch,
    );
    c
}

/// Unpacked triple-loop reference GEMM (ascending `k`), kept as the ground
/// truth the packed kernel is tested against and as the bench baseline for
/// the packing speedup.
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (kb, n) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(k, kb, "matmul inner dims differ: {k} vs {kb}");
    let mut c = Tensor::zeros([m, n]);
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc = ad[i * k + kk].mul_add(bd[kk * n + j], acc);
            }
            cd[i * n + j] = acc;
        }
    }
    c
}

/// Post-GEMM epilogue fused into the convolution path: optional bias,
/// optional folded batch-norm, then activation — one pass over the output
/// instead of three kernel invocations. Element-wise throughout, applied in
/// the same order as the standalone kernels, so results are bit-identical
/// to the unfused sequence.
#[derive(Debug, Clone, Copy)]
pub struct Epilogue<'a> {
    /// Per-output-channel bias added first (as `conv2d`'s bias term).
    pub bias: Option<&'a [f32]>,
    /// Folded batch-norm `(gamma, beta)` applied second.
    pub bn: Option<(&'a [f32], &'a [f32])>,
    /// Activation applied last. `Linear` is free.
    pub act: ActivationKind,
}

impl Default for Epilogue<'_> {
    fn default() -> Self {
        Epilogue {
            bias: None,
            bn: None,
            act: ActivationKind::Linear,
        }
    }
}

impl Epilogue<'_> {
    /// Applies the epilogue to one `[out_c, hw]` output slab in place.
    pub(crate) fn apply(&self, slab: &mut [f32], out_c: usize, hw: usize) {
        if self.bias.is_none() && self.bn.is_none() && self.act == ActivationKind::Linear {
            return;
        }
        for oc in 0..out_c {
            let row = &mut slab[oc * hw..(oc + 1) * hw];
            if let Some(bv) = self.bias {
                let b0 = bv[oc];
                for v in row.iter_mut() {
                    *v += b0;
                }
            }
            if let Some((gamma, beta)) = self.bn {
                let (g, s) = (gamma[oc], beta[oc]);
                for v in row.iter_mut() {
                    *v = g * *v + s;
                }
            }
            if self.act != ActivationKind::Linear {
                for v in row.iter_mut() {
                    *v = crate::kernels::apply_activation(*v, self.act);
                }
            }
        }
    }
}

/// Unfolds an `NCHW` input into the im2col matrix `[in_c·kh·kw, oh·ow]`
/// for batch element `b`, writing **every** element of `out` (padded
/// positions get an explicit `0.0`, so recycled buffers are safe).
#[allow(clippy::too_many_arguments)]
fn im2col_into(
    x: &Tensor,
    b: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    oh: usize,
    ow: usize,
    out: &mut [f32],
) {
    let (in_c, ih, iw) = (x.shape().channels(), x.shape().height(), x.shape().width());
    let (kh, kw) = kernel;
    let cols = oh * ow;
    let xd = x.data();
    for c in 0..in_c {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (c * kh + ky) * kw + kx;
                for oy in 0..oh {
                    let mrow = row * cols + oy * ow;
                    let iy = oy * stride.0 + ky;
                    if iy < padding.0 || iy - padding.0 >= ih {
                        out[mrow..mrow + ow].fill(0.0);
                        continue;
                    }
                    let xrow = ((b * in_c + c) * ih + (iy - padding.0)) * iw;
                    for ox in 0..ow {
                        let ix = ox * stride.1 + kx;
                        out[mrow + ox] = if ix < padding.1 || ix - padding.1 >= iw {
                            0.0
                        } else {
                            xd[xrow + (ix - padding.1)]
                        };
                    }
                }
            }
        }
    }
}

/// im2col + packed GEMM convolution into a caller-provided output tensor,
/// with the bias/batch-norm/activation epilogue fused into a single pass.
///
/// `out` must already have the `[n, out_c, oh, ow]` shape; every element is
/// overwritten. When `sparse` is set the zero-skipping GEMM is used
/// (byte-identical results, less work on pruned weights).
///
/// # Panics
///
/// Panics if `out` does not have `n · out_c · oh · ow` elements or the
/// kernel does not fit the padded input.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_gemm_into(
    x: &Tensor,
    weight: &Tensor,
    stride: (usize, usize),
    padding: (usize, usize),
    epilogue: &Epilogue<'_>,
    sparse: bool,
    threads: usize,
    out: &mut Tensor,
    scratch: &mut GemmScratch,
) {
    let (n, ih, iw) = {
        let d = x.shape().dims();
        (d[0], d[2], d[3])
    };
    let wd = weight.shape().dims();
    let (out_c, icg, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    let oh = TensorShape::conv_out_extent(ih, kh, stride.0, padding.0).expect("kernel fits");
    let ow = TensorShape::conv_out_extent(iw, kw, stride.1, padding.1).expect("kernel fits");
    let (kdim, cols) = (icg * kh * kw, oh * ow);
    assert_eq!(out.len(), n * out_c * cols, "output shape mismatch");

    let GemmScratch {
        pack_b,
        pack_a,
        im2col,
    } = scratch;
    if im2col.len() < kdim * cols {
        im2col.resize(kdim * cols, 0.0);
    }
    for b in 0..n {
        im2col_into(
            x,
            b,
            (kh, kw),
            stride,
            padding,
            oh,
            ow,
            &mut im2col[..kdim * cols],
        );
        let base = b * out_c * cols;
        let slab = &mut out.data_mut()[base..base + out_c * cols];
        // The weight tensor is already [out_c, icg·kh·kw] row-major.
        let im = &im2col[..kdim * cols];
        if sparse {
            matmul_sparse_into(weight.data(), im, (out_c, kdim, cols), slab, threads);
        } else {
            matmul_packed(
                weight.data(),
                im,
                (out_c, kdim, cols),
                slab,
                threads,
                pack_b,
                pack_a,
            );
        }
        epilogue.apply(slab, out_c, cols);
    }
}

/// 2-D convolution lowered to im2col + packed GEMM (groups = 1).
///
/// Produces results bit-comparable (within FP reassociation error) to
/// [`crate::kernels::conv2d`].
///
/// # Panics
///
/// Panics if the shapes are inconsistent.
pub fn conv2d_gemm(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: (usize, usize),
    padding: (usize, usize),
) -> Tensor {
    let d = x.shape().dims();
    let (n, ih, iw) = (d[0], d[2], d[3]);
    let wd = weight.shape().dims();
    let (out_c, kh, kw) = (wd[0], wd[2], wd[3]);
    let oh = TensorShape::conv_out_extent(ih, kh, stride.0, padding.0).expect("kernel fits");
    let ow = TensorShape::conv_out_extent(iw, kw, stride.1, padding.1).expect("kernel fits");
    let mut out = Tensor::zeros([n, out_c, oh, ow]);
    let epi = Epilogue {
        bias,
        ..Epilogue::default()
    };
    let mut scratch = GemmScratch::default();
    conv2d_gemm_into(
        x,
        weight,
        stride,
        padding,
        &epi,
        false,
        1,
        &mut out,
        &mut scratch,
    );
    out
}

/// Fused dense + bias + activation on the packed GEMM:
/// `out[n×units] = act(x[n×f] · Wᵀ + bias)`, with `weight` in its natural
/// `[units×f]` layout (packed transposed, never materialized).
///
/// Per output element the reduction runs in strictly ascending feature
/// order with the bias added after the sum and the activation applied at
/// store time, identically at every thread count and on both the small-
/// problem direct path and the packed path (which are selected by shape,
/// not by thread count).
///
/// # Panics
///
/// Panics if shapes are inconsistent or `out` has the wrong size.
pub fn dense_act_into(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    act: ActivationKind,
    threads: usize,
    out: &mut Tensor,
    scratch: &mut GemmScratch,
) {
    use crate::kernels::apply_activation;
    let (n, f) = (x.shape().dim(0), x.shape().dim(1));
    let units = weight.shape().dim(0);
    assert_eq!(weight.shape().dim(1), f, "dense weight mismatch");
    assert_eq!(out.len(), n * units, "dense output size mismatch");
    let xd = x.data();
    let wv = weight.data();
    // Small layers: the packing overhead outweighs the micro-kernel win.
    if n * units * f < (1 << 15) {
        let od = out.data_mut();
        for b in 0..n {
            let xrow = &xd[b * f..(b + 1) * f];
            for (u, slot) in od[b * units..(b + 1) * units].iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for (&xi, &wi) in xrow.iter().zip(&wv[u * f..(u + 1) * f]) {
                    acc = xi.mul_add(wi, acc);
                }
                if let Some(bv) = bias {
                    acc += bv[u];
                }
                *slot = apply_activation(acc, act);
            }
        }
        return;
    }
    pack_b_transposed(wv, f, units, &mut scratch.pack_b);
    gemm_prepacked_b(
        xd,
        &scratch.pack_b,
        (n, f, units),
        out.data_mut(),
        threads,
        &mut scratch.pack_a,
    );
    if bias.is_none() && act == ActivationKind::Linear {
        return;
    }
    for row in out.data_mut().chunks_exact_mut(units) {
        if let Some(bv) = bias {
            for (v, &b0) in row.iter_mut().zip(bv) {
                *v += b0;
            }
        }
        if act != ActivationKind::Linear {
            for v in row.iter_mut() {
                *v = apply_activation(*v, act);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn matmul_hand_computed() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::random([5, 5], 1);
        let mut i = Tensor::zeros([5, 5]);
        for k in 0..5 {
            let idx = k * 5 + k;
            i.data_mut()[idx] = 1.0;
        }
        let c = matmul(&a, &i);
        assert!(a.mean_abs_diff(&c) < 1e-7);
    }

    #[test]
    fn packed_matches_reference_bitwise_across_shapes() {
        // Ragged edges in every direction: m, k, n not multiples of the
        // tile sizes. Strictly-ascending-k accumulation makes the packed
        // kernel *bit*-identical to the naive reference, not just close.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 150, 130),
            (4, 8, 8),
            (5, 7, 9),
            (64, 64, 64),
            (65, 129, 33),
            (130, 31, 200),
        ] {
            let a = Tensor::random([m, k], 2);
            let b = Tensor::random([k, n], 3);
            assert_eq!(
                matmul(&a, &b).data(),
                matmul_reference(&a, &b).data(),
                "shape ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn threaded_matmul_is_byte_identical() {
        let a = Tensor::random([150, 70], 5);
        let b = Tensor::random([70, 90], 6);
        let serial = matmul_threaded(&a, &b, 1);
        for threads in [2, 4, 8] {
            assert_eq!(
                matmul_threaded(&a, &b, threads).data(),
                serial.data(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn sparse_matmul_matches_dense_bitwise() {
        // Zero out a chunk of A exactly, as the pruned WeightStore does:
        // skipping 0·x terms must not change a single bit.
        let mut a = Tensor::random([67, 50], 8);
        for (i, v) in a.data_mut().iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = 0.0;
            }
        }
        let b = Tensor::random([50, 40], 9);
        let dense = matmul(&a, &b);
        let mut sparse = Tensor::zeros([67, 40]);
        matmul_sparse_into(a.data(), b.data(), (67, 50, 40), sparse.data_mut(), 1);
        assert_eq!(dense.data(), sparse.data());
        // And across thread counts.
        let mut sparse4 = Tensor::zeros([67, 40]);
        matmul_sparse_into(a.data(), b.data(), (67, 50, 40), sparse4.data_mut(), 4);
        assert_eq!(dense.data(), sparse4.data());
    }

    #[test]
    fn matmul_into_overwrites_recycled_buffers() {
        // Simulate an arena-recycled output full of stale garbage.
        let a = Tensor::random([10, 12], 4);
        let b = Tensor::random([12, 11], 5);
        let clean = matmul(&a, &b);
        let mut dirty = vec![f32::NAN; 110];
        let mut scratch = GemmScratch::default();
        matmul_into(
            a.data(),
            b.data(),
            (10, 12, 11),
            &mut dirty,
            1,
            &mut scratch,
        );
        assert_eq!(clean.data(), &dirty[..]);
    }

    #[test]
    fn gemm_conv_matches_direct_conv() {
        for &(cin, cout, hw, k, s, p) in &[
            (3usize, 8usize, 11usize, 3usize, 1usize, 1usize),
            (4, 6, 9, 3, 2, 1),
            (2, 5, 8, 5, 1, 2),
            (3, 7, 10, 1, 1, 0),
        ] {
            let x = Tensor::random([2, cin, hw, hw], 10);
            let w = Tensor::random([cout, cin, k, k], 11);
            let bias: Vec<f32> = (0..cout).map(|i| i as f32 * 0.1).collect();
            let direct = kernels::conv2d(&x, &w, Some(&bias), (s, s), (p, p), 1);
            let gemm = conv2d_gemm(&x, &w, Some(&bias), (s, s), (p, p));
            assert_eq!(direct.shape(), gemm.shape());
            assert!(
                direct.mean_abs_diff(&gemm) < 1e-4,
                "cin={cin} cout={cout} k={k}: diff {}",
                direct.mean_abs_diff(&gemm)
            );
        }
    }

    #[test]
    fn fused_epilogue_matches_separate_kernels() {
        use edgebench_graph::ActivationKind as A;
        let x = Tensor::random([2, 3, 12, 12], 20);
        let w = Tensor::random([16, 3, 3, 3], 21);
        let bias: Vec<f32> = (0..16).map(|i| i as f32 * 0.05 - 0.3).collect();
        let gamma: Vec<f32> = (0..16).map(|i| 1.0 + 0.1 * i as f32).collect();
        let beta: Vec<f32> = (0..16).map(|i| 0.2 - 0.02 * i as f32).collect();
        for &(s, p) in &[(1usize, 1usize), (2, 1), (1, 0)] {
            for act in [A::Relu, A::Relu6, A::Leaky, A::Sigmoid, A::Tanh, A::Linear] {
                // Unfused: conv (+bias) → batch-norm → activation.
                let conv = conv2d_gemm(&x, &w, Some(&bias), (s, s), (p, p));
                let bn = kernels::batch_norm(&conv, &gamma, &beta);
                let expect = kernels::activation(&bn, act);
                // Fused: one pass.
                let mut got = Tensor::zeros(conv.shape().dims().to_vec());
                let epi = Epilogue {
                    bias: Some(&bias),
                    bn: Some((&gamma, &beta)),
                    act,
                };
                let mut scratch = GemmScratch::default();
                conv2d_gemm_into(
                    &x,
                    &w,
                    (s, s),
                    (p, p),
                    &epi,
                    false,
                    1,
                    &mut got,
                    &mut scratch,
                );
                assert_eq!(expect.data(), got.data(), "s={s} p={p} act={act:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_rejects_mismatched_dims() {
        let _ = matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }
}
