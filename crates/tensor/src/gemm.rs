//! Panel-packed, cache-blocked GEMM and the im2col convolution lowering —
//! the production-style CPU hot path every framework the paper studies
//! builds on (Caffe popularized im2col + GEMM; TF/PyTorch CPU backends
//! still ship packed-panel kernels of exactly this shape).
//!
//! # Structure
//!
//! `C[m×n] = A[m×k] · B[k×n]` runs as the classic three-level blocked loop
//! (see [`crate::blocking`] for how MC/KC/NC are autotuned to the host
//! caches, once per process):
//!
//! ```text
//! for jc in 0..n step NC          # B block stays L3-resident
//!   for pc in 0..k step KC        # pack B[pc.., jc..] into NR panels
//!     for ic in 0..m step MC      # parallel; pack A[ic.., pc..]
//!       micro-kernel over every MR×NR tile   (see crate::simd)
//! ```
//!
//! * **B** is packed per `(jc, pc)` block into k-major column panels of
//!   `NR`, so the micro-kernel streams it with unit stride. Ragged right
//!   edges are zero-padded.
//! * **A** is packed per `MC`-row panel into micro-panels of `MR`
//!   interleaved rows, again k-major. Ragged bottom edges are zero-padded.
//!
//! The register micro-kernel ([`crate::simd`]: runtime-dispatched
//! AVX2/FMA, portable 8-lane shim, or scalar) accumulates an `MR×NR` tile
//! of `C`, walking the `KC` block in ascending `k`, and stores only the
//! valid region.
//!
//! # Determinism
//!
//! For every output element the reduction order is **strictly ascending
//! `k`**, regardless of tiling, kernel choice or thread count: packing
//! permutes memory layout, never the accumulation sequence; zero-padded
//! lanes add exact `+0.0` terms that cannot change a finite accumulator;
//! between `KC` blocks the accumulator tile round-trips through `C` — an
//! exact f32 store/reload — so the fused-multiply-add chain continues bit
//! for bit; and SIMD lanes hold *independent output elements*, never
//! partial sums of one reduction. Parallelism splits `C` into disjoint
//! row panels, each computed independently, so results are byte-identical
//! for 1..N threads and for every kernel (asserted by tests and by
//! `scripts/verify.sh`).

use crate::blocking::Blocking;
use crate::pool;
use crate::simd::{self, KernelKind, Microkernel, MR, NR};
use crate::Tensor;
use edgebench_graph::{ActivationKind, TensorShape};

/// Row-panel height of the zero-skipping sparse path (a pure work-split
/// constant — the sparse kernel does no packing, so cache blocking does
/// not apply).
const SPARSE_MC: usize = 64;

/// How a convolution should be realized at a given shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvAlgo {
    /// Nested-loop direct convolution (tiny or grouped layers).
    Direct,
    /// im2col + packed GEMM (everything else).
    Im2colGemm,
}

/// Benchmarked crossover for [`select_conv_algo`]: layers at or below this
/// many multiply-accumulates run the direct kernel; larger ones take
/// im2col + GEMM. The `select/*` entries in `BENCH_kernels.json` bracket
/// the boundary: at ~0.05 MMAC (8×8² → 8, k3) direct and GEMM are within
/// ~2× of each other with direct ahead, while by 14.5 MMAC
/// (32×28² → 64, k3) GEMM is ~30× faster — the packing and im2col setup
/// cost stops amortizing around 64 KMAC.
pub const DIRECT_CONV_MAX_MACS: usize = 1 << 16;

/// Per-shape convolution algorithm selection, used by the executor.
/// `out_elems` is the output tensor's element count, `fan_in` the MACs per
/// output element (`in_c/groups · kh · kw`).
pub fn select_conv_algo(out_elems: usize, fan_in: usize, groups: usize) -> ConvAlgo {
    if groups != 1 {
        // No grouped im2col lowering — grouped/depthwise layers are small
        // per-group GEMMs where packing overhead dominates anyway.
        return ConvAlgo::Direct;
    }
    if out_elems.saturating_mul(fan_in) > DIRECT_CONV_MAX_MACS {
        ConvAlgo::Im2colGemm
    } else {
        ConvAlgo::Direct
    }
}

/// Reusable packing / im2col buffers plus the resolved kernel and blocking
/// for the GEMM path.
///
/// Owned by the executor's arena (one per [`crate::PreparedExecutor`]) so
/// steady-state inference re-uses the same allocations; standalone calls
/// create a transient one. The kernel is resolved from [`KernelKind`]
/// once, when the scratch is created or [`GemmScratch::set_kernel`] is
/// called — never per GEMM call.
#[derive(Debug)]
pub struct GemmScratch {
    /// Packed B block: up to `⌈NC/NR⌉` panels of `KC·NR` floats.
    pack_b: Vec<f32>,
    /// Per-worker packed-A buffers (one per intra-op worker).
    pack_a: Vec<Vec<f32>>,
    /// im2col matrix for the convolution lowering.
    im2col: Vec<f32>,
    /// The resolved micro-kernel implementation.
    kernel: Microkernel,
    /// Fixed blocking override; `None` autotunes per shape from the
    /// detected cache hierarchy.
    blocking: Option<Blocking>,
}

impl Default for GemmScratch {
    fn default() -> Self {
        GemmScratch {
            pack_b: Vec::new(),
            pack_a: Vec::new(),
            im2col: Vec::new(),
            kernel: simd::resolve(KernelKind::Auto),
            blocking: None,
        }
    }
}

impl GemmScratch {
    /// Re-resolves the micro-kernel from a [`KernelKind`] request.
    pub fn set_kernel(&mut self, kind: KernelKind) {
        self.kernel = simd::resolve(kind);
    }

    /// The micro-kernel this scratch dispatches to.
    pub fn kernel(&self) -> Microkernel {
        self.kernel
    }

    /// Overrides the cache-autotuned blocking (tests and benches; `None`
    /// restores autotuning). Any blocking produces byte-identical output —
    /// only the cache behaviour changes.
    pub fn set_blocking(&mut self, blocking: Option<Blocking>) {
        self.blocking = blocking;
    }

    /// The blocking that will be used for an `[m×k]·[k×n]` problem.
    fn blocking_for(&self, dims: (usize, usize, usize)) -> Blocking {
        self.blocking.unwrap_or_else(|| Blocking::auto(dims))
    }

    /// Grows every buffer to what a `[m×k]·[k×n]` GEMM over an im2col
    /// matrix of `im2col_len` floats will need, so later runs allocate
    /// nothing. Called from `Executor::prepare`.
    pub(crate) fn reserve(
        &mut self,
        dims: (usize, usize, usize),
        im2col_len: usize,
        workers: usize,
    ) {
        let (m, k, n) = dims;
        let blk = self.blocking_for(dims);
        let kcb = blk.kc.min(k).max(1);
        let need_b = blk.nc.min(n).max(1).div_ceil(NR) * kcb * NR;
        if self.pack_b.len() < need_b {
            self.pack_b.resize(need_b, 0.0);
        }
        if self.pack_a.len() < workers.max(1) {
            self.pack_a.resize(workers.max(1), Vec::new());
        }
        let need_a = blk.mc.min(m.next_multiple_of(MR)).max(MR).div_ceil(MR) * kcb * MR;
        for pa in &mut self.pack_a {
            if pa.len() < need_a {
                pa.resize(need_a, 0.0);
            }
        }
        if self.im2col.len() < im2col_len {
            self.im2col.resize(im2col_len, 0.0);
        }
    }
}

/// The B operand as the packer sees it.
#[derive(Debug, Clone, Copy)]
enum BSource<'a> {
    /// `B[k×n]`, row-major.
    RowMajor(&'a [f32]),
    /// `W[n×k]` row-major, logically supplying `Wᵀ[k×n]` — dense-layer
    /// weights in their natural output-major layout, packed transposed so
    /// the transpose is never materialized.
    Transposed(&'a [f32]),
}

/// Packs the `[pc..pc+kcb, jc..jc+ncb]` block of B into k-major
/// `NR`-column panels, zero-padding the ragged edge, and returns the
/// packed length. Every element of the returned prefix is written, so
/// recycled buffers can never leak stale values into the kernel (callers
/// slice to exactly this length).
fn pack_b_block(
    src: BSource<'_>,
    (k, n): (usize, usize),
    (pc, kcb): (usize, usize),
    (jc, ncb): (usize, usize),
    out: &mut Vec<f32>,
) -> usize {
    let panels = ncb.div_ceil(NR);
    let need = panels * kcb * NR;
    if out.len() < need {
        out.resize(need, 0.0);
    }
    for jp in 0..panels {
        let j0 = jc + jp * NR;
        let width = (ncb - jp * NR).min(NR);
        let panel = &mut out[jp * kcb * NR..(jp + 1) * kcb * NR];
        match src {
            BSource::RowMajor(b) => {
                debug_assert_eq!(b.len(), k * n);
                for kk in 0..kcb {
                    let srow = &b[(pc + kk) * n + j0..(pc + kk) * n + j0 + width];
                    let dst = &mut panel[kk * NR..kk * NR + NR];
                    dst[..width].copy_from_slice(srow);
                    dst[width..].fill(0.0);
                }
            }
            BSource::Transposed(w) => {
                debug_assert_eq!(w.len(), k * n);
                panel.fill(0.0);
                for (j, row) in w[j0 * k..].chunks_exact(k).take(width).enumerate() {
                    for (kk, &v) in row[pc..pc + kcb].iter().enumerate() {
                        panel[kk * NR + j] = v;
                    }
                }
            }
        }
    }
    need
}

/// Packs the `[row0..row0+rows, pc..pc+kcb]` block of `A[m×k]` into
/// k-major micro-panels of `MR` interleaved rows, zero-padding the ragged
/// edge, and returns the packed length (every element of which is
/// written).
fn pack_a_block(
    a: &[f32],
    k: usize,
    (row0, rows): (usize, usize),
    (pc, kcb): (usize, usize),
    out: &mut Vec<f32>,
) -> usize {
    let blocks = rows.div_ceil(MR);
    let need = blocks * kcb * MR;
    if out.len() < need {
        out.resize(need, 0.0);
    }
    for mb in 0..blocks {
        let block = &mut out[mb * kcb * MR..(mb + 1) * kcb * MR];
        for kk in 0..kcb {
            for ir in 0..MR {
                let r = mb * MR + ir;
                block[kk * MR + ir] = if r < rows {
                    a[(row0 + r) * k + pc + kk]
                } else {
                    0.0
                };
            }
        }
    }
    need
}

/// The micro-kernel sweep over one packed row-panel × one packed B block:
/// every `MR×NR` tile of `C` is loaded (after the first `KC` block),
/// accumulated over `kcb` ascending-`k` steps, and stored back — only the
/// valid region touches memory.
#[allow(clippy::too_many_arguments)]
fn gemm_panel(
    kernel: Microkernel,
    pa: &[f32],
    pb: &[f32],
    rows: usize,
    kcb: usize,
    (col0, ncols): (usize, usize),
    ldc: usize,
    first: bool,
    cpanel: &mut [f32],
) {
    for mb in 0..rows.div_ceil(MR) {
        let apan = &pa[mb * kcb * MR..(mb + 1) * kcb * MR];
        let mr = (rows - mb * MR).min(MR);
        for jp in 0..ncols.div_ceil(NR) {
            let bpan = &pb[jp * kcb * NR..(jp + 1) * kcb * NR];
            let j0 = col0 + jp * NR;
            let nr = (ncols - jp * NR).min(NR);
            let mut acc: simd::Acc = [[0.0; NR]; MR];
            if !first {
                for (i, row) in acc.iter_mut().enumerate().take(mr) {
                    let crow = (mb * MR + i) * ldc + j0;
                    row[..nr].copy_from_slice(&cpanel[crow..crow + nr]);
                }
            }
            simd::run(kernel, apan, bpan, kcb, &mut acc);
            for (i, row) in acc.iter().enumerate().take(mr) {
                let crow = (mb * MR + i) * ldc + j0;
                cpanel[crow..crow + nr].copy_from_slice(&row[..nr]);
            }
        }
    }
}

/// The blocked GEMM driver: NC/KC loops outside, parallel MC row panels
/// inside, packing each operand block exactly once per reuse scope.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked(
    a: &[f32],
    b: BSource<'_>,
    (m, k, n): (usize, usize, usize),
    c: &mut [f32],
    threads: usize,
    kernel: Microkernel,
    blocking: Option<Blocking>,
    pb_buf: &mut Vec<f32>,
    pa_bufs: &mut Vec<Vec<f32>>,
) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    let blk = blocking.unwrap_or_else(|| Blocking::auto((m, k, n)));
    let (kc, nc) = (blk.kc.max(1), blk.nc.max(NR));
    // The MC panel is also the parallel work unit: shrink it when the
    // worker pool would otherwise sit idle. Panel size never affects the
    // output bytes, only load balance.
    let workers_avail = pool::effective_threads(threads);
    let mc = if workers_avail > 1 {
        blk.mc
            .min(m.div_ceil(workers_avail).next_multiple_of(MR))
            .max(MR)
    } else {
        blk.mc.max(MR)
    };
    for jc in (0..n).step_by(nc) {
        let ncb = (n - jc).min(nc);
        for (pci, pc) in (0..k).step_by(kc).enumerate() {
            let kcb = (k - pc).min(kc);
            let pb_need = pack_b_block(b, (k, n), (pc, kcb), (jc, ncb), pb_buf);
            let pb = &pb_buf[..pb_need];
            let first = pci == 0;
            let row_panels = m.div_ceil(mc);
            let workers = workers_avail.min(row_panels).max(1);
            if pa_bufs.len() < workers {
                pa_bufs.resize(workers, Vec::new());
            }
            let tasks: Vec<(usize, &mut [f32])> = c.chunks_mut(mc * n).enumerate().collect();
            pool::run_tasks(tasks, &mut pa_bufs[..workers], |pa, (pi, cpanel)| {
                let row0 = pi * mc;
                let rows = (m - row0).min(mc);
                let pa_need = pack_a_block(a, k, (row0, rows), (pc, kcb), pa);
                gemm_panel(
                    kernel,
                    &pa[..pa_need],
                    pb,
                    rows,
                    kcb,
                    (jc, ncb),
                    n,
                    first,
                    cpanel,
                );
            });
        }
    }
}

/// Packed GEMM into a caller-provided buffer: `c[m×n] = a[m×k] · b[k×n]`.
///
/// Every element of `c` is overwritten. `threads` is the intra-op worker
/// count (`0` = machine parallelism); work splits over independent
/// row panels of `c`, so output is byte-identical at any count, for any
/// kernel and any blocking.
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`/`k`/`n`.
pub fn matmul_into(
    a: &[f32],
    b: &[f32],
    dims: (usize, usize, usize),
    c: &mut [f32],
    threads: usize,
    scratch: &mut GemmScratch,
) {
    assert_eq!(b.len(), dims.1 * dims.2, "B length mismatch");
    let GemmScratch {
        pack_b,
        pack_a,
        kernel,
        blocking,
        ..
    } = scratch;
    gemm_blocked(
        a,
        BSource::RowMajor(b),
        dims,
        c,
        threads,
        *kernel,
        *blocking,
        pack_b,
        pack_a,
    );
}

/// Sparsity-aware GEMM into a caller-provided buffer: identical contract to
/// [`matmul_into`] but skips zero elements of `a` (the weight operand).
///
/// Selected by the executor when the `WeightStore` is pruned; skipping a
/// `0.0 · x` term removes an exact `±0.0` addend, so for finite data the
/// result is byte-identical to the dense path (see tests) — only the work
/// drops with sparsity.
pub fn matmul_sparse_into(
    a: &[f32],
    b: &[f32],
    (m, k, n): (usize, usize, usize),
    c: &mut [f32],
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    let row_panels = m.div_ceil(SPARSE_MC).max(1);
    let workers = pool::effective_threads(threads).min(row_panels).max(1);
    // Workers carry no packing state on the sparse path; `Vec<()>` never
    // touches the heap.
    let mut slots = vec![(); workers];
    let tasks: Vec<(usize, &mut [f32])> = c.chunks_mut(SPARSE_MC * n).enumerate().collect();
    pool::run_tasks(tasks, &mut slots, |(), (pi, cpanel)| {
        let row0 = pi * SPARSE_MC;
        let rows = (m - row0).min(SPARSE_MC);
        for i in 0..rows {
            let crow = &mut cpanel[i * n..(i + 1) * n];
            crow.fill(0.0);
            let arow = (row0 + i) * k;
            // Ascending k over the non-zeros: the same per-element
            // reduction order as the dense kernel, minus exact-zero terms.
            for kk in 0..k {
                let av = a[arow + kk];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..kk * n + n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv = av.mul_add(bv, *cv);
                }
            }
        }
    });
}

/// Packed matrix multiply: `C[m×n] = A[m×k] · B[k×n]`, single-threaded,
/// auto-dispatched kernel.
///
/// # Panics
///
/// Panics if the shapes are incompatible.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_threaded(a, b, 1)
}

/// [`matmul`] with an explicit intra-op worker count (`0` = machine
/// parallelism). Byte-identical to the single-threaded result.
///
/// # Panics
///
/// Panics if the shapes are incompatible.
pub fn matmul_threaded(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (kb, n) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(k, kb, "matmul inner dims differ: {k} vs {kb}");
    let mut c = Tensor::zeros([m, n]);
    let mut scratch = GemmScratch::default();
    matmul_into(
        a.data(),
        b.data(),
        (m, k, n),
        c.data_mut(),
        threads,
        &mut scratch,
    );
    c
}

/// Unpacked triple-loop reference GEMM (ascending `k`), kept as the ground
/// truth the packed kernels are tested against and as the bench baseline
/// for the packing speedup.
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (kb, n) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(k, kb, "matmul inner dims differ: {k} vs {kb}");
    let mut c = Tensor::zeros([m, n]);
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc = ad[i * k + kk].mul_add(bd[kk * n + j], acc);
            }
            cd[i * n + j] = acc;
        }
    }
    c
}

/// Post-GEMM epilogue fused into the convolution path: optional bias,
/// optional folded batch-norm, then activation — one pass over the output
/// instead of three kernel invocations. Element-wise throughout, applied in
/// the same order as the standalone kernels, so results are bit-identical
/// to the unfused sequence.
#[derive(Debug, Clone, Copy)]
pub struct Epilogue<'a> {
    /// Per-output-channel bias added first (as `conv2d`'s bias term).
    pub bias: Option<&'a [f32]>,
    /// Folded batch-norm `(gamma, beta)` applied second.
    pub bn: Option<(&'a [f32], &'a [f32])>,
    /// Activation applied last. `Linear` is free.
    pub act: ActivationKind,
}

impl Default for Epilogue<'_> {
    fn default() -> Self {
        Epilogue {
            bias: None,
            bn: None,
            act: ActivationKind::Linear,
        }
    }
}

impl Epilogue<'_> {
    /// Applies the epilogue to one `[out_c, hw]` output slab in place.
    pub(crate) fn apply(&self, slab: &mut [f32], out_c: usize, hw: usize) {
        if self.bias.is_none() && self.bn.is_none() && self.act == ActivationKind::Linear {
            return;
        }
        for oc in 0..out_c {
            let row = &mut slab[oc * hw..(oc + 1) * hw];
            if let Some(bv) = self.bias {
                let b0 = bv[oc];
                for v in row.iter_mut() {
                    *v += b0;
                }
            }
            if let Some((gamma, beta)) = self.bn {
                let (g, s) = (gamma[oc], beta[oc]);
                for v in row.iter_mut() {
                    *v = g * *v + s;
                }
            }
            if self.act != ActivationKind::Linear {
                for v in row.iter_mut() {
                    *v = crate::kernels::apply_activation(*v, self.act);
                }
            }
        }
    }
}

/// Unfolds an `NCHW` input into the im2col matrix `[in_c·kh·kw, oh·ow]`
/// for batch element `b`, writing **every** element of `out` (padded
/// positions get an explicit `0.0`, so recycled buffers are safe).
#[allow(clippy::too_many_arguments)]
fn im2col_into(
    x: &Tensor,
    b: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    oh: usize,
    ow: usize,
    out: &mut [f32],
) {
    let (in_c, ih, iw) = (x.shape().channels(), x.shape().height(), x.shape().width());
    let (kh, kw) = kernel;
    let cols = oh * ow;
    let xd = x.data();
    for c in 0..in_c {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (c * kh + ky) * kw + kx;
                for oy in 0..oh {
                    let mrow = row * cols + oy * ow;
                    let iy = oy * stride.0 + ky;
                    if iy < padding.0 || iy - padding.0 >= ih {
                        out[mrow..mrow + ow].fill(0.0);
                        continue;
                    }
                    let xrow = ((b * in_c + c) * ih + (iy - padding.0)) * iw;
                    for ox in 0..ow {
                        let ix = ox * stride.1 + kx;
                        out[mrow + ox] = if ix < padding.1 || ix - padding.1 >= iw {
                            0.0
                        } else {
                            xd[xrow + (ix - padding.1)]
                        };
                    }
                }
            }
        }
    }
}

/// im2col + packed GEMM convolution into a caller-provided output tensor,
/// with the bias/batch-norm/activation epilogue fused into a single pass.
///
/// `out` must already have the `[n, out_c, oh, ow]` shape; every element is
/// overwritten. When `sparse` is set the zero-skipping GEMM is used
/// (byte-identical results, less work on pruned weights).
///
/// # Panics
///
/// Panics if `out` does not have `n · out_c · oh · ow` elements or the
/// kernel does not fit the padded input.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_gemm_into(
    x: &Tensor,
    weight: &Tensor,
    stride: (usize, usize),
    padding: (usize, usize),
    epilogue: &Epilogue<'_>,
    sparse: bool,
    threads: usize,
    out: &mut Tensor,
    scratch: &mut GemmScratch,
) {
    let (n, ih, iw) = {
        let d = x.shape().dims();
        (d[0], d[2], d[3])
    };
    let wd = weight.shape().dims();
    let (out_c, icg, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    let oh = TensorShape::conv_out_extent(ih, kh, stride.0, padding.0).expect("kernel fits");
    let ow = TensorShape::conv_out_extent(iw, kw, stride.1, padding.1).expect("kernel fits");
    let (kdim, cols) = (icg * kh * kw, oh * ow);
    assert_eq!(out.len(), n * out_c * cols, "output shape mismatch");

    let GemmScratch {
        pack_b,
        pack_a,
        im2col,
        kernel,
        blocking,
    } = scratch;
    if im2col.len() < kdim * cols {
        im2col.resize(kdim * cols, 0.0);
    }
    for b in 0..n {
        im2col_into(
            x,
            b,
            (kh, kw),
            stride,
            padding,
            oh,
            ow,
            &mut im2col[..kdim * cols],
        );
        let base = b * out_c * cols;
        let slab = &mut out.data_mut()[base..base + out_c * cols];
        // The weight tensor is already [out_c, icg·kh·kw] row-major.
        let im = &im2col[..kdim * cols];
        if sparse {
            matmul_sparse_into(weight.data(), im, (out_c, kdim, cols), slab, threads);
        } else {
            gemm_blocked(
                weight.data(),
                BSource::RowMajor(im),
                (out_c, kdim, cols),
                slab,
                threads,
                *kernel,
                *blocking,
                pack_b,
                pack_a,
            );
        }
        epilogue.apply(slab, out_c, cols);
    }
}

/// 2-D convolution lowered to im2col + packed GEMM (groups = 1).
///
/// Produces results bit-comparable (within FP reassociation error) to
/// [`crate::kernels::conv2d`].
///
/// # Panics
///
/// Panics if the shapes are inconsistent.
pub fn conv2d_gemm(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: (usize, usize),
    padding: (usize, usize),
) -> Tensor {
    let d = x.shape().dims();
    let (n, ih, iw) = (d[0], d[2], d[3]);
    let wd = weight.shape().dims();
    let (out_c, kh, kw) = (wd[0], wd[2], wd[3]);
    let oh = TensorShape::conv_out_extent(ih, kh, stride.0, padding.0).expect("kernel fits");
    let ow = TensorShape::conv_out_extent(iw, kw, stride.1, padding.1).expect("kernel fits");
    let mut out = Tensor::zeros([n, out_c, oh, ow]);
    let epi = Epilogue {
        bias,
        ..Epilogue::default()
    };
    let mut scratch = GemmScratch::default();
    conv2d_gemm_into(
        x,
        weight,
        stride,
        padding,
        &epi,
        false,
        1,
        &mut out,
        &mut scratch,
    );
    out
}

/// Fused dense + bias + activation on the packed GEMM:
/// `out[n×units] = act(x[n×f] · Wᵀ + bias)`, with `weight` in its natural
/// `[units×f]` layout (packed transposed, never materialized).
///
/// Per output element the reduction runs in strictly ascending feature
/// order with the bias added after the sum and the activation applied at
/// store time, identically at every thread count and on both the small-
/// problem direct path and the packed path (which are selected by shape,
/// not by thread count or kernel).
///
/// # Panics
///
/// Panics if shapes are inconsistent or `out` has the wrong size.
pub fn dense_act_into(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    act: ActivationKind,
    threads: usize,
    out: &mut Tensor,
    scratch: &mut GemmScratch,
) {
    use crate::kernels::apply_activation;
    let (n, f) = (x.shape().dim(0), x.shape().dim(1));
    let units = weight.shape().dim(0);
    assert_eq!(weight.shape().dim(1), f, "dense weight mismatch");
    assert_eq!(out.len(), n * units, "dense output size mismatch");
    let xd = x.data();
    let wv = weight.data();
    // Small layers: the packing overhead outweighs the micro-kernel win.
    if n * units * f < (1 << 15) {
        let od = out.data_mut();
        for b in 0..n {
            let xrow = &xd[b * f..(b + 1) * f];
            for (u, slot) in od[b * units..(b + 1) * units].iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for (&xi, &wi) in xrow.iter().zip(&wv[u * f..(u + 1) * f]) {
                    acc = xi.mul_add(wi, acc);
                }
                if let Some(bv) = bias {
                    acc += bv[u];
                }
                *slot = apply_activation(acc, act);
            }
        }
        return;
    }
    {
        let GemmScratch {
            pack_b,
            pack_a,
            kernel,
            blocking,
            ..
        } = scratch;
        gemm_blocked(
            xd,
            BSource::Transposed(wv),
            (n, f, units),
            out.data_mut(),
            threads,
            *kernel,
            *blocking,
            pack_b,
            pack_a,
        );
    }
    if bias.is_none() && act == ActivationKind::Linear {
        return;
    }
    for row in out.data_mut().chunks_exact_mut(units) {
        if let Some(bv) = bias {
            for (v, &b0) in row.iter_mut().zip(bv) {
                *v += b0;
            }
        }
        if act != ActivationKind::Linear {
            for v in row.iter_mut() {
                *v = apply_activation(*v, act);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use crate::simd::{avx512_available, simd_available};

    /// Every kernel the host can run.
    fn host_kernels() -> Vec<Microkernel> {
        let mut v = vec![Microkernel::Scalar, Microkernel::Wide];
        if simd_available() {
            v.push(Microkernel::Avx2);
        }
        if avx512_available() {
            v.push(Microkernel::Avx512);
        }
        v
    }

    #[test]
    fn matmul_hand_computed() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::random([5, 5], 1);
        let mut i = Tensor::zeros([5, 5]);
        for k in 0..5 {
            let idx = k * 5 + k;
            i.data_mut()[idx] = 1.0;
        }
        let c = matmul(&a, &i);
        assert!(a.mean_abs_diff(&c) < 1e-7);
    }

    #[test]
    fn packed_matches_reference_bitwise_across_shapes() {
        // Ragged edges in every direction: m, k, n not multiples of the
        // tile sizes. Strictly-ascending-k accumulation makes the packed
        // kernel *bit*-identical to the naive reference, not just close.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 150, 130),
            (4, 8, 8),
            (5, 7, 9),
            (64, 64, 64),
            (65, 129, 33),
            (130, 31, 200),
        ] {
            let a = Tensor::random([m, k], 2);
            let b = Tensor::random([k, n], 3);
            assert_eq!(
                matmul(&a, &b).data(),
                matmul_reference(&a, &b).data(),
                "shape ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn every_kernel_and_blocking_is_bitwise_identical_to_reference() {
        // The tentpole claim: kernel implementation (scalar / wide shim /
        // AVX2) and blocking (including deliberately odd KC splits that
        // round-trip the accumulator tile through C) are pure performance
        // knobs — never a single bit of difference.
        let blockings = [
            None, // autotuned
            Some(Blocking {
                mc: 8,
                kc: 8,
                nc: 16,
            }),
            Some(Blocking {
                mc: 24,
                kc: 40,
                nc: 48,
            }),
            Some(Blocking {
                mc: 8,
                kc: 1,
                nc: 16,
            }),
        ];
        for &(m, k, n) in &[(5usize, 7usize, 9usize), (65, 129, 33), (64, 576, 96)] {
            let a = Tensor::random([m, k], 21);
            let b = Tensor::random([k, n], 22);
            let want = matmul_reference(&a, &b);
            for kernel in host_kernels() {
                for blk in blockings {
                    let mut scratch = GemmScratch {
                        kernel,
                        blocking: blk,
                        ..GemmScratch::default()
                    };
                    let mut c = Tensor::zeros([m, n]);
                    matmul_into(a.data(), b.data(), (m, k, n), c.data_mut(), 1, &mut scratch);
                    assert_eq!(want.data(), c.data(), "({m},{k},{n}) {kernel:?} {blk:?}");
                }
            }
        }
    }

    #[test]
    fn threaded_matmul_is_byte_identical() {
        let a = Tensor::random([150, 70], 5);
        let b = Tensor::random([70, 90], 6);
        let serial = matmul_threaded(&a, &b, 1);
        for threads in [2, 4, 8] {
            assert_eq!(
                matmul_threaded(&a, &b, threads).data(),
                serial.data(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn scratch_reuse_larger_then_smaller_matches_fresh() {
        // Regression for the pack-buffer reuse hazard: buffers only grow,
        // so a large shape followed by a smaller one leaves stale packed
        // panels in the tail. The kernels must only ever read the
        // freshly-packed prefix — byte-compared here against fresh
        // buffers, across every kernel and both B layouts.
        let shapes = [
            (130usize, 200usize, 150usize),
            (5, 7, 9),
            (64, 64, 64),
            (3, 150, 130),
            (1, 1, 1),
            (65, 129, 33),
        ];
        for kernel in host_kernels() {
            let mut reused = GemmScratch {
                kernel,
                ..GemmScratch::default()
            };
            for (i, &(m, k, n)) in shapes.iter().enumerate() {
                let a = Tensor::random([m, k], 40 + i as u64);
                let b = Tensor::random([k, n], 80 + i as u64);
                let mut fresh_scratch = GemmScratch {
                    kernel,
                    ..GemmScratch::default()
                };
                let mut want = Tensor::zeros([m, n]);
                matmul_into(
                    a.data(),
                    b.data(),
                    (m, k, n),
                    want.data_mut(),
                    1,
                    &mut fresh_scratch,
                );
                let mut got = Tensor::zeros([m, n]);
                matmul_into(
                    a.data(),
                    b.data(),
                    (m, k, n),
                    got.data_mut(),
                    2,
                    &mut reused,
                );
                assert_eq!(want.data(), got.data(), "step {i} ({m},{k},{n}) {kernel:?}");
                // Transposed-B (dense) path through the same buffers.
                let x = Tensor::random([m, k], 140 + i as u64);
                let w = Tensor::random([n, k], 180 + i as u64);
                let mut want_d = Tensor::zeros([m, n]);
                dense_act_into(
                    &x,
                    &w,
                    None,
                    ActivationKind::Linear,
                    1,
                    &mut want_d,
                    &mut GemmScratch {
                        kernel,
                        ..GemmScratch::default()
                    },
                );
                let mut got_d = Tensor::zeros([m, n]);
                dense_act_into(
                    &x,
                    &w,
                    None,
                    ActivationKind::Linear,
                    1,
                    &mut got_d,
                    &mut reused,
                );
                assert_eq!(want_d.data(), got_d.data(), "dense step {i} {kernel:?}");
            }
        }
    }

    #[test]
    fn sparse_matmul_matches_dense_bitwise() {
        // Zero out a chunk of A exactly, as the pruned WeightStore does:
        // skipping 0·x terms must not change a single bit.
        let mut a = Tensor::random([67, 50], 8);
        for (i, v) in a.data_mut().iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = 0.0;
            }
        }
        let b = Tensor::random([50, 40], 9);
        let dense = matmul(&a, &b);
        let mut sparse = Tensor::zeros([67, 40]);
        matmul_sparse_into(a.data(), b.data(), (67, 50, 40), sparse.data_mut(), 1);
        assert_eq!(dense.data(), sparse.data());
        // And across thread counts.
        let mut sparse4 = Tensor::zeros([67, 40]);
        matmul_sparse_into(a.data(), b.data(), (67, 50, 40), sparse4.data_mut(), 4);
        assert_eq!(dense.data(), sparse4.data());
    }

    #[test]
    fn matmul_into_overwrites_recycled_buffers() {
        // Simulate an arena-recycled output full of stale garbage.
        let a = Tensor::random([10, 12], 4);
        let b = Tensor::random([12, 11], 5);
        let clean = matmul(&a, &b);
        let mut dirty = vec![f32::NAN; 110];
        let mut scratch = GemmScratch::default();
        matmul_into(
            a.data(),
            b.data(),
            (10, 12, 11),
            &mut dirty,
            1,
            &mut scratch,
        );
        assert_eq!(clean.data(), &dirty[..]);
    }

    #[test]
    fn gemm_conv_matches_direct_conv() {
        for &(cin, cout, hw, k, s, p) in &[
            (3usize, 8usize, 11usize, 3usize, 1usize, 1usize),
            (4, 6, 9, 3, 2, 1),
            (2, 5, 8, 5, 1, 2),
            (3, 7, 10, 1, 1, 0),
        ] {
            let x = Tensor::random([2, cin, hw, hw], 10);
            let w = Tensor::random([cout, cin, k, k], 11);
            let bias: Vec<f32> = (0..cout).map(|i| i as f32 * 0.1).collect();
            let direct = kernels::conv2d(&x, &w, Some(&bias), (s, s), (p, p), 1);
            let gemm = conv2d_gemm(&x, &w, Some(&bias), (s, s), (p, p));
            assert_eq!(direct.shape(), gemm.shape());
            assert!(
                direct.mean_abs_diff(&gemm) < 1e-4,
                "cin={cin} cout={cout} k={k}: diff {}",
                direct.mean_abs_diff(&gemm)
            );
        }
    }

    #[test]
    fn fused_epilogue_matches_separate_kernels() {
        use edgebench_graph::ActivationKind as A;
        let x = Tensor::random([2, 3, 12, 12], 20);
        let w = Tensor::random([16, 3, 3, 3], 21);
        let bias: Vec<f32> = (0..16).map(|i| i as f32 * 0.05 - 0.3).collect();
        let gamma: Vec<f32> = (0..16).map(|i| 1.0 + 0.1 * i as f32).collect();
        let beta: Vec<f32> = (0..16).map(|i| 0.2 - 0.02 * i as f32).collect();
        for &(s, p) in &[(1usize, 1usize), (2, 1), (1, 0)] {
            for act in [A::Relu, A::Relu6, A::Leaky, A::Sigmoid, A::Tanh, A::Linear] {
                // Unfused: conv (+bias) → batch-norm → activation.
                let conv = conv2d_gemm(&x, &w, Some(&bias), (s, s), (p, p));
                let bn = kernels::batch_norm(&conv, &gamma, &beta);
                let expect = kernels::activation(&bn, act);
                // Fused: one pass.
                let mut got = Tensor::zeros(conv.shape().dims().to_vec());
                let epi = Epilogue {
                    bias: Some(&bias),
                    bn: Some((&gamma, &beta)),
                    act,
                };
                let mut scratch = GemmScratch::default();
                conv2d_gemm_into(
                    &x,
                    &w,
                    (s, s),
                    (p, p),
                    &epi,
                    false,
                    1,
                    &mut got,
                    &mut scratch,
                );
                assert_eq!(expect.data(), got.data(), "s={s} p={p} act={act:?}");
            }
        }
    }

    #[test]
    fn conv_algo_selection_table() {
        // Grouped layers never take the GEMM lowering.
        assert_eq!(select_conv_algo(1 << 20, 1 << 10, 2), ConvAlgo::Direct);
        // Tiny layers stay direct; big ones lower to im2col + GEMM.
        assert_eq!(select_conv_algo(64, 27, 1), ConvAlgo::Direct);
        assert_eq!(
            select_conv_algo(28 * 28 * 64, 32 * 9, 1),
            ConvAlgo::Im2colGemm
        );
        // The boundary itself is inclusive for Direct.
        assert_eq!(select_conv_algo(1 << 8, 1 << 8, 1), ConvAlgo::Direct);
        assert_eq!(
            select_conv_algo((1 << 8) + 1, 1 << 8, 1),
            ConvAlgo::Im2colGemm
        );
        // Overflow-safe on absurd shapes.
        assert_eq!(
            select_conv_algo(usize::MAX, usize::MAX, 1),
            ConvAlgo::Im2colGemm
        );
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_rejects_mismatched_dims() {
        let _ = matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }
}
