//! The graph interpreter: runs an [`edgebench_graph::Graph`] numerically
//! with deterministic synthetic weights.

use crate::gemm::{self, ConvAlgo, Epilogue, GemmScratch};
use crate::kernels;
use crate::pool;
use crate::quant::fake_quantize_tensor;
use crate::simd::KernelKind;
use crate::{ExecError, Tensor};
use edgebench_graph::{ActivationKind, Graph, Node, Op, TensorShape};
use std::borrow::Cow;
use std::sync::Mutex;

/// Numeric precision the executor simulates.
///
/// * `F32` — plain single precision.
/// * `F16` — every weight and every operator output is rounded through
///   binary16 (round-to-nearest-even), emulating half-precision pipelines.
/// * `Int8` — every weight and every operator output is rounded through an
///   8-bit affine grid ("fake quantization", the numerics TFLite's
///   post-training quantization produces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// IEEE-754 single precision.
    #[default]
    F32,
    /// Emulated IEEE-754 half precision.
    F16,
    /// Simulated affine INT8.
    Int8,
}

/// Deterministic synthetic-weight generator.
///
/// Weights are keyed by *node name* (not id), so structural graph
/// transformations that preserve names — e.g. the fusion pass in
/// `edgebench-frameworks` — see identical weights before and after, making
/// numerical-equivalence testing possible. Batch-norm parameters are keyed
/// by the *producing* node's name for the same reason.
#[derive(Debug, Clone)]
pub struct WeightStore {
    seed: u64,
    sparsity: f32,
}

impl WeightStore {
    /// Creates a store with the given master seed.
    pub fn new(seed: u64) -> Self {
        WeightStore {
            seed,
            sparsity: 0.0,
        }
    }

    /// Returns a store that magnitude-prunes every generated weight tensor
    /// to the given sparsity (fraction of weights zeroed, smallest first) —
    /// the synthetic stand-in for a pruned checkpoint (paper §III-B /
    /// Table II pruning rows).
    ///
    /// # Panics
    ///
    /// Panics if `sparsity` is not in `[0, 1)`.
    pub fn with_sparsity(mut self, sparsity: f32) -> Self {
        assert!((0.0..1.0).contains(&sparsity), "sparsity must be in [0, 1)");
        self.sparsity = sparsity;
        self
    }

    /// Zeroes exactly the `⌊len · sparsity⌋` smallest-magnitude elements of
    /// `t` in place. Magnitude ties are broken by element index, so the
    /// zeroed set is deterministic and the achieved sparsity never
    /// overshoots the request (a threshold sweep would zero *every* element
    /// tying the cut-off value).
    fn prune(&self, t: &mut Tensor) {
        if self.sparsity <= 0.0 || t.is_empty() {
            return;
        }
        let data = t.data_mut();
        let k = ((data.len() as f32) * self.sparsity) as usize;
        if k == 0 {
            return;
        }
        let mut order: Vec<usize> = (0..data.len()).collect();
        order.select_nth_unstable_by(k - 1, |&a, &b| {
            data[a].abs().total_cmp(&data[b].abs()).then(a.cmp(&b))
        });
        for &i in &order[..k] {
            data[i] = 0.0;
        }
    }

    fn key_seed(&self, key: &str) -> u64 {
        // FNV-1a over the key, mixed with the master seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed.rotate_left(17);
        for b in key.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// A weight tensor for `key`, scaled to variance `2 / fan_in`
    /// (He initialization) so deep nets keep stable activation magnitudes.
    pub fn weight(&self, key: &str, shape: Vec<usize>, fan_in: usize) -> Tensor {
        let mut t = Tensor::random(shape, self.key_seed(key));
        let scale = (24.0 / fan_in.max(1) as f32).sqrt();
        for v in t.data_mut() {
            *v *= scale;
        }
        self.prune(&mut t);
        t
    }

    /// A bias vector for `key` with small values.
    pub fn bias(&self, key: &str, len: usize) -> Vec<f32> {
        let t = Tensor::random([len], self.key_seed(key).wrapping_add(1));
        t.data().iter().map(|v| v * 0.02).collect()
    }

    /// Batch-norm scale (`gamma ≈ 1`) and shift (`beta ≈ 0`) for `key`.
    pub fn bn_params(&self, key: &str, channels: usize) -> (Vec<f32>, Vec<f32>) {
        let g = Tensor::random([channels], self.key_seed(key).wrapping_add(2));
        let b = Tensor::random([channels], self.key_seed(key).wrapping_add(3));
        (
            g.data().iter().map(|v| 1.0 + 0.2 * v).collect(),
            b.data().iter().map(|v| 0.1 * v).collect(),
        )
    }
}

/// Execution statistics collected by [`Executor::run_with_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Peak bytes of simultaneously live activation tensors.
    pub peak_live_bytes: usize,
    /// Number of operator invocations executed.
    pub ops_executed: usize,
}

/// Per-node activation hook: invoked with `(node_index, output)` after
/// each node's output is lowered to the run precision and before any
/// downstream consumer reads it. The SDC defense layer
/// ([`crate::integrity`]) builds its activation guards and injection
/// campaigns on this; an observer error aborts the run.
type NodeObserver<'a> = dyn FnMut(usize, &mut Tensor) -> Result<(), ExecError> + 'a;

/// Per-run scratch memory: retired activation buffers, GEMM packing
/// buffers, and the interpreter's bookkeeping vectors, all reused across
/// inferences so steady-state execution does no heap allocation.
///
/// Every kernel that writes into an arena tensor overwrites *all* of its
/// elements, so recycled buffers never need zeroing.
#[derive(Debug, Default)]
struct Arena {
    /// Retired activation buffers, available for reuse (best fit wins).
    free: Vec<Vec<f32>>,
    /// GEMM packing + im2col scratch.
    gemm: GemmScratch,
    /// Per-node activation slots, recycled between runs.
    slots: Vec<Option<Tensor>>,
    /// Per-node last-consumer indices, recycled between runs.
    last_use: Vec<usize>,
    /// Per-node live byte counts for peak accounting, recycled between runs.
    lives: Vec<usize>,
}

impl Arena {
    /// Hands out a tensor of `shape`, reusing the smallest retired buffer
    /// whose capacity suffices. Contents are unspecified — the caller must
    /// overwrite every element.
    fn take(&mut self, shape: &TensorShape) -> Tensor {
        let n = shape.num_elements();
        let mut best: Option<(usize, usize)> = None; // (capacity, index)
        for (i, buf) in self.free.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= n && best.is_none_or(|(bc, _)| cap < bc) {
                best = Some((cap, i));
            }
        }
        match best {
            Some((_, i)) => {
                let mut v = self.free.swap_remove(i);
                v.resize(n, 0.0);
                Tensor::from_vec(shape.clone(), v)
            }
            None => Tensor::from_vec(shape.clone(), vec![0.0; n]),
        }
    }

    /// Returns a dead tensor's buffer to the free list.
    fn recycle(&mut self, t: Tensor) {
        self.free.push(t.into_vec());
    }
}

/// A node's first input as the interpreter hands it to the dispatcher:
/// either owned (the producing slot was stolen because this node is its
/// last consumer, enabling in-place execution) or borrowed.
enum First<'a> {
    Owned(Tensor),
    Borrowed(&'a Tensor),
}

impl First<'_> {
    fn tensor(&self) -> &Tensor {
        match self {
            First::Owned(t) => t,
            First::Borrowed(t) => t,
        }
    }

    /// Converts into an owned tensor an in-place kernel may mutate; the
    /// borrowed case copies into an arena buffer (the producer has other
    /// consumers left).
    fn into_tensor(self, arena: &mut Arena) -> Tensor {
        match self {
            First::Owned(t) => t,
            First::Borrowed(t) => {
                let mut fresh = arena.take(t.shape());
                fresh.data_mut().copy_from_slice(t.data());
                fresh
            }
        }
    }
}

/// Materialized learned parameters for one node: what [`WeightStore`]
/// derives from the node name, generated once and reusable across
/// inferences. Weight tensors are stored already lowered to the executor's
/// [`Precision`] (biases stay `f32`, exactly as the on-the-fly path
/// applies them).
#[derive(Debug, Clone)]
enum NodeParams {
    /// The node has no learned parameters (pooling, activation, …).
    None,
    /// Conv2d / DepthwiseConv2d / Conv3d / Dense weights and bias.
    Linear { w: Tensor, b: Option<Vec<f32>> },
    /// Standalone batch-norm scale and shift.
    Bn { gamma: Vec<f32>, beta: Vec<f32> },
    /// Fused conv + optional folded batch-norm.
    Fused {
        w: Tensor,
        b: Option<Vec<f32>>,
        bn: Option<(Vec<f32>, Vec<f32>)>,
    },
}

/// Executes a graph with synthetic weights at a chosen [`Precision`].
#[derive(Debug)]
pub struct Executor<'g> {
    graph: &'g Graph,
    weights: WeightStore,
    precision: Precision,
    threads: usize,
    kernel: KernelKind,
}

impl<'g> Executor<'g> {
    /// Creates an executor over `graph` with seed 0, F32 precision, one
    /// intra-op thread and auto-dispatched GEMM kernels.
    pub fn new(graph: &'g Graph) -> Self {
        Executor {
            graph,
            weights: WeightStore::new(0),
            precision: Precision::F32,
            threads: 1,
            kernel: KernelKind::Auto,
        }
    }

    /// Sets the weight seed (keeps the configured sparsity).
    pub fn with_seed(mut self, seed: u64) -> Self {
        let sparsity = self.weights.sparsity;
        self.weights = WeightStore::new(seed).with_sparsity(sparsity);
        self
    }

    /// Magnitude-prunes all synthetic weights to the given sparsity.
    ///
    /// # Panics
    ///
    /// Panics if `sparsity` is not in `[0, 1)`.
    pub fn with_weight_sparsity(mut self, sparsity: f32) -> Self {
        self.weights = self.weights.clone().with_sparsity(sparsity);
        self
    }

    /// Sets the simulated precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the intra-op thread count used by parallel kernels (GEMM
    /// row-panels, dense batch rows). `0` means "use every hardware
    /// thread". Outputs are byte-identical at any setting: each output
    /// element's reduction order is fixed regardless of how panels are
    /// distributed over workers.
    pub fn with_intra_op_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects the GEMM micro-kernel (the CLI's `--kernel` A/B switch).
    /// The request is resolved against the host once, when an arena is
    /// created — and, like threads and blocking, it is a pure performance
    /// knob: every kernel produces byte-identical output.
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// A fresh scratch arena with this executor's kernel choice resolved.
    fn new_arena(&self) -> Arena {
        let mut arena = Arena::default();
        arena.gemm.set_kernel(self.kernel);
        arena
    }

    /// The weight store in use (exposed for cross-checking transformations).
    pub fn weights(&self) -> &WeightStore {
        &self.weights
    }

    fn lower(&self, mut t: Tensor) -> Tensor {
        match self.precision {
            Precision::F32 => t,
            Precision::F16 => {
                crate::f16::round_slice_f16(t.data_mut());
                t
            }
            Precision::Int8 => {
                fake_quantize_tensor(&mut t);
                t
            }
        }
    }

    /// The key under which batch-norm parameters for `node` are stored: the
    /// producing node's name (see [`WeightStore`] docs).
    fn bn_key(&self, node: &Node) -> String {
        let producer = node
            .inputs()
            .first()
            .map(|&i| self.graph.node(i).name().to_string())
            .unwrap_or_else(|| node.name().to_string());
        format!("bn:{producer}")
    }

    /// The input-channel count a node's first input carries, read from the
    /// graph's static shapes so parameters can be materialized without a
    /// runtime tensor. Identical to `inputs[0].shape().channels()` during
    /// execution — the kernel outputs match the inferred shapes.
    fn static_in_channels(&self, node: &Node) -> usize {
        let &producer = node
            .inputs()
            .first()
            .expect("parameterized op has an input");
        self.graph.node(producer).output_shape().channels()
    }

    /// Materializes the weight/bias pair for a conv-family op (`Conv2d`,
    /// `DepthwiseConv2d`) under `name` — the single source of the weight
    /// key-and-shape convention, shared by the plain and fused paths.
    fn conv_params(
        &self,
        name: &str,
        conv: &Op,
        in_c: usize,
    ) -> Result<(Tensor, Option<Vec<f32>>), ExecError> {
        match conv {
            Op::Conv2d {
                out_channels,
                kernel,
                groups,
                bias,
                ..
            } => {
                let fan_in = (in_c / groups) * kernel.0 * kernel.1;
                let w = self.lower(self.weights.weight(
                    name,
                    vec![*out_channels, in_c / groups, kernel.0, kernel.1],
                    fan_in,
                ));
                Ok((w, bias.then(|| self.weights.bias(name, *out_channels))))
            }
            Op::DepthwiseConv2d {
                multiplier,
                kernel,
                bias,
                ..
            } => {
                let out_c = in_c * multiplier;
                let fan_in = kernel.0 * kernel.1;
                let w = self.lower(self.weights.weight(
                    name,
                    vec![out_c, 1, kernel.0, kernel.1],
                    fan_in,
                ));
                Ok((w, bias.then(|| self.weights.bias(name, out_c))))
            }
            other => Err(ExecError::InternalPlanMismatch {
                node: name.to_string(),
                detail: format!("FusedConvBnAct around non-conv op {other:?}"),
            }),
        }
    }

    /// Generates every learned parameter `node` needs, keyed by node name
    /// exactly as the per-inference path does — so materialized-once and
    /// generated-every-run execution are bit-identical.
    fn materialize(&self, node: &Node) -> Result<NodeParams, ExecError> {
        Ok(match node.op() {
            op @ (Op::Conv2d { .. } | Op::DepthwiseConv2d { .. }) => {
                let (w, b) = self.conv_params(node.name(), op, self.static_in_channels(node))?;
                NodeParams::Linear { w, b }
            }
            Op::Conv3d {
                out_channels,
                kernel,
                bias,
                ..
            } => {
                let in_c = self.static_in_channels(node);
                let fan_in = in_c * kernel.0 * kernel.1 * kernel.2;
                let w = self.lower(self.weights.weight(
                    node.name(),
                    vec![*out_channels, in_c, kernel.0, kernel.1, kernel.2],
                    fan_in,
                ));
                let b = bias.then(|| self.weights.bias(node.name(), *out_channels));
                NodeParams::Linear { w, b }
            }
            Op::Dense { units, bias } | Op::FusedDenseAct { units, bias, .. } => {
                let &producer = node.inputs().first().expect("dense has an input");
                let f = self.graph.node(producer).output_shape().dim(1);
                let w = self.lower(self.weights.weight(node.name(), vec![*units, f], f));
                let b = bias.then(|| self.weights.bias(node.name(), *units));
                NodeParams::Linear { w, b }
            }
            Op::BatchNorm => {
                let c = self.static_in_channels(node);
                let (gamma, beta) = self.weights.bn_params(&self.bn_key(node), c);
                NodeParams::Bn { gamma, beta }
            }
            Op::FusedConvBnAct { conv, bn, .. } => {
                let (w, b) = self.conv_params(node.name(), conv, self.static_in_channels(node))?;
                let bn = bn.then(|| {
                    let c = node.output_shape().channels();
                    self.weights.bn_params(&format!("bn:{}", node.name()), c)
                });
                NodeParams::Fused { w, b, bn }
            }
            _ => NodeParams::None,
        })
    }

    /// Runs a conv-family op with already-materialized weights into an
    /// arena buffer, with the bias/BN/activation epilogue fused in. Large
    /// dense convolutions take the im2col+GEMM path (what real frameworks
    /// do); small or grouped ones stay direct. Pruned weight stores select
    /// the zero-skipping sparse GEMM (byte-identical results).
    #[allow(clippy::too_many_arguments)]
    fn conv_into(
        &self,
        node: &Node,
        conv: &Op,
        x: &Tensor,
        w: &Tensor,
        b: Option<&[f32]>,
        bn: Option<(&[f32], &[f32])>,
        act: ActivationKind,
        arena: &mut Arena,
    ) -> Result<Tensor, ExecError> {
        let mut out = arena.take(node.output_shape());
        match conv {
            Op::Conv2d {
                kernel,
                stride,
                padding,
                groups,
                ..
            } => {
                let fan_in = (x.shape().channels() / groups) * kernel.0 * kernel.1;
                if gemm::select_conv_algo(out.len(), fan_in, *groups) == ConvAlgo::Im2colGemm {
                    let epilogue = Epilogue { bias: b, bn, act };
                    gemm::conv2d_gemm_into(
                        x,
                        w,
                        *stride,
                        *padding,
                        &epilogue,
                        self.weights.sparsity > 0.0,
                        self.threads,
                        &mut out,
                        &mut arena.gemm,
                    );
                } else {
                    kernels::conv2d_into(x, w, b, *stride, *padding, *groups, &mut out);
                    kernels::bn_act_inplace(&mut out, bn, act);
                }
            }
            Op::DepthwiseConv2d {
                multiplier,
                stride,
                padding,
                ..
            } => {
                kernels::depthwise_conv2d_into(x, w, b, *stride, *padding, *multiplier, &mut out);
                kernels::bn_act_inplace(&mut out, bn, act);
            }
            other => {
                arena.recycle(out);
                return Err(ExecError::InternalPlanMismatch {
                    node: node.name().to_string(),
                    detail: format!("FusedConvBnAct around non-conv op {other:?}"),
                });
            }
        }
        Ok(out)
    }

    /// Whether `op` may consume its first input's buffer in place when
    /// this node is that buffer's last consumer.
    fn consumes_first(op: &Op) -> bool {
        matches!(
            op,
            Op::Activation { .. }
                | Op::BatchNorm
                | Op::Softmax
                | Op::Dropout
                | Op::Flatten
                | Op::Add
                | Op::Mul
        )
    }

    /// Applies `node` using `params`, lowering the result to the executor's
    /// precision. Shared by the per-run generation path ([`Executor`]) and
    /// the cached path ([`PreparedExecutor`]). `first` is the first input
    /// (owned when in-place execution is possible), `rest` the remaining
    /// inputs. Output buffers come from the arena.
    fn apply_node(
        &self,
        node: &Node,
        first: First<'_>,
        rest: &[&Tensor],
        params: &NodeParams,
        arena: &mut Arena,
    ) -> Result<Tensor, ExecError> {
        let out = match (node.op(), params) {
            (Op::Input { .. }, _) => unreachable!("inputs are seeded externally"),
            (
                op @ (Op::Conv2d { .. } | Op::DepthwiseConv2d { .. }),
                NodeParams::Linear { w, b },
            ) => self.conv_into(
                node,
                op,
                first.tensor(),
                w,
                b.as_deref(),
                None,
                ActivationKind::Linear,
                arena,
            )?,
            (Op::FusedConvBnAct { conv, act, .. }, NodeParams::Fused { w, b, bn }) => self
                .conv_into(
                    node,
                    conv,
                    first.tensor(),
                    w,
                    b.as_deref(),
                    bn.as_ref().map(|(g, s)| (g.as_slice(), s.as_slice())),
                    *act,
                    arena,
                )?,
            (
                Op::Conv3d {
                    stride, padding, ..
                },
                NodeParams::Linear { w, b },
            ) => kernels::conv3d(first.tensor(), w, b.as_deref(), *stride, *padding),
            (Op::Dense { .. }, NodeParams::Linear { w, b }) => {
                let mut out = arena.take(node.output_shape());
                gemm::dense_act_into(
                    first.tensor(),
                    w,
                    b.as_deref(),
                    ActivationKind::Linear,
                    self.threads,
                    &mut out,
                    &mut arena.gemm,
                );
                out
            }
            (Op::FusedDenseAct { act, .. }, NodeParams::Linear { w, b }) => {
                let mut out = arena.take(node.output_shape());
                gemm::dense_act_into(
                    first.tensor(),
                    w,
                    b.as_deref(),
                    *act,
                    self.threads,
                    &mut out,
                    &mut arena.gemm,
                );
                out
            }
            (
                Op::Pool {
                    kind,
                    kernel,
                    stride,
                    padding,
                },
                _,
            ) => {
                let mut out = arena.take(node.output_shape());
                kernels::pool2d_into(first.tensor(), *kind, *kernel, *stride, *padding, &mut out);
                out
            }
            (
                Op::Pool3d {
                    kind,
                    kernel,
                    stride,
                },
                _,
            ) => kernels::pool3d(first.tensor(), *kind, *kernel, *stride),
            (Op::BatchNorm, NodeParams::Bn { gamma, beta }) => {
                let mut t = first.into_tensor(arena);
                kernels::batch_norm_inplace(&mut t, gamma, beta);
                t
            }
            (Op::Lrn { size }, _) => {
                let mut out = arena.take(node.output_shape());
                kernels::lrn_into(first.tensor(), *size, &mut out);
                out
            }
            (Op::Activation { kind }, _) => {
                let mut t = first.into_tensor(arena);
                kernels::activation_inplace(&mut t, *kind);
                t
            }
            (Op::Add, _) => {
                let mut t = first.into_tensor(arena);
                kernels::add_assign(&mut t, rest[0]);
                t
            }
            (Op::Mul, _) => {
                let mut t = first.into_tensor(arena);
                kernels::mul_assign(&mut t, rest[0]);
                t
            }
            (Op::Slice { start, len }, _) => kernels::slice2(first.tensor(), *start, *len),
            (Op::Concat, _) => {
                let refs: Vec<&Tensor> = std::iter::once(first.tensor())
                    .chain(rest.iter().copied())
                    .collect();
                let mut out = arena.take(node.output_shape());
                kernels::concat_into(&refs, &mut out);
                out
            }
            (Op::Upsample { factor }, _) => kernels::upsample(first.tensor(), *factor),
            (Op::Flatten, _) => {
                let mut t = first.into_tensor(arena);
                let n = t.shape().batch();
                let f = t.len() / n;
                t.reshape([n, f]);
                t
            }
            (Op::Softmax, _) => {
                let mut t = first.into_tensor(arena);
                kernels::softmax_inplace(&mut t);
                t
            }
            (Op::Dropout, _) => first.into_tensor(arena),
            (op, params) => {
                return Err(ExecError::InternalPlanMismatch {
                    node: node.name().to_string(),
                    detail: format!("node {op:?} paired with mismatched params {params:?}"),
                })
            }
        };
        Ok(self.lower(out))
    }

    /// Runs one inference, returning the graph output.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InputShapeMismatch`] if `input` does not match
    /// the graph's input shape, or [`ExecError::NoInput`] for a graph with
    /// no input node.
    pub fn run(&self, input: &Tensor) -> Result<Tensor, ExecError> {
        self.run_with_stats(input).map(|(t, _)| t)
    }

    /// Runs one inference, also measuring real memory behaviour: the peak
    /// bytes of simultaneously live activations under free-after-last-use.
    ///
    /// This is the functional cross-check of the IR's analytical
    /// `peak_activation_bytes` (see the workspace integration tests).
    ///
    /// # Errors
    ///
    /// Same as [`Executor::run`].
    pub fn run_with_stats(&self, input: &Tensor) -> Result<(Tensor, RunStats), ExecError> {
        let mut arena = self.new_arena();
        self.run_loop(
            input,
            &mut arena,
            |node| self.materialize(node).map(Cow::Owned),
            None,
        )
    }

    /// The interpreter loop shared by [`Executor`] (weights regenerated per
    /// node visit) and [`PreparedExecutor`] (weights served from the cache):
    /// topological execution with free-after-last-use buffer recycling.
    ///
    /// Peak-live accounting tracks *logical* liveness — a tensor's bytes
    /// count from the node that produces it until its last consumer runs,
    /// even when an in-place op physically reuses the buffer — so the
    /// measured peak exactly matches the IR's analytical
    /// `peak_activation_bytes` regardless of how aggressively buffers are
    /// recycled.
    /// `observer` (when present) is invoked once per executed node, after
    /// the node's output has been lowered to the run precision and before
    /// downstream consumers see it — the hook integrity guards use to
    /// inspect activations and fault campaigns use to corrupt them. An
    /// observer error aborts the run.
    fn run_loop<'p>(
        &self,
        input: &Tensor,
        arena: &mut Arena,
        params_of: impl Fn(&Node) -> Result<Cow<'p, NodeParams>, ExecError>,
        mut observer: Option<&mut NodeObserver<'_>>,
    ) -> Result<(Tensor, RunStats), ExecError> {
        let input_ids = self.graph.input_ids();
        let &input_id = input_ids.first().ok_or(ExecError::NoInput)?;
        let expected = self.graph.node(input_id).output_shape();
        if expected != input.shape() {
            return Err(ExecError::InputShapeMismatch {
                expected: expected.to_string(),
                actual: input.shape().to_string(),
            });
        }

        // last_use for free-after-last-consumer memory behaviour. The
        // bookkeeping vectors live in the arena between runs.
        let n = self.graph.len();
        let out_idx = self.graph.output().index();
        let mut last_use = std::mem::take(&mut arena.last_use);
        last_use.clear();
        last_use.extend(0..n);
        for node in self.graph.nodes() {
            for &inp in node.inputs() {
                last_use[inp.index()] = last_use[inp.index()].max(node.id().index());
            }
        }
        last_use[out_idx] = n - 1;

        let mut slots = std::mem::take(&mut arena.slots);
        slots.clear();
        slots.resize_with(n, || None);
        let mut lives = std::mem::take(&mut arena.lives);
        lives.clear();
        lives.resize(n, 0);

        let elem = std::mem::size_of::<f32>();
        let in_idx = input_id.index();
        let mut seeded = arena.take(input.shape());
        seeded.data_mut().copy_from_slice(input.data());
        let seeded = self.lower(seeded);
        lives[in_idx] = seeded.len() * elem;
        let mut live_total = lives[in_idx];
        let mut stats = RunStats {
            peak_live_bytes: live_total,
            ops_executed: 0,
        };
        slots[in_idx] = Some(seeded);

        for node in self.graph.nodes() {
            let idx = node.id().index();
            if matches!(node.op(), Op::Input { .. }) {
                continue;
            }
            let ins = node.inputs();
            let i0 = ins[0].index();
            // The first input may be consumed in place when this node is
            // its sole remaining consumer.
            let movable = Self::consumes_first(node.op())
                && last_use[i0] == idx
                && ins[1..].iter().all(|j| j.index() != i0);
            let params = params_of(node)?;
            let mut out = if movable {
                let t = slots[i0].take().expect("topological order");
                let rest: Vec<&Tensor> = ins[1..]
                    .iter()
                    .map(|j| slots[j.index()].as_ref().expect("topological order"))
                    .collect();
                self.apply_node(node, First::Owned(t), &rest, &params, arena)?
            } else {
                let rest: Vec<&Tensor> = ins[1..]
                    .iter()
                    .map(|j| slots[j.index()].as_ref().expect("topological order"))
                    .collect();
                let first = First::Borrowed(slots[i0].as_ref().expect("topological order"));
                self.apply_node(node, first, &rest, &params, arena)?
            };
            if let Some(obs) = observer.as_deref_mut() {
                obs(idx, &mut out)?;
            }
            let out = out;
            stats.ops_executed += 1;
            lives[idx] = out.len() * elem;
            live_total += lives[idx];
            stats.peak_live_bytes = stats.peak_live_bytes.max(live_total);
            slots[idx] = Some(out);
            // Free dead buffers (including a possibly never-consumed own
            // output) back into the arena.
            for k in std::iter::once(idx).chain(ins.iter().map(|i| i.index())) {
                if last_use[k] <= idx && k != out_idx {
                    live_total -= lives[k];
                    lives[k] = 0;
                    if let Some(t) = slots[k].take() {
                        arena.recycle(t);
                    }
                }
            }
        }
        let out = slots[out_idx].take().expect("output computed");
        // Return surviving buffers and bookkeeping to the arena for reuse.
        for slot in slots.iter_mut() {
            if let Some(t) = slot.take() {
                arena.recycle(t);
            }
        }
        arena.slots = slots;
        arena.last_use = last_use;
        arena.lives = lives;
        Ok((out, stats))
    }

    /// Materializes every weight, bias and batch-norm tensor for the graph
    /// once, returning an executor that reuses them across inferences.
    ///
    /// Parameters are keyed by node name exactly as the on-the-fly path
    /// keys them, so outputs are bit-for-bit identical to [`Executor::run`]
    /// at every precision and sparsity — only the per-inference PRNG and
    /// pruning work disappears.
    ///
    /// Alongside the parameters, `prepare` records a baseline FNV-style
    /// checksum of every node's cached `f32` bit patterns — the reference
    /// the SDC defense layer ([`crate::integrity`]) verifies against.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InternalPlanMismatch`] if the graph contains a
    /// malformed fused node (e.g. `FusedConvBnAct` wrapping a non-conv op).
    pub fn prepare(self) -> Result<PreparedExecutor<'g>, ExecError> {
        let params: Vec<NodeParams> = self
            .graph
            .nodes()
            .iter()
            .map(|n| self.materialize(n))
            .collect::<Result<_, _>>()?;
        let checksums = params.iter().map(param_checksum).collect();
        // Pre-size the arena from the graph's static shapes: one buffer per
        // node output (an upper bound on the live set) plus GEMM packing and
        // im2col scratch for the largest convolution, so steady-state
        // inference allocates nothing. Detecting the cache hierarchy here
        // (it is cached process-wide) keeps the first run's latency clean
        // and fixes the blocking every later reserve/call sees.
        crate::blocking::cache_info();
        let mut arena = self.new_arena();
        let workers = pool::effective_threads(self.threads);
        for node in self.graph.nodes() {
            let out_shape = node.output_shape();
            arena.free.push(vec![0.0; out_shape.num_elements()]);
            let conv = match node.op() {
                c @ Op::Conv2d { .. } => Some(c),
                Op::FusedConvBnAct { conv, .. } => Some(conv.as_ref()),
                _ => None,
            };
            if let Some(Op::Conv2d { kernel, groups, .. }) = conv {
                let fan_in = (self.static_in_channels(node) / groups) * kernel.0 * kernel.1;
                if gemm::select_conv_algo(out_shape.num_elements(), fan_in, *groups)
                    == ConvAlgo::Im2colGemm
                {
                    let m = out_shape.channels();
                    let cols = out_shape.height() * out_shape.width();
                    arena
                        .gemm
                        .reserve((m, fan_in, cols), fan_in * cols, workers);
                }
            }
        }
        Ok(PreparedExecutor {
            exec: self,
            params,
            checksums,
            arena: Mutex::new(arena),
        })
    }
}

/// The canonical flattening of a node's cached parameters into `f32`
/// slices: weights first, then bias, then batch-norm gamma and beta. The
/// checksum, the element addressing used by fault injection, and repair
/// all share this order.
fn param_parts(p: &NodeParams) -> Vec<&[f32]> {
    match p {
        NodeParams::None => Vec::new(),
        NodeParams::Linear { w, b } => {
            let mut v = vec![w.data()];
            v.extend(b.as_deref());
            v
        }
        NodeParams::Bn { gamma, beta } => vec![gamma, beta],
        NodeParams::Fused { w, b, bn } => {
            let mut v = vec![w.data()];
            v.extend(b.as_deref());
            if let Some((g, s)) = bn {
                v.push(g);
                v.push(s);
            }
            v
        }
    }
}

/// Mutable view of the same canonical flattening, for fault injection.
fn param_parts_mut(p: &mut NodeParams) -> Vec<&mut [f32]> {
    match p {
        NodeParams::None => Vec::new(),
        NodeParams::Linear { w, b } => {
            let mut v = vec![w.data_mut()];
            if let Some(b) = b {
                v.push(b.as_mut_slice());
            }
            v
        }
        NodeParams::Bn { gamma, beta } => vec![gamma, beta],
        NodeParams::Fused { w, b, bn } => {
            let mut v = vec![w.data_mut()];
            if let Some(b) = b {
                v.push(b.as_mut_slice());
            }
            if let Some((g, s)) = bn {
                v.push(g);
                v.push(s);
            }
            v
        }
    }
}

/// FNV-1a baseline checksum over a node's cached parameter bit patterns.
fn param_checksum(p: &NodeParams) -> u64 {
    crate::integrity::checksum_parts(&param_parts(p))
}

/// An [`Executor`] with all synthetic parameters materialized up front.
///
/// The plain executor re-derives every weight tensor from the PRNG on every
/// single inference — faithful to nothing real, and the dominant cost for
/// small inputs. `PreparedExecutor` is the "loaded checkpoint" equivalent:
/// build it once with [`Executor::prepare`], then call [`PreparedExecutor::run`]
/// per inference.
///
/// # Examples
///
/// ```
/// use edgebench_models::Model;
/// use edgebench_tensor::{Executor, Tensor};
///
/// let g = Model::CifarNet.build();
/// let x = Tensor::random([1, 3, 32, 32], 7);
/// let once = Executor::new(&g).with_seed(1).run(&x).unwrap();
/// let prepared = Executor::new(&g).with_seed(1).prepare().unwrap();
/// assert_eq!(prepared.run(&x).unwrap(), once);
/// ```
#[derive(Debug)]
pub struct PreparedExecutor<'g> {
    exec: Executor<'g>,
    /// Materialized parameters, indexed by node id.
    params: Vec<NodeParams>,
    /// Prepare-time FNV-1a checksum of each node's parameters — the
    /// pristine reference integrity scrubs verify against.
    checksums: Vec<u64>,
    /// Reusable scratch memory. Guarded so `&self` runs stay possible from
    /// multiple threads: concurrent callers that miss the lock fall back to
    /// a run-local arena (correct, just not zero-alloc).
    arena: Mutex<Arena>,
}

impl PreparedExecutor<'_> {
    /// Runs one inference against the cached parameters.
    ///
    /// # Errors
    ///
    /// Same as [`Executor::run`].
    pub fn run(&self, input: &Tensor) -> Result<Tensor, ExecError> {
        self.run_with_stats(input).map(|(t, _)| t)
    }

    /// Runs one inference, also measuring peak live activation bytes.
    ///
    /// # Errors
    ///
    /// Same as [`Executor::run`].
    pub fn run_with_stats(&self, input: &Tensor) -> Result<(Tensor, RunStats), ExecError> {
        let mut local = self.exec.new_arena();
        let mut guard = self.arena.try_lock();
        let arena = match guard {
            Ok(ref mut a) => &mut **a,
            Err(_) => &mut local,
        };
        self.exec.run_loop(
            input,
            arena,
            |node| Ok(Cow::Borrowed(&self.params[node.id().index()])),
            None,
        )
    }

    /// Runs one inference with a per-node observer: after each node's
    /// output is lowered to the run precision, `observer(node_index, out)`
    /// may inspect or mutate it before downstream consumers see it. This
    /// is the hook the SDC defense layer ([`crate::integrity`]) builds its
    /// activation guards and injection campaigns on.
    ///
    /// # Errors
    ///
    /// Same as [`Executor::run`], plus whatever the observer returns.
    pub fn run_observed(
        &self,
        input: &Tensor,
        observer: &mut NodeObserver<'_>,
    ) -> Result<(Tensor, RunStats), ExecError> {
        let mut local = self.exec.new_arena();
        let mut guard = self.arena.try_lock();
        let arena = match guard {
            Ok(ref mut a) => &mut **a,
            Err(_) => &mut local,
        };
        self.exec.run_loop(
            input,
            arena,
            |node| Ok(Cow::Borrowed(&self.params[node.id().index()])),
            Some(observer),
        )
    }

    /// Number of nodes in the underlying graph (the index space of
    /// [`PreparedExecutor::param_elems`] and friends).
    pub fn node_count(&self) -> usize {
        self.params.len()
    }

    /// Name of node `idx` in the underlying graph.
    pub fn node_name(&self, idx: usize) -> &str {
        self.exec.graph.nodes()[idx].name()
    }

    /// Number of cached `f32` parameter words node `idx` holds, in the
    /// canonical order weights → bias → bn-gamma → bn-beta. Zero for
    /// parameterless nodes.
    pub fn param_elems(&self, idx: usize) -> usize {
        self.params
            .get(idx)
            .map_or(0, |p| param_parts(p).iter().map(|s| s.len()).sum())
    }

    /// The prepare-time baseline checksum of each node's parameters.
    pub fn param_checksums(&self) -> &[u64] {
        &self.checksums
    }

    /// Recomputes every node's parameter checksum and returns the indices
    /// whose cached bits no longer match the prepare-time baseline —
    /// i.e. the nodes silent corruption has touched since `prepare`.
    pub fn verify_params(&self) -> Vec<usize> {
        self.params
            .iter()
            .zip(&self.checksums)
            .enumerate()
            .filter(|(_, (p, &h))| param_checksum(p) != h)
            .map(|(i, _)| i)
            .collect()
    }

    /// Re-materializes node `idx`'s parameters from the pristine weight
    /// store (weights are a pure function of seed and node name, so this
    /// restores the exact prepare-time bits, including pruning and
    /// precision lowering). Returns the number of bytes rewritten.
    ///
    /// # Errors
    ///
    /// Same as [`Executor::prepare`] (cannot occur for a plan that
    /// prepared successfully).
    pub fn repair_node(&mut self, idx: usize) -> Result<usize, ExecError> {
        let node = &self.exec.graph.nodes()[idx];
        let fresh = self.exec.materialize(node)?;
        let bytes = param_parts(&fresh)
            .iter()
            .map(|s| std::mem::size_of_val(*s))
            .sum();
        debug_assert_eq!(param_checksum(&fresh), self.checksums[idx]);
        self.params[idx] = fresh;
        Ok(bytes)
    }

    /// Flips bit `bit` of the `element`-th cached `f32` parameter word of
    /// node `idx` (canonical order weights → bias → bn-gamma → bn-beta) —
    /// the deterministic injection primitive SDC campaigns use. Returns
    /// `false` when the coordinates are out of range (nothing flipped).
    pub fn corrupt_param_bit(&mut self, idx: usize, element: usize, bit: u8) -> bool {
        let Some(p) = self.params.get_mut(idx) else {
            return false;
        };
        if bit >= 32 {
            return false;
        }
        let mut remaining = element;
        for part in param_parts_mut(p) {
            if remaining < part.len() {
                let v = &mut part[remaining];
                *v = f32::from_bits(v.to_bits() ^ (1u32 << bit));
                return true;
            }
            remaining -= part.len();
        }
        false
    }

    /// Total bytes held by the materialized weight cache.
    pub fn cached_param_bytes(&self) -> usize {
        let elem = std::mem::size_of::<f32>();
        self.params
            .iter()
            .map(|p| match p {
                NodeParams::None => 0,
                NodeParams::Linear { w, b } => (w.len() + b.as_ref().map_or(0, Vec::len)) * elem,
                NodeParams::Bn { gamma, beta } => (gamma.len() + beta.len()) * elem,
                NodeParams::Fused { w, b, bn } => {
                    let bn_len = bn.as_ref().map_or(0, |(g, s)| g.len() + s.len());
                    (w.len() + b.as_ref().map_or(0, Vec::len) + bn_len) * elem
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebench_graph::GraphBuilder;

    fn tiny_graph() -> Graph {
        let mut b = GraphBuilder::new("tiny");
        let x = b.input([1, 3, 8, 8]);
        let c = b.conv2d(x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let bn = b.batch_norm(c).unwrap();
        let r = b.activation(bn, ActivationKind::Relu).unwrap();
        let p = b
            .pool(r, edgebench_graph::PoolKind::Max, (2, 2), (2, 2))
            .unwrap();
        let f = b.flatten(p).unwrap();
        let d = b.dense(f, 10).unwrap();
        let s = b.softmax(d).unwrap();
        b.build(s).unwrap()
    }

    #[test]
    fn run_produces_output_shape() {
        let g = tiny_graph();
        let exec = Executor::new(&g).with_seed(1);
        let out = exec.run(&Tensor::random([1, 3, 8, 8], 2)).unwrap();
        assert_eq!(out.shape().dims(), &[1, 10]);
        let sum: f32 = out.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "softmax sums to one");
    }

    #[test]
    fn execution_is_deterministic() {
        let g = tiny_graph();
        let exec = Executor::new(&g).with_seed(7);
        let x = Tensor::random([1, 3, 8, 8], 3);
        assert_eq!(exec.run(&x).unwrap(), exec.run(&x).unwrap());
    }

    #[test]
    fn different_seeds_give_different_outputs() {
        let g = tiny_graph();
        let x = Tensor::random([1, 3, 8, 8], 3);
        let a = Executor::new(&g).with_seed(1).run(&x).unwrap();
        let b = Executor::new(&g).with_seed(2).run(&x).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn wrong_input_shape_is_rejected() {
        let g = tiny_graph();
        let err = Executor::new(&g)
            .run(&Tensor::zeros([1, 3, 9, 9]))
            .unwrap_err();
        assert!(matches!(err, ExecError::InputShapeMismatch { .. }));
    }

    #[test]
    fn f16_output_is_close_to_f32() {
        let g = tiny_graph();
        let x = Tensor::random([1, 3, 8, 8], 3);
        let full = Executor::new(&g).with_seed(5).run(&x).unwrap();
        let half = Executor::new(&g)
            .with_seed(5)
            .with_precision(Precision::F16)
            .run(&x)
            .unwrap();
        let diff = full.mean_abs_diff(&half);
        assert!(diff > 0.0, "f16 must differ slightly");
        assert!(diff < 0.01, "f16 diff {diff} too large");
    }

    #[test]
    fn int8_output_is_degraded_more_than_f16() {
        let g = tiny_graph();
        let x = Tensor::random([1, 3, 8, 8], 3);
        let full = Executor::new(&g).with_seed(5).run(&x).unwrap();
        let half = Executor::new(&g)
            .with_seed(5)
            .with_precision(Precision::F16)
            .run(&x)
            .unwrap();
        let int8 = Executor::new(&g)
            .with_seed(5)
            .with_precision(Precision::Int8)
            .run(&x)
            .unwrap();
        assert!(full.mean_abs_diff(&int8) >= full.mean_abs_diff(&half));
    }

    #[test]
    fn sparsity_zeroes_the_requested_fraction() {
        let ws = WeightStore::new(1).with_sparsity(0.8);
        let w = ws.weight("k", vec![64, 64], 64);
        let zeros = w.data().iter().filter(|v| **v == 0.0).count();
        // Exactly ⌊len · sparsity⌋ elements, never more: magnitude ties must
        // not drag extra elements to zero.
        assert_eq!(zeros, (w.len() as f32 * 0.8) as usize);
    }

    #[test]
    fn pruning_ties_do_not_overshoot_requested_sparsity() {
        // A tensor full of identical magnitudes: every element ties the
        // threshold, so a `<= threshold` sweep would zero all of them.
        let mut t = Tensor::from_vec([8], vec![0.5, -0.5, 0.5, -0.5, 0.5, 0.5, -0.5, 0.5]);
        let ws = WeightStore::new(0).with_sparsity(0.5);
        ws.prune(&mut t);
        let zeros = t.data().iter().filter(|v| **v == 0.0).count();
        assert_eq!(zeros, 4, "exactly half, not all: {:?}", t.data());
        // Ties break by index, lowest first.
        assert!(t.data()[..4].iter().all(|&v| v == 0.0), "{:?}", t.data());
    }

    #[test]
    fn mild_pruning_perturbs_output_mildly() {
        let g = tiny_graph();
        let x = Tensor::random([1, 3, 8, 8], 3);
        let dense_out = Executor::new(&g).with_seed(5).run(&x).unwrap();
        let light = Executor::new(&g)
            .with_seed(5)
            .with_weight_sparsity(0.3)
            .run(&x)
            .unwrap();
        let heavy = Executor::new(&g)
            .with_seed(5)
            .with_weight_sparsity(0.9)
            .run(&x)
            .unwrap();
        let d_light = dense_out.mean_abs_diff(&light);
        let d_heavy = dense_out.mean_abs_diff(&heavy);
        assert!(d_light > 0.0);
        assert!(d_heavy > d_light, "heavy {d_heavy} vs light {d_light}");
    }

    #[test]
    #[should_panic(expected = "sparsity must be in [0, 1)")]
    fn full_sparsity_is_rejected() {
        let _ = WeightStore::new(0).with_sparsity(1.0);
    }

    #[test]
    fn residual_graph_executes() {
        let mut b = GraphBuilder::new("res");
        let x = b.input([1, 4, 6, 6]);
        let c1 = b.conv2d(x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let s = b.add(c1, x).unwrap();
        let g = b.build(s).unwrap();
        let out = Executor::new(&g)
            .run(&Tensor::random([1, 4, 6, 6], 1))
            .unwrap();
        assert_eq!(out.shape().dims(), &[1, 4, 6, 6]);
    }

    #[test]
    fn batched_execution_equals_stacked_single_runs() {
        // Inference is independent per batch element; with deterministic
        // weights, a batch-2 run must equal two batch-1 runs stacked.
        let mut b = GraphBuilder::new("t");
        let x = b.input([2, 3, 8, 8]);
        let c = b.conv2d(x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let r = b.activation(c, ActivationKind::Relu).unwrap();
        let p = b
            .pool(r, edgebench_graph::PoolKind::Avg, (2, 2), (2, 2))
            .unwrap();
        let g2 = b.build(p).unwrap();

        let mut b = GraphBuilder::new("t");
        let x = b.input([1, 3, 8, 8]);
        let c = b.conv2d(x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let r = b.activation(c, ActivationKind::Relu).unwrap();
        let p = b
            .pool(r, edgebench_graph::PoolKind::Avg, (2, 2), (2, 2))
            .unwrap();
        let g1 = b.build(p).unwrap();

        let a = Tensor::random([1, 3, 8, 8], 100);
        let bb = Tensor::random([1, 3, 8, 8], 101);
        let mut stacked = a.data().to_vec();
        stacked.extend_from_slice(bb.data());
        let batch_in = Tensor::from_vec([2, 3, 8, 8], stacked);

        let out2 = Executor::new(&g2).with_seed(4).run(&batch_in).unwrap();
        let out_a = Executor::new(&g1).with_seed(4).run(&a).unwrap();
        let out_b = Executor::new(&g1).with_seed(4).run(&bb).unwrap();
        let half = out2.len() / 2;
        let diff_a: f32 = out2.data()[..half]
            .iter()
            .zip(out_a.data())
            .map(|(x, y)| (x - y).abs())
            .sum();
        let diff_b: f32 = out2.data()[half..]
            .iter()
            .zip(out_b.data())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff_a < 1e-5 && diff_b < 1e-5, "a {diff_a} b {diff_b}");
    }

    #[test]
    fn prepared_executor_is_bit_identical_across_precisions_and_sparsity() {
        let g = tiny_graph();
        let x = Tensor::random([1, 3, 8, 8], 3);
        for p in [Precision::F32, Precision::F16, Precision::Int8] {
            for sparsity in [0.0, 0.3, 0.9] {
                let fresh = Executor::new(&g)
                    .with_seed(5)
                    .with_precision(p)
                    .with_weight_sparsity(sparsity)
                    .run(&x)
                    .unwrap();
                let cached = Executor::new(&g)
                    .with_seed(5)
                    .with_precision(p)
                    .with_weight_sparsity(sparsity)
                    .prepare()
                    .unwrap();
                // Repeated runs reuse the cache; each must equal the
                // regenerate-every-time path bit for bit.
                for _ in 0..2 {
                    assert_eq!(
                        cached.run(&x).unwrap(),
                        fresh,
                        "precision {p:?} sparsity {sparsity}"
                    );
                }
            }
        }
    }

    #[test]
    fn prepared_executor_matches_on_fused_graphs() {
        // Exercises the FusedConvBnAct cache path (conv + folded BN + act).
        let mut b = GraphBuilder::new("fused");
        let x = b.input([1, 3, 8, 8]);
        let fused = b
            .push(
                "conv0",
                Op::FusedConvBnAct {
                    conv: Box::new(Op::Conv2d {
                        out_channels: 4,
                        kernel: (3, 3),
                        stride: (1, 1),
                        padding: (1, 1),
                        groups: 1,
                        bias: false,
                    }),
                    bn: true,
                    act: ActivationKind::Relu,
                },
                vec![x],
            )
            .unwrap();
        let g = b.build(fused).unwrap();
        let x = Tensor::random([1, 3, 8, 8], 11);
        let fresh = Executor::new(&g).with_seed(2).run(&x).unwrap();
        let cached = Executor::new(&g)
            .with_seed(2)
            .prepare()
            .unwrap()
            .run(&x)
            .unwrap();
        assert_eq!(cached, fresh);
    }

    #[test]
    fn prepared_executor_reports_matching_stats_and_cache_size() {
        let g = tiny_graph();
        let x = Tensor::random([1, 3, 8, 8], 3);
        let (out_a, stats_a) = Executor::new(&g).with_seed(1).run_with_stats(&x).unwrap();
        let prepared = Executor::new(&g).with_seed(1).prepare().unwrap();
        let (out_b, stats_b) = prepared.run_with_stats(&x).unwrap();
        assert_eq!(out_a, out_b);
        assert_eq!(stats_a, stats_b);
        assert!(prepared.cached_param_bytes() > 0);
    }

    #[test]
    fn prepared_executor_rejects_wrong_input_shape() {
        let g = tiny_graph();
        let err = Executor::new(&g)
            .prepare()
            .unwrap()
            .run(&Tensor::zeros([1, 3, 9, 9]))
            .unwrap_err();
        assert!(matches!(err, ExecError::InputShapeMismatch { .. }));
    }

    #[test]
    fn cifarnet_end_to_end() {
        let g = edgebench_models::Model::CifarNet.build();
        let exec = Executor::new(&g).with_seed(9);
        let out = exec.run(&Tensor::random([1, 3, 32, 32], 4)).unwrap();
        assert_eq!(out.shape().dims(), &[1, 10]);
        let sum: f32 = out.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(out.data().iter().all(|v| v.is_finite()));
    }
}
