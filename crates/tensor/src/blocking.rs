//! Cache-autotuned GEMM blocking: MC/KC/NC panel sizes derived once from
//! the machine's real cache hierarchy instead of hard-coded constants.
//!
//! The classic three-level blocking argument (Goto/BLIS): the micro-kernel
//! streams one `KC×NR` B panel and one `MR×KC` A micro-panel per tile, so
//! `KC` is sized to keep that working set L1-resident; one packed `MC×KC`
//! A panel is reused across every column panel, so `MC` is sized for L2;
//! the packed `KC×NC` B block is reused across every row panel, so `NC` is
//! sized for L3.
//!
//! **Blocking never affects numerics.** Each output element's reduction
//! runs in strictly ascending `k` regardless of panel sizes: an `MR×NR`
//! accumulator tile is stored to `C` between `KC` blocks and reloaded —
//! an exact f32 round trip — so continuing the fused-multiply-add chain
//! from memory produces the same bit pattern as never leaving registers.
//! Tests assert byte-identical output across deliberately odd blockings.
//!
//! Cache sizes are detected **once per process** (a sysfs read on Linux,
//! conservative defaults elsewhere) via [`cache_info`]; choosing the
//! blocking for a concrete GEMM shape is then pure arithmetic, done at
//! [`crate::Executor::prepare`] time (and per standalone call).

use crate::simd::{MR, NR};
use std::sync::OnceLock;

/// Data-cache sizes in bytes, innermost first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheInfo {
    /// Per-core L1 data cache.
    pub l1d: usize,
    /// Per-core (or per-cluster) L2 unified cache.
    pub l2: usize,
    /// Last-level cache.
    pub l3: usize,
}

/// Conservative defaults when detection fails: the smallest caches on the
/// paper's device fleet (Raspberry Pi 3: 32 KiB L1d, 512 KiB shared L2,
/// no L3 — modelled as L3 = L2 so the NC bound degenerates gracefully).
pub const FALLBACK: CacheInfo = CacheInfo {
    l1d: 32 * 1024,
    l2: 512 * 1024,
    l3: 512 * 1024,
};

/// Parses a sysfs cache-size string (`"48K"`, `"2048K"`, `"1M"`, plain
/// bytes) into bytes. Returns `None` on anything unrecognised.
fn parse_size(s: &str) -> Option<usize> {
    let t = s.trim();
    let (digits, mult) = match t.as_bytes().last()? {
        b'K' | b'k' => (&t[..t.len() - 1], 1024usize),
        b'M' | b'm' => (&t[..t.len() - 1], 1024 * 1024),
        b'G' | b'g' => (&t[..t.len() - 1], 1024 * 1024 * 1024),
        _ => (t, 1),
    };
    digits.parse::<usize>().ok()?.checked_mul(mult)
}

/// Reads cpu0's cache hierarchy from sysfs. Any missing level falls back
/// to [`FALLBACK`]'s value for that level.
#[cfg(target_os = "linux")]
fn detect() -> CacheInfo {
    let mut info = FALLBACK;
    let base = "/sys/devices/system/cpu/cpu0/cache";
    for idx in 0..8 {
        let dir = format!("{base}/index{idx}");
        let read = |f: &str| std::fs::read_to_string(format!("{dir}/{f}")).ok();
        let (Some(level), Some(ty), Some(size)) = (read("level"), read("type"), read("size"))
        else {
            continue;
        };
        let Some(bytes) = parse_size(&size) else {
            continue;
        };
        let ty = ty.trim();
        match (level.trim(), ty) {
            ("1", "Data") | ("1", "Unified") => info.l1d = bytes,
            ("2", "Data") | ("2", "Unified") => info.l2 = bytes,
            ("3", "Data") | ("3", "Unified") => info.l3 = bytes,
            _ => {}
        }
    }
    // A machine without L3 keeps the fallback; never let the hierarchy
    // invert (L3 < L2 would shrink NC below the L2 working set).
    info.l3 = info.l3.max(info.l2);
    info.l2 = info.l2.max(info.l1d);
    info
}

#[cfg(not(target_os = "linux"))]
fn detect() -> CacheInfo {
    FALLBACK
}

/// The machine's cache hierarchy, detected on first use and cached for the
/// process lifetime — the "one-shot" in one-shot autotuning.
pub fn cache_info() -> CacheInfo {
    static INFO: OnceLock<CacheInfo> = OnceLock::new();
    *INFO.get_or_init(detect)
}

/// Rounds `v` down to a positive multiple of `unit`, clamped to `[unit, hi]`.
fn round_down(v: usize, unit: usize, hi: usize) -> usize {
    (v / unit).max(1).min(hi / unit) * unit
}

/// GEMM panel sizes for one `[m×k]·[k×n]` problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blocking {
    /// Rows of `C` per packed A panel (L2-resident; also the parallel
    /// work-distribution unit).
    pub mc: usize,
    /// Depth of one reduction block (A/B panel pair stays L1-resident).
    pub kc: usize,
    /// Columns of `C` per packed B block (L3-resident).
    pub nc: usize,
}

impl Blocking {
    /// Chooses panel sizes for an `[m×k]·[k×n]` GEMM against the given
    /// cache hierarchy. Pure arithmetic — deterministic for a fixed
    /// `CacheInfo` — and clamped to the problem so tiny GEMMs do not
    /// reserve huge buffers.
    pub fn choose((m, k, n): (usize, usize, usize), cache: &CacheInfo) -> Blocking {
        let elem = std::mem::size_of::<f32>();
        // KC: one KC×NR B panel plus one MR×KC A micro-panel at half L1d
        // (the other half holds the C tile and incoming streams).
        let kc_budget = cache.l1d / (2 * elem * (MR + NR));
        let kc = round_down(kc_budget, 8, 1024).min(k.max(1));
        // MC: the packed MC×KC A panel at half L2.
        let mc_budget = cache.l2 / (2 * elem * kc);
        let mc = round_down(mc_budget, MR, 4096).min(m.max(1).next_multiple_of(MR));
        // NC: the packed KC×NC B block at half L3.
        let nc_budget = cache.l3 / (2 * elem * kc);
        let nc = round_down(nc_budget, NR, 1 << 15).min(n.max(1).next_multiple_of(NR));
        Blocking { mc, kc, nc }
    }

    /// [`Blocking::choose`] against the host machine (detected once).
    pub fn auto(dims: (usize, usize, usize)) -> Blocking {
        Blocking::choose(dims, &cache_info())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sysfs_size_strings() {
        assert_eq!(parse_size("48K"), Some(48 * 1024));
        assert_eq!(parse_size("2048K"), Some(2048 * 1024));
        assert_eq!(parse_size("1M"), Some(1024 * 1024));
        assert_eq!(parse_size("32768"), Some(32768));
        assert_eq!(parse_size(" 64K\n"), Some(64 * 1024));
        assert_eq!(parse_size("big"), None);
        assert_eq!(parse_size(""), None);
    }

    #[test]
    fn choose_respects_tile_multiples_and_problem_bounds() {
        for cache in [
            FALLBACK,
            CacheInfo {
                l1d: 48 * 1024,
                l2: 2 * 1024 * 1024,
                l3: 105 * 1024 * 1024,
            },
        ] {
            for &dims in &[(1usize, 1usize, 1usize), (64, 576, 256), (4096, 4096, 4096)] {
                let b = Blocking::choose(dims, &cache);
                assert!(b.kc >= 1 && b.mc >= 1 && b.nc >= 1, "{b:?}");
                assert!(b.mc.is_multiple_of(MR) || b.mc <= MR, "{b:?}");
                assert!(b.nc.is_multiple_of(NR) || b.nc <= NR, "{b:?}");
                // L1 budget actually holds.
                assert!(
                    b.kc * (MR + NR) * 4 <= cache.l1d,
                    "kc {} busts L1 {}",
                    b.kc,
                    cache.l1d
                );
            }
        }
    }

    #[test]
    fn choose_is_deterministic_and_detection_is_cached() {
        let a = Blocking::auto((64, 576, 256));
        let b = Blocking::auto((64, 576, 256));
        assert_eq!(a, b);
        assert_eq!(cache_info(), cache_info());
    }

    #[test]
    fn degenerate_hierarchy_never_inverts() {
        // An L3 smaller than L2 (or absent) must not shrink NC below the
        // L2-derived working set — detect() clamps, choose() just divides.
        let c = CacheInfo {
            l1d: 32 * 1024,
            l2: 512 * 1024,
            l3: 512 * 1024,
        };
        let b = Blocking::choose((128, 4096, 4096), &c);
        assert!(b.nc >= NR);
        assert!(b.kc <= 4096);
    }
}
