//! Minimal IEEE-754 binary16 (half precision) emulation.
//!
//! Frameworks in the paper (Table II) almost universally support FP16
//! inference; devices differ in whether their hardware executes it natively.
//! This module provides bit-exact `f32 → f16 → f32` round-tripping so the
//! executor can *emulate* half-precision numerics (round-to-nearest-even),
//! which is how FP16 inference error is studied without FP16 hardware.

/// Converts an `f32` to its nearest binary16 bit pattern
/// (round-to-nearest-even), then back to `f32`.
///
/// # Examples
///
/// ```
/// use edgebench_tensor::f16::round_f16;
/// assert_eq!(round_f16(1.0), 1.0);
/// // 1e-8 underflows half precision to zero.
/// assert_eq!(round_f16(1.0e-8), 0.0);
/// // Values above f16::MAX saturate to infinity.
/// assert!(round_f16(1.0e6).is_infinite());
/// ```
pub fn round_f16(x: f32) -> f32 {
    f16_to_f32(f32_to_f16(x))
}

/// Converts an `f32` to binary16 bits (round-to-nearest-even).
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x7f_ffff;

    if exp == 0xff {
        // Inf or NaN.
        let payload = if mant != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | payload;
    }
    // Unbiased exponent.
    let e = exp - 127;
    if e > 15 {
        return sign | 0x7c00; // overflow -> inf
    }
    if e >= -14 {
        // Normal half.
        let half_exp = ((e + 15) as u16) << 10;
        // Keep 10 mantissa bits; round to nearest even on the 13 dropped.
        let mant10 = mant >> 13;
        let rest = mant & 0x1fff;
        let mut h = sign | half_exp | mant10 as u16;
        if rest > 0x1000 || (rest == 0x1000 && (mant10 & 1) == 1) {
            h = h.wrapping_add(1); // may carry into exponent, which is correct
        }
        return h;
    }
    if e >= -25 {
        // Subnormal half.
        let shift = (-14 - e) as u32; // 1..=11
        let full = mant | 0x80_0000; // implicit leading one
        let total_shift = 13 + shift;
        let mant10 = full >> total_shift;
        let rest = full & ((1 << total_shift) - 1);
        let halfway = 1u32 << (total_shift - 1);
        let mut h = sign | mant10 as u16;
        if rest > halfway || (rest == halfway && (mant10 & 1) == 1) {
            h = h.wrapping_add(1);
        }
        return h;
    }
    sign // underflow -> signed zero
}

/// Converts binary16 bits to an `f32`.
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x3ff) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: value = (m / 1024) * 2^-14; normalize by shifting
            // the leading one into the implicit-bit position.
            let mut e = -14i32;
            let mut m = m;
            while m & 0x400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x3ff;
            sign | (((e + 127) as u32) << 23) | (m << 13)
        }
        (0x1f, 0) => sign | 0x7f80_0000,
        (0x1f, m) => sign | 0x7f80_0000 | (m << 13),
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// Rounds every element of a slice through binary16 in place.
pub fn round_slice_f16(xs: &mut [f32]) {
    for x in xs {
        *x = round_f16(*x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_roundtrip() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25] {
            assert_eq!(round_f16(v), v, "{v}");
        }
    }

    #[test]
    fn relative_error_is_half_precision() {
        for i in 1..1000 {
            let v = i as f32 * 0.137;
            let r = round_f16(v);
            let rel = ((r - v) / v).abs();
            assert!(rel < 1.0 / 1024.0, "v={v} r={r} rel={rel}");
        }
    }

    #[test]
    fn overflow_saturates_to_inf() {
        assert!(round_f16(70000.0).is_infinite());
        assert!(round_f16(-70000.0).is_infinite());
        assert!(round_f16(-70000.0) < 0.0);
    }

    #[test]
    fn subnormals_are_representable() {
        let smallest_normal = 6.103_515_6e-5_f32; // 2^-14
        let sub = smallest_normal / 4.0;
        let r = round_f16(sub);
        assert!(r > 0.0 && (r - sub).abs() / sub < 0.01);
    }

    #[test]
    fn underflow_flushes_to_zero() {
        assert_eq!(round_f16(1e-10), 0.0);
    }

    #[test]
    fn nan_stays_nan() {
        assert!(round_f16(f32::NAN).is_nan());
    }

    #[test]
    fn rounds_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10;
        // nearest-even picks 1.0.
        let halfway = 1.0 + (2.0f32).powi(-11);
        assert_eq!(round_f16(halfway), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0 + (2.0f32).powi(-11) * 1.01;
        assert_eq!(round_f16(above), 1.0 + (2.0f32).powi(-10));
    }
}
