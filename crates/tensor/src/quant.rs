//! Post-training affine INT8 quantization.
//!
//! Implements the standard asymmetric affine scheme used by TFLite and
//! TensorRT's INT8 calibration: `real = scale * (q - zero_point)` with
//! `q ∈ [-128, 127]`. The executor uses it to run graphs in simulated INT8
//! ("fake quantization", the same numerics quantization-aware tooling
//! emulates), and the quantization-error experiments measure the resulting
//! output degradation.

use crate::Tensor;

/// Affine quantization parameters for one tensor.
///
/// # Examples
///
/// ```
/// use edgebench_tensor::QuantParams;
/// let q = QuantParams::from_range(-1.0, 3.0);
/// let (val, deq) = (1.7_f32, q.dequantize(q.quantize(1.7)));
/// assert!((val - deq).abs() < q.scale());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    scale: f32,
    zero_point: i32,
}

impl QuantParams {
    /// Derives parameters covering `[min, max]` with 8-bit resolution.
    ///
    /// The range is widened to always contain zero (required so that zero
    /// padding is exactly representable, as TFLite does).
    pub fn from_range(min: f32, max: f32) -> Self {
        let min = min.min(0.0);
        let max = max.max(0.0);
        let span = (max - min).max(1e-8);
        let scale = span / 255.0;
        let zero_point = (-128.0 - min / scale).round().clamp(-128.0, 127.0) as i32;
        QuantParams { scale, zero_point }
    }

    /// Derives parameters from the observed range of a tensor.
    pub fn observe(t: &Tensor) -> Self {
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &v in t.data() {
            min = min.min(v);
            max = max.max(v);
        }
        if !min.is_finite() || !max.is_finite() {
            return QuantParams::from_range(0.0, 1.0);
        }
        QuantParams::from_range(min, max)
    }

    /// The step between adjacent representable values.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The integer value representing real zero.
    pub fn zero_point(&self) -> i32 {
        self.zero_point
    }

    /// Quantizes a real value to `i8` (saturating).
    pub fn quantize(&self, x: f32) -> i8 {
        let q = (x / self.scale).round() as i32 + self.zero_point;
        q.clamp(-128, 127) as i8
    }

    /// Dequantizes an `i8` back to a real value.
    pub fn dequantize(&self, q: i8) -> f32 {
        (q as i32 - self.zero_point) as f32 * self.scale
    }

    /// Rounds a value through the quantized grid (fake quantization).
    pub fn fake_quant(&self, x: f32) -> f32 {
        self.dequantize(self.quantize(x))
    }
}

/// Per-output-channel quantization of a conv/dense weight tensor (axis 0),
/// the scheme TFLite uses for weights: one scale per filter keeps wide
/// filters from being crushed by narrow ones.
///
/// Returns the fake-quantized tensor and the per-channel parameters.
pub fn fake_quantize_per_channel(t: &Tensor) -> (Tensor, Vec<QuantParams>) {
    let c = t.shape().dim(0).max(1);
    let per = t.len() / c;
    let mut out = t.clone();
    let mut params = Vec::with_capacity(c);
    for ch in 0..c {
        let slice = &t.data()[ch * per..(ch + 1) * per];
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for &v in slice {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let p = if lo.is_finite() && hi.is_finite() {
            QuantParams::from_range(lo, hi)
        } else {
            QuantParams::from_range(0.0, 1.0)
        };
        for v in &mut out.data_mut()[ch * per..(ch + 1) * per] {
            *v = p.fake_quant(*v);
        }
        params.push(p);
    }
    (out, params)
}

/// Mean absolute error of per-channel 8-bit rounding of `t` (axis 0).
pub fn per_channel_error(t: &Tensor) -> f32 {
    let (q, _) = fake_quantize_per_channel(t);
    if t.is_empty() {
        return 0.0;
    }
    t.mean_abs_diff(&q)
}

/// Quantizes a tensor to `i8` values plus its parameters.
pub fn quantize_tensor(t: &Tensor) -> (Vec<i8>, QuantParams) {
    let p = QuantParams::observe(t);
    (t.data().iter().map(|&v| p.quantize(v)).collect(), p)
}

/// Rounds every element of a tensor through its own 8-bit grid in place and
/// returns the parameters used.
pub fn fake_quantize_tensor(t: &mut Tensor) -> QuantParams {
    let p = QuantParams::observe(t);
    for v in t.data_mut() {
        *v = p.fake_quant(*v);
    }
    p
}

/// Mean absolute quantization error introduced by 8-bit rounding of `t`.
pub fn quantization_error(t: &Tensor) -> f32 {
    let p = QuantParams::observe(t);
    if t.is_empty() {
        return 0.0;
    }
    let sum: f32 = t.data().iter().map(|&v| (v - p.fake_quant(v)).abs()).sum();
    sum / t.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_exactly_representable() {
        for (lo, hi) in [(-1.0, 1.0), (0.1, 7.0), (-5.0, -0.2), (-0.3, 0.9)] {
            let p = QuantParams::from_range(lo, hi);
            assert_eq!(p.dequantize(p.quantize(0.0)), 0.0, "range ({lo},{hi})");
        }
    }

    #[test]
    fn roundtrip_error_is_below_one_step() {
        let p = QuantParams::from_range(-2.0, 2.0);
        for i in -200..=200 {
            let v = i as f32 / 100.0;
            let e = (v - p.fake_quant(v)).abs();
            assert!(e <= p.scale() * 0.5 + 1e-6, "v={v} e={e}");
        }
    }

    #[test]
    fn out_of_range_saturates() {
        let p = QuantParams::from_range(-1.0, 1.0);
        assert_eq!(p.quantize(50.0), 127);
        assert_eq!(p.quantize(-50.0), -128);
    }

    #[test]
    fn observe_covers_tensor_range() {
        let t = Tensor::from_vec([4], vec![-3.0, 0.0, 1.0, 2.5]);
        let p = QuantParams::observe(&t);
        for &v in t.data() {
            assert!((v - p.fake_quant(v)).abs() <= p.scale());
        }
    }

    #[test]
    fn quantization_error_shrinks_with_range() {
        let narrow = Tensor::from_vec([3], vec![-0.1, 0.0, 0.1]);
        let wide = Tensor::from_vec([3], vec![-10.0, 0.013, 10.0]);
        assert!(quantization_error(&narrow) < quantization_error(&wide));
    }

    #[test]
    fn per_channel_beats_per_tensor_on_imbalanced_filters() {
        // Channel 0 is wide (+-8), channel 1 narrow (+-0.01): one shared
        // scale destroys channel 1; per-channel keeps both.
        let mut data = Vec::new();
        for i in 0..64 {
            data.push((i as f32 / 63.0 - 0.5) * 16.0);
        }
        for i in 0..64 {
            data.push((i as f32 / 63.0 - 0.5) * 0.02);
        }
        let t = Tensor::from_vec([2, 64], data);
        // Whole-tensor MAE improves (the wide channel dominates it)...
        let per_tensor = quantization_error(&t);
        let per_chan = per_channel_error(&t);
        assert!(
            per_chan < per_tensor,
            "per-channel {per_chan} vs per-tensor {per_tensor}"
        );
        // ...but the narrow filter is where per-channel really wins: under a
        // shared scale its error is the shared step; per-channel shrinks it
        // by orders of magnitude.
        let shared = QuantParams::observe(&t);
        let (q, _) = fake_quantize_per_channel(&t);
        let narrow = &t.data()[64..];
        let narrow_shared: f32 = narrow
            .iter()
            .map(|&v| (v - shared.fake_quant(v)).abs())
            .sum::<f32>()
            / 64.0;
        let narrow_pc: f32 = narrow
            .iter()
            .zip(&q.data()[64..])
            .map(|(&a, &b)| (a - b).abs())
            .sum::<f32>()
            / 64.0;
        assert!(
            narrow_pc < narrow_shared / 50.0,
            "narrow-channel: per-channel {narrow_pc} vs shared {narrow_shared}"
        );
    }

    #[test]
    fn per_channel_params_match_channel_count() {
        let t = Tensor::random([8, 3, 3, 3], 1);
        let (q, params) = fake_quantize_per_channel(&t);
        assert_eq!(params.len(), 8);
        assert_eq!(q.shape(), t.shape());
        assert!(t.mean_abs_diff(&q) < params.iter().map(|p| p.scale()).fold(0.0, f32::max));
    }

    #[test]
    fn degenerate_range_does_not_divide_by_zero() {
        let p = QuantParams::from_range(0.0, 0.0);
        assert!(p.scale() > 0.0);
        assert_eq!(p.fake_quant(0.0), 0.0);
    }
}
