//! Intra-op worker pool for data-parallel kernels.
//!
//! Kernels split their output into disjoint tasks (e.g. GEMM row-panels),
//! each carrying its own `&mut` output slice, and workers drain the shared
//! queue. Because a task's result depends only on the task itself — never on
//! which worker ran it or in what order tasks were claimed — output is
//! byte-identical for any worker count, preserving the repository-wide
//! determinism guarantee.
//!
//! The single-worker path runs inline on the caller's thread with no
//! spawning, no locking and no allocation, so `threads = 1` (the default)
//! has zero overhead over a plain loop.

use std::sync::Mutex;

/// Resolves a requested intra-op thread count: `0` means "use the machine",
/// anything else is taken literally.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Runs `f` over every task, using one worker per element of `scratch`.
///
/// Each worker exclusively owns one scratch slot for its lifetime (packing
/// buffers, typically), so per-worker state needs no locking. Tasks are
/// claimed from a shared queue; any worker may run any task. With a single
/// scratch slot everything runs inline on the caller's thread.
pub fn run_tasks<T, S, F>(tasks: Vec<T>, scratch: &mut [S], f: F)
where
    T: Send,
    S: Send,
    F: Fn(&mut S, T) + Sync,
{
    assert!(!scratch.is_empty(), "need at least one worker scratch slot");
    if scratch.len() == 1 || tasks.len() <= 1 {
        let s = &mut scratch[0];
        for t in tasks {
            f(s, t);
        }
        return;
    }
    let queue = Mutex::new(tasks.into_iter());
    let f = &f;
    let queue = &queue;
    std::thread::scope(|scope| {
        for s in scratch.iter_mut() {
            scope.spawn(move || loop {
                // Claim-then-release: hold the lock only to pop.
                let task = queue.lock().unwrap_or_else(|e| e.into_inner()).next();
                match task {
                    Some(t) => f(s, t),
                    None => break,
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_resolves_zero_to_machine() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn run_tasks_is_identical_across_worker_counts() {
        let n = 67usize;
        let run = |workers: usize| {
            let mut out = vec![0.0f32; n];
            let tasks: Vec<(usize, &mut f32)> = out.iter_mut().enumerate().collect();
            let mut scratch = vec![(); workers];
            run_tasks(tasks, &mut scratch, |_, (i, slot)| {
                *slot = (i as f32).sqrt() * 3.25;
            });
            out
        };
        let serial = run(1);
        for w in [2, 4, 8] {
            assert_eq!(run(w), serial, "workers={w}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let tasks: Vec<usize> = (0..100).collect();
        let mut scratch = vec![(); 4];
        run_tasks(tasks, &mut scratch, |_, i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        run_tasks(vec![1], &mut [] as &mut [()], |_, _| {});
    }
}
