//! # edgebench-tensor
//!
//! A self-contained numeric tensor substrate: dense `f32` tensors, the CNN
//! kernel set needed by the paper's sixteen models (2-D/3-D convolution,
//! depthwise convolution, dense, pooling, batch-norm, LRN, activations,
//! softmax), half-precision emulation, affine INT8 quantization, and a
//! [`Executor`] that runs any [`edgebench_graph::Graph`] end to end with
//! synthetic weights.
//!
//! This crate provides the *functional* half of the reproduction: framework
//! passes in `edgebench-frameworks` are validated by executing graphs before
//! and after a transformation and comparing outputs, and quantization error
//! studies run real INT8 arithmetic rather than assuming its effect.
//!
//! ## Example
//!
//! ```
//! use edgebench_graph::{GraphBuilder, ActivationKind};
//! use edgebench_tensor::{Executor, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GraphBuilder::new("tiny");
//! let x = b.input([1, 3, 8, 8]);
//! let c = b.conv2d(x, 4, (3, 3), (1, 1), (1, 1))?;
//! let r = b.activation(c, ActivationKind::Relu)?;
//! let g = b.build(r)?;
//!
//! let exec = Executor::new(&g).with_seed(42);
//! let input = Tensor::random([1, 3, 8, 8], 7);
//! let out = exec.run(&input)?;
//! assert_eq!(out.shape().dims(), &[1, 4, 8, 8]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod blocking;
mod error;
mod executor;
pub mod f16;
pub mod gemm;
pub mod int8;
pub mod integrity;
pub mod kernels;
pub mod pool;
pub mod quant;
pub mod simd;
mod tensor;

pub use error::ExecError;
pub use executor::{Executor, Precision, PreparedExecutor, RunStats, WeightStore};
pub use integrity::{
    GuardConfig, GuardStats, GuardTrip, GuardedExecutor, IntegrityEvent, IntegrityEventKind,
};
pub use quant::QuantParams;
pub use simd::{KernelKind, Microkernel};
pub use tensor::Tensor;
