//! Error type for graph execution.

use std::error::Error;
use std::fmt;

/// Error produced while executing a graph numerically.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// The provided input tensor does not match the graph's input shape.
    InputShapeMismatch {
        /// Shape the graph expects.
        expected: String,
        /// Shape that was provided.
        actual: String,
    },
    /// The graph has no input node to feed.
    NoInput,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InputShapeMismatch { expected, actual } => {
                write!(f, "input shape mismatch: expected {expected}, got {actual}")
            }
            ExecError::NoInput => write!(f, "graph has no input node"),
        }
    }
}

impl Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<ExecError>();
    }
}
