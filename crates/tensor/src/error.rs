//! Error type for graph execution.

use std::error::Error;
use std::fmt;

/// Error produced while executing a graph numerically.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// The provided input tensor does not match the graph's input shape.
    InputShapeMismatch {
        /// Shape the graph expects.
        expected: String,
        /// Shape that was provided.
        actual: String,
    },
    /// The graph has no input node to feed.
    NoInput,
    /// The execution plan paired a node with parameters (or a fused inner
    /// op) it cannot execute — a malformed or corrupted plan. Degrades the
    /// run instead of aborting the process.
    InternalPlanMismatch {
        /// Name of the offending node.
        node: String,
        /// What was inconsistent about the plan.
        detail: String,
    },
    /// An integrity guard flagged this inference as corrupted (activation
    /// outside its calibrated envelope, or a non-finite value) and recovery
    /// did not produce a clean result.
    Corrupted {
        /// Name of the node whose output tripped the guard.
        node: String,
        /// Which guard tripped.
        reason: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InputShapeMismatch { expected, actual } => {
                write!(f, "input shape mismatch: expected {expected}, got {actual}")
            }
            ExecError::NoInput => write!(f, "graph has no input node"),
            ExecError::InternalPlanMismatch { node, detail } => {
                write!(f, "internal plan mismatch at node {node}: {detail}")
            }
            ExecError::Corrupted { node, reason } => {
                write!(f, "corrupted inference at node {node}: {reason}")
            }
        }
    }
}

impl Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<ExecError>();
    }

    #[test]
    fn display_is_stable() {
        let e = ExecError::InternalPlanMismatch {
            node: "conv0".into(),
            detail: "fused around non-conv op".into(),
        };
        assert_eq!(
            e.to_string(),
            "internal plan mismatch at node conv0: fused around non-conv op"
        );
        let c = ExecError::Corrupted {
            node: "dense1".into(),
            reason: "non-finite".into(),
        };
        assert_eq!(
            c.to_string(),
            "corrupted inference at node dense1: non-finite"
        );
    }
}
