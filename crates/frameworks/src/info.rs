//! The framework roster and their Table II feature matrix.

use edgebench_graph::MemoryPolicy;
use std::fmt;

/// The DNN frameworks characterized by the paper (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Framework {
    /// TensorFlow 1.x: static computational graph, Python front end.
    TensorFlow,
    /// TensorFlow-Lite: frozen flatbuffer graphs for mobile/IoT.
    TfLite,
    /// Keras: high-level API over the TensorFlow engine.
    Keras,
    /// Caffe / Caffe2 (merged into PyTorch in 2018).
    Caffe,
    /// PyTorch: dynamic computation graphs.
    PyTorch,
    /// Nvidia TensorRT: inference-only, auto-tuned, mixed precision.
    TensorRt,
    /// DarkNet: standalone C framework (YOLO's home).
    DarkNet,
    /// Intel Movidius NCSDK for the Neural Compute Stick.
    Ncsdk,
    /// TVM-VTA / FINN FPGA stacks for the PYNQ board.
    TvmVta,
}

/// Which optimizations a framework officially implements (Table II, bottom).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizationSupport {
    /// Weight quantization to common integer types.
    pub quantization: bool,
    /// Mixed-precision inferencing.
    pub mixed_precision: bool,
    /// Dynamic construction/deconstruction of the computation graph.
    pub dynamic_graph: bool,
    /// Ability to exploit pruned (sparse) weights for faster compute.
    pub pruning_exploitation: bool,
    /// Kernel fusion.
    pub fusion: bool,
    /// Auto-tuning to the hardware platform.
    pub auto_tuning: bool,
    /// Half-precision (FP16) inferencing.
    pub half_precision: bool,
}

/// Descriptive facts about a framework (Table II, top).
#[derive(Debug, Clone, PartialEq)]
pub struct FrameworkInfo {
    /// Report name, e.g. `"tensorrt"`.
    pub name: &'static str,
    /// Main interfacing language.
    pub language: &'static str,
    /// Whether a company maintains it.
    pub industry_backed: bool,
    /// Whether it can train models (vs. inference-only).
    pub training: bool,
    /// Whether extra deployment steps (conversion/recompilation) are needed.
    pub extra_steps: bool,
    /// Whether it deploys to mobile devices.
    pub mobile_deployment: bool,
    /// Officially implemented optimizations.
    pub optimizations: OptimizationSupport,
    /// How the runtime allocates activation memory.
    pub memory_policy: MemoryPolicy,
}

impl Framework {
    /// All frameworks in Table II order.
    pub fn all() -> &'static [Framework] {
        use Framework::*;
        &[
            TensorFlow, TfLite, Keras, Caffe, PyTorch, TensorRt, DarkNet, Ncsdk, TvmVta,
        ]
    }

    /// Report name.
    pub fn name(self) -> &'static str {
        self.info().name
    }

    /// Parses a framework from its [`Framework::name`].
    pub fn from_name(name: &str) -> Option<Framework> {
        Framework::all().iter().copied().find(|f| f.name() == name)
    }

    /// The Table II row for this framework.
    pub fn info(self) -> &'static FrameworkInfo {
        match self {
            Framework::TensorFlow => &TENSORFLOW,
            Framework::TfLite => &TFLITE,
            Framework::Keras => &KERAS,
            Framework::Caffe => &CAFFE,
            Framework::PyTorch => &PYTORCH,
            Framework::TensorRt => &TENSORRT,
            Framework::DarkNet => &DARKNET,
            Framework::Ncsdk => &NCSDK,
            Framework::TvmVta => &TVMVTA,
        }
    }
}

impl fmt::Display for Framework {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

static TENSORFLOW: FrameworkInfo = FrameworkInfo {
    name: "tensorflow",
    language: "python",
    industry_backed: true,
    training: true,
    extra_steps: false,
    mobile_deployment: false,
    optimizations: OptimizationSupport {
        quantization: true,
        mixed_precision: false,
        dynamic_graph: false,
        pruning_exploitation: true,
        fusion: true, // experimental
        auto_tuning: false,
        half_precision: true,
    },
    memory_policy: MemoryPolicy::StaticGraph,
};

static TFLITE: FrameworkInfo = FrameworkInfo {
    name: "tflite",
    language: "python",
    industry_backed: true,
    training: false,
    extra_steps: true, // conversion + optional quantization-aware training
    mobile_deployment: true,
    optimizations: OptimizationSupport {
        quantization: true,
        mixed_precision: false,
        dynamic_graph: false,
        pruning_exploitation: true,
        fusion: true,
        auto_tuning: false,
        half_precision: true,
    },
    memory_policy: MemoryPolicy::StaticGraph,
};

static KERAS: FrameworkInfo = FrameworkInfo {
    name: "keras",
    language: "python",
    industry_backed: true,
    training: true,
    extra_steps: false,
    mobile_deployment: false,
    optimizations: OptimizationSupport {
        quantization: true,
        mixed_precision: false,
        dynamic_graph: false,
        pruning_exploitation: true,
        fusion: true,
        auto_tuning: false,
        half_precision: true,
    },
    memory_policy: MemoryPolicy::StaticGraph,
};

static CAFFE: FrameworkInfo = FrameworkInfo {
    name: "caffe",
    language: "python",
    industry_backed: true,
    training: true,
    extra_steps: false,
    mobile_deployment: false, // partial (Caffe2)
    optimizations: OptimizationSupport {
        quantization: true,
        mixed_precision: false,
        dynamic_graph: false,
        pruning_exploitation: false,
        fusion: false,
        auto_tuning: false,
        half_precision: true,
    },
    memory_policy: MemoryPolicy::StaticGraph,
};

static PYTORCH: FrameworkInfo = FrameworkInfo {
    name: "pytorch",
    language: "python",
    industry_backed: true,
    training: true,
    extra_steps: false,
    mobile_deployment: false,
    optimizations: OptimizationSupport {
        quantization: true,
        mixed_precision: false,
        dynamic_graph: true,
        pruning_exploitation: false,
        fusion: false,
        auto_tuning: false,
        half_precision: true,
    },
    memory_policy: MemoryPolicy::DynamicGraph,
};

static TENSORRT: FrameworkInfo = FrameworkInfo {
    name: "tensorrt",
    language: "python",
    industry_backed: true,
    training: false,
    extra_steps: false,
    mobile_deployment: false,
    optimizations: OptimizationSupport {
        quantization: true,
        mixed_precision: true,
        dynamic_graph: true,
        pruning_exploitation: true,
        fusion: true,
        auto_tuning: true,
        half_precision: true,
    },
    memory_policy: MemoryPolicy::DynamicGraph,
};

static DARKNET: FrameworkInfo = FrameworkInfo {
    name: "darknet",
    language: "c",
    industry_backed: false,
    training: true,
    extra_steps: false,
    mobile_deployment: false,
    optimizations: OptimizationSupport::default_const(),
    memory_policy: MemoryPolicy::StaticGraph,
};

static NCSDK: FrameworkInfo = FrameworkInfo {
    name: "ncsdk",
    language: "python",
    industry_backed: true,
    training: false,
    extra_steps: true, // model recompilation for the VPU
    mobile_deployment: true,
    optimizations: OptimizationSupport {
        quantization: true,
        mixed_precision: false,
        dynamic_graph: false,
        pruning_exploitation: false,
        fusion: true,
        auto_tuning: false,
        half_precision: true,
    },
    memory_policy: MemoryPolicy::StaticGraph,
};

static TVMVTA: FrameworkInfo = FrameworkInfo {
    name: "tvm-vta",
    language: "python",
    industry_backed: false,
    training: false,
    extra_steps: true, // hardware-matched recompilation (and retraining for FINN)
    mobile_deployment: false,
    optimizations: OptimizationSupport {
        quantization: true,
        mixed_precision: false,
        dynamic_graph: false,
        pruning_exploitation: false,
        fusion: true,
        auto_tuning: true,
        half_precision: false,
    },
    memory_policy: MemoryPolicy::StaticGraph,
};

impl OptimizationSupport {
    /// `const`-context equivalent of `Default::default()`.
    const fn default_const() -> Self {
        OptimizationSupport {
            quantization: false,
            mixed_precision: false,
            dynamic_graph: false,
            pruning_exploitation: false,
            fusion: false,
            auto_tuning: false,
            half_precision: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for &f in Framework::all() {
            assert_eq!(Framework::from_name(f.name()), Some(f));
        }
        assert_eq!(Framework::from_name("mxnet"), None);
    }

    #[test]
    fn table2_key_facts_hold() {
        // DarkNet is the only C, non-industry framework with no optimizations.
        let d = Framework::DarkNet.info();
        assert_eq!(d.language, "c");
        assert!(!d.industry_backed);
        assert_eq!(d.optimizations, OptimizationSupport::default());

        // Only TensorRT supports mixed precision and auto-tuning.
        for &f in Framework::all() {
            let o = f.info().optimizations;
            assert_eq!(o.mixed_precision, f == Framework::TensorRt, "{f}");
            assert_eq!(
                o.auto_tuning,
                f == Framework::TensorRt || f == Framework::TvmVta,
                "{f}"
            );
        }

        // PyTorch and TensorRT have dynamic graphs.
        assert!(Framework::PyTorch.info().optimizations.dynamic_graph);
        assert!(Framework::TensorRt.info().optimizations.dynamic_graph);
        assert!(!Framework::TensorFlow.info().optimizations.dynamic_graph);

        // TFLite and NCSDK require extra deployment steps.
        assert!(Framework::TfLite.info().extra_steps);
        assert!(Framework::Ncsdk.info().extra_steps);
        assert!(!Framework::PyTorch.info().extra_steps);
    }

    #[test]
    fn memory_policies_match_graph_semantics() {
        assert_eq!(
            Framework::PyTorch.info().memory_policy,
            MemoryPolicy::DynamicGraph
        );
        assert_eq!(
            Framework::TensorFlow.info().memory_policy,
            MemoryPolicy::StaticGraph
        );
    }

    #[test]
    fn quantization_is_industry_wide() {
        // Paper: "Quantization ... is implemented for all frameworks that
        // are supported by the industry."
        for &f in Framework::all() {
            if f.info().industry_backed {
                assert!(f.info().optimizations.quantization, "{f}");
            }
        }
    }
}
