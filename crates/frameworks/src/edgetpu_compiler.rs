//! A model of the EdgeTPU compiler's *segment mapping*.
//!
//! The real `edgetpu_compiler` walks a quantized TFLite graph from the
//! input and maps a maximal prefix of supported operators onto the TPU;
//! at the first unsupported operator it cuts a segment boundary, and the
//! remainder (and any later supported stretches, up to a segment budget)
//! runs on the host CPU. The paper's §VI-A footnote 4 and its Table V `4`
//! cells are the user-visible face of this machinery; this module models
//! the machinery itself, so one can ask *how much* of a partially
//! supported model the accelerator would still run, and what the
//! host-fallback costs.

use crate::compat;
use edgebench_devices::perf::RooflineModel;
use edgebench_devices::Device;
use edgebench_graph::{DType, Graph, Op};

/// Where a segment executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// On the EdgeTPU ASIC.
    Tpu,
    /// On the host CPU (Cortex-A53 on the dev board).
    HostCpu,
}

/// A contiguous run of nodes mapped to one target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Execution target.
    pub target: Target,
    /// Node index range `first..last`.
    pub first: usize,
    /// One past the final node index.
    pub last: usize,
}

/// The compiler's mapping of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// Segments in topological order.
    pub segments: Vec<Segment>,
}

impl Mapping {
    /// Number of TPU-mapped segments.
    pub fn tpu_segments(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| s.target == Target::Tpu)
            .count()
    }

    /// Fraction of nodes mapped to the TPU.
    pub fn tpu_node_fraction(&self, total_nodes: usize) -> f64 {
        let tpu: usize = self
            .segments
            .iter()
            .filter(|s| s.target == Target::Tpu)
            .map(|s| s.last - s.first)
            .sum();
        tpu as f64 / total_nodes.max(1) as f64
    }

    /// Whether the whole model (bar the input node) runs on the TPU.
    pub fn fully_mapped(&self) -> bool {
        self.segments.len() == 1 && self.segments[0].target == Target::Tpu
    }
}

fn tpu_supports(op: &Op) -> bool {
    !matches!(op, Op::Input { .. }) && compat::edgetpu_op_check(op).is_ok()
}

/// Maps `graph` the way the EdgeTPU compiler does: alternating maximal
/// same-target runs, scanning in topological order.
pub fn map_graph(graph: &Graph) -> Mapping {
    let mut segments: Vec<Segment> = Vec::new();
    for node in graph.nodes() {
        let i = node.id().index();
        if matches!(node.op(), Op::Input { .. }) {
            continue;
        }
        let target = if tpu_supports(node.op()) {
            Target::Tpu
        } else {
            Target::HostCpu
        };
        match segments.last_mut() {
            Some(seg) if seg.target == target && seg.last == i => seg.last = i + 1,
            _ => segments.push(Segment {
                target,
                first: i,
                last: i + 1,
            }),
        }
    }
    Mapping { segments }
}

/// Per-inference transition cost between TPU and host segments: the
/// intermediate activation crosses the accelerator boundary.
const TRANSITION_S: f64 = 1.5e-3;

/// Latency of a mapped model: TPU segments at the EdgeTPU roofline (INT8),
/// host segments at the Cortex-A53 roofline, plus a transition cost per
/// boundary.
///
/// Returns `None` if a TPU segment hits an unsupported-precision condition
/// (cannot happen for INT8 graphs).
pub fn mapped_latency_s(graph: &Graph, mapping: &Mapping) -> Option<f64> {
    let g8 = graph.with_dtype(DType::I8);
    let tpu = RooflineModel::for_device(Device::EdgeTpu);
    // The dev board's host cores are RPi-3-class A53s.
    let host = RooflineModel::for_device(Device::RaspberryPi3);
    let costs = g8.node_costs();
    let mut total = 0.0;
    for (si, seg) in mapping.segments.iter().enumerate() {
        let rl = match seg.target {
            Target::Tpu => &tpu,
            Target::HostCpu => &host,
        };
        for cost in &costs[seg.first..seg.last] {
            let (c, m) = rl.node_time_s(cost, DType::I8).ok()?;
            total += c.max(m) + rl.spec().dispatch_overhead_s;
        }
        if si > 0 {
            total += TRANSITION_S;
        }
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebench_models::Model;

    #[test]
    fn supported_models_map_to_one_tpu_segment() {
        for m in [Model::MobileNetV2, Model::ResNet50, Model::Vgg16] {
            let g = m.build();
            let map = map_graph(&g);
            assert!(map.fully_mapped(), "{m}: {} segments", map.segments.len());
            assert_eq!(map.tpu_node_fraction(g.len() - 1), 1.0, "{m}");
        }
    }

    #[test]
    fn alexnet_splits_at_its_lrn_layers() {
        // Two LRN layers cut the graph into alternating segments.
        let g = Model::AlexNet.build();
        let map = map_graph(&g);
        assert!(!map.fully_mapped());
        assert!(map.segments.len() >= 4, "{} segments", map.segments.len());
        let host_nodes: usize = map
            .segments
            .iter()
            .filter(|s| s.target == Target::HostCpu)
            .map(|s| s.last - s.first)
            .sum();
        assert_eq!(host_nodes, 2, "exactly the two LRN nodes fall back");
        // Most of the model still runs on the TPU.
        assert!(map.tpu_node_fraction(g.len() - 1) > 0.9);
    }

    #[test]
    fn c3d_runs_almost_entirely_on_the_host() {
        let g = Model::C3d.build();
        let map = map_graph(&g);
        // All convolutions are 3-D: the TPU gets only glue ops.
        assert!(map.tpu_node_fraction(g.len() - 1) < 0.7);
        let host_flops: u64 = {
            let costs = g.node_costs();
            map.segments
                .iter()
                .filter(|s| s.target == Target::HostCpu)
                .flat_map(|s| s.first..s.last)
                .map(|i| costs[i].flops)
                .sum()
        };
        assert!(host_flops as f64 > 0.99 * g.stats().flops as f64);
    }

    #[test]
    fn fallback_segments_dominate_mapped_latency() {
        // AlexNet's mapped latency is far above MobileNet's fully-mapped
        // latency, despite similar TPU-side work: the host segments and
        // transitions dominate — the mechanistic reason the paper chose to
        // report such models as conversion barriers.
        let mn = Model::MobileNetV2.build();
        let mn_map = map_graph(&mn);
        let mn_lat = mapped_latency_s(&mn, &mn_map).unwrap();

        let ax = Model::AlexNet.build();
        let ax_map = map_graph(&ax);
        let ax_lat = mapped_latency_s(&ax, &ax_map).unwrap();
        assert!(
            ax_lat > 3.0 * mn_lat,
            "alexnet {ax_lat} vs mobilenet {mn_lat}"
        );
    }

    #[test]
    fn mapped_latency_of_full_tpu_model_matches_device_roofline_scale() {
        let g = Model::MobileNetV2.build();
        let map = map_graph(&g);
        let lat = mapped_latency_s(&g, &map).unwrap();
        assert!((0.5e-3..20e-3).contains(&lat), "{lat}s (paper: 2.9 ms)");
    }
}
