//! Software-stack profiling model (the paper's Fig 5).
//!
//! The paper runs cProfile under PyTorch and TensorFlow on the RPi and the
//! Jetson TX2 and groups low-level functions into categories. This module
//! produces the same breakdown from the deployment model: one-time costs
//! (library loading, graph construction) are amortized over the profiled
//! run length (30 inferences on the RPi, 1000 on TX2 — §VI-B3), and
//! per-inference time is split into the categories the paper names.

use crate::deploy::{CompiledModel, DeployError};
use crate::info::Framework;

/// One profile category with its share of total profiled time.
#[derive(Debug, Clone, PartialEq)]
pub struct StackSlice {
    /// Category label, matching the paper's Fig 5 grouping.
    pub category: String,
    /// Seconds attributed over the whole profiled run.
    pub seconds: f64,
}

/// A full software-stack profile of a run of `n` inferences.
#[derive(Debug, Clone, PartialEq)]
pub struct StackProfile {
    /// Framework profiled.
    pub framework: Framework,
    /// Number of inferences in the run.
    pub inferences: usize,
    /// Slices, largest first.
    pub slices: Vec<StackSlice>,
}

impl StackProfile {
    /// Total profiled seconds.
    pub fn total_s(&self) -> f64 {
        self.slices.iter().map(|s| s.seconds).sum()
    }

    /// Percentage share of a category (0 if absent).
    pub fn percent(&self, category: &str) -> f64 {
        let total = self.total_s();
        if total == 0.0 {
            return 0.0;
        }
        100.0
            * self
                .slices
                .iter()
                .filter(|s| s.category == category)
                .map(|s| s.seconds)
                .sum::<f64>()
            / total
    }
}

/// Profiles `n` inferences of a compiled model, reproducing Fig 5's
/// category breakdown.
///
/// # Errors
///
/// Propagates timing-model errors for infeasible deployments.
pub fn profile_run(compiled: &CompiledModel, n: usize) -> Result<StackProfile, DeployError> {
    let timing = compiled.timing()?;
    let p = compiled.profile();
    let fw = compiled.framework();
    let nf = n as f64;

    let mut slices = Vec::new();
    // One-time costs.
    slices.push(StackSlice {
        category: "library_loading".to_string(),
        seconds: p.library_load_s,
    });
    if p.graph_setup_s > 0.0 {
        // TensorFlow's `base_layer` graph construction (Fig 5b/d); PyTorch's
        // `model.__init__` is tiny by comparison.
        slices.push(StackSlice {
            category: "graph_setup".to_string(),
            seconds: p.graph_setup_s,
        });
    }
    if p.graph_setup_per_inference_s > 0.0 {
        slices.push(StackSlice {
            category: "graph_setup".to_string(),
            seconds: p.graph_setup_per_inference_s * nf,
        });
    }
    // Per-inference data movement (the `_C._TensorBase.to()` slice that
    // dominates PyTorch's TX2 profile once compute shrinks — Fig 5c).
    if p.transfer_s > 0.0 || compiled.device().spec().io_overhead_s > 0.0 {
        slices.push(StackSlice {
            category: "data_transfer".to_string(),
            seconds: timing.io_s * nf,
        });
    }
    // Interpreter / session dispatch.
    slices.push(StackSlice {
        category: "dispatch".to_string(),
        seconds: (timing.dispatch_s + p.fixed_s) * nf,
    });
    // Compute, grouped per operator the way each framework's profile shows
    // it: TensorFlow hides kernels inside `TF_SessionRunCallable`; PyTorch
    // and the rest expose per-op primitives.
    let pressure = timing.pressure_factor;
    if matches!(fw, Framework::TensorFlow | Framework::Keras) {
        let compute: f64 = timing.by_op_s.values().sum();
        slices.push(StackSlice {
            category: "session_run".to_string(),
            seconds: compute * pressure * nf,
        });
    } else {
        for (op, s) in &timing.by_op_s {
            let category = match *op {
                "conv2d" | "conv3d" | "depthwise_conv2d" | "fused_conv_bn_act" => "conv2d",
                "dense" => "linear",
                "batch_norm" => "batch_norm",
                "activation" => "activation",
                _ => "other_ops",
            };
            slices.push(StackSlice {
                category: category.to_string(),
                seconds: s * pressure * nf,
            });
        }
    }
    // Merge duplicate categories and sort by weight.
    let mut merged: Vec<StackSlice> = Vec::new();
    for s in slices {
        if let Some(m) = merged.iter_mut().find(|m| m.category == s.category) {
            m.seconds += s.seconds;
        } else {
            merged.push(s);
        }
    }
    merged.sort_by(|a, b| b.seconds.total_cmp(&a.seconds));
    Ok(StackProfile {
        framework: fw,
        inferences: n,
        slices: merged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::compile;
    use edgebench_devices::Device;
    use edgebench_models::Model;

    #[test]
    fn pytorch_on_rpi_is_compute_dominated() {
        // Paper Fig 5a: PyTorch spends 96 % on compute, conv2d alone 81 %.
        let c = compile(Framework::PyTorch, Model::ResNet18, Device::RaspberryPi3).unwrap();
        let prof = profile_run(&c, 30).unwrap();
        let conv = prof.percent("conv2d");
        assert!(conv > 55.0, "conv2d share {conv}%");
        let setup = prof.percent("graph_setup");
        assert!(setup < 10.0, "dynamic graph setup is negligible: {setup}%");
    }

    #[test]
    fn tensorflow_on_rpi_pays_graph_construction() {
        // Paper Fig 5b: base_layer (graph construction) ~38-50 % over a
        // 30-inference profile, because it is a one-time cost that the
        // short run cannot amortize.
        let c = compile(Framework::TensorFlow, Model::ResNet18, Device::RaspberryPi3).unwrap();
        let prof = profile_run(&c, 30).unwrap();
        let setup = prof.percent("graph_setup") + prof.percent("library_loading");
        assert!((20.0..80.0).contains(&setup), "one-time share {setup}%");
        assert!(prof.percent("session_run") > 10.0);
    }

    #[test]
    fn gpu_shifts_pytorch_profile_from_compute_to_overheads() {
        // Paper Fig 5c vs 5a: on TX2 the GPU shrinks compute so data
        // transfer and setup dominate.
        let rpi = profile_run(
            &compile(Framework::PyTorch, Model::ResNet18, Device::RaspberryPi3).unwrap(),
            30,
        )
        .unwrap();
        let tx2 = profile_run(
            &compile(Framework::PyTorch, Model::ResNet18, Device::JetsonTx2).unwrap(),
            1000,
        )
        .unwrap();
        assert!(tx2.percent("conv2d") < rpi.percent("conv2d"));
        assert!(tx2.percent("data_transfer") > rpi.percent("data_transfer"));
    }

    #[test]
    fn longer_runs_amortize_one_time_costs() {
        let c = compile(Framework::TensorFlow, Model::ResNet18, Device::JetsonTx2).unwrap();
        let short = profile_run(&c, 10).unwrap();
        let long = profile_run(&c, 10_000).unwrap();
        assert!(long.percent("graph_setup") < short.percent("graph_setup"));
    }

    #[test]
    fn percentages_sum_to_100() {
        let c = compile(Framework::PyTorch, Model::MobileNetV2, Device::JetsonTx2).unwrap();
        let prof = profile_run(&c, 100).unwrap();
        let sum: f64 = prof.slices.iter().map(|s| prof.percent(&s.category)).sum();
        assert!((sum - 100.0).abs() < 1e-6, "{sum}");
    }
}
