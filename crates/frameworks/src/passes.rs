//! Graph optimization passes — real IR transformations, validated for
//! structural and (via `edgebench-tensor`) numerical equivalence.
//!
//! * [`fuse_conv_bn_act`] — kernel fusion: collapses `conv → batch-norm →
//!   activation` chains into a single [`Op::FusedConvBnAct`], eliminating
//!   two dispatches and two activation-map round trips per chain. This is
//!   the fusion TFLite / TensorRT / NCSDK apply (paper §III-B).
//! * [`fuse_dense_act`] — kernel fusion for classifier heads: collapses
//!   `dense → activation` pairs into a single [`Op::FusedDenseAct`] applied
//!   at store time by the backend's fused dense kernel.
//! * [`freeze`] — graph freezing: removes inference-time no-ops (dropout),
//!   as TFLite's converter does when it freezes a TensorFlow graph.
//! * [`quantize`] / [`to_half`] — precision lowering (INT8 / FP16).
//! * [`pruning_speedup`] — the compute reduction a framework that exploits
//!   pruned weights achieves at a given sparsity.

use edgebench_graph::{ActivationKind, Graph, GraphError, NodeId, Op};

/// Rebuilds a graph keeping only nodes where `keep[i]` is true, rewiring
/// consumers of a dropped node to `forward[i]` (which must be kept).
fn rebuild(
    g: &Graph,
    keep: &[bool],
    forward: &[usize],
    replacement_ops: &[Option<Op>],
) -> Result<Graph, GraphError> {
    // Resolve forwarding chains (a dropped node may forward to another
    // dropped node).
    let resolve = |mut i: usize| -> usize {
        while !keep[i] {
            i = forward[i];
        }
        i
    };
    let mut new_id = vec![usize::MAX; g.len()];
    let mut specs: Vec<(String, Op, Vec<NodeId>)> = Vec::new();
    for node in g.nodes() {
        let i = node.id().index();
        if !keep[i] {
            continue;
        }
        let op = replacement_ops[i]
            .clone()
            .unwrap_or_else(|| node.op().clone());
        let inputs = node
            .inputs()
            .iter()
            .map(|&inp| NodeId::from_index(new_id[resolve(inp.index())]))
            .collect();
        new_id[i] = specs.len();
        specs.push((node.name().to_string(), op, inputs));
    }
    let out = NodeId::from_index(new_id[resolve(g.output().index())]);
    Graph::from_transformed(g.name().to_string(), specs, out, g.dtype())
}

/// Fuses `conv → batch-norm → activation` (and the shorter `conv → bn`,
/// `conv → act` variants) into single fused operators.
///
/// A chain is fused only when each intermediate value has exactly one
/// consumer, so residual taps are never broken. The fused node keeps the
/// convolution's *name*, which keeps the synthetic `WeightStore` of
/// `edgebench-tensor` assigning identical weights before and after fusion —
/// numerical equivalence is asserted in tests.
///
/// # Errors
///
/// Propagates graph-reconstruction errors (none for valid inputs).
pub fn fuse_conv_bn_act(g: &Graph) -> Result<Graph, GraphError> {
    let consumers = g.consumers();
    let sole_consumer = |i: usize| -> Option<usize> {
        if consumers[i].len() == 1 {
            Some(consumers[i][0].index())
        } else {
            None
        }
    };
    let n = g.len();
    let mut keep = vec![true; n];
    let mut forward: Vec<usize> = (0..n).collect();
    let mut replacement: Vec<Option<Op>> = vec![None; n];

    for node in g.nodes() {
        let i = node.id().index();
        if !keep[i] {
            continue;
        }
        let conv = match node.op() {
            c @ (Op::Conv2d { .. } | Op::DepthwiseConv2d { .. }) => c.clone(),
            _ => continue,
        };
        let mut bn = false;
        let mut act = ActivationKind::Linear;
        let mut last = i;
        // Optional batch-norm directly after.
        if let Some(j) = sole_consumer(last) {
            if matches!(g.nodes()[j].op(), Op::BatchNorm) {
                bn = true;
                last = j;
            }
        }
        // Optional activation after that.
        if let Some(k) = sole_consumer(last) {
            if let Op::Activation { kind } = g.nodes()[k].op() {
                act = *kind;
                last = k;
            }
        }
        if last == i {
            continue; // nothing to fuse
        }
        // Drop the fused-away nodes, forwarding their consumers to the conv.
        let mut j = i;
        while j != last {
            let next = sole_consumer(j).expect("chain verified");
            keep[next] = false;
            forward[next] = i;
            j = next;
        }
        replacement[i] = Some(Op::FusedConvBnAct {
            conv: Box::new(conv),
            bn,
            act,
        });
    }
    rebuild(g, &keep, &forward, &replacement)
}

/// Fuses `dense → activation` pairs into single [`Op::FusedDenseAct`]
/// operators, letting the backend apply the activation at store time inside
/// the dense kernel instead of in a separate pass over the output.
///
/// Like [`fuse_conv_bn_act`], fusion only happens when the dense output has
/// exactly one consumer, and the fused node keeps the dense layer's *name*
/// so the synthetic `WeightStore` assigns identical weights before and after
/// — the tensor backend's fused kernel is bit-identical to the unfused pair.
///
/// # Errors
///
/// Propagates graph-reconstruction errors (none for valid inputs).
pub fn fuse_dense_act(g: &Graph) -> Result<Graph, GraphError> {
    let consumers = g.consumers();
    let n = g.len();
    let mut keep = vec![true; n];
    let mut forward: Vec<usize> = (0..n).collect();
    let mut replacement: Vec<Option<Op>> = vec![None; n];
    for node in g.nodes() {
        let i = node.id().index();
        let (units, bias) = match node.op() {
            Op::Dense { units, bias } => (*units, *bias),
            _ => continue,
        };
        if consumers[i].len() != 1 {
            continue;
        }
        let j = consumers[i][0].index();
        let Op::Activation { kind } = g.nodes()[j].op() else {
            continue;
        };
        keep[j] = false;
        forward[j] = i;
        replacement[i] = Some(Op::FusedDenseAct {
            units,
            bias,
            act: *kind,
        });
    }
    rebuild(g, &keep, &forward, &replacement)
}

/// Freezes the graph for deployment: removes dropout no-ops.
///
/// # Errors
///
/// Propagates graph-reconstruction errors (none for valid inputs).
pub fn freeze(g: &Graph) -> Result<Graph, GraphError> {
    let n = g.len();
    let mut keep = vec![true; n];
    let mut forward: Vec<usize> = (0..n).collect();
    for node in g.nodes() {
        if matches!(node.op(), Op::Dropout) {
            let i = node.id().index();
            // A dropout that *is* the output must stay.
            if g.output().index() != i {
                keep[i] = false;
                forward[i] = node.inputs()[0].index();
            }
        }
    }
    let replacement = vec![None; n];
    rebuild(g, &keep, &forward, &replacement)
}

/// Dead-code elimination: removes nodes not reachable (backwards) from the
/// graph output — e.g. auxiliary training heads or probe branches left in
/// an exported model, which deployment compilers strip.
///
/// # Errors
///
/// Propagates graph-reconstruction errors (none for valid inputs).
pub fn eliminate_dead_nodes(g: &Graph) -> Result<Graph, GraphError> {
    let n = g.len();
    let mut live = vec![false; n];
    let mut stack = vec![g.output().index()];
    while let Some(i) = stack.pop() {
        if live[i] {
            continue;
        }
        live[i] = true;
        for inp in g.nodes()[i].inputs() {
            stack.push(inp.index());
        }
    }
    // rebuild() resolves dropped nodes through `forward`, but dead nodes
    // have no live consumers by construction, so identity forwarding works.
    let forward: Vec<usize> = (0..n).collect();
    let replacement = vec![None; n];
    rebuild(g, &live, &forward, &replacement)
}

/// Lowers the graph to INT8 (post-training quantization).
pub fn quantize(g: &Graph) -> Graph {
    g.with_dtype(edgebench_graph::DType::I8)
}

/// Lowers the graph to FP16.
pub fn to_half(g: &Graph) -> Graph {
    g.with_dtype(edgebench_graph::DType::F16)
}

/// Compute-time reduction factor from pruned (sparse) weights.
///
/// Every framework stores pruned weights compactly, but only frameworks
/// that take the further step of sparse *computation* (TensorFlow, TFLite,
/// TensorRT per Table II) convert sparsity into speed. The achievable
/// speedup saturates well below `1/(1-s)` because sparse kernels pay
/// indexing overheads.
pub fn pruning_speedup(exploits_sparsity: bool, sparsity: f64) -> f64 {
    let s = sparsity.clamp(0.0, 0.95);
    if !exploits_sparsity {
        return 1.0;
    }
    // Effective MACs drop to (1-s), recovered at 70 % efficiency.
    1.0 / (1.0 - 0.7 * s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebench_graph::GraphBuilder;
    use edgebench_models::Model;

    fn conv_bn_relu_graph() -> Graph {
        let mut b = GraphBuilder::new("t");
        let x = b.input([1, 3, 8, 8]);
        let c = b.conv2d_nobias(x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let n = b.batch_norm(c).unwrap();
        let r = b.activation(n, ActivationKind::Relu).unwrap();
        let d = b.flatten(r).unwrap();
        let out = b.dense(d, 10).unwrap();
        b.build(out).unwrap()
    }

    #[test]
    fn fusion_collapses_chain() {
        let g = conv_bn_relu_graph();
        let f = fuse_conv_bn_act(&g).unwrap();
        assert_eq!(g.len(), 6);
        assert_eq!(f.len(), 4); // input, fused, flatten, dense
        let fused = f
            .nodes()
            .iter()
            .find(|n| matches!(n.op(), Op::FusedConvBnAct { .. }))
            .expect("fused node exists");
        if let Op::FusedConvBnAct { bn, act, .. } = fused.op() {
            assert!(*bn);
            assert_eq!(*act, ActivationKind::Relu);
        }
        assert_eq!(f.output_shape(), g.output_shape());
    }

    #[test]
    fn fusion_preserves_flops_params_approximately() {
        let g = Model::ResNet18.build();
        let f = fuse_conv_bn_act(&g).unwrap();
        let (sg, sf) = (g.stats(), f.stats());
        assert_eq!(sg.params, sf.params, "fusion must not change parameters");
        // Fusion removes separate BN/activation passes; FLOPs shrink a
        // little but stay within 5 %.
        assert!(sf.flops <= sg.flops);
        assert!(sf.flops as f64 > 0.95 * sg.flops as f64);
        // Node count shrinks substantially.
        assert!(f.len() * 3 < g.len() * 2, "{} vs {}", f.len(), g.len());
    }

    #[test]
    fn fusion_does_not_break_residual_taps() {
        // conv output feeds both a bn and a residual add: must not fuse.
        let mut b = GraphBuilder::new("res");
        let x = b.input([1, 4, 8, 8]);
        let c = b.conv2d_nobias(x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        let n = b.batch_norm(c).unwrap();
        let r = b.activation(n, ActivationKind::Relu).unwrap();
        let s = b.add(r, c).unwrap(); // taps the raw conv output
        let g = b.build(s).unwrap();
        let f = fuse_conv_bn_act(&g).unwrap();
        // The conv has two consumers, so nothing may be fused away.
        assert_eq!(f.len(), g.len());
    }

    #[test]
    fn fusion_is_numerically_equivalent() {
        use edgebench_tensor::{Executor, Tensor};
        let g = conv_bn_relu_graph();
        let f = fuse_conv_bn_act(&g).unwrap();
        let x = Tensor::random([1, 3, 8, 8], 3);
        let yg = Executor::new(&g).with_seed(11).run(&x).unwrap();
        let yf = Executor::new(&f).with_seed(11).run(&x).unwrap();
        assert!(
            yg.mean_abs_diff(&yf) < 1e-5,
            "fusion changed numerics by {}",
            yg.mean_abs_diff(&yf)
        );
    }

    #[test]
    fn fusion_on_all_models_preserves_output_shape() {
        for &m in Model::all() {
            let g = m.build();
            let f = fuse_conv_bn_act(&g).unwrap();
            assert_eq!(f.output_shape(), g.output_shape(), "{m}");
            assert!(f.len() <= g.len(), "{m}");
        }
    }

    #[test]
    fn dense_act_fusion_collapses_pair() {
        let mut b = GraphBuilder::new("head");
        let x = b.input([1, 32]);
        let d = b.dense(x, 16).unwrap();
        let r = b.activation(d, ActivationKind::Relu).unwrap();
        let out = b.dense(r, 10).unwrap();
        let g = b.build(out).unwrap();
        let f = fuse_dense_act(&g).unwrap();
        assert_eq!(f.len(), g.len() - 1);
        let fused = f
            .nodes()
            .iter()
            .find(|n| matches!(n.op(), Op::FusedDenseAct { .. }))
            .expect("fused node exists");
        if let Op::FusedDenseAct { units, bias, act } = fused.op() {
            assert_eq!(*units, 16);
            assert!(*bias);
            assert_eq!(*act, ActivationKind::Relu);
        }
        assert_eq!(f.output_shape(), g.output_shape());
    }

    #[test]
    fn dense_act_fusion_is_bit_identical() {
        use edgebench_tensor::{Executor, Tensor};
        let mut b = GraphBuilder::new("head");
        let x = b.input([2, 24]);
        let d = b.dense(x, 12).unwrap();
        let a = b.activation(d, ActivationKind::Sigmoid).unwrap();
        let out = b.dense(a, 5).unwrap();
        let g = b.build(out).unwrap();
        let f = fuse_dense_act(&g).unwrap();
        let xt = Tensor::random([2, 24], 9);
        let yg = Executor::new(&g).with_seed(7).run(&xt).unwrap();
        let yf = Executor::new(&f).with_seed(7).run(&xt).unwrap();
        assert_eq!(yg, yf, "fused dense kernel must be bit-identical");
    }

    #[test]
    fn dense_act_fusion_does_not_break_taps() {
        // The dense output feeds both an activation and a residual add:
        // fusing would change what the add sees, so nothing may fuse.
        let mut b = GraphBuilder::new("tap");
        let x = b.input([1, 8]);
        let d = b.dense(x, 8).unwrap();
        let a = b.activation(d, ActivationKind::Relu).unwrap();
        let s = b.add(a, d).unwrap();
        let g = b.build(s).unwrap();
        let f = fuse_dense_act(&g).unwrap();
        assert_eq!(f.len(), g.len());
    }

    #[test]
    fn freeze_removes_dropout() {
        let g = Model::Vgg16.build();
        let f = freeze(&g).unwrap();
        assert!(g.nodes().iter().any(|n| matches!(n.op(), Op::Dropout)));
        assert!(!f.nodes().iter().any(|n| matches!(n.op(), Op::Dropout)));
        assert_eq!(f.output_shape(), g.output_shape());
    }

    #[test]
    fn freeze_is_numerically_identical() {
        use edgebench_tensor::{Executor, Tensor};
        let mut b = GraphBuilder::new("d");
        let x = b.input([1, 8]);
        let d1 = b.dense(x, 16).unwrap();
        let dr = b.push_auto(Op::Dropout, vec![d1]).unwrap();
        let d2 = b.dense(dr, 4).unwrap();
        let g = b.build(d2).unwrap();
        let f = freeze(&g).unwrap();
        let xt = Tensor::random([1, 8], 1);
        let yg = Executor::new(&g).with_seed(2).run(&xt).unwrap();
        let yf = Executor::new(&f).with_seed(2).run(&xt).unwrap();
        assert_eq!(yg, yf);
    }

    #[test]
    fn dce_removes_unreachable_branches() {
        let mut b = GraphBuilder::new("dead");
        let x = b.input([1, 3, 8, 8]);
        let live = b.conv2d(x, 4, (3, 3), (1, 1), (1, 1)).unwrap();
        // A dead auxiliary branch nobody consumes.
        let dead = b.conv2d(x, 16, (3, 3), (1, 1), (1, 1)).unwrap();
        let _dead2 = b.activation(dead, ActivationKind::Relu).unwrap();
        let f = b.flatten(live).unwrap();
        let out = b.dense(f, 10).unwrap();
        let g = b.build(out).unwrap();
        let clean = eliminate_dead_nodes(&g).unwrap();
        assert_eq!(clean.len(), g.len() - 2);
        assert_eq!(clean.output_shape(), g.output_shape());
        assert!(clean.stats().flops < g.stats().flops);
    }

    #[test]
    fn dce_is_identity_on_fully_live_graphs() {
        for m in [Model::ResNet18, Model::MobileNetV2] {
            let g = m.build();
            let clean = eliminate_dead_nodes(&g).unwrap();
            assert_eq!(clean.len(), g.len(), "{m}");
            assert_eq!(clean.stats().flops, g.stats().flops, "{m}");
        }
    }

    #[test]
    fn dce_after_dce_is_stable() {
        let mut b = GraphBuilder::new("dead");
        let x = b.input([1, 4]);
        let _dead = b.dense(x, 8).unwrap();
        let out = b.dense(x, 2).unwrap();
        let g = b.build(out).unwrap();
        let once = eliminate_dead_nodes(&g).unwrap();
        let twice = eliminate_dead_nodes(&once).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn quantize_and_half_retag_dtype() {
        let g = Model::CifarNet.build();
        assert_eq!(quantize(&g).dtype(), edgebench_graph::DType::I8);
        assert_eq!(to_half(&g).dtype(), edgebench_graph::DType::F16);
    }

    #[test]
    fn pruning_speedup_behaviour() {
        assert_eq!(pruning_speedup(false, 0.9), 1.0);
        assert_eq!(pruning_speedup(true, 0.0), 1.0);
        let s50 = pruning_speedup(true, 0.5);
        let s90 = pruning_speedup(true, 0.9);
        assert!(s50 > 1.3 && s50 < 2.0, "{s50}");
        assert!(s90 > s50);
        assert!(s90 < 1.0 / (1.0 - 0.9), "below the ideal bound");
    }
}
