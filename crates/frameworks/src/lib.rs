//! # edgebench-frameworks
//!
//! Models of the nine DNN frameworks the paper studies (Table II):
//! TensorFlow, TensorFlow-Lite, Keras, Caffe, PyTorch, TensorRT, DarkNet,
//! the Movidius NCSDK and the FPGA stacks (TVM-VTA / FINN).
//!
//! A "framework" here is a *deployment pipeline*: it takes a model graph,
//! applies the optimization passes that the real framework applies
//! (operator fusion, graph freezing, precision lowering — all implemented
//! as genuine IR transformations in [`passes`]), checks deployability
//! against a device (reproducing the paper's Table V compatibility matrix
//! in [`compat`]), and produces a [`deploy::CompiledModel`] whose latency,
//! energy and software-stack breakdown come from the calibrated execution
//! profiles in [`profile`].
//!
//! ## Example
//!
//! ```
//! use edgebench_frameworks::{deploy, Framework};
//! use edgebench_devices::Device;
//! use edgebench_models::Model;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let compiled = deploy::compile(Framework::TensorRt, Model::ResNet18, Device::JetsonNano)?;
//! let t = compiled.timing()?;
//! assert!(t.total_ms() < 100.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compat;
pub mod deploy;
pub mod edgetpu_compiler;
pub mod exchange;
mod info;
pub mod ladder;
pub mod passes;
pub mod profile;
pub mod stack;

pub use info::{Framework, FrameworkInfo, OptimizationSupport};
