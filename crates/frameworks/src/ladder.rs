//! Graceful-degradation ladders: ordered cheaper-precision variants of a
//! deployment.
//!
//! A serving fleet under SLO pressure can *degrade* instead of shedding:
//! re-lower the same deployed graph to a narrower precision (fp32 → fp16
//! → int8, the framework quantization passes) and serve the burst at a
//! lower accuracy proxy. This module constructs that ladder: rung 0 is
//! the framework's native deployment, and each subsequent rung is a
//! strictly cheaper (batch-1 latency) re-lowering. Devices without a fast
//! low-precision path (the RPi's NEON f32-only stacks) naturally produce
//! short or empty ladders — exactly the paper's per-device unevenness.

use crate::deploy::{compile, CompiledModel, DeployError};
use crate::info::Framework;
use edgebench_devices::Device;
use edgebench_graph::DType;
use edgebench_models::Model;

/// One rung of a degradation ladder.
#[derive(Debug, Clone)]
pub struct PrecisionVariant {
    /// Precision this rung serves at.
    pub dtype: DType,
    /// Accuracy proxy in `[0, 1]` (1.0 = full-precision fidelity).
    pub fidelity: f64,
    /// Predicted batch-1 latency, milliseconds.
    pub latency_ms: f64,
    /// The re-lowered deployment.
    pub compiled: CompiledModel,
}

/// Accuracy proxy per precision: fp16 is near-lossless, int8
/// post-training quantization costs on the order of a point of top-1
/// (cf. the quantization characterization literature).
pub fn fidelity_proxy(dtype: DType) -> f64 {
    match dtype {
        DType::F32 => 1.0,
        DType::F16 => 0.999,
        DType::I8 => 0.98,
    }
}

/// The precisions strictly narrower than `dtype`, in ladder order.
pub fn cheaper_dtypes(dtype: DType) -> &'static [DType] {
    match dtype {
        DType::F32 => &[DType::F16, DType::I8],
        DType::F16 => &[DType::I8],
        DType::I8 => &[],
    }
}

/// Builds the degradation ladder for `(framework, model, device)`: the
/// native deployment followed by every strictly cheaper narrower-precision
/// re-lowering. A candidate rung is kept only when it deploys *and* its
/// batch-1 latency is strictly below the previous rung's, so the returned
/// ladder is strictly decreasing in cost by construction.
///
/// # Errors
///
/// [`DeployError`] when even the native deployment is infeasible.
pub fn precision_ladder(
    fw: Framework,
    model: Model,
    device: Device,
) -> Result<Vec<PrecisionVariant>, DeployError> {
    let native = compile(fw, model, device)?;
    let native_dtype = native.graph().dtype();
    let native_ms = native.latency_ms()?;
    let mut ladder = vec![PrecisionVariant {
        dtype: native_dtype,
        fidelity: fidelity_proxy(native_dtype),
        latency_ms: native_ms,
        compiled: native.clone(),
    }];
    for &dtype in cheaper_dtypes(native_dtype) {
        let compiled = native.clone().with_precision(dtype);
        let Ok(latency_ms) = compiled.latency_ms() else {
            continue; // no execution path at this precision
        };
        let prev_ms = ladder.last().expect("rung 0 present").latency_ms;
        if latency_ms < prev_ms {
            ladder.push(PrecisionVariant {
                dtype,
                fidelity: fidelity_proxy(dtype),
                latency_ms,
                compiled,
            });
        }
    }
    Ok(ladder)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladders_are_strictly_decreasing_in_latency() {
        for (fw, model, device) in [
            (Framework::PyTorch, Model::ResNet50, Device::JetsonTx2),
            (Framework::TensorRt, Model::ResNet50, Device::JetsonNano),
            (Framework::TfLite, Model::MobileNetV2, Device::RaspberryPi3),
            (Framework::TensorFlow, Model::ResNet18, Device::RaspberryPi3),
        ] {
            let ladder = precision_ladder(fw, model, device).unwrap();
            assert!(!ladder.is_empty());
            for w in ladder.windows(2) {
                assert!(
                    w[1].latency_ms < w[0].latency_ms,
                    "{fw} {model} {device}: {} !< {}",
                    w[1].latency_ms,
                    w[0].latency_ms
                );
                assert!(w[1].fidelity < w[0].fidelity, "fidelity must cost");
            }
        }
    }

    #[test]
    fn tx2_pytorch_ladder_reaches_int8_and_nearly_halves_resnet50() {
        let ladder =
            precision_ladder(Framework::PyTorch, Model::ResNet50, Device::JetsonTx2).unwrap();
        assert!(ladder.len() >= 2, "tx2 has an f16 path");
        assert_eq!(ladder[0].dtype, DType::F32);
        assert_eq!(ladder[1].dtype, DType::F16);
        let speedup = ladder[0].latency_ms / ladder[1].latency_ms;
        assert!(speedup > 1.3, "f16 speedup {speedup}");
    }

    #[test]
    fn native_int8_deployments_have_no_lower_rung() {
        // TFLite already deploys at INT8; there is nothing narrower.
        let ladder =
            precision_ladder(Framework::TfLite, Model::MobileNetV2, Device::RaspberryPi3).unwrap();
        assert_eq!(ladder.len(), 1);
        assert_eq!(ladder[0].dtype, DType::I8);
    }

    #[test]
    fn fidelity_proxy_is_monotone_in_width() {
        assert!(fidelity_proxy(DType::F32) > fidelity_proxy(DType::F16));
        assert!(fidelity_proxy(DType::F16) > fidelity_proxy(DType::I8));
    }

    #[test]
    fn infeasible_native_deployment_propagates_the_error() {
        assert!(
            precision_ladder(Framework::TensorFlow, Model::Vgg16, Device::RaspberryPi3).is_err()
        );
    }
}
