//! Calibrated execution profiles for (framework, device) pairs.
//!
//! A profile describes how a framework's software stack modulates the raw
//! roofline of a device: kernel quality (`compute_scale`), interpreter /
//! session dispatch cost (`dispatch_scale`), fixed per-inference overheads,
//! one-time costs (library loading, graph construction) and the precision
//! and passes the framework deploys with.
//!
//! ## Calibration
//!
//! The scale factors are calibrated so that the *shape* of the paper's
//! figures reproduces: which framework wins on which device, by roughly
//! what factor, and where crossovers fall. The provenance of each number is
//! commented inline; EXPERIMENTS.md tabulates paper-vs-model values for
//! every figure.

use crate::info::Framework;
use edgebench_devices::{Device, DeviceCategory};
use edgebench_graph::{DType, MemoryPolicy};

/// How a framework executes on a particular device.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecProfile {
    /// Multiplier on attainable compute (kernel quality; 1 = device-tuned).
    pub compute_scale: f64,
    /// Multiplier on attainable bandwidth.
    pub memory_scale: f64,
    /// Multiplier on the device's per-op dispatch overhead.
    pub dispatch_scale: f64,
    /// Fixed per-inference overhead, seconds (session entry, Python glue).
    pub fixed_s: f64,
    /// Per-inference host↔device data movement (the GPU `.to()` transfer).
    pub transfer_s: f64,
    /// Extra slowdown on depthwise convolutions (frameworks without a
    /// dedicated depthwise kernel pay im2col per channel).
    pub depthwise_penalty: f64,
    /// Element type the framework deploys at on this device.
    pub precision: DType,
    /// Whether the deployment pipeline applies conv-bn-act fusion.
    pub fusion: bool,
    /// Whether the deployment pipeline freezes the graph (drops no-ops).
    pub freeze: bool,
    /// Activation allocation policy.
    pub policy: MemoryPolicy,
    /// One-time library/loading cost, seconds (Fig 5 "library loading").
    pub library_load_s: f64,
    /// One-time graph construction cost, seconds (Fig 5 "base_layer" /
    /// `model.__init__`); dynamic-graph frameworks instead pay
    /// [`ExecProfile::graph_setup_per_inference_s`].
    pub graph_setup_s: f64,
    /// Per-inference graph (re)construction for dynamic-graph frameworks.
    pub graph_setup_per_inference_s: f64,
}

impl ExecProfile {
    fn base(policy: MemoryPolicy) -> ExecProfile {
        ExecProfile {
            compute_scale: 1.0,
            memory_scale: 1.0,
            dispatch_scale: 1.0,
            fixed_s: 0.0,
            transfer_s: 0.0,
            depthwise_penalty: 1.0,
            precision: DType::F32,
            fusion: false,
            freeze: false,
            policy,
            library_load_s: 1.0,
            graph_setup_s: 0.0,
            graph_setup_per_inference_s: 0.0,
        }
    }

    /// The calibrated profile for `fw` running on `device`, or `None` if the
    /// framework does not target the device.
    pub fn for_pair(fw: Framework, device: Device) -> Option<ExecProfile> {
        if !crate::compat::framework_targets_device(fw, device) {
            return None;
        }
        let cat = device.spec().category;
        let on_gpu = device.spec().has_gpu;
        let policy = fw.info().memory_policy;
        let mut p = ExecProfile::base(policy);
        // CPUs are slower at everything one-time (library loads measured in
        // seconds on the RPi — paper Fig 5a/b).
        let slow_host = matches!(cat, DeviceCategory::IotEdge | DeviceCategory::Fpga);

        match fw {
            // TensorFlow 1.x: well-vectorized Eigen CPU kernels, but a
            // heavyweight session. On GPUs, static-graph feeding overheads
            // make it the *slowest* of the majors (paper §VI-B1: "the
            // overhead of using a static computation graph on GPU exceeds
            // its performance gains").
            Framework::TensorFlow | Framework::Keras => {
                if on_gpu {
                    p.compute_scale = 0.85;
                    p.dispatch_scale = 4.0;
                    p.fixed_s = 0.055;
                    p.transfer_s = 0.004;
                    p.graph_setup_s = 8.0;
                    p.library_load_s = 3.0;
                } else {
                    p.compute_scale = 0.9;
                    p.dispatch_scale = if slow_host { 80.0 } else { 8.0 };
                    p.fixed_s = if slow_host { 0.03 } else { 0.004 };
                    p.graph_setup_s = if slow_host { 20.0 } else { 2.0 };
                    p.library_load_s = if slow_host { 9.0 } else { 2.0 };
                }
            }
            // TFLite: frozen, fused flatbuffer graphs with a lean C++
            // interpreter. INT8 deployment — which only pays off on devices
            // with an INT8 path (EdgeTPU), reproducing §VI-B2 on the RPi.
            Framework::TfLite => {
                p.fusion = true;
                p.freeze = true;
                p.precision = DType::I8;
                p.compute_scale = 1.0;
                p.dispatch_scale = if slow_host { 25.0 } else { 2.0 };
                p.fixed_s = if slow_host { 0.008 } else { 0.002 };
                p.graph_setup_s = 0.4;
                p.library_load_s = if slow_host { 2.0 } else { 0.5 };
                if device == Device::EdgeTpu {
                    // The whole graph compiles into one on-chip program.
                    p.dispatch_scale = 1.0;
                    p.fixed_s = 0.001;
                }
            }
            // Caffe: solid C++ kernels, no fusion, and grouped convolution
            // implemented as a loop over groups — a depthwise layer with C
            // channels issues C tiny GEMMs. On a GPU that is C kernel
            // launches per layer, which is catastrophic (reproduces "Caffe
            // beats TF on TX2 except MobileNet-v2"); on a CPU it is merely
            // cache-unfriendly.
            Framework::Caffe => {
                p.depthwise_penalty = if on_gpu { 700.0 } else { 4.0 };
                if on_gpu {
                    p.compute_scale = 0.95;
                    p.dispatch_scale = 1.6;
                    p.fixed_s = 0.012;
                    p.transfer_s = 0.002;
                    p.graph_setup_s = 2.0;
                } else {
                    p.compute_scale = 0.35; // OpenBLAS poorly tuned on ARM
                    p.dispatch_scale = if slow_host { 60.0 } else { 4.0 };
                    p.fixed_s = if slow_host { 0.02 } else { 0.003 };
                    p.graph_setup_s = if slow_host { 6.0 } else { 1.0 };
                    p.library_load_s = if slow_host { 4.0 } else { 1.0 };
                }
            }
            // PyTorch: cuDNN-direct on GPUs (fastest there, §VI-B1), but
            // pre-NNPACK THNN kernels on ARM CPUs (slowest on the RPi,
            // Fig 3/8) and per-inference dynamic graph bookkeeping.
            Framework::PyTorch => {
                p.graph_setup_per_inference_s = if slow_host { 0.02 } else { 0.001 };
                if on_gpu {
                    p.compute_scale = if device == Device::JetsonNano {
                        0.55
                    } else {
                        1.0
                    };
                    p.dispatch_scale = 1.0;
                    p.fixed_s = 0.004;
                    p.transfer_s = 0.003;
                    p.library_load_s = 2.0;
                } else {
                    p.compute_scale = if slow_host { 0.28 } else { 0.7 };
                    p.depthwise_penalty = 6.0;
                    p.dispatch_scale = if slow_host { 420.0 } else { 10.0 };
                    p.fixed_s = if slow_host { 0.05 } else { 0.005 };
                    p.library_load_s = if slow_host { 6.0 } else { 1.5 };
                }
            }
            // TensorRT: fused, auto-tuned FP16 engines (INT8 where the GPU
            // has a fast path). The 4.1× mean speedup over PyTorch on the
            // Nano (Fig 7) comes from fusion + half precision + tuning.
            Framework::TensorRt => {
                p.fusion = true;
                p.freeze = true;
                p.precision = DType::F16;
                p.compute_scale = 1.15; // auto-tuned kernels beat stock cuDNN
                p.dispatch_scale = 0.5;
                p.fixed_s = 0.002;
                p.transfer_s = 0.001;
                p.graph_setup_s = 30.0; // engine build is expensive, one-time
                p.library_load_s = 1.5;
            }
            // DarkNet: plain C; no BLAS tuning on ARM, decent CUDA path.
            Framework::DarkNet => {
                if on_gpu {
                    p.compute_scale = 0.75;
                    p.dispatch_scale = 1.2;
                    p.fixed_s = 0.003;
                    p.transfer_s = 0.002;
                } else {
                    p.compute_scale = 0.4;
                    p.dispatch_scale = if slow_host { 30.0 } else { 3.0 };
                    p.fixed_s = if slow_host { 0.01 } else { 0.002 };
                }
                p.library_load_s = 0.2;
            }
            // NCSDK: hand-tuned FP16 graphs on the Myriad 2; models outside
            // the tuned set run at a fraction of the VPU's ability
            // (paper §VI-A: "Movidius models require careful fine-tuning by
            // experts, which in the case of new models has not been done").
            Framework::Ncsdk => {
                p.fusion = true;
                p.freeze = true;
                p.precision = DType::F16;
                p.compute_scale = 0.8;
                p.dispatch_scale = 1.0;
                p.graph_setup_s = 5.0;
                p.library_load_s = 1.0;
            }
            // TVM-VTA: INT8 FPGA overlay; non-optimized hardware mapping
            // (paper footnote 5: "a non-optimized hardware implementation
            // could be slower than its CPU-based implementations").
            Framework::TvmVta => {
                p.fusion = true;
                p.freeze = true;
                p.precision = DType::I8;
                p.compute_scale = 0.45;
                p.dispatch_scale = 4.0;
                p.graph_setup_s = 45.0; // JIT compile + overlay programming
                p.library_load_s = 5.0;
            }
        }
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_exist_exactly_where_targeting_allows() {
        for &f in Framework::all() {
            for &d in Device::all() {
                let has = ExecProfile::for_pair(f, d).is_some();
                assert_eq!(
                    has,
                    crate::compat::framework_targets_device(f, d),
                    "{f} on {d}"
                );
            }
        }
    }

    #[test]
    fn pytorch_is_kernel_poor_on_rpi_but_tuned_on_tx2() {
        let rpi = ExecProfile::for_pair(Framework::PyTorch, Device::RaspberryPi3).unwrap();
        let tx2 = ExecProfile::for_pair(Framework::PyTorch, Device::JetsonTx2).unwrap();
        assert!(rpi.compute_scale < 0.5);
        assert!(tx2.compute_scale >= 1.0);
    }

    #[test]
    fn edge_specific_frameworks_fuse_and_freeze() {
        for f in [Framework::TfLite, Framework::TensorRt, Framework::Ncsdk] {
            let d = match f {
                Framework::Ncsdk => Device::MovidiusNcs,
                Framework::TensorRt => Device::JetsonNano,
                _ => Device::RaspberryPi3,
            };
            let p = ExecProfile::for_pair(f, d).unwrap();
            assert!(p.fusion && p.freeze, "{f}");
            assert_ne!(p.precision, DType::F32, "{f} deploys at low precision");
        }
    }

    #[test]
    fn tensorflow_pays_session_overhead_on_gpu() {
        let tf = ExecProfile::for_pair(Framework::TensorFlow, Device::JetsonTx2).unwrap();
        let pt = ExecProfile::for_pair(Framework::PyTorch, Device::JetsonTx2).unwrap();
        assert!(tf.fixed_s > 5.0 * pt.fixed_s);
        assert!(tf.dispatch_scale > pt.dispatch_scale);
    }

    #[test]
    fn caffe_lacks_a_depthwise_kernel() {
        let p = ExecProfile::for_pair(Framework::Caffe, Device::JetsonTx2).unwrap();
        assert!(p.depthwise_penalty > 5.0);
    }
}
