//! Deployability rules reproducing the paper's Table V (model × platform
//! compatibility matrix).
//!
//! Wherever possible the rules are *mechanical* rather than transcribed:
//!
//! * Memory errors and dynamic-graph fallbacks (`^` in the paper) follow
//!   from the runtime-footprint model versus device RAM, combined with the
//!   framework's allocation policy.
//! * EdgeTPU conversion barriers (`4`) mostly follow from the operator set:
//!   the EdgeTPU compiler cannot lower 3-D convolutions (C3D), LRN
//!   (AlexNet) or leaky activations (the YOLO family). ResNet-18's barrier
//!   is non-mechanical (no quantization-aware checkpoint was obtainable —
//!   paper §VI-A) and is encoded as such.
//! * The PYNQ stacks (TVM-VTA / FINN) implement a small-model whitelist
//!   (paper: "FINN and TVM have implemented small models — CifarNet and
//!   ResNet-18"); everything else spills BRAM (`^^`).
//! * SSD on the Raspberry Pi fails on a code incompatibility in its extra
//!   image-processing dependency (`O`), and C3D does the same on Movidius.

use crate::info::Framework;
use edgebench_devices::perf::RooflineModel;
use edgebench_devices::Device;
use edgebench_graph::{ActivationKind, MemoryPolicy, Op};
use edgebench_models::Model;
use std::fmt;

/// Why a deployment is impossible.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Barrier {
    /// Base-code incompatibility (paper's `O`).
    CodeIncompatibility(&'static str),
    /// The accelerator compiler cannot convert the model (paper's `4`).
    ConversionBarrier(String),
    /// FPGA resources cannot hold the model / unsupported ops (paper's `^^`).
    FpgaResourceLimit,
    /// Static-graph allocation exceeds device memory (paper's memory error).
    MemoryError,
    /// The framework does not target this device at all.
    WrongDevice,
}

impl fmt::Display for Barrier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Barrier::CodeIncompatibility(what) => write!(f, "code incompatibility: {what}"),
            Barrier::ConversionBarrier(what) => write!(f, "conversion barrier: {what}"),
            Barrier::FpgaResourceLimit => write!(f, "fpga resource limit (bram spill)"),
            Barrier::MemoryError => write!(f, "memory error (static graph exceeds ram)"),
            Barrier::WrongDevice => write!(f, "framework does not target this device"),
        }
    }
}

/// Deployability verdict for (framework, model, device).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Compat {
    /// Deploys and runs normally (paper's `✓`).
    Supported,
    /// Runs only through a dynamic computation graph with heavy memory
    /// pressure — order-of-magnitude slower (paper's `^`).
    DynamicGraphFallback,
    /// Cannot run.
    Unsupported(Barrier),
}

impl Compat {
    /// Whether the deployment can execute at all.
    pub fn is_runnable(&self) -> bool {
        !matches!(self, Compat::Unsupported(_))
    }

    /// The paper's Table V cell symbol.
    pub fn symbol(&self) -> &'static str {
        match self {
            Compat::Supported => "ok",
            Compat::DynamicGraphFallback => "dyn",
            Compat::Unsupported(Barrier::CodeIncompatibility(_)) => "code",
            Compat::Unsupported(Barrier::ConversionBarrier(_)) => "conv",
            Compat::Unsupported(Barrier::FpgaResourceLimit) => "bram",
            Compat::Unsupported(Barrier::MemoryError) => "oom",
            Compat::Unsupported(Barrier::WrongDevice) => "-",
        }
    }
}

/// Whether a framework can target a device at all.
///
/// Accelerators require their dedicated toolkits; the dedicated toolkits
/// target nothing else; general frameworks run on CPU/GPU platforms.
pub fn framework_targets_device(fw: Framework, device: Device) -> bool {
    use Device::*;
    match fw {
        Framework::Ncsdk => matches!(device, MovidiusNcs | Ncs2),
        Framework::TvmVta => device == PynqZ1,
        Framework::TensorRt => matches!(
            device,
            JetsonTx2 | JetsonNano | GtxTitanX | TitanXp | Rtx2080
        ),
        Framework::TfLite => !matches!(device, MovidiusNcs | Ncs2 | PynqZ1),
        _ => !matches!(device, EdgeTpu | MovidiusNcs | Ncs2 | PynqZ1),
    }
}

/// Ops the EdgeTPU compiler can lower (quantized TFLite operator subset).
/// Exposed for the segment-mapping model in
/// [`crate::edgetpu_compiler`].
pub fn edgetpu_op_check(op: &Op) -> Result<(), String> {
    match op {
        Op::Conv3d { .. } | Op::Pool3d { .. } => Err(format!("{op} has no EdgeTPU lowering")),
        Op::Lrn { .. } => Err("lrn is not supported by the edgetpu compiler".to_string()),
        Op::Activation { kind } if matches!(kind, ActivationKind::Leaky | ActivationKind::Tanh) => {
            Err(format!("activation {kind} cannot be quantized for edgetpu"))
        }
        Op::FusedConvBnAct { act, .. } if *act == ActivationKind::Leaky => {
            Err("leaky activation cannot be quantized for edgetpu".to_string())
        }
        Op::FusedDenseAct { act, .. }
            if matches!(act, ActivationKind::Leaky | ActivationKind::Tanh) =>
        {
            Err(format!("activation {act} cannot be quantized for edgetpu"))
        }
        _ => Ok(()),
    }
}

/// Models for which no quantization-aware training checkpoint could be
/// produced (paper §VI-A, barrier (ii)/(iv)).
fn edgetpu_missing_qat_checkpoint(model: Model) -> bool {
    matches!(model, Model::ResNet18)
}

/// Models the paper demonstrably converted to TFLite: the Fig 8 five plus
/// the EdgeTPU-deployed VGG16 and SSD (Table V). Converting further models
/// requires post-training quantization fine-tuning the paper "was unable to
/// find such parameters" for (§VI-A).
fn tflite_conversion_available(model: Model) -> bool {
    matches!(
        model,
        Model::ResNet18
            | Model::ResNet50
            | Model::ResNet101
            | Model::MobileNetV2
            | Model::InceptionV4
            | Model::Vgg16
            | Model::SsdMobileNetV1
            | Model::CifarNet
    )
}

/// Checks deployability of `model` through `fw` on `device`.
pub fn check(fw: Framework, model: Model, device: Device) -> Compat {
    if !framework_targets_device(fw, device) {
        return Compat::Unsupported(Barrier::WrongDevice);
    }

    // Hand-verified code incompatibilities from the paper.
    if device == Device::RaspberryPi3 && model == Model::SsdMobileNetV1 {
        return Compat::Unsupported(Barrier::CodeIncompatibility(
            "ssd's extra image-processing library fails on rpi",
        ));
    }
    if device == Device::MovidiusNcs && model == Model::C3d {
        return Compat::Unsupported(Barrier::CodeIncompatibility(
            "c3d base code does not compile with ncsdk",
        ));
    }

    // DarkNet is not industry-backed; the paper "were not able to
    // find/implement some complex models" for it (§VI-B1).
    if fw == Framework::DarkNet
        && matches!(
            model,
            Model::Xception
                | Model::MobileNetV2
                | Model::InceptionV4
                | Model::SsdMobileNetV1
                | Model::C3d
                | Model::VggS32
                | Model::VggS224
        )
    {
        return Compat::Unsupported(Barrier::ConversionBarrier(
            "no darknet implementation of this model".to_string(),
        ));
    }

    // TFLite needs a convertible, quantizable checkpoint anywhere it runs.
    if fw == Framework::TfLite && !tflite_conversion_available(model) {
        return Compat::Unsupported(Barrier::ConversionBarrier(
            "no quantized tflite conversion of this model obtainable".to_string(),
        ));
    }

    // EdgeTPU conversion barriers: operator set + quantization checkpoints.
    if device == Device::EdgeTpu {
        let graph = model.build();
        for node in graph.nodes() {
            if let Err(reason) = edgetpu_op_check(node.op()) {
                return Compat::Unsupported(Barrier::ConversionBarrier(reason));
            }
        }
        if edgetpu_missing_qat_checkpoint(model) {
            return Compat::Unsupported(Barrier::ConversionBarrier(
                "no quantization-aware training checkpoint obtainable".to_string(),
            ));
        }
    }

    // PYNQ: the FPGA stacks implement only small whitelisted models.
    if device == Device::PynqZ1 && !matches!(model, Model::ResNet18 | Model::CifarNet) {
        return Compat::Unsupported(Barrier::FpgaResourceLimit);
    }

    // Memory feasibility, mechanical: static-graph frameworks OOM when the
    // runtime footprint exceeds RAM; dynamic-graph frameworks fall back.
    // The footprint is evaluated at the precision the framework deploys at
    // (a quantized EdgeTPU model is a quarter the size of its F32 source).
    // Accelerator toolchains (EdgeTPU, NCSDK, the FPGA stacks) stream
    // weights from host memory, so the device-RAM feasibility rule does not
    // apply; their deployability is governed by the rules above.
    if matches!(
        device.spec().category,
        edgebench_devices::DeviceCategory::AsicAccelerator
            | edgebench_devices::DeviceCategory::Fpga
    ) {
        return Compat::Supported;
    }
    let precision = crate::profile::ExecProfile::for_pair(fw, device)
        .map(|p| p.precision)
        .unwrap_or(edgebench_graph::DType::F32);
    let graph = model.build().with_dtype(precision);
    let stats = graph.stats();
    let capacity = device.spec().mem_capacity_bytes;
    let static_fp = RooflineModel::runtime_footprint(&stats, MemoryPolicy::StaticGraph);
    let dynamic_fp = RooflineModel::runtime_footprint(&stats, MemoryPolicy::DynamicGraph);
    let policy = fw.info().memory_policy;
    match policy {
        MemoryPolicy::StaticGraph if static_fp > capacity => {
            Compat::Unsupported(Barrier::MemoryError)
        }
        MemoryPolicy::DynamicGraph if static_fp > capacity => {
            if dynamic_fp as f64 > capacity as f64 * 1.6 {
                Compat::Unsupported(Barrier::MemoryError)
            } else {
                Compat::DynamicGraphFallback
            }
        }
        _ => Compat::Supported,
    }
}

/// The framework each platform uses in the paper's Table V / Fig 2.
pub fn native_framework(device: Device) -> Framework {
    match device {
        Device::EdgeTpu => Framework::TfLite,
        Device::MovidiusNcs => Framework::Ncsdk,
        Device::PynqZ1 => Framework::TvmVta,
        Device::JetsonNano => Framework::TensorRt,
        _ => Framework::PyTorch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_rpi_column() {
        // AlexNet / VGG16 / C3D need the dynamic-graph fallback on the 1 GB
        // RPi; SSD hits a code incompatibility; the rest are supported.
        use Model::*;
        let d = Device::RaspberryPi3;
        for (m, want_dyn) in [
            (ResNet18, false),
            (ResNet50, false),
            (MobileNetV2, false),
            (InceptionV4, false),
            (AlexNet, true),
            (Vgg16, true),
            (TinyYolo, false),
            (C3d, true),
        ] {
            let c = check(Framework::PyTorch, m, d);
            if want_dyn {
                assert_eq!(c, Compat::DynamicGraphFallback, "{m}");
            } else {
                assert_eq!(c, Compat::Supported, "{m}");
            }
        }
        assert!(matches!(
            check(Framework::PyTorch, SsdMobileNetV1, d),
            Compat::Unsupported(Barrier::CodeIncompatibility(_))
        ));
    }

    #[test]
    fn tensorflow_memory_errors_where_pytorch_falls_back() {
        // Paper §VI-A: "PyTorch uses its dynamic graph to manage limited
        // memory availability, whereas TensorFlow fails to run such models."
        for m in [Model::AlexNet, Model::Vgg16, Model::C3d] {
            assert_eq!(
                check(Framework::TensorFlow, m, Device::RaspberryPi3),
                Compat::Unsupported(Barrier::MemoryError),
                "{m}"
            );
            assert_eq!(
                check(Framework::PyTorch, m, Device::RaspberryPi3),
                Compat::DynamicGraphFallback,
                "{m}"
            );
        }
    }

    #[test]
    fn table_v_jetsons_run_everything() {
        for &d in &[Device::JetsonTx2, Device::JetsonNano] {
            for &m in Model::fig2_set() {
                let fw = native_framework(d);
                assert_eq!(check(fw, m, d), Compat::Supported, "{m} on {d}");
            }
        }
    }

    #[test]
    fn table_v_edgetpu_column() {
        use Model::*;
        let d = Device::EdgeTpu;
        // Barriers: ResNet-18, AlexNet, TinyYolo, C3D.
        for m in [ResNet18, AlexNet, TinyYolo, C3d] {
            assert!(
                matches!(
                    check(Framework::TfLite, m, d),
                    Compat::Unsupported(Barrier::ConversionBarrier(_))
                ),
                "{m} should hit a conversion barrier"
            );
        }
        for m in [ResNet50, MobileNetV2, InceptionV4, Vgg16, SsdMobileNetV1] {
            assert_eq!(check(Framework::TfLite, m, d), Compat::Supported, "{m}");
        }
    }

    #[test]
    fn table_v_pynq_column() {
        assert_eq!(
            check(Framework::TvmVta, Model::ResNet18, Device::PynqZ1),
            Compat::Supported
        );
        assert_eq!(
            check(Framework::TvmVta, Model::CifarNet, Device::PynqZ1),
            Compat::Supported
        );
        for m in [
            Model::ResNet50,
            Model::MobileNetV2,
            Model::Vgg16,
            Model::C3d,
        ] {
            assert_eq!(
                check(Framework::TvmVta, m, Device::PynqZ1),
                Compat::Unsupported(Barrier::FpgaResourceLimit),
                "{m}"
            );
        }
    }

    #[test]
    fn movidius_runs_most_but_not_c3d() {
        assert_eq!(
            check(Framework::Ncsdk, Model::MobileNetV2, Device::MovidiusNcs),
            Compat::Supported
        );
        assert!(matches!(
            check(Framework::Ncsdk, Model::C3d, Device::MovidiusNcs),
            Compat::Unsupported(Barrier::CodeIncompatibility(_))
        ));
    }

    #[test]
    fn dedicated_toolkits_target_only_their_device() {
        assert!(framework_targets_device(
            Framework::Ncsdk,
            Device::MovidiusNcs
        ));
        assert!(!framework_targets_device(
            Framework::Ncsdk,
            Device::RaspberryPi3
        ));
        assert!(!framework_targets_device(
            Framework::PyTorch,
            Device::EdgeTpu
        ));
        assert!(framework_targets_device(Framework::TfLite, Device::EdgeTpu));
        assert!(!framework_targets_device(
            Framework::TensorRt,
            Device::RaspberryPi3
        ));
    }

    #[test]
    fn symbols_cover_all_verdicts() {
        assert_eq!(Compat::Supported.symbol(), "ok");
        assert_eq!(Compat::DynamicGraphFallback.symbol(), "dyn");
        assert_eq!(Compat::Unsupported(Barrier::MemoryError).symbol(), "oom");
        assert!(Compat::Supported.is_runnable());
        assert!(Compat::DynamicGraphFallback.is_runnable());
        assert!(!Compat::Unsupported(Barrier::WrongDevice).is_runnable());
    }
}
