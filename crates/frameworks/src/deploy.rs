//! The deployment pipeline: model + framework + device → compiled model
//! with latency, energy and memory predictions.

use crate::compat::{self, Compat};
use crate::info::Framework;
use crate::passes;
use crate::profile::ExecProfile;
use edgebench_devices::perf::{PerfError, RooflineModel, Timing};
use edgebench_devices::power::PowerModel;
use edgebench_devices::Device;
use edgebench_graph::{DType, Graph, GraphError, MemoryPolicy, Op};
use edgebench_models::Model;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Error produced by [`compile`] or [`CompiledModel::timing`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeployError {
    /// The (framework, model, device) combination cannot deploy (Table V).
    Incompatible(compat::Barrier),
    /// The timing model rejected the configuration.
    Perf(PerfError),
    /// The optimization pipeline failed to transform the graph.
    Pass(GraphError),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Incompatible(b) => write!(f, "incompatible: {b}"),
            DeployError::Perf(e) => write!(f, "performance model: {e}"),
            DeployError::Pass(e) => write!(f, "optimization pass: {e}"),
        }
    }
}

impl Error for DeployError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DeployError::Perf(e) => Some(e),
            DeployError::Pass(e) => Some(e),
            DeployError::Incompatible(_) => None,
        }
    }
}

impl From<PerfError> for DeployError {
    fn from(e: PerfError) -> Self {
        DeployError::Perf(e)
    }
}

impl From<GraphError> for DeployError {
    fn from(e: GraphError) -> Self {
        DeployError::Pass(e)
    }
}

/// A model deployed through a framework onto a device.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    framework: Framework,
    device: Device,
    model: Option<Model>,
    graph: Graph,
    profile: ExecProfile,
    policy: MemoryPolicy,
    compat: Compat,
    batch: usize,
}

/// Compiles a zoo model through `fw` for `device`.
///
/// Applies the framework's deployment passes (freeze, fusion, precision
/// lowering) and checks Table V deployability.
///
/// # Errors
///
/// [`DeployError::Incompatible`] when the combination cannot run at all.
pub fn compile(fw: Framework, model: Model, device: Device) -> Result<CompiledModel, DeployError> {
    let verdict = compat::check(fw, model, device);
    if let Compat::Unsupported(b) = verdict {
        return Err(DeployError::Incompatible(b));
    }
    let graph = model.build();
    compile_graph_with_compat(fw, graph, device, Some(model), verdict)
}

/// Compiles an arbitrary graph (no Table V model-specific rules applied).
///
/// # Errors
///
/// [`DeployError::Incompatible`] if the framework does not target the
/// device; [`DeployError::Pass`] if an optimization pass fails.
pub fn compile_graph(
    fw: Framework,
    graph: Graph,
    device: Device,
) -> Result<CompiledModel, DeployError> {
    if !compat::framework_targets_device(fw, device) {
        return Err(DeployError::Incompatible(compat::Barrier::WrongDevice));
    }
    compile_graph_with_compat(fw, graph, device, None, Compat::Supported)
}

fn compile_graph_with_compat(
    fw: Framework,
    graph: Graph,
    device: Device,
    model: Option<Model>,
    verdict: Compat,
) -> Result<CompiledModel, DeployError> {
    let profile = ExecProfile::for_pair(fw, device)
        .ok_or(DeployError::Incompatible(compat::Barrier::WrongDevice))?;
    let mut g = graph;
    if profile.freeze {
        g = passes::freeze(&g)?;
    }
    if profile.fusion {
        g = passes::fuse_conv_bn_act(&g)?;
    }
    if profile.precision != DType::F32 {
        g = g.with_dtype(profile.precision);
    }
    let policy = match verdict {
        Compat::DynamicGraphFallback => MemoryPolicy::DynamicGraph,
        _ => profile.policy,
    };
    Ok(CompiledModel {
        framework: fw,
        device,
        model,
        graph: g,
        profile,
        policy,
        compat: verdict,
        batch: 1,
    })
}

impl CompiledModel {
    /// The framework this model was compiled with.
    pub fn framework(&self) -> Framework {
        self.framework
    }

    /// The target device.
    pub fn device(&self) -> Device {
        self.device
    }

    /// The zoo model, when compiled from one.
    pub fn model(&self) -> Option<Model> {
        self.model
    }

    /// The transformed (deployed) graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The execution profile in use.
    pub fn profile(&self) -> &ExecProfile {
        &self.profile
    }

    /// The Table V verdict this deployment was compiled under.
    pub fn compat(&self) -> &Compat {
        &self.compat
    }

    /// Re-lowers the deployed graph to `dtype` — the quantization step a
    /// degradation ladder takes (fp32 → fp16 → int8). Whether the device
    /// actually runs faster at the narrower precision is decided by the
    /// roofline model when timing is queried.
    pub fn with_precision(mut self, dtype: DType) -> Self {
        self.graph = self.graph.with_dtype(dtype);
        self
    }

    /// Sets the batch size (default 1 — the paper's edge regime).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch must be positive");
        self.batch = batch;
        self
    }

    fn roofline(&self) -> RooflineModel {
        RooflineModel::for_device(self.device)
            .with_compute_scale(self.profile.compute_scale)
            .with_memory_scale(self.profile.memory_scale)
            .with_memory_policy(self.policy)
            .with_batch(self.batch)
    }

    /// Predicts one inference, with the full breakdown.
    ///
    /// # Errors
    ///
    /// [`DeployError::Perf`] when the configuration is infeasible (OOM /
    /// unsupported precision).
    pub fn timing(&self) -> Result<Timing, DeployError> {
        let rl = self.roofline();
        let dtype = self.graph.dtype();
        let stats = self.graph.stats();

        let footprint = RooflineModel::runtime_footprint(&stats, self.policy) * self.batch as u64;
        let capacity = self.device.spec().mem_capacity_bytes;
        // Accelerators stream weights from host memory; their device RAM
        // never holds the full runtime footprint.
        let host_managed = matches!(
            self.device.spec().category,
            edgebench_devices::DeviceCategory::AsicAccelerator
                | edgebench_devices::DeviceCategory::Fpga
        );
        let ratio = if host_managed {
            0.0
        } else {
            footprint as f64 / capacity as f64
        };
        let oom = !host_managed
            && match self.policy {
                MemoryPolicy::StaticGraph => footprint > capacity,
                MemoryPolicy::DynamicGraph => ratio > 1.6,
            };
        if oom {
            return Err(DeployError::Perf(PerfError::OutOfMemory {
                device: self.device.spec().name,
                required: footprint,
                available: capacity,
            }));
        }

        let mut compute_s = 0.0;
        let mut memory_s = 0.0;
        let mut by_op_s: BTreeMap<&'static str, f64> = BTreeMap::new();
        let mut n_dispatched = 0usize;
        for node in self.graph.nodes() {
            if matches!(node.op(), Op::Input { .. }) {
                continue;
            }
            let cost = edgebench_graph::stats::node_cost(&self.graph, node.id());
            let (mut c, m) = rl.node_time_s(&cost, dtype)?;
            c *= self.op_penalty(node.op());
            let t = c.max(m);
            compute_s += c;
            memory_s += t - c;
            *by_op_s.entry(node.op().name()).or_insert(0.0) += t;
            n_dispatched += 1;
        }
        // Static arenas either fit or fail; only dynamic allocation pages.
        let pressure = match self.policy {
            MemoryPolicy::StaticGraph => 1.0,
            MemoryPolicy::DynamicGraph => RooflineModel::pressure_factor(ratio),
        };
        let dispatch_s = n_dispatched as f64
            * self.device.spec().dispatch_overhead_s
            * self.profile.dispatch_scale;
        let io_s = self.device.spec().io_overhead_s + self.profile.transfer_s;
        let fixed = self.profile.fixed_s + self.profile.graph_setup_per_inference_s;
        let total_s = (compute_s + memory_s) * pressure + dispatch_s + io_s + fixed;
        Ok(Timing {
            compute_s,
            memory_s,
            dispatch_s,
            io_s,
            pressure_factor: pressure,
            total_s,
            by_op_s,
        })
    }

    /// Extra slowdown for operators the framework lacks tuned kernels for.
    fn op_penalty(&self, op: &Op) -> f64 {
        let depthwise = match op {
            Op::DepthwiseConv2d { .. } => true,
            Op::FusedConvBnAct { conv, .. } => matches!(**conv, Op::DepthwiseConv2d { .. }),
            _ => false,
        };
        if depthwise {
            self.profile.depthwise_penalty
        } else {
            1.0
        }
    }

    /// Per-layer latency attribution in milliseconds (roofline time plus
    /// this layer's dispatch share), in topological order — what a layer
    /// profiler reports.
    ///
    /// # Errors
    ///
    /// Same as [`CompiledModel::timing`].
    pub fn per_layer_ms(&self) -> Result<Vec<(String, f64)>, DeployError> {
        let rl = self.roofline();
        let dtype = self.graph.dtype();
        let dispatch = self.device.spec().dispatch_overhead_s * self.profile.dispatch_scale * 1e3;
        // Memory-pressure slowdown applies to kernel time layer by layer,
        // so the per-layer sum stays consistent with `timing()`.
        let pressure = self.timing()?.pressure_factor;
        let mut out = Vec::new();
        for node in self.graph.nodes() {
            if matches!(node.op(), Op::Input { .. }) {
                continue;
            }
            let cost = edgebench_graph::stats::node_cost(&self.graph, node.id());
            let (mut c, m) = rl.node_time_s(&cost, dtype)?;
            c *= self.op_penalty(node.op());
            out.push((
                node.name().to_string(),
                c.max(m) * pressure * 1e3 + dispatch,
            ));
        }
        Ok(out)
    }

    /// Predicted latency in milliseconds.
    ///
    /// # Errors
    ///
    /// Same as [`CompiledModel::timing`].
    pub fn latency_ms(&self) -> Result<f64, DeployError> {
        Ok(self.timing()?.total_ms())
    }

    /// Predicted energy per inference in millijoules (Fig 11's metric).
    ///
    /// # Errors
    ///
    /// Same as [`CompiledModel::timing`].
    pub fn energy_mj(&self) -> Result<f64, DeployError> {
        let t = self.timing()?;
        Ok(PowerModel::for_device(self.device).energy_per_inference_mj(t.total_s))
    }

    /// One-time setup cost (library load + graph build / engine build).
    pub fn setup_s(&self) -> f64 {
        self.profile.library_load_s + self.profile.graph_setup_s
    }

    /// Mean per-inference time when `n` inferences amortize the setup —
    /// what a profiler sees over a short run (paper §V, Fig 5).
    ///
    /// # Errors
    ///
    /// Same as [`CompiledModel::timing`].
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn amortized_s(&self, n: usize) -> Result<f64, DeployError> {
        assert!(n > 0, "need at least one inference");
        let per = self.timing()?.total_s;
        Ok((self.setup_s() + n as f64 * per) / n as f64)
    }
}

/// Convenience: the best (lowest-latency) runnable framework for a model on
/// a device, among frameworks that target it.
pub fn best_framework(model: Model, device: Device) -> Option<(Framework, f64)> {
    Framework::all()
        .iter()
        .filter_map(|&fw| {
            let c = compile(fw, model, device).ok()?;
            let ms = c.latency_ms().ok()?;
            Some((fw, ms))
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensorrt_beats_pytorch_on_nano() {
        // Paper Fig 7: mean 4.1x speedup.
        let mut speedups = Vec::new();
        for &m in Model::fig2_set() {
            let pt = compile(Framework::PyTorch, m, Device::JetsonNano).unwrap();
            let rt = compile(Framework::TensorRt, m, Device::JetsonNano).unwrap();
            let s = pt.latency_ms().unwrap() / rt.latency_ms().unwrap();
            assert!(s > 1.3, "{m}: speedup {s}");
            speedups.push(s);
        }
        let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
        assert!(
            (2.0..8.0).contains(&mean),
            "mean speedup {mean} vs paper 4.1"
        );
    }

    #[test]
    fn tflite_beats_tensorflow_beats_pytorch_on_rpi() {
        // Paper Fig 8: TFLite 1.58x over TF, 4.53x over PyTorch (means).
        for m in [
            Model::ResNet18,
            Model::ResNet50,
            Model::MobileNetV2,
            Model::InceptionV4,
        ] {
            let tfl = compile(Framework::TfLite, m, Device::RaspberryPi3)
                .unwrap()
                .latency_ms()
                .unwrap();
            let tf = compile(Framework::TensorFlow, m, Device::RaspberryPi3)
                .unwrap()
                .latency_ms()
                .unwrap();
            let pt = compile(Framework::PyTorch, m, Device::RaspberryPi3)
                .unwrap()
                .latency_ms()
                .unwrap();
            assert!(tfl < tf, "{m}: tflite {tfl} vs tf {tf}");
            assert!(tf < pt, "{m}: tf {tf} vs pytorch {pt}");
        }
    }

    #[test]
    fn pytorch_beats_tensorflow_on_tx2_but_not_on_rpi() {
        // Paper §VI-B1's headline inversion.
        let m = Model::ResNet50;
        let pt_tx2 = compile(Framework::PyTorch, m, Device::JetsonTx2)
            .unwrap()
            .latency_ms()
            .unwrap();
        let tf_tx2 = compile(Framework::TensorFlow, m, Device::JetsonTx2)
            .unwrap()
            .latency_ms()
            .unwrap();
        assert!(pt_tx2 < tf_tx2);
        let pt_rpi = compile(Framework::PyTorch, m, Device::RaspberryPi3)
            .unwrap()
            .latency_ms()
            .unwrap();
        let tf_rpi = compile(Framework::TensorFlow, m, Device::RaspberryPi3)
            .unwrap()
            .latency_ms()
            .unwrap();
        assert!(tf_rpi < pt_rpi);
    }

    #[test]
    fn caffe_beats_tf_on_tx2_except_mobilenet() {
        // Paper §VI-B1: "the performance of Caffe is always better than
        // TensorFlow, except for MobileNet-v2."
        for m in [Model::ResNet50, Model::InceptionV4, Model::Vgg16] {
            let cf = compile(Framework::Caffe, m, Device::JetsonTx2)
                .unwrap()
                .latency_ms()
                .unwrap();
            let tf = compile(Framework::TensorFlow, m, Device::JetsonTx2)
                .unwrap()
                .latency_ms()
                .unwrap();
            assert!(cf < tf, "{m}: caffe {cf} vs tf {tf}");
        }
        let cf = compile(Framework::Caffe, Model::MobileNetV2, Device::JetsonTx2)
            .unwrap()
            .latency_ms()
            .unwrap();
        let tf = compile(Framework::TensorFlow, Model::MobileNetV2, Device::JetsonTx2)
            .unwrap()
            .latency_ms()
            .unwrap();
        assert!(cf > tf, "mobilenet-v2: caffe {cf} should lose to tf {tf}");
    }

    #[test]
    fn incompatible_deployments_fail_to_compile() {
        assert!(matches!(
            compile(Framework::TfLite, Model::C3d, Device::EdgeTpu),
            Err(DeployError::Incompatible(_))
        ));
        assert!(matches!(
            compile(Framework::TensorFlow, Model::Vgg16, Device::RaspberryPi3),
            Err(DeployError::Incompatible(compat::Barrier::MemoryError))
        ));
    }

    #[test]
    fn dynamic_fallback_is_an_order_of_magnitude_slower() {
        // Paper Table V footnote: `^` models "experience an order of
        // magnitude higher inference time".
        let vgg = compile(Framework::PyTorch, Model::Vgg16, Device::RaspberryPi3).unwrap();
        assert_eq!(*vgg.compat(), Compat::DynamicGraphFallback);
        let t = vgg.timing().unwrap();
        assert!(t.pressure_factor > 2.0, "pressure {}", t.pressure_factor);
    }

    #[test]
    fn best_framework_on_nano_is_tensorrt() {
        let (fw, _) = best_framework(Model::ResNet18, Device::JetsonNano).unwrap();
        assert_eq!(fw, Framework::TensorRt);
    }

    #[test]
    fn amortization_approaches_steady_state() {
        let c = compile(Framework::TensorFlow, Model::ResNet18, Device::JetsonTx2).unwrap();
        let steady = c.timing().unwrap().total_s;
        let short = c.amortized_s(10).unwrap();
        let long = c.amortized_s(100_000).unwrap();
        assert!(short > long);
        assert!((long - steady) / steady < 0.01);
    }

    #[test]
    fn energy_tracks_latency_times_power() {
        let c = compile(Framework::PyTorch, Model::ResNet18, Device::JetsonTx2).unwrap();
        let t = c.timing().unwrap().total_s;
        let e = c.energy_mj().unwrap();
        let expected = Device::JetsonTx2.spec().avg_power_w * t * 1e3;
        assert!((e - expected).abs() < 1e-9);
    }

    #[test]
    fn per_layer_times_sum_to_the_kernel_share_of_total() {
        // Both an unpressured and a paging (dynamic-fallback) deployment.
        for (fw, m, d) in [
            (Framework::PyTorch, Model::ResNet18, Device::JetsonTx2),
            (Framework::PyTorch, Model::Vgg16, Device::RaspberryPi3),
        ] {
            let c = compile(fw, m, d).unwrap();
            let layers = c.per_layer_ms().unwrap();
            assert_eq!(layers.len(), c.graph().len() - 1); // all but input
            let sum: f64 = layers.iter().map(|(_, ms)| ms).sum();
            let t = c.timing().unwrap();
            let kernel_ms = ((t.compute_s + t.memory_s) * t.pressure_factor + t.dispatch_s) * 1e3;
            assert!(
                (sum - kernel_ms).abs() / kernel_ms < 0.01,
                "{m} on {d}: {sum} vs {kernel_ms}"
            );
        }
    }

    #[test]
    fn stem_conv_dominates_resnet_early_layers() {
        let c = compile(Framework::PyTorch, Model::ResNet18, Device::RaspberryPi3).unwrap();
        let layers = c.per_layer_ms().unwrap();
        // The 7x7 stem conv is among the most expensive layers.
        let stem = layers.iter().find(|(n, _)| n.contains("conv2d")).unwrap().1;
        let median = {
            let mut v: Vec<f64> = layers.iter().map(|(_, ms)| *ms).collect();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        assert!(stem > 5.0 * median, "stem {stem} vs median {median}");
    }

    #[test]
    fn edgetpu_runs_mobilenet_in_single_digit_ms() {
        let c = compile(Framework::TfLite, Model::MobileNetV2, Device::EdgeTpu).unwrap();
        let ms = c.latency_ms().unwrap();
        assert!(ms < 10.0, "edgetpu mobilenet-v2 {ms} ms (paper: 2.9)");
    }
}
