//! A model-exchange format — the ONNX-shaped substrate for the paper's
//! §III-B interoperability discussion ("we find limited compatibility among
//! frameworks... Recent endeavors such as the ONNX ecosystem try to address
//! this issue").
//!
//! The format is a line-oriented text serialization of the IR: one node per
//! line, fully round-trippable. On top of it, [`op_supported`] encodes each
//! framework's *operator coverage*, so importing a model into a framework
//! either succeeds or fails with the first unsupported operator — the
//! mechanism behind the paper's Table II "compatibility with others" row.

use crate::info::Framework;
use edgebench_graph::{
    ActivationKind, DType, Graph, GraphError, NodeId, Op, PoolKind, TensorShape,
};
use std::error::Error;
use std::fmt;

/// Error produced while parsing or importing an exchanged model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExchangeError {
    /// The text is not well-formed at the given line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// The parsed node list does not form a valid graph.
    Graph(GraphError),
    /// The target framework lacks an operator used by the model.
    UnsupportedOp {
        /// Importing framework.
        framework: &'static str,
        /// Operator mnemonic it cannot represent.
        op: &'static str,
    },
}

impl fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExchangeError::Parse { line, detail } => {
                write!(f, "parse error at line {line}: {detail}")
            }
            ExchangeError::Graph(e) => write!(f, "invalid graph: {e}"),
            ExchangeError::UnsupportedOp { framework, op } => {
                write!(f, "{framework} has no {op} operator")
            }
        }
    }
}

impl Error for ExchangeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExchangeError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ExchangeError {
    fn from(e: GraphError) -> Self {
        ExchangeError::Graph(e)
    }
}

fn fmt_pair(p: (usize, usize)) -> String {
    format!("{}x{}", p.0, p.1)
}

fn fmt_triple(p: (usize, usize, usize)) -> String {
    format!("{}x{}x{}", p.0, p.1, p.2)
}

fn fmt_op(op: &Op) -> String {
    match op {
        Op::Input { shape } => format!("input shape={shape}"),
        Op::Conv2d {
            out_channels,
            kernel,
            stride,
            padding,
            groups,
            bias,
        } => format!(
            "conv2d out={out_channels} k={} s={} p={} g={groups} bias={bias}",
            fmt_pair(*kernel),
            fmt_pair(*stride),
            fmt_pair(*padding)
        ),
        Op::DepthwiseConv2d {
            multiplier,
            kernel,
            stride,
            padding,
            bias,
        } => format!(
            "depthwise mult={multiplier} k={} s={} p={} bias={bias}",
            fmt_pair(*kernel),
            fmt_pair(*stride),
            fmt_pair(*padding)
        ),
        Op::Conv3d {
            out_channels,
            kernel,
            stride,
            padding,
            bias,
        } => format!(
            "conv3d out={out_channels} k={} s={} p={} bias={bias}",
            fmt_triple(*kernel),
            fmt_triple(*stride),
            fmt_triple(*padding)
        ),
        Op::Dense { units, bias } => format!("dense units={units} bias={bias}"),
        Op::Pool {
            kind,
            kernel,
            stride,
            padding,
        } => format!(
            "pool kind={kind} k={} s={} p={}",
            fmt_pair(*kernel),
            fmt_pair(*stride),
            fmt_pair(*padding)
        ),
        Op::Pool3d {
            kind,
            kernel,
            stride,
        } => format!(
            "pool3d kind={kind} k={} s={}",
            fmt_triple(*kernel),
            fmt_triple(*stride)
        ),
        Op::BatchNorm => "batch_norm".to_string(),
        Op::Lrn { size } => format!("lrn size={size}"),
        Op::Activation { kind } => format!("activation kind={kind}"),
        Op::Add => "add".to_string(),
        Op::Mul => "mul".to_string(),
        Op::Concat => "concat".to_string(),
        Op::Upsample { factor } => format!("upsample factor={factor}"),
        Op::Slice { start, len } => format!("slice start={start} len={len}"),
        Op::Flatten => "flatten".to_string(),
        Op::Softmax => "softmax".to_string(),
        Op::Dropout => "dropout".to_string(),
        Op::FusedConvBnAct { conv, bn, act } => {
            format!("fused bn={bn} act={act} [{}]", fmt_op(conv))
        }
        Op::FusedDenseAct { units, bias, act } => {
            format!("fused_dense units={units} bias={bias} act={act}")
        }
    }
}

/// Serializes a graph to the exchange text format.
pub fn export_graph(g: &Graph) -> String {
    let mut out = String::new();
    out.push_str(&format!("model \"{}\" dtype={}\n", g.name(), g.dtype()));
    for node in g.nodes() {
        let inputs: Vec<String> = node
            .inputs()
            .iter()
            .map(|i| format!("n{}", i.index()))
            .collect();
        out.push_str(&format!(
            "n{} \"{}\" <- [{}] : {}\n",
            node.id().index(),
            node.name(),
            inputs.join(","),
            fmt_op(node.op())
        ));
    }
    out.push_str(&format!("output n{}\n", g.output().index()));
    out
}

struct FieldMap<'a> {
    fields: Vec<(&'a str, &'a str)>,
    line: usize,
}

impl<'a> FieldMap<'a> {
    fn get(&self, key: &str) -> Result<&'a str, ExchangeError> {
        self.fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| ExchangeError::Parse {
                line: self.line,
                detail: format!("missing field {key}"),
            })
    }

    fn usize(&self, key: &str) -> Result<usize, ExchangeError> {
        self.get(key)?.parse().map_err(|_| ExchangeError::Parse {
            line: self.line,
            detail: format!("field {key} is not an integer"),
        })
    }

    fn bool(&self, key: &str) -> Result<bool, ExchangeError> {
        self.get(key)?.parse().map_err(|_| ExchangeError::Parse {
            line: self.line,
            detail: format!("field {key} is not a bool"),
        })
    }

    fn pair(&self, key: &str) -> Result<(usize, usize), ExchangeError> {
        let v = self.get(key)?;
        let mut it = v.split('x').map(str::parse::<usize>);
        match (it.next(), it.next(), it.next()) {
            (Some(Ok(a)), Some(Ok(b)), None) => Ok((a, b)),
            _ => Err(ExchangeError::Parse {
                line: self.line,
                detail: format!("field {key}={v} is not AxB"),
            }),
        }
    }

    fn triple(&self, key: &str) -> Result<(usize, usize, usize), ExchangeError> {
        let v = self.get(key)?;
        let mut it = v.split('x').map(str::parse::<usize>);
        match (it.next(), it.next(), it.next(), it.next()) {
            (Some(Ok(a)), Some(Ok(b)), Some(Ok(c)), None) => Ok((a, b, c)),
            _ => Err(ExchangeError::Parse {
                line: self.line,
                detail: format!("field {key}={v} is not AxBxC"),
            }),
        }
    }
}

fn parse_activation(s: &str, line: usize) -> Result<ActivationKind, ExchangeError> {
    Ok(match s {
        "relu" => ActivationKind::Relu,
        "relu6" => ActivationKind::Relu6,
        "leaky" => ActivationKind::Leaky,
        "sigmoid" => ActivationKind::Sigmoid,
        "tanh" => ActivationKind::Tanh,
        "linear" => ActivationKind::Linear,
        other => {
            return Err(ExchangeError::Parse {
                line,
                detail: format!("unknown activation {other}"),
            })
        }
    })
}

fn parse_pool_kind(s: &str, line: usize) -> Result<PoolKind, ExchangeError> {
    Ok(match s {
        "max" => PoolKind::Max,
        "avg" => PoolKind::Avg,
        "global_avg" => PoolKind::GlobalAvg,
        other => {
            return Err(ExchangeError::Parse {
                line,
                detail: format!("unknown pool kind {other}"),
            })
        }
    })
}

fn parse_op(spec: &str, line: usize) -> Result<Op, ExchangeError> {
    // Fused ops nest the conv spec in brackets.
    if let Some(rest) = spec.strip_prefix("fused ") {
        let open = rest.find('[').ok_or_else(|| ExchangeError::Parse {
            line,
            detail: "fused op missing [conv]".into(),
        })?;
        let close = rest.rfind(']').ok_or_else(|| ExchangeError::Parse {
            line,
            detail: "fused op missing ]".into(),
        })?;
        let head = &rest[..open];
        let inner = parse_op(rest[open + 1..close].trim(), line)?;
        let f = fields(head, line);
        return Ok(Op::FusedConvBnAct {
            conv: Box::new(inner),
            bn: f.bool("bn")?,
            act: parse_activation(f.get("act")?, line)?,
        });
    }
    let (head, rest) = spec.split_once(' ').unwrap_or((spec, ""));
    let f = fields(rest, line);
    Ok(match head {
        "input" => {
            let dims: Result<Vec<usize>, _> = f.get("shape")?.split('x').map(str::parse).collect();
            Op::Input {
                shape: TensorShape::new(dims.map_err(|_| ExchangeError::Parse {
                    line,
                    detail: "bad input shape".into(),
                })?),
            }
        }
        "conv2d" => Op::Conv2d {
            out_channels: f.usize("out")?,
            kernel: f.pair("k")?,
            stride: f.pair("s")?,
            padding: f.pair("p")?,
            groups: f.usize("g")?,
            bias: f.bool("bias")?,
        },
        "depthwise" => Op::DepthwiseConv2d {
            multiplier: f.usize("mult")?,
            kernel: f.pair("k")?,
            stride: f.pair("s")?,
            padding: f.pair("p")?,
            bias: f.bool("bias")?,
        },
        "conv3d" => Op::Conv3d {
            out_channels: f.usize("out")?,
            kernel: f.triple("k")?,
            stride: f.triple("s")?,
            padding: f.triple("p")?,
            bias: f.bool("bias")?,
        },
        "dense" => Op::Dense {
            units: f.usize("units")?,
            bias: f.bool("bias")?,
        },
        "fused_dense" => Op::FusedDenseAct {
            units: f.usize("units")?,
            bias: f.bool("bias")?,
            act: parse_activation(f.get("act")?, line)?,
        },
        "pool" => Op::Pool {
            kind: parse_pool_kind(f.get("kind")?, line)?,
            kernel: f.pair("k")?,
            stride: f.pair("s")?,
            padding: f.pair("p")?,
        },
        "pool3d" => Op::Pool3d {
            kind: parse_pool_kind(f.get("kind")?, line)?,
            kernel: f.triple("k")?,
            stride: f.triple("s")?,
        },
        "batch_norm" => Op::BatchNorm,
        "lrn" => Op::Lrn {
            size: f.usize("size")?,
        },
        "activation" => Op::Activation {
            kind: parse_activation(f.get("kind")?, line)?,
        },
        "add" => Op::Add,
        "mul" => Op::Mul,
        "concat" => Op::Concat,
        "upsample" => Op::Upsample {
            factor: f.usize("factor")?,
        },
        "slice" => Op::Slice {
            start: f.usize("start")?,
            len: f.usize("len")?,
        },
        "flatten" => Op::Flatten,
        "softmax" => Op::Softmax,
        "dropout" => Op::Dropout,
        other => {
            return Err(ExchangeError::Parse {
                line,
                detail: format!("unknown op {other}"),
            })
        }
    })
}

fn fields<'a>(s: &'a str, line: usize) -> FieldMap<'a> {
    FieldMap {
        fields: s
            .split_whitespace()
            .filter_map(|tok| tok.split_once('='))
            .collect(),
        line,
    }
}

/// Parses the exchange text format back into a graph.
///
/// # Errors
///
/// [`ExchangeError::Parse`] on malformed text; [`ExchangeError::Graph`] if
/// the nodes do not form a valid graph.
pub fn import_graph(text: &str) -> Result<Graph, ExchangeError> {
    let mut name = String::from("imported");
    let mut dtype = DType::F32;
    let mut specs: Vec<(String, Op, Vec<NodeId>)> = Vec::new();
    let mut output: Option<NodeId> = None;

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("model ") {
            if let Some(q) = rest.strip_prefix('"') {
                if let Some(end) = q.find('"') {
                    name = q[..end].to_string();
                    let f = fields(&q[end + 1..], line_no);
                    if let Ok(d) = f.get("dtype") {
                        dtype = match d {
                            "f32" => DType::F32,
                            "f16" => DType::F16,
                            "i8" => DType::I8,
                            other => {
                                return Err(ExchangeError::Parse {
                                    line: line_no,
                                    detail: format!("unknown dtype {other}"),
                                })
                            }
                        };
                    }
                    continue;
                }
            }
            return Err(ExchangeError::Parse {
                line: line_no,
                detail: "malformed model header".into(),
            });
        }
        if let Some(rest) = line.strip_prefix("output ") {
            let idx: usize = rest
                .trim()
                .strip_prefix('n')
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| ExchangeError::Parse {
                    line: line_no,
                    detail: "malformed output line".into(),
                })?;
            output = Some(NodeId::from_index(idx));
            continue;
        }
        // Node line: n<i> "<name>" <- [a,b] : <op spec>
        let (head, op_spec) = line.split_once(" : ").ok_or_else(|| ExchangeError::Parse {
            line: line_no,
            detail: "node line missing ' : '".into(),
        })?;
        let (id_name, inputs_part) =
            head.split_once(" <- ")
                .ok_or_else(|| ExchangeError::Parse {
                    line: line_no,
                    detail: "node line missing ' <- '".into(),
                })?;
        let node_name = id_name
            .split('"')
            .nth(1)
            .ok_or_else(|| ExchangeError::Parse {
                line: line_no,
                detail: "node line missing quoted name".into(),
            })?
            .to_string();
        let inputs_str = inputs_part
            .trim()
            .trim_start_matches('[')
            .trim_end_matches(']');
        let mut inputs = Vec::new();
        for tok in inputs_str.split(',').filter(|t| !t.trim().is_empty()) {
            let idx: usize = tok
                .trim()
                .strip_prefix('n')
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| ExchangeError::Parse {
                    line: line_no,
                    detail: format!("bad input ref {tok}"),
                })?;
            inputs.push(NodeId::from_index(idx));
        }
        let op = parse_op(op_spec.trim(), line_no)?;
        specs.push((node_name, op, inputs));
    }
    let output = output.ok_or(ExchangeError::Parse {
        line: 0,
        detail: "missing output line".into(),
    })?;
    Ok(Graph::from_transformed(name, specs, output, dtype)?)
}

/// Whether `fw` can represent `op` — the operator-coverage half of the
/// paper's framework-compatibility observations.
pub fn op_supported(fw: Framework, op: &Op) -> bool {
    match op {
        // 3-D convolution: absent from DarkNet, NCSDK (the paper's C3D
        // failure) and the FPGA stacks.
        Op::Conv3d { .. } | Op::Pool3d { .. } => !matches!(
            fw,
            Framework::DarkNet | Framework::Ncsdk | Framework::TvmVta | Framework::TfLite
        ),
        // LRN is legacy: the lean mobile stacks dropped it.
        Op::Lrn { .. } => !matches!(fw, Framework::TfLite | Framework::Ncsdk | Framework::TvmVta),
        // The FPGA overlay has no depthwise kernel (MobileNets are `^^` on
        // PYNQ in Table V).
        Op::DepthwiseConv2d { .. } => fw != Framework::TvmVta,
        Op::FusedConvBnAct { conv, .. } => op_supported(fw, conv),
        _ => true,
    }
}

/// Imports an exchanged model into a framework, failing on the first
/// operator the framework cannot represent.
///
/// # Errors
///
/// [`ExchangeError::UnsupportedOp`] plus any parse/graph error.
pub fn import_into(fw: Framework, text: &str) -> Result<Graph, ExchangeError> {
    let g = import_graph(text)?;
    for node in g.nodes() {
        if !op_supported(fw, node.op()) {
            return Err(ExchangeError::UnsupportedOp {
                framework: fw.name(),
                op: node.op().name(),
            });
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebench_models::Model;

    #[test]
    fn roundtrip_preserves_every_zoo_model() {
        for &m in Model::all() {
            let g = m.build();
            let text = export_graph(&g);
            let back = import_graph(&text).unwrap_or_else(|e| panic!("{m}: {e}"));
            assert_eq!(back.name(), g.name(), "{m}");
            assert_eq!(back.len(), g.len(), "{m}");
            assert_eq!(back.output_shape(), g.output_shape(), "{m}");
            assert_eq!(back.stats().flops, g.stats().flops, "{m}");
            assert_eq!(back.stats().params, g.stats().params, "{m}");
        }
    }

    #[test]
    fn roundtrip_preserves_dtype_and_fused_ops() {
        let g = crate::passes::fuse_conv_bn_act(&Model::MobileNetV2.build())
            .unwrap()
            .with_dtype(DType::I8);
        let back = import_graph(&export_graph(&g)).unwrap();
        assert_eq!(back.dtype(), DType::I8);
        assert_eq!(back.len(), g.len());
        assert_eq!(back.stats().flops, g.stats().flops);
    }

    #[test]
    fn roundtrip_preserves_rnn_models() {
        let g = edgebench_models::rnn::char_lstm(4, 16, 32, 1).unwrap();
        let back = import_graph(&export_graph(&g)).unwrap();
        assert_eq!(back.stats().params, g.stats().params);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = import_graph("model \"x\" dtype=f32\ngarbage line\noutput n0").unwrap_err();
        assert!(matches!(err, ExchangeError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn missing_output_is_an_error() {
        let err = import_graph("model \"x\" dtype=f32\n").unwrap_err();
        assert!(matches!(err, ExchangeError::Parse { .. }));
    }

    #[test]
    fn ncsdk_rejects_c3d_via_op_coverage() {
        // The mechanical root of Table V's C3D-on-Movidius failure.
        let text = export_graph(&Model::C3d.build());
        let err = import_into(Framework::Ncsdk, &text).unwrap_err();
        assert!(
            matches!(err, ExchangeError::UnsupportedOp { op: "conv3d", .. }),
            "{err}"
        );
        assert!(import_into(Framework::PyTorch, &text).is_ok());
    }

    #[test]
    fn tvm_vta_rejects_depthwise_models() {
        let text = export_graph(&Model::MobileNetV2.build());
        let err = import_into(Framework::TvmVta, &text).unwrap_err();
        assert!(matches!(err, ExchangeError::UnsupportedOp { .. }));
        assert!(import_into(Framework::TvmVta, &export_graph(&Model::ResNet18.build())).is_ok());
    }

    #[test]
    fn tensorrt_imports_everything_2d() {
        // Paper: "TensorRT provides better compatibility in importing
        // models from other frameworks (including ONNX format)".
        for &m in Model::all() {
            let text = export_graph(&m.build());
            assert!(import_into(Framework::TensorRt, &text).is_ok(), "{m}");
        }
    }
}
