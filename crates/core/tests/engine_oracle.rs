//! Calendar-queue engine vs the from-scratch binary-heap oracle.
//!
//! The two engines share the entire simulation body and differ only in
//! how pending events are stored and how the arrival trace is merged,
//! so every run must be *byte-identical* across them: the summary CSV,
//! the replica CSV, and the full replayable event log. The properties
//! here sweep traffic shapes, fault mixes, and fleet compositions; the
//! named tests pin the ISSUE acceptance criteria — oracle identity
//! under the full resilience stack, FIFO tie-break determinism on
//! simultaneous arrivals, and worker-count invariance of the qps scan
//! and the geo tier on both engines.

use edgebench::serve::geo::{default_regions, run_geo, GeoConfig};
use edgebench::serve::{
    AutoscaleConfig, BreakerConfig, EngineKind, Fleet, ReplicaSpec, RetryBudgetConfig, ServeConfig,
    Traffic,
};
use edgebench_devices::Device;
use edgebench_models::Model;
use proptest::prelude::*;

/// Requests per property case: long enough to exercise batching,
/// hedging, and retries; short enough to keep the sweep fast.
const N: usize = 1500;

fn fleet(devices: &[Device]) -> Fleet {
    let specs: Vec<_> = devices
        .iter()
        .map(|&d| ReplicaSpec::best_for(Model::MobileNetV2, d).expect("mobilenet deploys"))
        .collect();
    Fleet::new(specs).unwrap()
}

fn hetero_fleet() -> Fleet {
    fleet(&[Device::RaspberryPi3, Device::JetsonNano, Device::JetsonTx2])
}

/// Runs the identical workload on both engines and asserts the reports
/// and event logs agree byte for byte.
fn assert_oracle_identity(fleet: &Fleet, traffic: &Traffic, n: usize, cfg: &ServeConfig) {
    let cal = fleet
        .serve(traffic, n, &cfg.with_engine(EngineKind::Calendar))
        .expect("calendar run");
    let heap = fleet
        .serve(traffic, n, &cfg.with_engine(EngineKind::BinaryHeap))
        .expect("heap run");
    assert_eq!(
        cal.to_csv(),
        heap.to_csv(),
        "summary CSV must be engine-invariant"
    );
    assert_eq!(
        cal.events_csv(),
        heap.events_csv(),
        "event log must be engine-invariant"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any traffic shape, fault mix, and seed produces byte-identical
    /// runs on both engines. `faults` is a bit mask: stragglers +
    /// breakers, hedging, replica dropout.
    #[test]
    fn engines_agree_across_traffic_and_faults(
        draw in (0usize..4, 40usize..400, 0usize..1000, 0usize..8, 1usize..8)
    ) {
        let (kind, rate, seed, faults, batch_max) = draw;
        let (rate_hz, seed) = (rate as f64, seed as u64);
        let flag = ["steady", "poisson", "diurnal", "burst"][kind];
        let traffic = Traffic::from_flag(flag, rate_hz, seed).expect("known kind");
        let mut cfg = ServeConfig::new(100.0)
            .with_seed(seed)
            .with_batch_max(batch_max)
            .with_retry_budget(RetryBudgetConfig::default());
        if faults & 1 != 0 {
            cfg = cfg.with_straggler(0.05, 6.0).with_breaker(BreakerConfig::default());
        }
        if faults & 2 != 0 {
            cfg = cfg.with_hedge_ms(2.0);
        }
        if faults & 4 != 0 {
            cfg = cfg.with_replica_dropout(0.005);
        }
        assert_oracle_identity(&hetero_fleet(), &traffic, N, &cfg);
    }

    /// The qps scan is byte-identical across worker counts on both
    /// engines: probes derive their own seeds, so fan-out only changes
    /// wall-clock time.
    #[test]
    fn qps_scan_is_jobs_invariant_on_both_engines(seed in 0usize..100) {
        let seed = seed as u64;
        let fleet = hetero_fleet();
        let rates = [30.0, 90.0, 180.0, 360.0];
        for engine in [EngineKind::Calendar, EngineKind::BinaryHeap] {
            let cfg = ServeConfig::new(100.0).with_seed(seed).with_engine(engine);
            let serial = fleet.qps_scan(&rates, 400, &cfg, 1).expect("scan");
            let fanned = fleet.qps_scan(&rates, 400, &cfg, 8).expect("scan");
            prop_assert_eq!(
                serial.to_report("scan").to_csv(),
                fanned.to_report("scan").to_csv(),
                "jobs must not change qps-scan output on the {} engine",
                engine.name()
            );
        }
    }
}

/// The full resilience stack — stragglers, loss, hedging, retries,
/// breakers, the precision ladder, SDC injection, and autoscaling —
/// replays byte-identically on both engines.
#[test]
fn oracle_identity_holds_under_the_full_resilience_stack() {
    let traffic = Traffic::from_flag("diurnal", 220.0, 99).unwrap();
    let cfg = ServeConfig::new(80.0)
        .with_seed(99)
        .with_batch_max(4)
        .with_replica_dropout(0.004)
        .with_straggler(0.06, 5.0)
        .with_loss(0.02)
        .with_hedge_ms(1.5)
        .with_retry_budget(RetryBudgetConfig::default())
        .with_breaker(BreakerConfig::default())
        .with_ladder(true)
        .with_sdc(0.002)
        .with_autoscale(AutoscaleConfig::default());
    assert_oracle_identity(&hetero_fleet(), &traffic, 4000, &cfg);
}

/// Simultaneous arrivals (a zero-jitter steady trace faster than the
/// clock's resolution can separate) drain in FIFO order on both
/// engines: the event log, which records per-request ordering, is
/// identical and stable across reruns.
#[test]
fn simultaneous_arrivals_tie_break_fifo_deterministically() {
    let fleet = fleet(&[Device::JetsonNano, Device::JetsonNano]);
    // 1 MHz steady traffic: thousands of requests land on identical
    // nanosecond timestamps, so ordering is pure (time, seq) tie-break.
    let arrive_s: Vec<f64> = (0..2000).map(|i| (i / 4) as f64 * 1e-9).collect();
    let cfg = ServeConfig::new(100.0).with_admission(false);
    let mut logs = Vec::new();
    for engine in [EngineKind::Calendar, EngineKind::BinaryHeap] {
        let rep = fleet
            .serve_arrivals(&arrive_s, &cfg.with_engine(engine))
            .expect("tie-break run");
        logs.push(rep.events_csv());
    }
    assert_eq!(logs[0], logs[1], "tie-break order must be engine-invariant");
    let rerun = fleet
        .serve_arrivals(&arrive_s, &cfg.with_engine(EngineKind::Calendar))
        .expect("tie-break rerun");
    assert_eq!(
        logs[0],
        rerun.events_csv(),
        "tie-break order must be stable"
    );
}

/// The geo tier fans regions over the worker pool; any `--jobs` value
/// must produce byte-identical combined reports on both engines.
#[test]
fn geo_tier_is_jobs_invariant_on_both_engines() {
    let cfg = GeoConfig {
        peak_hz: 120.0,
        ..GeoConfig::new(100.0)
    };
    let regions = default_regions(cfg.period_s);
    for engine in [EngineKind::Calendar, EngineKind::BinaryHeap] {
        let cfg = cfg.clone().with_engine(engine);
        let serial = run_geo(&cfg, &regions, 800, 1).expect("geo");
        let fanned = run_geo(&cfg, &regions, 800, 8).expect("geo");
        assert_eq!(
            serial.to_report("geo").to_csv(),
            fanned.to_report("geo").to_csv(),
            "jobs must not change geo output on the {} engine",
            engine.name()
        );
    }
}
