//! Multi-process runtime tests: each pipeline stage runs as its own OS
//! process (children of the real `edgebench-cli` binary) over mmap ring
//! buffers, driven by [`edgebench::runtime::run_processes`].
//!
//! Covers the ISSUE acceptance criteria that need real processes: the
//! procs report matches the thread loopback byte-for-byte (modulo the mode
//! row), and SIGTERM of a middle stage degrades gracefully — upstream
//! stops, the shutdown drains, no shm files survive.

use std::path::{Path, PathBuf};

use edgebench::runtime::{self, RuntimeConfig, SentryConfig, StageKill};
use edgebench::serve::{TraceFile, Traffic};
use edgebench_devices::Device;
use edgebench_models::Model;

fn cli_bin() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_edgebench-cli"))
}

fn shm_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ebrt-mp-{tag}-{}", std::process::id()))
}

fn assert_no_leftovers(dir: &Path) {
    let leftovers: Vec<_> = std::fs::read_dir(dir)
        .map(|d| d.filter_map(Result::ok).map(|e| e.path()).collect())
        .unwrap_or_default();
    assert!(leftovers.is_empty(), "leaked shm files: {leftovers:?}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn procs_report_matches_thread_loopback() {
    let shm = shm_dir("match");
    let cfg = RuntimeConfig::new(Model::CifarNet, Device::JetsonNano)
        .with_seed(13)
        .with_ipc_flip_rate(5e-6)
        .with_shm_dir(shm.clone());
    let t = TraceFile::generate(&Traffic::poisson(250.0, 13), 80, 0.1, 13).unwrap();

    let threads = runtime::run_replay(&cfg, &t).unwrap().to_csv();
    let procs = runtime::run_processes(&cfg, &t, cli_bin())
        .unwrap()
        .report_csv;

    let strip_mode = |csv: &str| {
        csv.lines()
            .filter(|l| !l.starts_with("mode,"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert!(threads.contains("mode,threads"));
    assert!(procs.contains("mode,procs"));
    assert_eq!(
        strip_mode(&threads),
        strip_mode(&procs),
        "virtual-time accounting must not depend on the process layout"
    );
    assert_no_leftovers(&shm);
}

#[test]
fn procs_sentry_run_reports_events() {
    let shm = shm_dir("sentry");
    let cfg = RuntimeConfig::new(Model::VggS32, Device::JetsonNano)
        .with_seed(29)
        .with_sentry(SentryConfig::default())
        .with_shm_dir(shm.clone());
    let t = TraceFile::generate(&Traffic::poisson(60.0, 29), 60, 0.08, 29).unwrap();

    let out = runtime::run_processes(&cfg, &t, cli_bin()).unwrap();
    assert!(out.degraded.is_empty(), "degraded: {:?}", out.degraded);
    assert!(out.report_csv.contains("sentry,1"));
    assert!(out.events_csv.contains("sentry-escalate"));
    assert!(!out.events_csv.contains("sentry-missed"));
    assert_no_leftovers(&shm);
}

#[test]
fn sigterm_of_middle_stage_degrades_gracefully() {
    let shm = shm_dir("sigterm");
    // Paced at 150 fps so the run is long enough (~2 s) to kill mid-flight.
    let cfg = RuntimeConfig::new(Model::CifarNet, Device::JetsonNano)
        .with_seed(37)
        .with_pace(true)
        .with_shm_dir(shm.clone());
    let t = TraceFile::generate(&Traffic::poisson(150.0, 37), 300, 0.0, 37).unwrap();

    let out = runtime::run_processes_with_kill(
        &cfg,
        &t,
        cli_bin(),
        Some(StageKill {
            stage: "preprocess",
            after_processed: 30,
        }),
    )
    .unwrap();

    assert!(
        out.degraded.iter().any(|s| s == "preprocess"),
        "the killed stage must be reported degraded: {:?}",
        out.degraded
    );
    // The pipeline served a prefix and then drained: a report was still
    // written, some frames completed, but not the whole trace.
    let completed: u64 = out
        .report_csv
        .lines()
        .find_map(|l| l.strip_prefix("completed,"))
        .expect("report has a completed row")
        .parse()
        .unwrap();
    assert!(completed >= 30, "drained prefix missing: {completed}");
    assert!(completed < 300, "SIGTERM had no effect: {completed}");
    // No orphaned shm segments after the degraded shutdown.
    assert_no_leftovers(&shm);
}
