//! Chaos-campaign properties for the supervised runtime.
//!
//! Any deterministic [`ChaosPlan`] — generated or curated — must leave the
//! pipeline's accounting intact: no frame seq is ever observed twice at
//! the gateway (at-most-once), every offered frame ends up in exactly one
//! of completed / dropped / corrupted / lost (conservation), and the full
//! report is byte-identical across reruns and across the thread vs
//! process layouts. The named tests pin the ISSUE acceptance criteria:
//! recovery within the restart budget, and unsupervised failures degrading
//! instead of wedging the run.

use std::path::{Path, PathBuf};

use edgebench::runtime::{self, RuntimeConfig, RuntimeReport, SuperviseConfig};
use edgebench::serve::{TraceFile, Traffic};
use edgebench_devices::faults::{ChaosKind, ChaosPlan};
use edgebench_devices::Device;
use edgebench_models::Model;
use proptest::prelude::*;

/// Frames per property case: long enough for every stage to see traffic,
/// short enough to keep hang-detection wall time per case small.
const FRAMES: usize = 100;

fn base_cfg(seed: u64) -> RuntimeConfig {
    RuntimeConfig::new(Model::CifarNet, Device::JetsonNano)
        .with_seed(seed)
        .with_ring_capacity(8)
}

fn supervised(seed: u64, plan: ChaosPlan) -> RuntimeConfig {
    // A deep budget: generated plans can concentrate failures on one stage.
    base_cfg(seed)
        .with_supervise(
            SuperviseConfig::default()
                .with_restart_budget(16)
                .with_heartbeat_ms(30),
        )
        .with_chaos(plan)
}

fn trace(seed: u64) -> TraceFile {
    TraceFile::generate(&Traffic::poisson(200.0, seed), FRAMES, 0.05, seed).expect("trace")
}

fn assert_conserved(r: &RuntimeReport) {
    assert_eq!(
        r.completed + r.dropped + r.corrupted + r.lost,
        r.offered,
        "conservation: completed {} + dropped {} + corrupted {} + lost {} != offered {}",
        r.completed,
        r.dropped,
        r.corrupted,
        r.lost,
        r.offered
    );
    assert_eq!(r.duplicates, 0, "gateway observed a duplicated frame seq");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any generated campaign conserves frames, never duplicates a seq,
    /// and replays byte-identically.
    #[test]
    fn chaos_campaigns_conserve_and_replay_identically(draw in (0usize..1_000_000, 1usize..9)) {
        let (seed, n_events) = draw;
        let seed = seed as u64;
        let plan = ChaosPlan::generate(seed, n_events, FRAMES as u64);
        let cfg = supervised(seed, plan);
        let t = trace(seed);
        let a = runtime::run_replay(&cfg, &t).expect("supervised replay");
        assert_conserved(&a);
        prop_assert!(a.lost <= plan_failures(&cfg), "more losses than failures");
        let b = runtime::run_replay(&cfg, &t).expect("rerun");
        prop_assert_eq!(a.to_csv(), b.to_csv(), "rerun must be byte-identical");
        prop_assert_eq!(
            a.event_log().to_csv(),
            b.event_log().to_csv(),
            "event logs must be byte-identical"
        );
    }
}

/// Failures scheduled by the config's plan (kill/hang/panic, not corrupt).
fn plan_failures(cfg: &RuntimeConfig) -> u64 {
    cfg.chaos.as_ref().map_or(0, |p| p.failure_count() as u64)
}

fn cli_bin() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_edgebench-cli"))
}

fn shm_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ebrt-chaos-{tag}-{}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The same campaign through four OS processes produces the identical
    /// report (modulo the mode row) and event log as the thread loopback.
    #[test]
    fn procs_and_threads_agree_under_chaos(case in 0usize..1_000) {
        let seed = 7_000 + case as u64;
        let plan = ChaosPlan::generate(seed, 5, FRAMES as u64);
        let shm = shm_dir(&format!("pvt-{case}"));
        let cfg = supervised(seed, plan).with_shm_dir(shm.clone());
        let t = trace(seed);

        let threads = runtime::run_replay(&cfg, &t).expect("thread replay");
        let procs = runtime::run_processes(&cfg, &t, cli_bin()).expect("procs run");
        let _ = std::fs::remove_dir_all(&shm);

        let strip_mode = |csv: &str| {
            csv.lines()
                .filter(|l| !l.starts_with("mode,"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        prop_assert_eq!(
            strip_mode(&threads.to_csv()),
            strip_mode(&procs.report_csv),
            "chaos accounting must not depend on the process layout"
        );
        prop_assert_eq!(
            threads.event_log().to_csv(),
            procs.events_csv,
            "chaos event logs must not depend on the process layout"
        );
    }
}

/// ISSUE acceptance: a curated campaign with kills, hangs, a panic, and a
/// corruption recovers every stage within its restart budget — nothing
/// degrades, every failure is one restart, every loss one event.
#[test]
fn supervised_pipeline_recovers_within_restart_budget() {
    let plan = ChaosPlan::parse("kill@0:10,hang@1:30,kill@2:50,corrupt@2:60,panic@3:70,hang@2:85")
        .unwrap();
    let failures = plan.failure_count() as u64;
    let budget = 3u32;
    let cfg = base_cfg(11)
        .with_supervise(
            SuperviseConfig::default()
                .with_restart_budget(budget)
                .with_heartbeat_ms(30),
        )
        .with_chaos(plan);
    let t = trace(11);
    let r = runtime::run_replay(&cfg, &t).unwrap();

    assert!(r.supervised);
    assert!(r.degraded.is_empty(), "degraded stages: {:?}", r.degraded);
    assert_eq!(r.restarts, failures, "one restart per scheduled failure");
    for s in &r.stages {
        assert!(
            s.restarts <= u64::from(budget),
            "{} exceeded its restart budget: {}",
            s.stage,
            s.restarts
        );
    }
    // Each failure lost at most the one in-flight frame, and each loss is
    // an explicit lost@stage event.
    assert!(r.lost <= failures, "lost {} > failures {failures}", r.lost);
    let lost_events = r
        .events
        .iter()
        .filter(|e| matches!(e.kind, runtime::RuntimeEventKind::Lost { .. }))
        .count() as u64;
    assert_eq!(lost_events, r.lost, "every loss must be an explicit event");
    let restart_events = r
        .events
        .iter()
        .filter(|e| matches!(e.kind, runtime::RuntimeEventKind::Restart { .. }))
        .count() as u64;
    assert_eq!(restart_events, r.restarts);
    assert!(!r.recovery_ms.is_empty(), "recovery latencies recorded");
    assert_conserved(&r);
}

/// Budget exhaustion escalates to drain-and-degrade: with a zero budget the
/// first failure permanently degrades the stage, yet accounting stays
/// complete and the run still terminates with a report.
#[test]
fn budget_exhaustion_degrades_and_still_conserves() {
    let plan = ChaosPlan::parse("kill@1:20").unwrap();
    let cfg = base_cfg(13)
        .with_supervise(SuperviseConfig::default().with_restart_budget(0))
        .with_chaos(plan);
    let r = runtime::run_replay(&cfg, &trace(13)).unwrap();
    assert!(
        r.degraded.iter().any(|s| s == "preprocess"),
        "degraded: {:?}",
        r.degraded
    );
    assert_eq!(r.restarts, 0);
    assert!(r.lost > 0, "the dead stage's frames are accounted as lost");
    assert_conserved(&r);
}

/// Satellite 1: without supervision a chaos kill (a stand-in for any stage
/// panic) must degrade the run — stop flag raised, stage reported — not
/// abort the whole process or wedge the remaining stages.
#[test]
fn unsupervised_kill_degrades_instead_of_aborting() {
    let plan = ChaosPlan::parse("kill@2:15").unwrap();
    assert_eq!(plan.kind_at(2, 15), Some(ChaosKind::Kill));
    let cfg = base_cfg(17).with_chaos(plan);
    let r = runtime::run_replay(&cfg, &trace(17)).unwrap();
    assert!(
        r.degraded.iter().any(|s| s == "inference"),
        "degraded: {:?}",
        r.degraded
    );
    assert!(!r.supervised);
    // Unsupervised shutdown is fail-stop, not conservation-complete: the
    // prefix completed before the kill is all we guarantee.
    assert!(r.completed < r.offered);
}
