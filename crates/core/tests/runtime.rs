//! Integration tests for the zero-copy runtime pipeline (thread loopback).
//!
//! These cover the ISSUE acceptance criteria that do not need child
//! processes: full drain in order with clean shm teardown, byte-identical
//! replay reports at a fixed seed, sentry-mode energy savings with no
//! missed escalations, and deterministic IPC corruption detection.

use edgebench::runtime::{self, DropPolicy, RuntimeConfig, SentryConfig};
use edgebench::serve::{ServeConfig, TraceFile, Traffic};
use edgebench_devices::Device;
use edgebench_models::Model;

fn small_cfg() -> RuntimeConfig {
    RuntimeConfig::new(Model::CifarNet, Device::JetsonNano)
}

fn trace(n: usize, rate_hz: f64, hit_rate: f64, seed: u64) -> TraceFile {
    TraceFile::generate(&Traffic::poisson(rate_hz, seed), n, hit_rate, seed).unwrap()
}

#[test]
fn loopback_smoke_drains_in_order_and_cleans_up() {
    let shm = std::env::temp_dir().join(format!("ebrt-smoke-{}", std::process::id()));
    let cfg = small_cfg().with_shm_dir(shm.clone());
    let t = trace(40, 200.0, 0.0, 7);

    let report = runtime::run_replay(&cfg, &t).unwrap();
    assert_eq!(report.offered, 40);
    assert_eq!(
        report.completed, 40,
        "every frame must drain to the gateway"
    );
    assert_eq!(
        report.order_violations, 0,
        "frames must arrive in seq order"
    );
    assert_eq!(report.dropped, 0);
    assert_eq!(report.corrupted, 0);
    assert!(report.latencies_ms.len() == 40);
    assert!(report.span_s > 0.0);

    // Clean shutdown leaves no shared files behind.
    let leftovers: Vec<_> = std::fs::read_dir(&shm)
        .map(|d| d.filter_map(Result::ok).collect())
        .unwrap_or_default();
    assert!(leftovers.is_empty(), "leaked shm files: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&shm);
}

#[test]
fn replay_report_is_byte_identical_across_runs() {
    let cfg = small_cfg().with_seed(99).with_ipc_flip_rate(2e-6);
    let t = trace(120, 400.0, 0.2, 99);
    let a = runtime::run_replay(&cfg, &t).unwrap().to_csv();
    let b = runtime::run_replay(&cfg, &t).unwrap().to_csv();
    assert_eq!(a, b, "replay must be byte-identical at a fixed seed");
}

#[test]
fn block_policy_never_drops_even_at_tiny_capacity() {
    let cfg = small_cfg().with_ring_capacity(2);
    let t = trace(64, 1000.0, 0.0, 3);
    let report = runtime::run_replay(&cfg, &t).unwrap();
    assert_eq!(report.completed, 64);
    assert_eq!(report.dropped, 0);
    assert_eq!(report.order_violations, 0);
}

#[test]
fn drop_oldest_accounts_every_frame_exactly_once() {
    let cfg = small_cfg()
        .with_ring_capacity(2)
        .with_policy(DropPolicy::DropOldest);
    let t = trace(200, 5000.0, 0.0, 5);
    let report = runtime::run_replay(&cfg, &t).unwrap();
    assert_eq!(report.offered, 200);
    assert_eq!(
        report.completed + report.dropped,
        200,
        "every offered frame either completes or is evicted exactly once"
    );
    assert_eq!(report.order_violations, 0);
}

#[test]
fn sentry_cuts_energy_per_frame_with_no_missed_escalations() {
    // VGG-S-32 on Jetson Nano has a two-rung ladder (f16 full, i8 standby)
    // whose standby rung costs ~76% of the full-rung energy — the
    // sentry-capable deployment with a visible saving.
    let base = RuntimeConfig::new(Model::VggS32, Device::JetsonNano).with_seed(11);
    let t = trace(150, 60.0, 0.05, 11); // sparse hits

    let plain = runtime::run_replay(&base.clone(), &t).unwrap();
    let sentry = runtime::run_replay(&base.with_sentry(SentryConfig::default()), &t).unwrap();

    assert_eq!(sentry.completed, plain.completed);
    assert_eq!(sentry.missed_escalations, 0, "recall 1.0 must never miss");
    assert!(
        sentry.escalations > 0,
        "sparse hits must trigger escalations"
    );
    assert!(sentry.standby_frames > 0);
    assert!(
        sentry.energy_per_frame_mj() < plain.energy_per_frame_mj(),
        "sentry {} mJ/frame must beat always-full {} mJ/frame",
        sentry.energy_per_frame_mj(),
        plain.energy_per_frame_mj()
    );

    // The event log records each escalation (and no misses).
    let log = sentry.event_log().to_csv();
    let escalate_lines = log
        .lines()
        .filter(|l| l.contains("sentry-escalate"))
        .count();
    assert_eq!(escalate_lines as u64, sentry.escalations);
    assert!(!log.contains("sentry-missed"));
}

#[test]
fn imperfect_recall_logs_missed_escalations() {
    let cfg = RuntimeConfig::new(Model::VggS32, Device::JetsonNano)
        .with_seed(21)
        .with_sentry(SentryConfig {
            cooldown: 4,
            standby_recall: 0.0,
        });
    let t = trace(60, 60.0, 0.3, 21);
    let report = runtime::run_replay(&cfg, &t).unwrap();
    assert!(report.missed_escalations > 0);
    assert_eq!(report.escalations, 0);
    assert!(report.event_log().to_csv().contains("sentry-missed"));
}

#[test]
fn ipc_corruption_is_detected_counted_and_deterministic() {
    // ~98k payload bits per CifarNet frame: a 1e-4 per-bit rate corrupts
    // essentially every frame; checksums must catch all of it.
    let cfg = small_cfg().with_seed(17).with_ipc_flip_rate(1e-4);
    let t = trace(50, 300.0, 0.0, 17);
    let a = runtime::run_replay(&cfg, &t).unwrap();
    assert!(a.corrupted > 0, "flips must be detected by frame checksums");
    assert_eq!(
        a.completed + a.corrupted,
        50,
        "corrupted frames are dropped, never served"
    );
    assert!(a
        .events
        .iter()
        .any(|e| e.kind.to_string().starts_with("corrupted@")));
    let b = runtime::run_replay(&cfg, &t).unwrap();
    assert_eq!(a.corrupted, b.corrupted);
    assert_eq!(a.to_csv(), b.to_csv());
}

#[test]
fn real_execution_produces_stable_nonzero_digest() {
    let cfg = small_cfg().with_seed(31).with_exec(runtime::ExecMode::Real);
    let t = trace(6, 100.0, 0.0, 31);
    let a = runtime::run_replay(&cfg, &t).unwrap();
    let b = runtime::run_replay(&cfg, &t).unwrap();
    assert_ne!(
        a.output_digest, 0,
        "real execution must fold output checksums"
    );
    assert_eq!(a.output_digest, b.output_digest);
}

#[test]
fn runtime_latency_tracks_sim_prediction() {
    // Same seeded arrivals through the event-driven simulator and the real
    // pipeline (zero capture/preprocess overhead for comparability).
    let model = Model::MobileNetV2;
    let device = Device::JetsonNano;
    let t = trace(200, 80.0, 0.0, 43);

    let spec = edgebench::serve::ReplicaSpec::best_for(model, device).unwrap();
    let fleet = edgebench::serve::Fleet::new([spec]).unwrap();
    let sim_cfg = ServeConfig::new(10_000.0).with_batch_max(1).with_seed(43);
    let sim = fleet.serve_arrivals(&t.arrivals_s(), &sim_cfg).unwrap();

    let rt_cfg = RuntimeConfig::new(model, device)
        .with_seed(43)
        .with_stage_costs(0, 0)
        .with_ring_capacity(64);
    let real = runtime::run_replay(&rt_cfg, &t).unwrap();

    assert_eq!(real.completed as usize, t.points.len());
    let sim_p50 = sim.p50_ms();
    let real_p50 = real.latencies_ms.percentile(50.0);
    let ratio = real_p50 / sim_p50;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "runtime p50 {real_p50:.3} ms should track sim p50 {sim_p50:.3} ms"
    );
}

#[test]
fn config_validation_rejects_bad_settings() {
    let t = trace(4, 100.0, 0.0, 1);
    let bad_cap = small_cfg().with_ring_capacity(3);
    assert!(runtime::run_replay(&bad_cap, &t).is_err());
    let bad_rate = small_cfg().with_ipc_flip_rate(1.5);
    assert!(runtime::run_replay(&bad_rate, &t).is_err());
    // CifarNet/JetsonNano has a single-rung ladder: sentry is impossible.
    let bad_sentry = small_cfg().with_sentry(SentryConfig::default());
    assert!(runtime::run_replay(&bad_sentry, &t).is_err());
}
