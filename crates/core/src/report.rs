//! Plain-text tabular reports.

use std::fmt;

/// A rectangular report: a title, column headers and string rows.
///
/// # Examples
///
/// ```
/// use edgebench::Report;
/// let mut r = Report::new("demo", ["model", "ms"]);
/// r.push_row(["resnet-18", "26.5"]);
/// let s = r.to_table_string();
/// assert!(s.contains("resnet-18"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Report {
    /// Creates an empty report with the given title and columns.
    pub fn new<C: Into<String>>(
        title: impl Into<String>,
        columns: impl IntoIterator<Item = C>,
    ) -> Self {
        Report {
            title: title.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// The report title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Free-form notes rendered under the table.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the column count.
    pub fn push_row<C: Into<String>>(&mut self, row: impl IntoIterator<Item = C>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Appends a note line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Finds a cell by row key (first column) and column header.
    pub fn cell(&self, row_key: &str, column: &str) -> Option<&str> {
        let ci = self.columns.iter().position(|c| c == column)?;
        let row = self.rows.iter().find(|r| r[0] == row_key)?;
        row.get(ci).map(String::as_str)
    }

    /// Parses a cell as `f64` (see [`Report::cell`]).
    pub fn cell_f64(&self, row_key: &str, column: &str) -> Option<f64> {
        self.cell(row_key, column)?.parse().ok()
    }

    /// Renders the report as RFC-4180-style CSV (quoted fields, header row).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| field(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders an aligned plain-text table.
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.columns, &widths));
        out.push_str(&format!(
            "{}\n",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
        ));
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table_string())
    }
}

/// Magnitude-scaled decimal places: whole numbers from 100 up, one decimal
/// in the tens, two below that.
fn fmt_sig(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats a latency in milliseconds with report-appropriate precision.
pub fn fmt_ms(v: f64) -> String {
    fmt_sig(v)
}

/// Formats an energy in millijoules with report-appropriate precision.
///
/// Same significant-digit policy as [`fmt_ms`]; a separate entry point so
/// call sites say which unit they mean and the two can diverge later.
pub fn fmt_mj(v: f64) -> String {
    fmt_sig(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut r = Report::new("t", ["a", "bbbb"]);
        r.push_row(["xxxxxx", "1"]);
        r.push_note("hello");
        let s = r.to_table_string();
        assert!(s.contains("## t"));
        assert!(s.contains("xxxxxx"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut r = Report::new("t", ["a", "b"]);
        r.push_row(["only-one"]);
    }

    #[test]
    fn cell_lookup_works() {
        let mut r = Report::new("t", ["model", "ms"]);
        r.push_row(["resnet", "42.5"]);
        assert_eq!(r.cell("resnet", "ms"), Some("42.5"));
        assert_eq!(r.cell_f64("resnet", "ms"), Some(42.5));
        assert_eq!(r.cell("nope", "ms"), None);
        assert_eq!(r.cell("resnet", "nope"), None);
    }

    #[test]
    fn csv_quotes_awkward_fields() {
        let mut r = Report::new("t", ["a", "b"]);
        r.push_row(["plain", "has,comma"]);
        r.push_row(["with\"quote", "x"]);
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"has,comma\"");
        assert_eq!(lines[2], "\"with\"\"quote\",x");
    }

    #[test]
    fn fmt_ms_scales_precision() {
        assert_eq!(fmt_ms(1234.5), "1234");
        assert_eq!(fmt_ms(56.78), "56.8");
        assert_eq!(fmt_ms(2.345), "2.35");
    }

    #[test]
    fn fmt_mj_scales_precision_like_fmt_ms() {
        assert_eq!(fmt_mj(8200.0), "8200");
        assert_eq!(fmt_mj(137.9), "138");
        assert_eq!(fmt_mj(56.78), "56.8");
        assert_eq!(fmt_mj(0.42), "0.42");
    }
}
