//! A minimal bounded worker pool on `std::thread::scope`.
//!
//! The characterization grid (models × frameworks × devices × batch sizes)
//! is embarrassingly parallel: every cell is an independent pure function
//! of its coordinates. This module gives [`Sweep`](crate::sweep::Sweep),
//! the experiment registry and the CLI one shared primitive —
//! [`run_indexed`] — that fans a slice of inputs over `jobs` worker
//! threads and returns results **in input order**, so a parallel run is
//! byte-identical to a serial one. No dependencies beyond `std`.
//!
//! Scheduling is delegated to [`edgebench_tensor::pool`] — the same
//! intra-op worker pool the tensor backend uses for GEMM row-panels — so
//! the workspace has exactly one pool implementation. Inter-op (`--jobs`,
//! this module) and intra-op (`--threads`, the tensor executor)
//! parallelism compose: each is deterministic, so their product is too.
//!
//! # Examples
//!
//! ```
//! use edgebench::parallel::run_indexed;
//!
//! let squares = run_indexed(&[1u64, 2, 3, 4], 2, |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

/// Resolves a `--jobs`-style request to a concrete worker count.
///
/// `0` means "ask the OS" ([`std::thread::available_parallelism`], falling
/// back to 1 when unavailable); any other value is used as given.
pub fn effective_jobs(requested: usize) -> usize {
    edgebench_tensor::pool::effective_threads(requested)
}

/// Applies `f` to every element of `inputs` using up to `jobs` worker
/// threads, returning the outputs in input order.
///
/// `f` receives `(index, &input)` and must be pure with respect to result
/// ordering: outputs are placed by index, so the result is identical to
/// `inputs.iter().enumerate().map(|(i, x)| f(i, x)).collect()` regardless
/// of scheduling. Work is distributed dynamically (an atomic cursor), so
/// uneven per-item cost still load-balances.
///
/// `jobs == 0` resolves via [`effective_jobs`]; `jobs == 1` (or a single
/// input) runs inline on the caller's thread with no pool at all.
///
/// # Panics
///
/// Propagates a panic from `f` after all workers stop.
pub fn run_indexed<I, O, F>(inputs: &[I], jobs: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    let jobs = effective_jobs(jobs).min(inputs.len().max(1));
    if jobs <= 1 {
        return inputs.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let mut slots: Vec<Option<O>> = Vec::with_capacity(inputs.len());
    slots.resize_with(inputs.len(), || None);
    let tasks: Vec<(usize, &I, &mut Option<O>)> = inputs
        .iter()
        .enumerate()
        .zip(slots.iter_mut())
        .map(|((i, x), slot)| (i, x, slot))
        .collect();
    let mut scratch = vec![(); jobs];
    edgebench_tensor::pool::run_tasks(tasks, &mut scratch, |(), (i, x, slot)| {
        *slot = Some(f(i, x));
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("worker filled every claimed slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let inputs: Vec<usize> = (0..100).collect();
        let out = run_indexed(&inputs, 8, |i, &x| {
            // Stagger completion so later items often finish first.
            if i % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let inputs: Vec<u64> = (0..257).collect();
        let serial = run_indexed(&inputs, 1, |i, &x| (i as u64).wrapping_mul(x) ^ 0xabcd);
        let parallel = run_indexed(&inputs, 7, |i, &x| (i as u64).wrapping_mul(x) ^ 0xabcd);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = run_indexed(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_zero_resolves_to_available_parallelism() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
        // And the pool still produces ordered results under it.
        let inputs: Vec<usize> = (0..16).collect();
        let out = run_indexed(&inputs, 0, |_, &x| x + 1);
        assert_eq!(out, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_runs_inline() {
        // With jobs=1 the closure runs on the calling thread.
        let caller = std::thread::current().id();
        let out = run_indexed(&[(); 4], 1, |i, _| {
            assert_eq!(std::thread::current().id(), caller);
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = run_indexed(&[10, 20], 64, |_, &x| x + 1);
        assert_eq!(out, vec![11, 21]);
    }
}
