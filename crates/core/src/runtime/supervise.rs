//! Self-healing supervision for the serving runtime.
//!
//! The supervisor closes the loop from fault *injection* to fault
//! *recovery*: it watches every stage — `waitpid` in process mode, panic
//! capture in thread mode — plus the per-stage heartbeat counters in the
//! shared control block (which catch *hangs*, not just deaths), and on
//! failure restarts the stage deterministically:
//!
//! 1. The replacement reattaches to the existing shared rings. Ring tails
//!    are the committed consumer positions, so it resumes exactly after
//!    the last frame the dead instance fully accounted.
//! 2. The one frame that may have been in flight (marked in the control
//!    block before any of its effects land) is accounted as an explicit
//!    `lost@stage` event — at-most-once: a frame is served once or lost
//!    once, never duplicated. The gateway's CAS ledger proves it.
//! 3. A *virtual* recovery penalty — detection latency plus bounded
//!    exponential backoff with seeded jitter (the resilient-executor
//!    backoff idiom) — is added to the stage's persisted clock, so
//!    recovery cost shows up in the virtual-time report identically
//!    across reruns and across thread vs process layouts.
//! 4. A per-stage restart budget bounds the loop. Exhaustion escalates to
//!    the drain-and-degrade path: the stage is replaced by a *sink* that
//!    keeps draining its input, accounting every frame as lost, so the
//!    conservation invariant (`completed + dropped + corrupted + lost ==
//!    offered`) holds even for a permanently dead stage.
//!
//! Setting the budget to 0 gives the fail-stop arm of chaos experiments:
//! the first failure permanently degrades the stage.

use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use edgebench_devices::faults::rng::FaultRng;

use super::shm::{send_signal, SIGKILL};
use super::stage::{Ctl, StageExit, CHAOS_KILL_EXIT, EV_LOST_BASE, EV_RESTART_BASE, STAGE_NAMES};
use super::{RuntimeConfig, RuntimeError};

/// Stream tag for restart-backoff jitter draws.
const TAG_SUP: u64 = 0x7375_7076; // "supv"

/// Wall-clock poll interval of the supervision loops.
const POLL: Duration = Duration::from_millis(5);

/// Wall-clock grace for a freshly spawned child to produce its first
/// heartbeat (binary startup + shm attach) before stall detection arms.
const SPAWN_GRACE: Duration = Duration::from_secs(5);

/// Supervision knobs. Defaults reuse the resilient-executor backoff idiom
/// (20 ms base, ×2 growth, ±20 % seeded jitter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperviseConfig {
    /// Restarts allowed per stage before it is degraded to a sink.
    /// 0 = fail-stop (first failure permanently degrades the stage).
    pub restart_budget: u32,
    /// Heartbeat stall window: a stage whose beat counter does not move
    /// for this long (wall clock) is declared hung.
    pub heartbeat_ms: u64,
    /// Virtual time to notice a crash (exit/panic), ns.
    pub kill_detect_ns: u64,
    /// First virtual backoff interval before a restart, ns.
    pub backoff_base_ns: u64,
    /// Multiplier between successive backoffs.
    pub backoff_factor: f64,
    /// Seeded uniform jitter applied to each backoff, ±fraction.
    pub jitter_frac: f64,
}

impl Default for SuperviseConfig {
    fn default() -> SuperviseConfig {
        SuperviseConfig {
            restart_budget: 3,
            heartbeat_ms: 500,
            kill_detect_ns: 5_000_000,
            backoff_base_ns: 20_000_000,
            backoff_factor: 2.0,
            jitter_frac: 0.2,
        }
    }
}

impl SuperviseConfig {
    /// Returns the config with the given per-stage restart budget.
    pub fn with_restart_budget(mut self, budget: u32) -> SuperviseConfig {
        self.restart_budget = budget;
        self
    }

    /// Returns the config with the given heartbeat stall window (ms).
    pub fn with_heartbeat_ms(mut self, ms: u64) -> SuperviseConfig {
        self.heartbeat_ms = ms;
        self
    }

    /// Virtual recovery penalty for restart `attempt` (1-based) of `stage`:
    /// detection latency plus jittered exponential backoff. Pure in
    /// `(seed, stage, attempt)`, which is what keeps supervised reports
    /// byte-identical across layouts.
    pub(crate) fn penalty_ns(&self, seed: u64, stage: usize, attempt: u32, kind: CrashKind) -> u64 {
        let detect = match kind {
            CrashKind::Crash => self.kill_detect_ns,
            CrashKind::Hang => self.heartbeat_ms.saturating_mul(1_000_000),
        };
        let nominal = self.backoff_base_ns as f64
            * self.backoff_factor.powi(attempt.saturating_sub(1) as i32);
        let jitter = FaultRng::for_stream(seed, &[TAG_SUP, stage as u64, attempt as u64])
            .jitter(self.jitter_frac);
        detect + (nominal * jitter) as u64
    }
}

/// How a stage failure was detected — the two differ in detection latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CrashKind {
    /// The stage died (process exit, thread panic, typed stage error).
    Crash,
    /// The stage stopped heartbeating and was put down by the supervisor.
    Hang,
}

/// Account one restart: the in-flight frame (if any) becomes a
/// `lost@stage` event at the pre-failure clock, the virtual recovery
/// penalty advances the stage clock, and a `restart@stage` event lands at
/// the post-penalty instant. The caller then relaunches the stage body.
pub(crate) fn on_restart(
    ctl: &Ctl,
    sup: &SuperviseConfig,
    seed: u64,
    stage: usize,
    attempt: u32,
    kind: CrashKind,
) {
    let t0 = ctl.clock_ns(stage);
    if let Some(fid) = ctl.inflight(stage) {
        ctl.add_lost(stage, 1);
        ctl.push_event(t0, fid, EV_LOST_BASE + stage as u32);
        ctl.set_inflight(stage, 0);
    }
    let penalty = sup.penalty_ns(seed, stage, attempt, kind);
    let t1 = t0 + penalty;
    ctl.set_clock_ns(stage, t1);
    ctl.push_event(t1, u64::from(attempt), EV_RESTART_BASE + stage as u32);
    ctl.add_restart(stage);
    ctl.recov_push(stage, attempt, penalty);
}

/// Account a budget-exhausted stage: the in-flight frame is lost, no
/// penalty is charged (the stage is not coming back), and the caller
/// degrades the stage to its sink body.
pub(crate) fn give_up(ctl: &Ctl, stage: usize) {
    if let Some(fid) = ctl.inflight(stage) {
        ctl.add_lost(stage, 1);
        ctl.push_event(ctl.clock_ns(stage), fid, EV_LOST_BASE + stage as u32);
        ctl.set_inflight(stage, 0);
    }
}

// ---------------------------------------------------------------------------
// Thread mode
// ---------------------------------------------------------------------------

/// Supervise one stage body in thread mode: run it under `catch_unwind`,
/// classify the exit, restart within the budget, and degrade to the sink
/// on exhaustion. The caller holds the ring's close-guard *around* this
/// call, so a restarted body reattaches to a still-open ring. Returns
/// `true` when the stage ended degraded.
pub(crate) fn supervise_thread_stage<B, S>(
    sup: &SuperviseConfig,
    seed: u64,
    ctl: &Ctl,
    stage: usize,
    body: B,
    sink: S,
) -> bool
where
    B: Fn() -> StageExit,
    S: FnOnce() -> StageExit,
{
    let mut attempt = 0u32;
    loop {
        let kind = match std::panic::catch_unwind(AssertUnwindSafe(&body)) {
            Ok(StageExit::Done) | Ok(StageExit::Stopped) => return false,
            Ok(StageExit::Hung) => CrashKind::Hang,
            Ok(StageExit::Killed) | Ok(StageExit::Failed(_)) | Err(_) => CrashKind::Crash,
        };
        attempt += 1;
        if attempt <= sup.restart_budget {
            on_restart(ctl, sup, seed, stage, attempt, kind);
        } else {
            give_up(ctl, stage);
            let _ = sink();
            return true;
        }
    }
}

/// Thread-mode hang monitor: watches the four heartbeat counters and bumps
/// a stage's restart-request generation when its counter stalls for the
/// configured window — which releases a body parked in a chaos hang so the
/// wrapper can classify and restart it. Bumps to live stages are inert.
pub(crate) fn run_hang_monitor(ctl: &Ctl, sup: &SuperviseConfig, stop: &AtomicBool) {
    let window = Duration::from_millis(sup.heartbeat_ms);
    let mut last: [(u64, Instant); 4] = std::array::from_fn(|s| (ctl.heartbeat(s), Instant::now()));
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(POLL);
        for (s, seen) in last.iter_mut().enumerate() {
            if ctl.done(s) {
                continue;
            }
            let hb = ctl.heartbeat(s);
            if hb != seen.0 {
                *seen = (hb, Instant::now());
            } else if seen.1.elapsed() >= window {
                ctl.bump_restart_req(s);
                *seen = (hb, Instant::now());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Process mode
// ---------------------------------------------------------------------------

struct ProcState {
    child: std::process::Child,
    attempt: u32,
    is_sink: bool,
    finished: bool,
    degraded: bool,
    /// SIGKILL sent by the stall detector — classifies the next exit as a
    /// hang rather than a crash.
    hang_killed: bool,
    last_beat: (u64, Instant),
    seen_beat: bool,
}

impl ProcState {
    fn reset_watch(&mut self, ctl: &Ctl, stage: usize) {
        self.last_beat = (ctl.heartbeat(stage), Instant::now());
        self.seen_beat = false;
    }
}

/// Process-mode supervisor: spawn the four stage children, then watch them
/// via `try_wait` (deaths) and the shared heartbeat counters (hangs). A
/// failed stage is restarted — same command line, reattaching to the same
/// shm files — within its budget, then degraded to a `--sink` child.
/// Returns the stages that ended degraded.
pub(crate) fn run_supervised_processes(
    sup: &SuperviseConfig,
    cfg: &RuntimeConfig,
    bin: &Path,
    dir: &Path,
    ctl: &Ctl,
    report_path: &Path,
    events_path: &Path,
) -> Result<Vec<String>, RuntimeError> {
    let spawn = |stage: usize, sink: bool| {
        super::spawn_stage_child(bin, dir, cfg, stage, sink, report_path, events_path)
    };
    let mut states = Vec::with_capacity(4);
    for stage in 0..4 {
        let mut st = ProcState {
            child: spawn(stage, false)?,
            attempt: 0,
            is_sink: false,
            finished: false,
            degraded: false,
            hang_killed: false,
            last_beat: (0, Instant::now()),
            seen_beat: false,
        };
        st.reset_watch(ctl, stage);
        states.push(st);
    }

    let window = Duration::from_millis(sup.heartbeat_ms);
    let hard_deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let mut all_done = true;
        for (stage, st) in states.iter_mut().enumerate() {
            if st.finished {
                continue;
            }
            all_done = false;
            match st.child.try_wait() {
                Ok(Some(status)) => {
                    let clean =
                        status.success() && (ctl.done(stage) || st.is_sink || ctl.stop_requested());
                    if clean {
                        st.finished = true;
                        continue;
                    }
                    let kind = if st.hang_killed {
                        CrashKind::Hang
                    } else {
                        CrashKind::Crash
                    };
                    st.hang_killed = false;
                    st.attempt += 1;
                    if st.attempt <= sup.restart_budget && !st.is_sink {
                        on_restart(ctl, sup, cfg.seed, stage, st.attempt, kind);
                        st.child = spawn(stage, false)?;
                    } else {
                        give_up(ctl, stage);
                        st.degraded = true;
                        st.is_sink = true;
                        st.child = spawn(stage, true)?;
                    }
                    st.reset_watch(ctl, stage);
                }
                Ok(None) => {
                    // Alive: check the heartbeat for a stall. A blocked
                    // stage still beats every bounded-wait slice, so a
                    // flat counter over the window means a real hang.
                    let hb = ctl.heartbeat(stage);
                    if hb != st.last_beat.0 {
                        st.last_beat = (hb, Instant::now());
                        st.seen_beat = true;
                    } else {
                        let limit = if st.seen_beat { window } else { SPAWN_GRACE };
                        if !ctl.done(stage) && st.last_beat.1.elapsed() >= limit {
                            st.hang_killed = true;
                            send_signal(st.child.id(), SIGKILL);
                            st.last_beat = (hb, Instant::now());
                        }
                    }
                }
                Err(_) => {
                    st.finished = true;
                }
            }
        }
        if all_done {
            break;
        }
        if Instant::now() > hard_deadline {
            ctl.request_stop();
            for st in states.iter_mut() {
                if !st.finished {
                    let _ = st.child.kill();
                    let _ = st.child.wait();
                    st.degraded = true;
                }
            }
            break;
        }
        std::thread::sleep(POLL);
    }

    Ok(STAGE_NAMES
        .iter()
        .zip(&states)
        .filter(|(_, st)| st.degraded)
        .map(|(name, _)| name.to_string())
        .collect())
}

/// Translate a child stage body's exit into the process exit protocol:
/// chaos kills die abruptly (destructors skipped, rings left open for the
/// replacement), typed failures become a nonzero exit the supervisor
/// classifies as a crash.
pub(crate) fn finish_child(stage: &str, exit: StageExit) -> Result<(), RuntimeError> {
    match exit {
        StageExit::Done | StageExit::Stopped => Ok(()),
        // No unwinding and no destructors: the rings must stay open for
        // the restarted instance to reattach.
        StageExit::Killed | StageExit::Hung => std::process::exit(CHAOS_KILL_EXIT),
        StageExit::Failed(reason) => Err(RuntimeError::Stage {
            stage: stage.to_string(),
            reason,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_grows_geometrically_with_bounded_jitter() {
        let sup = SuperviseConfig::default();
        for attempt in 1..=4u32 {
            let p = sup.penalty_ns(7, 1, attempt, CrashKind::Crash);
            let nominal = 20_000_000.0 * 2f64.powi(attempt as i32 - 1);
            let backoff = (p - sup.kill_detect_ns) as f64;
            assert!(backoff >= nominal * 0.8 - 1.0 && backoff <= nominal * 1.2 + 1.0);
        }
        // Pure in (seed, stage, attempt).
        assert_eq!(
            sup.penalty_ns(7, 2, 3, CrashKind::Crash),
            sup.penalty_ns(7, 2, 3, CrashKind::Crash)
        );
        assert_ne!(
            sup.penalty_ns(7, 2, 3, CrashKind::Crash),
            sup.penalty_ns(8, 2, 3, CrashKind::Crash)
        );
        // Hang detection is charged at the heartbeat window.
        let hang = sup.penalty_ns(7, 1, 1, CrashKind::Hang);
        let crash = sup.penalty_ns(7, 1, 1, CrashKind::Crash);
        assert_eq!(
            hang - sup.heartbeat_ms * 1_000_000,
            crash - sup.kill_detect_ns
        );
    }

    #[test]
    fn restart_accounting_loses_inflight_once_and_logs_recovery() {
        let path = std::env::temp_dir().join(format!("ebsup-acct-{}", std::process::id()));
        let ctl = Ctl::create(&path, 16, 8, 16).unwrap();
        ctl.map().unlink();
        let sup = SuperviseConfig::default();

        ctl.set_clock_ns(1, 1_000);
        ctl.set_inflight(1, 42 + 1);
        on_restart(&ctl, &sup, 9, 1, 1, CrashKind::Crash);
        assert_eq!(ctl.lost(1), 1);
        assert_eq!(ctl.inflight(1), None);
        assert_eq!(ctl.restarts(1), 1);
        assert!(ctl.clock_ns(1) > 1_000 + sup.kill_detect_ns);
        let events = ctl.events();
        assert!(events.contains(&(1_000, 42, EV_LOST_BASE + 1)));
        assert!(events
            .iter()
            .any(|&(_, a, c)| c == EV_RESTART_BASE + 1 && a == 1));
        assert_eq!(ctl.recoveries().len(), 1);

        // A second restart with nothing in flight loses nothing more.
        on_restart(&ctl, &sup, 9, 1, 2, CrashKind::Hang);
        assert_eq!(ctl.lost(1), 1);
        assert_eq!(ctl.restarts(1), 2);

        // Budget exhaustion accounts the in-flight frame without a penalty.
        ctl.set_inflight(2, 7 + 1);
        let before = ctl.clock_ns(2);
        give_up(&ctl, 2);
        assert_eq!(ctl.lost(2), 1);
        assert_eq!(ctl.clock_ns(2), before);
        assert_eq!(ctl.restarts(2), 0);
    }
}
