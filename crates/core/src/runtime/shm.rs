//! Shared-memory mappings and futex wakeups for the runtime IPC layer.
//!
//! The runtime's ring buffers live in plain files under `/dev/shm` (tmpfs on
//! Linux, so mapping them is true shared memory) that every stage process
//! `mmap`s with `MAP_SHARED`. No external crates are used: the handful of
//! syscalls we need (`mmap`, `munmap`, `futex`) are declared directly against
//! libc, with a portable spin-sleep fallback where the futex syscall is not
//! available. All waits are *bounded* — a lost wakeup costs one retry slice,
//! never a hang — which is what makes the bounded-retry reads of the ring
//! safe on top of a best-effort wake protocol.

use std::ffi::{c_int, c_long, c_void};
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicU32;
use std::time::Duration;

use super::RuntimeError;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        length: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, length: usize) -> c_int;
    #[cfg(target_os = "linux")]
    fn syscall(num: c_long, ...) -> c_long;
}

const PROT_READ: c_int = 1;
const PROT_WRITE: c_int = 2;
const MAP_SHARED: c_int = 1;
const MAP_FAILED: usize = usize::MAX;

/// A file-backed `MAP_SHARED` memory region.
///
/// The region is writable by every process that opens the same path; dropping
/// the map unmaps it but leaves the backing file in place (the creating
/// process removes it explicitly via [`SharedMap::unlink`]).
pub struct SharedMap {
    ptr: *mut u8,
    len: usize,
    path: PathBuf,
}

// The raw pointer is to a MAP_SHARED region that is inherently concurrently
// accessed across processes; all cross-thread access goes through atomics or
// the ring's seqlock protocol.
unsafe impl Send for SharedMap {}
unsafe impl Sync for SharedMap {}

impl std::fmt::Debug for SharedMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedMap")
            .field("path", &self.path)
            .field("len", &self.len)
            .finish()
    }
}

impl SharedMap {
    /// Create (or truncate) the backing file at `path`, size it to `len`
    /// bytes, and map it shared.
    pub fn create(path: &Path, len: usize) -> Result<SharedMap, RuntimeError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| RuntimeError::shm(path, &format!("create: {e}")))?;
        file.set_len(len as u64)
            .map_err(|e| RuntimeError::shm(path, &format!("set_len: {e}")))?;
        Self::map(file, path, len)
    }

    /// Map an existing shared file created by another process.
    pub fn open(path: &Path) -> Result<SharedMap, RuntimeError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| RuntimeError::shm(path, &format!("open: {e}")))?;
        let len = file
            .metadata()
            .map_err(|e| RuntimeError::shm(path, &format!("metadata: {e}")))?
            .len() as usize;
        if len == 0 {
            return Err(RuntimeError::shm(path, "zero-length shared file"));
        }
        Self::map(file, path, len)
    }

    fn map(file: std::fs::File, path: &Path, len: usize) -> Result<SharedMap, RuntimeError> {
        use std::os::unix::io::AsRawFd;
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as usize == MAP_FAILED || ptr.is_null() {
            return Err(RuntimeError::shm(path, "mmap failed"));
        }
        // The fd can be closed once mapped; the mapping keeps the file alive.
        Ok(SharedMap {
            ptr: ptr.cast(),
            len,
            path: path.to_path_buf(),
        })
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapping is empty (never the case for a live map).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Base pointer of the mapping.
    pub(crate) fn base(&self) -> *mut u8 {
        self.ptr
    }

    /// Remove the backing file. The mapping itself stays valid until drop
    /// (POSIX keeps unlinked-but-mapped pages alive), so the owner can unlink
    /// early and no segment outlives the process tree.
    pub fn unlink(&self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for SharedMap {
    fn drop(&mut self) {
        unsafe {
            munmap(self.ptr.cast(), self.len);
        }
    }
}

/// Process signals the runtime supervisor uses, declared against libc like
/// the rest of this module's OS plumbing.
pub(crate) const SIGTERM: c_int = 15;
/// SIGKILL: how the supervisor puts down a stage that stopped heartbeating
/// (a hung process cannot be asked to exit gracefully).
pub(crate) const SIGKILL: c_int = 9;

#[cfg(unix)]
extern "C" {
    fn kill(pid: c_int, sig: c_int) -> c_int;
}

/// Send `sig` to process `pid` (best-effort; a vanished pid is ignored).
#[cfg(unix)]
pub(crate) fn send_signal(pid: u32, sig: c_int) {
    unsafe {
        kill(pid as c_int, sig);
    }
}

/// Non-unix stub: the process supervisor is only built for unix targets.
#[cfg(not(unix))]
pub(crate) fn send_signal(_pid: u32, _sig: c_int) {}

/// Pick the base directory for shared ring files: `/dev/shm` when it exists
/// (Linux tmpfs), the system temp dir otherwise.
pub fn shm_base_dir() -> PathBuf {
    let dev_shm = PathBuf::from("/dev/shm");
    if dev_shm.is_dir() {
        dev_shm
    } else {
        std::env::temp_dir()
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
const SYS_FUTEX: c_long = 202;
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
const SYS_FUTEX: c_long = 98;

const FUTEX_WAIT: c_int = 0;
const FUTEX_WAKE: c_int = 1;

#[repr(C)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

/// Block until `word` changes away from `expected`, a wakeup arrives, or
/// `timeout` elapses — whichever comes first. Spurious returns are expected;
/// callers re-check their predicate in a loop.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub fn futex_wait(word: &AtomicU32, expected: u32, timeout: Duration) {
    let ts = Timespec {
        tv_sec: timeout.as_secs() as i64,
        tv_nsec: i64::from(timeout.subsec_nanos()),
    };
    unsafe {
        syscall(
            SYS_FUTEX,
            word.as_ptr(),
            FUTEX_WAIT,
            expected,
            &ts as *const Timespec,
        );
    }
}

/// Wake every waiter parked on `word` via [`futex_wait`].
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub fn futex_wake(word: &AtomicU32) {
    unsafe {
        syscall(SYS_FUTEX, word.as_ptr(), FUTEX_WAKE, c_int::MAX);
    }
}

/// Fallback for platforms without a known futex syscall: bounded sleep.
/// Correctness is unchanged (all ring waits are bounded-retry); only wakeup
/// latency degrades to the sleep quantum.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub fn futex_wait(word: &AtomicU32, expected: u32, timeout: Duration) {
    if word.load(std::sync::atomic::Ordering::Acquire) != expected {
        return;
    }
    std::thread::sleep(timeout.min(Duration::from_micros(200)));
}

/// Fallback wake: a no-op; waiters poll on a bounded sleep.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub fn futex_wake(_word: &AtomicU32) {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    #[test]
    fn create_open_roundtrip_and_unlink() {
        let path = std::env::temp_dir().join(format!("ebshm-test-{}", std::process::id()));
        let map = SharedMap::create(&path, 4096).unwrap();
        assert_eq!(map.len(), 4096);
        let word = unsafe { &*map.base().cast::<AtomicU32>() };
        word.store(0xBEEF, Ordering::Release);

        let other = SharedMap::open(&path).unwrap();
        let word2 = unsafe { &*other.base().cast::<AtomicU32>() };
        assert_eq!(word2.load(Ordering::Acquire), 0xBEEF);
        word2.store(0xCAFE, Ordering::Release);
        assert_eq!(word.load(Ordering::Acquire), 0xCAFE);

        map.unlink();
        assert!(!path.exists());
    }

    #[test]
    fn futex_wait_times_out_and_wakes() {
        let word = Arc::new(AtomicU32::new(0));
        // Timeout path: value matches, nobody wakes us.
        let t0 = std::time::Instant::now();
        futex_wait(&word, 0, Duration::from_millis(5));
        assert!(t0.elapsed() < Duration::from_secs(2));

        // Mismatch path: returns immediately.
        futex_wait(&word, 1, Duration::from_secs(5));

        // Wake path: a second thread bumps and wakes.
        let w = Arc::clone(&word);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            w.store(7, Ordering::Release);
            futex_wake(&w);
        });
        let t0 = std::time::Instant::now();
        while word.load(Ordering::Acquire) == 0 && t0.elapsed() < Duration::from_secs(5) {
            futex_wait(&word, 0, Duration::from_millis(50));
        }
        assert_eq!(word.load(Ordering::Acquire), 7);
        h.join().unwrap();
    }
}
