//! The four pipeline stages and the shared control block.
//!
//! Each stage is a plain function over attached shared-memory objects, so
//! the same code runs as a thread inside `run_replay` or as the body of an
//! `edgebench-cli runtime --stage <name>` child process. Stages advance
//! deterministic *virtual* clocks (`t_out = max(stage_clock, t_in) +
//! svc_ns`) while exercising the real IPC mechanics — mmap rings, futex
//! waits, checksums, backpressure — which is what makes the replay report
//! byte-identical across runs and across thread/process layouts.
//!
//! ## Restartability
//!
//! Every piece of state a stage needs to resume after a crash lives in the
//! shared control block, not in stage locals: the per-stage virtual clock,
//! capture's next trace index, the sentry state machine, inference's
//! energy/digest accumulators, and the gateway's per-frame latency ledger.
//! A stage body therefore *loads* its state from [`Ctl`] on entry and
//! persists it as each frame completes; the supervisor can kill and
//! relaunch the body at any frame boundary and the pipeline continues
//! exactly where it left off. The per-stage `inflight` word marks the one
//! frame that may be lost in the gap — popped from the input ring (whose
//! tail is the committed consumer position) but not yet forwarded — which
//! is what gives the pipeline its at-most-once delivery guarantee.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use edgebench_devices::faults::chaos::ChaosKind;
use edgebench_devices::faults::ipc::{LinkFaults, LINK_CAPTURE, LINK_PREPROCESS};
use edgebench_devices::faults::rng::FaultRng;
use edgebench_tensor::integrity::checksum_f32;
use edgebench_tensor::{Executor, Precision, PreparedExecutor, Tensor};

use super::ring::{
    DropPolicy, FrameBuf, FrameMeta, Pop, Reserve, RingBuffer, FLAG_ESCALATED, FLAG_HIT,
    FLAG_STANDBY, RETRY_SLICE,
};
use super::sentry::Sentry;
use super::shm::SharedMap;
use super::{ExecMode, RuntimeConfig, RuntimeError, StageCosts};
use crate::serve::TraceFile;

/// Stream tag for deterministic frame payload synthesis.
const TAG_PAYLOAD: u64 = 0x7061_796c; // "payl"

/// Stream tag for chaos payload-corruption flips.
const TAG_CHAOS_FLIP: u64 = 0x6366_6c70; // "cflp"

/// Payload elements on the inference → gateway ring (detection summary).
pub(crate) const DETECTION_ELEMS: usize = 8;

/// Stage indices into the control block's per-stage counters.
pub(crate) const STAGE_NAMES: [&str; 4] = ["capture", "preprocess", "inference", "gateway"];

/// Exit code a child process uses for a chaos-injected kill, so the
/// supervisor can tell scripted deaths from real ones in logs (both are
/// classified and restarted identically).
pub(crate) const CHAOS_KILL_EXIT: i32 = 86;

/// Process-local stop flag, set by the SIGTERM handler installed in
/// `stage_main`. Always false in thread mode.
static LOCAL_STOP: AtomicBool = AtomicBool::new(false);

/// Raise the process-local stop flag (SIGTERM handler body).
pub(crate) fn raise_local_stop() {
    LOCAL_STOP.store(true, Ordering::Release);
}

/// Reset the local stop flag (tests that reuse the process).
pub(crate) fn clear_local_stop() {
    LOCAL_STOP.store(false, Ordering::Release);
}

/// How a stage body finished. The supervisor (thread-mode wrapper or the
/// process-mode parent) maps this onto restart / degrade decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum StageExit {
    /// Input fully drained (or whole trace pushed); `done` flag set.
    Done,
    /// Interrupted by the shared stop flag or SIGTERM; partial but clean.
    Stopped,
    /// A typed stage failure (e.g. the prepared executor rejected a
    /// frame). The supervisor treats it as a crash.
    Failed(String),
    /// A chaos kill fired with a frame in flight.
    Killed,
    /// A chaos hang was released by a supervisor restart request
    /// (thread mode only; in process mode a hung stage is SIGKILLed).
    Hung,
}

// ---------------------------------------------------------------------------
// Control block
// ---------------------------------------------------------------------------

const CTL_MAGIC: u32 = 0x4542_4354; // "EBCT"
const CTL_VERSION: u32 = 2;
const CTL_HEADER_BYTES: usize = 512;
const EVENT_BYTES: usize = 24;
const RECOV_BYTES: usize = 16;

/// Event codes stored in the shared event region.
pub(crate) const EV_ESCALATE: u32 = 0;
pub(crate) const EV_STANDDOWN: u32 = 1;
pub(crate) const EV_MISSED: u32 = 2;
pub(crate) const EV_CORRUPT_PRE: u32 = 3;
pub(crate) const EV_CORRUPT_INF: u32 = 4;
pub(crate) const EV_CORRUPT_GW: u32 = 5;
/// `EV_LOST_BASE + stage`: a frame was lost in-flight at that stage.
pub(crate) const EV_LOST_BASE: u32 = 6;
/// `EV_RESTART_BASE + stage`: the supervisor restarted that stage.
pub(crate) const EV_RESTART_BASE: u32 = 10;

/// The shared control block: stop flag, per-stage counters and persisted
/// stage state (clocks, heartbeats, in-flight frames, restart bookkeeping),
/// the gateway's per-frame latency ledger, a recovery-latency log, and a
/// bounded event region. One per run directory, mapped by every stage.
pub(crate) struct Ctl {
    map: SharedMap,
}

impl std::fmt::Debug for Ctl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctl")
            .field("path", &self.map.path())
            .finish()
    }
}

impl Ctl {
    pub(crate) fn required_bytes(ledger_cap: usize, recov_cap: usize, events_cap: usize) -> usize {
        CTL_HEADER_BYTES + ledger_cap * 8 + recov_cap * RECOV_BYTES + events_cap * EVENT_BYTES
    }

    pub(crate) fn create(
        path: &Path,
        ledger_cap: usize,
        recov_cap: usize,
        events_cap: usize,
    ) -> Result<Ctl, RuntimeError> {
        let map = SharedMap::create(
            path,
            Self::required_bytes(ledger_cap, recov_cap, events_cap),
        )?;
        let ctl = Ctl { map };
        unsafe {
            let base = ctl.map.base().cast::<u32>();
            base.add(1).write(CTL_VERSION);
            let u64s = ctl.map.base();
            u64s.add(416).cast::<u64>().write(ledger_cap as u64);
            u64s.add(448).cast::<u64>().write(recov_cap as u64);
            u64s.add(192).cast::<u64>().write(events_cap as u64);
            std::sync::atomic::fence(Ordering::Release);
            base.write(CTL_MAGIC);
        }
        Ok(ctl)
    }

    pub(crate) fn attach(path: &Path) -> Result<Ctl, RuntimeError> {
        let map = SharedMap::open(path)?;
        if map.len() < CTL_HEADER_BYTES {
            return Err(RuntimeError::shm(path, "control block too small"));
        }
        let (magic, version) = unsafe {
            std::sync::atomic::fence(Ordering::Acquire);
            let base = map.base().cast::<u32>();
            (base.read(), base.add(1).read())
        };
        if magic != CTL_MAGIC {
            return Err(RuntimeError::shm(path, "bad control-block magic"));
        }
        if version != CTL_VERSION {
            return Err(RuntimeError::shm(path, "control-block version mismatch"));
        }
        let ctl = Ctl { map };
        if ctl.map.len() < Self::required_bytes(ctl.ledger_cap(), ctl.recov_cap(), ctl.events_cap())
        {
            return Err(RuntimeError::shm(path, "control block truncated"));
        }
        Ok(ctl)
    }

    fn u64_at(&self, off: usize) -> &AtomicU64 {
        debug_assert!(off.is_multiple_of(8) && off + 8 <= self.map.len());
        unsafe { &*self.map.base().add(off).cast::<AtomicU64>() }
    }

    fn u32_at(&self, off: usize) -> &AtomicU32 {
        unsafe { &*self.map.base().add(off).cast::<AtomicU32>() }
    }

    pub(crate) fn map(&self) -> &SharedMap {
        &self.map
    }

    pub(crate) fn request_stop(&self) {
        self.u32_at(8).store(1, Ordering::Release);
    }

    pub(crate) fn stop_requested(&self) -> bool {
        self.u32_at(8).load(Ordering::Acquire) == 1 || LOCAL_STOP.load(Ordering::Acquire)
    }

    pub(crate) fn set_offered(&self, n: u64) {
        self.u64_at(16).store(n, Ordering::Release);
    }

    pub(crate) fn offered(&self) -> u64 {
        self.u64_at(16).load(Ordering::Acquire)
    }

    /// Corrupted-frame counters: 0 = preprocess, 1 = inference, 2 = gateway.
    pub(crate) fn add_corrupted(&self, detector: usize) {
        self.u64_at(24 + detector * 8)
            .fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn corrupted(&self, detector: usize) -> u64 {
        self.u64_at(24 + detector * 8).load(Ordering::Acquire)
    }

    pub(crate) fn add_sentry(&self, escal: u64, standdown: u64, missed: u64) {
        if escal > 0 {
            self.u64_at(48).fetch_add(escal, Ordering::AcqRel);
        }
        if standdown > 0 {
            self.u64_at(56).fetch_add(standdown, Ordering::AcqRel);
        }
        if missed > 0 {
            self.u64_at(64).fetch_add(missed, Ordering::AcqRel);
        }
    }

    pub(crate) fn sentry_counts(&self) -> (u64, u64, u64) {
        (
            self.u64_at(48).load(Ordering::Acquire),
            self.u64_at(56).load(Ordering::Acquire),
            self.u64_at(64).load(Ordering::Acquire),
        )
    }

    pub(crate) fn add_served(&self, standby: u64, full: u64) {
        if standby > 0 {
            self.u64_at(72).fetch_add(standby, Ordering::AcqRel);
        }
        if full > 0 {
            self.u64_at(80).fetch_add(full, Ordering::AcqRel);
        }
    }

    pub(crate) fn served_counts(&self) -> (u64, u64) {
        (
            self.u64_at(72).load(Ordering::Acquire),
            self.u64_at(80).load(Ordering::Acquire),
        )
    }

    /// Accumulate inference energy. Single-writer (the inference stage),
    /// but CAS-add so the value survives a restart mid-run.
    pub(crate) fn add_energy_mj(&self, mj: f64) {
        if mj == 0.0 {
            return;
        }
        let word = self.u64_at(88);
        let mut cur = word.load(Ordering::Acquire);
        loop {
            let next = (f64::from_bits(cur) + mj).to_bits();
            match word.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub(crate) fn energy_mj(&self) -> f64 {
        f64::from_bits(self.u64_at(88).load(Ordering::Acquire))
    }

    /// Fold one output checksum into the digest (XOR is restart-safe:
    /// order-independent and incremental).
    pub(crate) fn xor_digest(&self, d: u64) {
        self.u64_at(96).fetch_xor(d, Ordering::AcqRel);
    }

    pub(crate) fn digest(&self) -> u64 {
        self.u64_at(96).load(Ordering::Acquire)
    }

    pub(crate) fn add_busy_ns(&self, stage: usize, ns: u64) {
        self.u64_at(104 + stage * 8).fetch_add(ns, Ordering::AcqRel);
    }

    pub(crate) fn busy_ns(&self, stage: usize) -> u64 {
        self.u64_at(104 + stage * 8).load(Ordering::Acquire)
    }

    pub(crate) fn add_processed(&self, stage: usize, n: u64) {
        self.u64_at(136 + stage * 8).fetch_add(n, Ordering::AcqRel);
    }

    pub(crate) fn processed(&self, stage: usize) -> u64 {
        self.u64_at(136 + stage * 8).load(Ordering::Acquire)
    }

    /// Mark a stage as having finished naturally (input fully drained, or
    /// for capture: whole trace pushed). A stage interrupted by stop or
    /// SIGTERM never sets this — the supervisor uses that to detect a
    /// degraded pipeline.
    pub(crate) fn set_done(&self, stage: usize) {
        self.u32_at(168 + stage * 4).store(1, Ordering::Release);
    }

    pub(crate) fn done(&self, stage: usize) -> bool {
        self.u32_at(168 + stage * 4).load(Ordering::Acquire) == 1
    }

    pub(crate) fn events_cap(&self) -> usize {
        self.u64_at(192).load(Ordering::Acquire) as usize
    }

    // ---- supervision state (v2) ------------------------------------------

    /// Bump the stage's liveness counter. Called at least once per loop
    /// iteration (including bounded-wait retries), so a flat counter over a
    /// stall window means the stage is hung, not blocked.
    pub(crate) fn beat(&self, stage: usize) {
        self.u64_at(200 + stage * 8).fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn heartbeat(&self, stage: usize) -> u64 {
        self.u64_at(200 + stage * 8).load(Ordering::Acquire)
    }

    /// Persisted per-stage virtual clock: a restarted stage resumes from
    /// here, after the supervisor adds its virtual recovery penalty.
    pub(crate) fn clock_ns(&self, stage: usize) -> u64 {
        self.u64_at(232 + stage * 8).load(Ordering::Acquire)
    }

    pub(crate) fn set_clock_ns(&self, stage: usize, ns: u64) {
        self.u64_at(232 + stage * 8).store(ns, Ordering::Release);
    }

    /// In-flight marker: `frame_id + 1` while the stage holds a popped (or
    /// about-to-be-captured) frame it has not yet fully accounted; 0
    /// otherwise. A crash with the marker set loses exactly that frame.
    pub(crate) fn set_inflight(&self, stage: usize, fid_plus_1: u64) {
        self.u64_at(264 + stage * 8)
            .store(fid_plus_1, Ordering::Release);
    }

    pub(crate) fn inflight(&self, stage: usize) -> Option<u64> {
        self.u64_at(264 + stage * 8)
            .load(Ordering::Acquire)
            .checked_sub(1)
    }

    pub(crate) fn add_restart(&self, stage: usize) {
        self.u64_at(296 + stage * 8).fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn restarts(&self, stage: usize) -> u64 {
        self.u64_at(296 + stage * 8).load(Ordering::Acquire)
    }

    pub(crate) fn add_lost(&self, stage: usize, n: u64) {
        self.u64_at(328 + stage * 8).fetch_add(n, Ordering::AcqRel);
    }

    pub(crate) fn lost(&self, stage: usize) -> u64 {
        self.u64_at(328 + stage * 8).load(Ordering::Acquire)
    }

    /// Restart-request generation counter (thread mode): the monitor bumps
    /// it to release a hung stage body; `chaos_hang` parks until the value
    /// moves past what it saw on entry.
    pub(crate) fn restart_req(&self, stage: usize) -> u32 {
        self.u32_at(360 + stage * 4).load(Ordering::Acquire)
    }

    pub(crate) fn bump_restart_req(&self, stage: usize) {
        self.u32_at(360 + stage * 4).fetch_add(1, Ordering::AcqRel);
    }

    /// Persisted sentry state machine: `(mode, quiet frames)`.
    pub(crate) fn sentry_state(&self) -> (u32, u32) {
        (
            self.u32_at(376).load(Ordering::Acquire),
            self.u32_at(380).load(Ordering::Acquire),
        )
    }

    pub(crate) fn set_sentry_state(&self, mode: u32, quiet: u32) {
        self.u32_at(376).store(mode, Ordering::Release);
        self.u32_at(380).store(quiet, Ordering::Release);
    }

    /// Last frame id the gateway observed (`None` before the first frame).
    pub(crate) fn gw_last_id(&self) -> Option<u64> {
        self.u64_at(384).load(Ordering::Acquire).checked_sub(1)
    }

    pub(crate) fn set_gw_last_id(&self, fid: u64) {
        self.u64_at(384).store(fid + 1, Ordering::Release);
    }

    pub(crate) fn add_duplicate(&self) {
        self.u64_at(392).fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn duplicates(&self) -> u64 {
        self.u64_at(392).load(Ordering::Acquire)
    }

    pub(crate) fn span_max(&self, ns: u64) {
        self.u64_at(400).fetch_max(ns, Ordering::AcqRel);
    }

    pub(crate) fn span_ns(&self) -> u64 {
        self.u64_at(400).load(Ordering::Acquire)
    }

    /// Next trace index the capture stage will attempt — persisted before
    /// the attempt, so a restarted capture never re-emits a frame.
    pub(crate) fn cap_next_idx(&self) -> u64 {
        self.u64_at(408).load(Ordering::Acquire)
    }

    pub(crate) fn set_cap_next_idx(&self, idx: u64) {
        self.u64_at(408).store(idx, Ordering::Release);
    }

    pub(crate) fn ledger_cap(&self) -> usize {
        self.u64_at(416).load(Ordering::Acquire) as usize
    }

    pub(crate) fn add_completed(&self) {
        self.u64_at(424).fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn completed(&self) -> u64 {
        self.u64_at(424).load(Ordering::Acquire)
    }

    pub(crate) fn add_order_violation(&self) {
        self.u64_at(432).fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn order_violations(&self) -> u64 {
        self.u64_at(432).load(Ordering::Acquire)
    }

    pub(crate) fn recov_cap(&self) -> usize {
        self.u64_at(448).load(Ordering::Acquire) as usize
    }

    /// Record one recovery: which stage, which attempt, and the virtual
    /// penalty charged (detection + backoff).
    pub(crate) fn recov_push(&self, stage: usize, attempt: u32, penalty_ns: u64) {
        let idx = self.u64_at(440).fetch_add(1, Ordering::AcqRel) as usize;
        if idx >= self.recov_cap() {
            return; // bounded region; overflow dropped, not UB
        }
        let off = CTL_HEADER_BYTES + self.ledger_cap() * 8 + idx * RECOV_BYTES;
        unsafe {
            let p = self.map.base().add(off);
            p.cast::<u32>().write_volatile(stage as u32);
            p.add(4).cast::<u32>().write_volatile(attempt);
            p.add(8).cast::<u64>().write_volatile(penalty_ns);
        }
    }

    /// Decode the recovery log: `(stage, attempt, penalty_ns)` triples.
    pub(crate) fn recoveries(&self) -> Vec<(u32, u32, u64)> {
        let n = (self.u64_at(440).load(Ordering::Acquire) as usize).min(self.recov_cap());
        let base_off = CTL_HEADER_BYTES + self.ledger_cap() * 8;
        let mut out = Vec::with_capacity(n);
        for idx in 0..n {
            let off = base_off + idx * RECOV_BYTES;
            unsafe {
                let p = self.map.base().add(off);
                out.push((
                    p.cast::<u32>().read_volatile(),
                    p.add(4).cast::<u32>().read_volatile(),
                    p.add(8).cast::<u64>().read_volatile(),
                ));
            }
        }
        out.sort_unstable();
        out
    }

    fn ledger_word(&self, fid: u64) -> &AtomicU64 {
        self.u64_at(CTL_HEADER_BYTES + fid as usize * 8)
    }

    /// Record frame `fid` as served with the given end-to-end latency.
    /// Returns false when the slot was already taken — a duplicate
    /// delivery, which at-most-once accounting must keep at zero.
    pub(crate) fn ledger_set(&self, fid: u64, latency_ns: u64) -> bool {
        if fid as usize >= self.ledger_cap() {
            return false;
        }
        self.ledger_word(fid)
            .compare_exchange(0, latency_ns + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Served-frame latencies in ms, ordered by frame id.
    pub(crate) fn ledger_latencies_ms(&self) -> Vec<f64> {
        (0..self.ledger_cap() as u64)
            .filter_map(|fid| {
                self.ledger_word(fid)
                    .load(Ordering::Acquire)
                    .checked_sub(1)
                    .map(|ns| ns as f64 / 1e6)
            })
            .collect()
    }

    fn events_off(&self) -> usize {
        CTL_HEADER_BYTES + self.ledger_cap() * 8 + self.recov_cap() * RECOV_BYTES
    }

    pub(crate) fn push_event(&self, t_ns: u64, seq: u64, code: u32) {
        let idx = self.u64_at(184).fetch_add(1, Ordering::AcqRel) as usize;
        if idx >= self.events_cap() {
            return; // bounded region; overflow is dropped, not UB
        }
        let off = self.events_off() + idx * EVENT_BYTES;
        unsafe {
            let p = self.map.base().add(off);
            p.cast::<u64>().write_volatile(t_ns);
            p.add(8).cast::<u64>().write_volatile(seq);
            p.add(16).cast::<u32>().write_volatile(code);
        }
    }

    /// Decode the event region: `(t_ns, seq, code)` triples, sorted for a
    /// deterministic order regardless of cross-stage write interleaving.
    pub(crate) fn events(&self) -> Vec<(u64, u64, u32)> {
        let n = (self.u64_at(184).load(Ordering::Acquire) as usize).min(self.events_cap());
        let mut out = Vec::with_capacity(n);
        for idx in 0..n {
            let off = self.events_off() + idx * EVENT_BYTES;
            unsafe {
                let p = self.map.base().add(off);
                out.push((
                    p.cast::<u64>().read_volatile(),
                    p.add(8).cast::<u64>().read_volatile(),
                    p.add(16).cast::<u32>().read_volatile(),
                ));
            }
        }
        out.sort_unstable();
        out
    }
}

/// Closes a ring when dropped — even on panic, so a dead stage never leaves
/// its downstream partner waiting forever. On panic it also raises the
/// shared stop flag to unwind the rest of the pipeline. Supervised runs
/// hold this guard *outside* the restart loop instead, so a restarted body
/// reattaches to a still-open ring.
pub(crate) struct CloseOnDrop<'a> {
    pub ring: &'a RingBuffer,
    pub ctl: &'a Ctl,
}

impl Drop for CloseOnDrop<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.ctl.request_stop();
        }
        self.ring.close();
    }
}

// ---------------------------------------------------------------------------
// Chaos hooks
// ---------------------------------------------------------------------------

/// Fire any kill / hang / panic event scheduled for `(stage, fid)`. Runs at
/// a fixed point in the stage loop — after the frame is marked in-flight,
/// before any of its effects are accounted — so the loss accounting is
/// identical in thread and process mode.
fn chaos_trigger(
    cfg: &RuntimeConfig,
    ctl: &Ctl,
    stage: usize,
    fid: u64,
    proc_mode: bool,
) -> Option<StageExit> {
    let kind = cfg.chaos.as_ref()?.kind_at(stage as u8, fid)?;
    match kind {
        ChaosKind::Kill => {
            if cfg.supervise.is_none() {
                // Fail-stop without a supervisor: unblock the rest of the
                // pipeline before dying, like the process path does.
                ctl.request_stop();
            }
            Some(StageExit::Killed)
        }
        ChaosKind::Panic => {
            if cfg.supervise.is_none() {
                ctl.request_stop();
            }
            if proc_mode {
                // No unwinding: destructors must not close the rings the
                // restarted stage will reattach to.
                std::process::abort();
            }
            panic!("chaos: injected panic at {}:{fid}", STAGE_NAMES[stage]);
        }
        ChaosKind::Hang => Some(chaos_hang(ctl, stage, proc_mode)),
        ChaosKind::Corrupt => None, // applied at the pop site
    }
}

/// Park without heartbeating until the supervisor notices. In process mode
/// the stall ends with a SIGKILL; in thread mode the monitor bumps the
/// stage's restart-request generation and the body returns.
fn chaos_hang(ctl: &Ctl, stage: usize, proc_mode: bool) -> StageExit {
    let gen = ctl.restart_req(stage);
    loop {
        std::thread::sleep(Duration::from_millis(2));
        if !proc_mode && ctl.restart_req(stage) != gen {
            return StageExit::Hung;
        }
    }
}

/// Deterministically flip payload bits for a scheduled corrupt event, ahead
/// of the stage's integrity check (which must catch it).
fn chaos_corrupt_if_scheduled(cfg: &RuntimeConfig, stage: usize, buf: &mut FrameBuf) {
    let Some(plan) = cfg.chaos.as_ref() else {
        return;
    };
    let fid = buf.meta.frame_id;
    if plan.kind_at(stage as u8, fid) != Some(ChaosKind::Corrupt) {
        return;
    }
    let payload = buf.payload_mut();
    if payload.is_empty() {
        return;
    }
    let mut rng = FaultRng::for_stream(cfg.seed, &[TAG_CHAOS_FLIP, stage as u64, fid]);
    for _ in 0..3 {
        let idx = (rng.next_u64() as usize) % payload.len();
        let bit = (rng.next_u64() % 32) as u32;
        payload[idx] = f32::from_bits(payload[idx].to_bits() ^ (1 << bit));
    }
}

// ---------------------------------------------------------------------------
// Stage bodies
// ---------------------------------------------------------------------------

fn deadline() -> Instant {
    Instant::now() + RETRY_SLICE
}

/// Capture: turn trace points into frames — deterministic synthetic pixels,
/// checksum, ground-truth hit flag — and push them onto the capture ring.
/// Resumes from the persisted next trace index after a restart.
pub(crate) fn run_capture(
    cfg: &RuntimeConfig,
    costs: &StageCosts,
    ctl: &Ctl,
    trace: &TraceFile,
    out: &RingBuffer,
    proc_mode: bool,
) -> StageExit {
    const STAGE: usize = 0;
    let faults = LinkFaults::new(cfg.seed, cfg.ipc_flip_rate);
    let svc = costs.elems as u64 * cfg.capture_ns_per_elem;
    let mut clock = ctl.clock_ns(STAGE);
    let start_idx = ctl.cap_next_idx() as usize;
    let wall_t0 = Instant::now();
    let pace_base = trace.points.get(start_idx).map_or(0, |p| p.t_ns);

    for (idx, pt) in trace.points.iter().enumerate().skip(start_idx) {
        ctl.beat(STAGE);
        if ctl.stop_requested() {
            return StageExit::Stopped;
        }
        if cfg.pace {
            let target = wall_t0 + Duration::from_nanos(pt.t_ns - pace_base);
            loop {
                let now = Instant::now();
                if now >= target {
                    break;
                }
                ctl.beat(STAGE);
                if ctl.stop_requested() {
                    return StageExit::Stopped;
                }
                std::thread::sleep((target - now).min(Duration::from_millis(5)));
            }
        }
        let fid = idx as u64;
        // Progress is persisted *before* the frame is attempted: a crash
        // from here to commit loses exactly this frame, never repeats it.
        ctl.set_cap_next_idx(fid + 1);
        ctl.set_offered(fid + 1);
        ctl.set_inflight(STAGE, fid + 1);
        if let Some(exit) = chaos_trigger(cfg, ctl, STAGE, fid, proc_mode) {
            return exit;
        }
        let mut slot = loop {
            match out.reserve(cfg.policy, deadline()) {
                Reserve::Slot(slot) => break slot,
                Reserve::TimedOut => {
                    ctl.beat(STAGE);
                    if ctl.stop_requested() {
                        return StageExit::Stopped;
                    }
                }
            }
        };
        // Virtual timing: the frame is ready at its trace arrival; a blocked
        // producer additionally cannot write before the slot it reuses was
        // vacated (virtual backpressure).
        let mut start = clock.max(pt.t_ns);
        if cfg.policy == DropPolicy::Block {
            if let Some(freed) = slot.freed_stamp_ns() {
                start = start.max(freed);
            }
        }
        let done = start + svc;
        clock = done;

        let payload = slot.payload_mut();
        let mut rng = FaultRng::for_stream(cfg.seed, &[TAG_PAYLOAD, fid]);
        for v in payload[..costs.elems].iter_mut() {
            *v = rng.next_f64() as f32;
        }
        let sum = checksum_f32(&payload[..costs.elems]);
        // Inject IPC faults *after* the checksum: corruption-in-transit the
        // consumer's integrity check must catch.
        faults.corrupt_frame(LINK_CAPTURE, fid, &mut payload[..costs.elems]);
        slot.commit(&FrameMeta {
            frame_id: fid,
            t_arrival_ns: pt.t_ns,
            t_stage_ns: done,
            dims: costs.dims,
            dtype: 0,
            flags: u32::from(pt.hit) * FLAG_HIT,
            payload_len: costs.elems as u32,
            checksum: sum,
        });
        ctl.add_busy_ns(STAGE, svc);
        ctl.add_processed(STAGE, 1);
        ctl.set_inflight(STAGE, 0);
        ctl.set_clock_ns(STAGE, clock);
    }
    ctl.set_done(STAGE);
    StageExit::Done
}

/// Preprocess: verify integrity, normalize pixels to `[-1, 1]`, re-checksum
/// and forward. Corrupted frames are counted and dropped, never served.
pub(crate) fn run_preprocess(
    cfg: &RuntimeConfig,
    costs: &StageCosts,
    ctl: &Ctl,
    input: &RingBuffer,
    out: &RingBuffer,
    proc_mode: bool,
) -> StageExit {
    const STAGE: usize = 1;
    let faults = LinkFaults::new(cfg.seed, cfg.ipc_flip_rate);
    let svc = costs.elems as u64 * cfg.preprocess_ns_per_elem;
    let mut clock = ctl.clock_ns(STAGE);
    let mut buf = FrameBuf::for_ring(input);

    loop {
        ctl.beat(STAGE);
        let clock_now = clock;
        match input.pop_into(&mut buf, deadline(), |b| clock_now.max(b.meta.t_stage_ns)) {
            Pop::Drained => break,
            Pop::TimedOut => {
                if ctl.stop_requested() {
                    return StageExit::Stopped;
                }
                continue;
            }
            Pop::Popped => {}
        }
        let fid = buf.meta.frame_id;
        ctl.set_inflight(STAGE, fid + 1);
        if let Some(exit) = chaos_trigger(cfg, ctl, STAGE, fid, proc_mode) {
            return exit;
        }
        chaos_corrupt_if_scheduled(cfg, STAGE, &mut buf);
        let start = clock.max(buf.meta.t_stage_ns);
        if !buf.checksum_ok() {
            ctl.add_corrupted(0);
            ctl.push_event(start, fid, EV_CORRUPT_PRE);
            ctl.set_inflight(STAGE, 0);
            continue;
        }
        let done = start + svc;
        clock = done;

        let reserved = loop {
            match out.reserve(cfg.policy, deadline()) {
                Reserve::Slot(slot) => break Some(slot),
                Reserve::TimedOut => {
                    ctl.beat(STAGE);
                    if ctl.stop_requested() {
                        break None;
                    }
                }
            }
        };
        let Some(mut slot) = reserved else {
            return StageExit::Stopped;
        };
        let mut t_out = done;
        if cfg.policy == DropPolicy::Block {
            if let Some(freed) = slot.freed_stamp_ns() {
                t_out = t_out.max(freed);
            }
        }
        let n = buf.meta.payload_len as usize;
        let payload = slot.payload_mut();
        for (dst, src) in payload[..n].iter_mut().zip(buf.payload()) {
            *dst = src * 2.0 - 1.0;
        }
        let sum = checksum_f32(&payload[..n]);
        faults.corrupt_frame(LINK_PREPROCESS, fid, &mut payload[..n]);
        slot.commit(&FrameMeta {
            t_stage_ns: t_out,
            payload_len: n as u32,
            checksum: sum,
            ..buf.meta
        });
        ctl.add_busy_ns(STAGE, svc);
        ctl.add_processed(STAGE, 1);
        ctl.set_inflight(STAGE, 0);
        ctl.set_clock_ns(STAGE, clock);
    }
    ctl.set_done(STAGE);
    StageExit::Done
}

fn precision_of(dtype: &str) -> Precision {
    match dtype {
        "f16" => Precision::F16,
        "i8" | "int8" => Precision::Int8,
        _ => Precision::F32,
    }
}

struct RungExec<'g> {
    prepared: PreparedExecutor<'g>,
}

impl<'g> RungExec<'g> {
    fn build(
        graph: &'g edgebench_graph::Graph,
        dtype: &str,
        seed: u64,
    ) -> Result<RungExec<'g>, RuntimeError> {
        let prepared = Executor::new(graph)
            .with_seed(seed)
            .with_precision(precision_of(dtype))
            .prepare()
            .map_err(|e| RuntimeError::Stage {
                stage: "inference".to_string(),
                reason: format!("executor build ({dtype}): {e}"),
            })?;
        Ok(RungExec { prepared })
    }

    /// Run the prepared executor on one frame. A rejected frame is a typed
    /// stage error — it feeds the degraded-stage report, never a panic.
    fn run(&self, dims: [u32; 4], payload: &[f32]) -> Result<u64, RuntimeError> {
        let shape: Vec<usize> = dims.iter().map(|&d| (d as usize).max(1)).collect();
        let input = Tensor::from_vec(shape, payload.to_vec());
        let out = self.prepared.run(&input).map_err(|e| RuntimeError::Stage {
            stage: "inference".to_string(),
            reason: format!("executor rejected frame: {e}"),
        })?;
        Ok(checksum_f32(out.data()))
    }
}

/// Inference: sentry-scheduled rung execution with per-rung service time and
/// energy from the fleet's ladder tables; optionally runs the real
/// `PreparedExecutor` hot path on every served frame. Sentry state, energy,
/// and the output digest are persisted per frame so a restart resumes the
/// state machine exactly.
pub(crate) fn run_inference(
    cfg: &RuntimeConfig,
    costs: &StageCosts,
    ctl: &Ctl,
    input: &RingBuffer,
    out: &RingBuffer,
    proc_mode: bool,
) -> StageExit {
    const STAGE: usize = 2;
    let graph;
    let mut full_exec = None;
    let mut standby_exec = None;
    if cfg.exec == ExecMode::Real {
        graph = cfg.model.build();
        match RungExec::build(&graph, costs.full.dtype, cfg.seed) {
            Ok(e) => full_exec = Some(e),
            Err(e) => {
                if cfg.supervise.is_none() {
                    ctl.request_stop();
                }
                return StageExit::Failed(e.to_string());
            }
        }
        if let (Some(sb), true) = (&costs.standby, cfg.sentry.is_some()) {
            match RungExec::build(&graph, sb.dtype, cfg.seed) {
                Ok(e) => standby_exec = Some(e),
                Err(e) => {
                    if cfg.supervise.is_none() {
                        ctl.request_stop();
                    }
                    return StageExit::Failed(e.to_string());
                }
            }
        }
    }

    let mut sentry = cfg
        .sentry
        .map(|sc| Sentry::resume(sc, cfg.seed, ctl.sentry_state()));
    let mut clock = ctl.clock_ns(STAGE);
    let mut buf = FrameBuf::for_ring(input);

    loop {
        ctl.beat(STAGE);
        let clock_now = clock;
        match input.pop_into(&mut buf, deadline(), |b| clock_now.max(b.meta.t_stage_ns)) {
            Pop::Drained => break,
            Pop::TimedOut => {
                if ctl.stop_requested() {
                    return StageExit::Stopped;
                }
                continue;
            }
            Pop::Popped => {}
        }
        let fid = buf.meta.frame_id;
        ctl.set_inflight(STAGE, fid + 1);
        if let Some(exit) = chaos_trigger(cfg, ctl, STAGE, fid, proc_mode) {
            return exit;
        }
        chaos_corrupt_if_scheduled(cfg, STAGE, &mut buf);
        let start = clock.max(buf.meta.t_stage_ns);
        if !buf.checksum_ok() {
            ctl.add_corrupted(1);
            ctl.push_event(start, fid, EV_CORRUPT_INF);
            ctl.set_inflight(STAGE, 0);
            continue;
        }
        let hit = buf.meta.flags & FLAG_HIT != 0;
        let (run_standby, run_full, escalated, stood_down, missed) = match sentry.as_mut() {
            Some(s) => {
                let p = s.plan(fid, hit);
                (
                    p.run_standby,
                    p.run_full,
                    p.escalated,
                    p.stood_down,
                    p.missed,
                )
            }
            None => (false, true, false, false, false),
        };

        let mut svc = 0u64;
        if run_standby {
            let sb = costs
                .standby
                .as_ref()
                .expect("sentry requires a standby rung");
            svc += sb.svc_ns;
            ctl.add_energy_mj(sb.energy_mj);
            if let Some(e) = &standby_exec {
                match e.run(buf.meta.dims, buf.payload()) {
                    Ok(d) => ctl.xor_digest(d),
                    Err(err) => {
                        if cfg.supervise.is_none() {
                            ctl.request_stop();
                        }
                        return StageExit::Failed(err.to_string());
                    }
                }
            }
        }
        if run_full {
            svc += costs.full.svc_ns;
            ctl.add_energy_mj(costs.full.energy_mj);
            if let Some(e) = &full_exec {
                match e.run(buf.meta.dims, buf.payload()) {
                    Ok(d) => ctl.xor_digest(d),
                    Err(err) => {
                        if cfg.supervise.is_none() {
                            ctl.request_stop();
                        }
                        return StageExit::Failed(err.to_string());
                    }
                }
            }
        }
        let done = start + svc;
        clock = done;

        ctl.add_sentry(
            u64::from(escalated),
            u64::from(stood_down),
            u64::from(missed),
        );
        ctl.add_served(u64::from(run_standby && !run_full), u64::from(run_full));
        if escalated {
            ctl.push_event(done, fid, EV_ESCALATE);
        }
        if stood_down {
            ctl.push_event(done, fid, EV_STANDDOWN);
        }
        if missed {
            ctl.push_event(done, fid, EV_MISSED);
        }

        let reserved = loop {
            match out.reserve(cfg.policy, deadline()) {
                Reserve::Slot(slot) => break Some(slot),
                Reserve::TimedOut => {
                    ctl.beat(STAGE);
                    if ctl.stop_requested() {
                        break None;
                    }
                }
            }
        };
        let Some(mut slot) = reserved else {
            return StageExit::Stopped;
        };
        let mut t_out = done;
        if cfg.policy == DropPolicy::Block {
            if let Some(freed) = slot.freed_stamp_ns() {
                t_out = t_out.max(freed);
            }
        }
        let payload = slot.payload_mut();
        payload[..DETECTION_ELEMS].fill(0.0);
        payload[0] = f32::from(u8::from(hit && run_full));
        payload[1] = f32::from(u8::from(run_standby && !run_full));
        payload[2] = f32::from(u8::from(escalated));
        let sum = checksum_f32(&payload[..DETECTION_ELEMS]);
        let mut flags = buf.meta.flags;
        if escalated {
            flags |= FLAG_ESCALATED;
        }
        if run_standby && !run_full {
            flags |= FLAG_STANDBY;
        }
        slot.commit(&FrameMeta {
            t_stage_ns: t_out,
            dims: [DETECTION_ELEMS as u32, 1, 1, 1],
            flags,
            payload_len: DETECTION_ELEMS as u32,
            checksum: sum,
            ..buf.meta
        });
        ctl.add_busy_ns(STAGE, svc);
        ctl.add_processed(STAGE, 1);
        ctl.set_inflight(STAGE, 0);
        if let Some(s) = sentry.as_ref() {
            let (mode, quiet) = s.state();
            ctl.set_sentry_state(mode, quiet);
        }
        ctl.set_clock_ns(STAGE, clock);
    }
    ctl.set_done(STAGE);
    StageExit::Done
}

/// Gateway: drain the detection ring, verify integrity one last time, and
/// account end-to-end virtual latency per frame in the shared ledger. The
/// ledger's compare-and-swap insert is what proves at-most-once delivery:
/// a frame id arriving twice trips the duplicates counter.
pub(crate) fn run_gateway(
    cfg: &RuntimeConfig,
    ctl: &Ctl,
    input: &RingBuffer,
    proc_mode: bool,
) -> StageExit {
    const STAGE: usize = 3;
    let mut buf = FrameBuf::for_ring(input);
    let mut clock = ctl.clock_ns(STAGE);

    loop {
        ctl.beat(STAGE);
        let clock_now = clock;
        match input.pop_into(&mut buf, deadline(), |b| clock_now.max(b.meta.t_stage_ns)) {
            Pop::Drained => break,
            Pop::TimedOut => {
                if ctl.stop_requested() && input.is_closed() {
                    // Closed and nothing new within a slice: give up.
                    return StageExit::Stopped;
                }
                continue;
            }
            Pop::Popped => {}
        }
        let fid = buf.meta.frame_id;
        ctl.set_inflight(STAGE, fid + 1);
        if let Some(exit) = chaos_trigger(cfg, ctl, STAGE, fid, proc_mode) {
            return exit;
        }
        chaos_corrupt_if_scheduled(cfg, STAGE, &mut buf);
        clock = clock.max(buf.meta.t_stage_ns);
        if let Some(prev) = ctl.gw_last_id() {
            if fid <= prev {
                ctl.add_order_violation();
            }
        }
        ctl.set_gw_last_id(fid);
        if !buf.checksum_ok() {
            ctl.add_corrupted(2);
            ctl.push_event(buf.meta.t_stage_ns, fid, EV_CORRUPT_GW);
            ctl.set_inflight(STAGE, 0);
            ctl.set_clock_ns(STAGE, clock);
            continue;
        }
        if ctl.ledger_set(fid, buf.meta.t_stage_ns - buf.meta.t_arrival_ns) {
            ctl.add_completed();
            ctl.span_max(buf.meta.t_stage_ns);
            ctl.add_processed(STAGE, 1);
        } else {
            ctl.add_duplicate();
        }
        ctl.set_inflight(STAGE, 0);
        ctl.set_clock_ns(STAGE, clock);
    }
    ctl.set_done(STAGE);
    StageExit::Done
}

// ---------------------------------------------------------------------------
// Sink bodies (restart budget exhausted)
// ---------------------------------------------------------------------------

/// Capture sink: the capture stage is permanently down. Account every
/// remaining trace point as offered-and-lost so conservation still holds,
/// then let the wrapper close the ring and the survivors drain.
pub(crate) fn run_capture_sink(ctl: &Ctl, trace: &TraceFile) -> StageExit {
    const STAGE: usize = 0;
    let start_idx = ctl.cap_next_idx() as usize;
    for (idx, pt) in trace.points.iter().enumerate().skip(start_idx) {
        ctl.beat(STAGE);
        let fid = idx as u64;
        ctl.set_cap_next_idx(fid + 1);
        ctl.set_offered(fid + 1);
        ctl.add_lost(STAGE, 1);
        ctl.push_event(pt.t_ns, fid, EV_LOST_BASE + STAGE as u32);
    }
    StageExit::Stopped
}

/// Consumer sink: the stage is permanently down but keeps draining its
/// input ring deterministically, accounting every frame as lost at this
/// stage — the drain-and-degrade path with exact bookkeeping.
pub(crate) fn run_consumer_sink(stage: usize, ctl: &Ctl, input: &RingBuffer) -> StageExit {
    let mut buf = FrameBuf::for_ring(input);
    loop {
        ctl.beat(stage);
        match input.pop_into(&mut buf, deadline(), |b| b.meta.t_stage_ns) {
            Pop::Drained => break,
            Pop::TimedOut => {
                if ctl.stop_requested() && input.is_closed() {
                    break;
                }
                continue;
            }
            Pop::Popped => {
                ctl.add_lost(stage, 1);
                ctl.push_event(
                    buf.meta.t_stage_ns,
                    buf.meta.frame_id,
                    EV_LOST_BASE + stage as u32,
                );
            }
        }
    }
    StageExit::Stopped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctl_roundtrips_counters_and_events() {
        let path = std::env::temp_dir().join(format!("ebctl-test-{}", std::process::id()));
        let ctl = Ctl::create(&path, 16, 8, 8).unwrap();
        ctl.set_offered(10);
        ctl.add_corrupted(1);
        ctl.add_sentry(2, 1, 0);
        ctl.add_served(3, 4);
        ctl.add_energy_mj(12.5);
        ctl.add_busy_ns(2, 777);
        ctl.add_processed(2, 9);
        ctl.push_event(5, 1, EV_ESCALATE);
        ctl.push_event(3, 0, EV_CORRUPT_PRE);
        ctl.set_done(2);

        let other = Ctl::attach(&path).unwrap();
        assert_eq!(other.offered(), 10);
        assert_eq!(other.corrupted(1), 1);
        assert_eq!(other.sentry_counts(), (2, 1, 0));
        assert_eq!(other.served_counts(), (3, 4));
        assert_eq!(other.energy_mj(), 12.5);
        assert_eq!(other.busy_ns(2), 777);
        assert_eq!(other.processed(2), 9);
        assert!(other.done(2) && !other.done(0));
        assert_eq!(
            other.events(),
            vec![(3, 0, EV_CORRUPT_PRE), (5, 1, EV_ESCALATE)]
        );
        assert!(!other.stop_requested());
        ctl.request_stop();
        assert!(other.stop_requested());

        ctl.map().unlink();
        assert!(!path.exists());
    }

    #[test]
    fn ctl_event_region_is_bounded() {
        let path = std::env::temp_dir().join(format!("ebctl-bound-{}", std::process::id()));
        let ctl = Ctl::create(&path, 4, 2, 2).unwrap();
        ctl.map().unlink();
        for i in 0..5 {
            ctl.push_event(i, i, EV_MISSED);
        }
        assert_eq!(ctl.events().len(), 2);
        for i in 0..5 {
            ctl.recov_push(1, i, 100);
        }
        assert_eq!(ctl.recoveries().len(), 2);
    }

    #[test]
    fn ctl_supervision_state_roundtrips() {
        let path = std::env::temp_dir().join(format!("ebctl-sup-{}", std::process::id()));
        let ctl = Ctl::create(&path, 8, 4, 4).unwrap();
        ctl.map().unlink();

        ctl.beat(1);
        ctl.beat(1);
        assert_eq!(ctl.heartbeat(1), 2);
        assert_eq!(ctl.heartbeat(0), 0);

        ctl.set_clock_ns(2, 9_000);
        assert_eq!(ctl.clock_ns(2), 9_000);

        assert_eq!(ctl.inflight(1), None);
        ctl.set_inflight(1, 42 + 1);
        assert_eq!(ctl.inflight(1), Some(42));
        ctl.set_inflight(1, 0);
        assert_eq!(ctl.inflight(1), None);

        ctl.add_restart(3);
        ctl.add_lost(3, 2);
        assert_eq!(ctl.restarts(3), 1);
        assert_eq!(ctl.lost(3), 2);

        assert_eq!(ctl.restart_req(2), 0);
        ctl.bump_restart_req(2);
        assert_eq!(ctl.restart_req(2), 1);

        ctl.set_sentry_state(1, 5);
        assert_eq!(ctl.sentry_state(), (1, 5));

        assert_eq!(ctl.gw_last_id(), None);
        ctl.set_gw_last_id(0);
        assert_eq!(ctl.gw_last_id(), Some(0));

        ctl.set_cap_next_idx(7);
        assert_eq!(ctl.cap_next_idx(), 7);

        ctl.span_max(50);
        ctl.span_max(20);
        assert_eq!(ctl.span_ns(), 50);

        ctl.recov_push(1, 1, 25_000);
        ctl.recov_push(0, 1, 5_000);
        assert_eq!(ctl.recoveries(), vec![(0, 1, 5_000), (1, 1, 25_000)]);
    }

    #[test]
    fn ctl_ledger_detects_duplicates_and_orders_latencies() {
        let path = std::env::temp_dir().join(format!("ebctl-ledger-{}", std::process::id()));
        let ctl = Ctl::create(&path, 4, 2, 2).unwrap();
        ctl.map().unlink();

        assert!(ctl.ledger_set(2, 3_000_000));
        assert!(ctl.ledger_set(0, 1_000_000));
        assert!(!ctl.ledger_set(2, 9_000_000), "second insert is a dup");
        assert!(!ctl.ledger_set(99, 1), "out-of-range fids are rejected");
        assert_eq!(ctl.ledger_latencies_ms(), vec![1.0, 3.0]);
        ctl.add_completed();
        ctl.add_completed();
        assert_eq!(ctl.completed(), 2);
        ctl.add_duplicate();
        assert_eq!(ctl.duplicates(), 1);
    }

    #[test]
    fn precision_mapping_covers_ladder_dtypes() {
        assert_eq!(precision_of("f32"), Precision::F32);
        assert_eq!(precision_of("f16"), Precision::F16);
        assert_eq!(precision_of("i8"), Precision::Int8);
        assert_eq!(precision_of("int8"), Precision::Int8);
        assert_eq!(precision_of("anything"), Precision::F32);
    }
}
