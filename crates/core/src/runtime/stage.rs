//! The four pipeline stages and the shared control block.
//!
//! Each stage is a plain function over attached shared-memory objects, so
//! the same code runs as a thread inside `run_replay` or as the body of an
//! `edgebench-cli runtime --stage <name>` child process. Stages advance
//! deterministic *virtual* clocks (`t_out = max(stage_clock, t_in) +
//! svc_ns`) while exercising the real IPC mechanics — mmap rings, futex
//! waits, checksums, backpressure — which is what makes the replay report
//! byte-identical across runs and across thread/process layouts.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use edgebench_devices::faults::ipc::{LinkFaults, LINK_CAPTURE, LINK_PREPROCESS};
use edgebench_devices::faults::rng::FaultRng;
use edgebench_tensor::integrity::checksum_f32;
use edgebench_tensor::{Executor, Precision, PreparedExecutor, Tensor};

use super::ring::{
    DropPolicy, FrameBuf, FrameMeta, Pop, Reserve, RingBuffer, FLAG_ESCALATED, FLAG_HIT,
    FLAG_STANDBY, RETRY_SLICE,
};
use super::sentry::Sentry;
use super::shm::SharedMap;
use super::{ExecMode, RuntimeConfig, RuntimeError, StageCosts};
use crate::serve::TraceFile;

/// Stream tag for deterministic frame payload synthesis.
const TAG_PAYLOAD: u64 = 0x7061_796c; // "payl"

/// Payload elements on the inference → gateway ring (detection summary).
pub(crate) const DETECTION_ELEMS: usize = 8;

/// Stage indices into the control block's per-stage counters.
pub(crate) const STAGE_NAMES: [&str; 4] = ["capture", "preprocess", "inference", "gateway"];

/// Process-local stop flag, set by the SIGTERM handler installed in
/// `stage_main`. Always false in thread mode.
static LOCAL_STOP: AtomicBool = AtomicBool::new(false);

/// Raise the process-local stop flag (SIGTERM handler body).
pub(crate) fn raise_local_stop() {
    LOCAL_STOP.store(true, Ordering::Release);
}

/// Reset the local stop flag (tests that reuse the process).
pub(crate) fn clear_local_stop() {
    LOCAL_STOP.store(false, Ordering::Release);
}

// ---------------------------------------------------------------------------
// Control block
// ---------------------------------------------------------------------------

const CTL_MAGIC: u32 = 0x4542_4354; // "EBCT"
const CTL_VERSION: u32 = 1;
const CTL_HEADER_BYTES: usize = 200;
const EVENT_BYTES: usize = 24;

/// Event codes stored in the shared event region.
pub(crate) const EV_ESCALATE: u32 = 0;
pub(crate) const EV_STANDDOWN: u32 = 1;
pub(crate) const EV_MISSED: u32 = 2;
pub(crate) const EV_CORRUPT_PRE: u32 = 3;
pub(crate) const EV_CORRUPT_INF: u32 = 4;
pub(crate) const EV_CORRUPT_GW: u32 = 5;

/// The shared control block: stop flag, per-stage counters, sentry
/// statistics, and a bounded event region. One per run directory, mapped by
/// every stage.
pub(crate) struct Ctl {
    map: SharedMap,
}

impl std::fmt::Debug for Ctl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctl")
            .field("path", &self.map.path())
            .finish()
    }
}

impl Ctl {
    pub(crate) fn required_bytes(events_cap: usize) -> usize {
        CTL_HEADER_BYTES + events_cap * EVENT_BYTES
    }

    pub(crate) fn create(path: &Path, events_cap: usize) -> Result<Ctl, RuntimeError> {
        let map = SharedMap::create(path, Self::required_bytes(events_cap))?;
        let ctl = Ctl { map };
        unsafe {
            let base = ctl.map.base().cast::<u32>();
            base.add(1).write(CTL_VERSION);
            ctl.map
                .base()
                .add(192)
                .cast::<u64>()
                .write(events_cap as u64);
            std::sync::atomic::fence(Ordering::Release);
            base.write(CTL_MAGIC);
        }
        Ok(ctl)
    }

    pub(crate) fn attach(path: &Path) -> Result<Ctl, RuntimeError> {
        let map = SharedMap::open(path)?;
        if map.len() < CTL_HEADER_BYTES {
            return Err(RuntimeError::shm(path, "control block too small"));
        }
        let magic = unsafe {
            std::sync::atomic::fence(Ordering::Acquire);
            map.base().cast::<u32>().read()
        };
        if magic != CTL_MAGIC {
            return Err(RuntimeError::shm(path, "bad control-block magic"));
        }
        let ctl = Ctl { map };
        if ctl.map.len() < Self::required_bytes(ctl.events_cap()) {
            return Err(RuntimeError::shm(path, "control block truncated"));
        }
        Ok(ctl)
    }

    fn u64_at(&self, off: usize) -> &AtomicU64 {
        debug_assert!(off.is_multiple_of(8) && off + 8 <= self.map.len());
        unsafe { &*self.map.base().add(off).cast::<AtomicU64>() }
    }

    fn u32_at(&self, off: usize) -> &AtomicU32 {
        unsafe { &*self.map.base().add(off).cast::<AtomicU32>() }
    }

    pub(crate) fn map(&self) -> &SharedMap {
        &self.map
    }

    pub(crate) fn request_stop(&self) {
        self.u32_at(8).store(1, Ordering::Release);
    }

    pub(crate) fn stop_requested(&self) -> bool {
        self.u32_at(8).load(Ordering::Acquire) == 1 || LOCAL_STOP.load(Ordering::Acquire)
    }

    pub(crate) fn set_offered(&self, n: u64) {
        self.u64_at(16).store(n, Ordering::Release);
    }

    pub(crate) fn offered(&self) -> u64 {
        self.u64_at(16).load(Ordering::Acquire)
    }

    /// Corrupted-frame counters: 0 = preprocess, 1 = inference, 2 = gateway.
    pub(crate) fn add_corrupted(&self, detector: usize) {
        self.u64_at(24 + detector * 8)
            .fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn corrupted(&self, detector: usize) -> u64 {
        self.u64_at(24 + detector * 8).load(Ordering::Acquire)
    }

    pub(crate) fn add_sentry(&self, escal: u64, standdown: u64, missed: u64) {
        if escal > 0 {
            self.u64_at(48).fetch_add(escal, Ordering::AcqRel);
        }
        if standdown > 0 {
            self.u64_at(56).fetch_add(standdown, Ordering::AcqRel);
        }
        if missed > 0 {
            self.u64_at(64).fetch_add(missed, Ordering::AcqRel);
        }
    }

    pub(crate) fn sentry_counts(&self) -> (u64, u64, u64) {
        (
            self.u64_at(48).load(Ordering::Acquire),
            self.u64_at(56).load(Ordering::Acquire),
            self.u64_at(64).load(Ordering::Acquire),
        )
    }

    pub(crate) fn add_served(&self, standby: u64, full: u64) {
        if standby > 0 {
            self.u64_at(72).fetch_add(standby, Ordering::AcqRel);
        }
        if full > 0 {
            self.u64_at(80).fetch_add(full, Ordering::AcqRel);
        }
    }

    pub(crate) fn served_counts(&self) -> (u64, u64) {
        (
            self.u64_at(72).load(Ordering::Acquire),
            self.u64_at(80).load(Ordering::Acquire),
        )
    }

    pub(crate) fn set_energy_mj(&self, mj: f64) {
        self.u64_at(88).store(mj.to_bits(), Ordering::Release);
    }

    pub(crate) fn energy_mj(&self) -> f64 {
        f64::from_bits(self.u64_at(88).load(Ordering::Acquire))
    }

    pub(crate) fn set_digest(&self, d: u64) {
        self.u64_at(96).store(d, Ordering::Release);
    }

    pub(crate) fn digest(&self) -> u64 {
        self.u64_at(96).load(Ordering::Acquire)
    }

    pub(crate) fn add_busy_ns(&self, stage: usize, ns: u64) {
        self.u64_at(104 + stage * 8).fetch_add(ns, Ordering::AcqRel);
    }

    pub(crate) fn busy_ns(&self, stage: usize) -> u64 {
        self.u64_at(104 + stage * 8).load(Ordering::Acquire)
    }

    pub(crate) fn add_processed(&self, stage: usize, n: u64) {
        self.u64_at(136 + stage * 8).fetch_add(n, Ordering::AcqRel);
    }

    pub(crate) fn processed(&self, stage: usize) -> u64 {
        self.u64_at(136 + stage * 8).load(Ordering::Acquire)
    }

    /// Mark a stage as having finished naturally (input fully drained, or
    /// for capture: whole trace pushed). A stage interrupted by stop or
    /// SIGTERM never sets this — the supervisor uses that to detect a
    /// degraded pipeline.
    pub(crate) fn set_done(&self, stage: usize) {
        self.u32_at(168 + stage * 4).store(1, Ordering::Release);
    }

    pub(crate) fn done(&self, stage: usize) -> bool {
        self.u32_at(168 + stage * 4).load(Ordering::Acquire) == 1
    }

    pub(crate) fn events_cap(&self) -> usize {
        self.u64_at(192).load(Ordering::Acquire) as usize
    }

    pub(crate) fn push_event(&self, t_ns: u64, seq: u64, code: u32) {
        let idx = self.u64_at(184).fetch_add(1, Ordering::AcqRel) as usize;
        if idx >= self.events_cap() {
            return; // bounded region; overflow is dropped, not UB
        }
        let off = CTL_HEADER_BYTES + idx * EVENT_BYTES;
        unsafe {
            let p = self.map.base().add(off);
            p.cast::<u64>().write_volatile(t_ns);
            p.add(8).cast::<u64>().write_volatile(seq);
            p.add(16).cast::<u32>().write_volatile(code);
        }
    }

    /// Decode the event region: `(t_ns, seq, code)` triples, sorted for a
    /// deterministic order regardless of cross-stage write interleaving.
    pub(crate) fn events(&self) -> Vec<(u64, u64, u32)> {
        let n = (self.u64_at(184).load(Ordering::Acquire) as usize).min(self.events_cap());
        let mut out = Vec::with_capacity(n);
        for idx in 0..n {
            let off = CTL_HEADER_BYTES + idx * EVENT_BYTES;
            unsafe {
                let p = self.map.base().add(off);
                out.push((
                    p.cast::<u64>().read_volatile(),
                    p.add(8).cast::<u64>().read_volatile(),
                    p.add(16).cast::<u32>().read_volatile(),
                ));
            }
        }
        out.sort_unstable();
        out
    }
}

/// Closes a ring when dropped — even on panic, so a dead stage never leaves
/// its downstream partner waiting forever. On panic it also raises the
/// shared stop flag to unwind the rest of the pipeline.
pub(crate) struct CloseOnDrop<'a> {
    pub ring: &'a RingBuffer,
    pub ctl: &'a Ctl,
}

impl Drop for CloseOnDrop<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.ctl.request_stop();
        }
        self.ring.close();
    }
}

// ---------------------------------------------------------------------------
// Stage bodies
// ---------------------------------------------------------------------------

fn deadline() -> Instant {
    Instant::now() + RETRY_SLICE
}

/// Capture: turn trace points into frames — deterministic synthetic pixels,
/// checksum, ground-truth hit flag — and push them onto the capture ring.
pub(crate) fn run_capture(
    cfg: &RuntimeConfig,
    costs: &StageCosts,
    ctl: &Ctl,
    trace: &TraceFile,
    out: &RingBuffer,
) {
    let faults = LinkFaults::new(cfg.seed, cfg.ipc_flip_rate);
    let svc = costs.elems as u64 * cfg.capture_ns_per_elem;
    let mut clock = 0u64;
    let mut pushed = 0u64;
    let wall_t0 = Instant::now();
    let mut interrupted = false;

    'frames: for pt in &trace.points {
        if ctl.stop_requested() {
            interrupted = true;
            break;
        }
        if cfg.pace {
            let target = wall_t0 + Duration::from_nanos(pt.t_ns);
            loop {
                let now = Instant::now();
                if now >= target {
                    break;
                }
                if ctl.stop_requested() {
                    interrupted = true;
                    break 'frames;
                }
                std::thread::sleep((target - now).min(Duration::from_millis(5)));
            }
        }
        let mut slot = loop {
            match out.reserve(cfg.policy, deadline()) {
                Reserve::Slot(slot) => break slot,
                Reserve::TimedOut => {
                    if ctl.stop_requested() {
                        interrupted = true;
                        break 'frames;
                    }
                }
            }
        };
        let seq = slot.seq();
        // Virtual timing: the frame is ready at its trace arrival; a blocked
        // producer additionally cannot write before the slot it reuses was
        // vacated (virtual backpressure).
        let mut start = clock.max(pt.t_ns);
        if cfg.policy == DropPolicy::Block {
            if let Some(freed) = slot.freed_stamp_ns() {
                start = start.max(freed);
            }
        }
        let done = start + svc;
        clock = done;

        let payload = slot.payload_mut();
        let mut rng = FaultRng::for_stream(cfg.seed, &[TAG_PAYLOAD, seq]);
        for v in payload[..costs.elems].iter_mut() {
            *v = rng.next_f64() as f32;
        }
        let sum = checksum_f32(&payload[..costs.elems]);
        // Inject IPC faults *after* the checksum: corruption-in-transit the
        // consumer's integrity check must catch.
        faults.corrupt_frame(LINK_CAPTURE, seq, &mut payload[..costs.elems]);
        slot.commit(&FrameMeta {
            t_arrival_ns: pt.t_ns,
            t_stage_ns: done,
            dims: costs.dims,
            dtype: 0,
            flags: u32::from(pt.hit) * FLAG_HIT,
            payload_len: costs.elems as u32,
            checksum: sum,
        });
        pushed += 1;
        ctl.add_busy_ns(0, svc);
        ctl.add_processed(0, 1);
    }
    ctl.set_offered(pushed);
    if !interrupted {
        ctl.set_done(0);
    }
}

/// Preprocess: verify integrity, normalize pixels to `[-1, 1]`, re-checksum
/// and forward. Corrupted frames are counted and dropped, never served.
pub(crate) fn run_preprocess(
    cfg: &RuntimeConfig,
    costs: &StageCosts,
    ctl: &Ctl,
    input: &RingBuffer,
    out: &RingBuffer,
) {
    let faults = LinkFaults::new(cfg.seed, cfg.ipc_flip_rate);
    let svc = costs.elems as u64 * cfg.preprocess_ns_per_elem;
    let mut clock = 0u64;
    let mut buf = FrameBuf::for_ring(input);
    let mut interrupted = false;

    loop {
        let clock_now = clock;
        match input.pop_into(&mut buf, deadline(), |b| clock_now.max(b.meta.t_stage_ns)) {
            Pop::Drained => break,
            Pop::TimedOut => {
                if ctl.stop_requested() {
                    interrupted = true;
                    break;
                }
                continue;
            }
            Pop::Popped => {}
        }
        let start = clock.max(buf.meta.t_stage_ns);
        if !buf.checksum_ok() {
            ctl.add_corrupted(0);
            ctl.push_event(start, buf.seq, EV_CORRUPT_PRE);
            continue;
        }
        let done = start + svc;
        clock = done;

        let reserved = loop {
            match out.reserve(cfg.policy, deadline()) {
                Reserve::Slot(slot) => break Some(slot),
                Reserve::TimedOut => {
                    if ctl.stop_requested() {
                        break None;
                    }
                }
            }
        };
        let Some(mut slot) = reserved else {
            interrupted = true;
            break;
        };
        let mut t_out = done;
        if cfg.policy == DropPolicy::Block {
            if let Some(freed) = slot.freed_stamp_ns() {
                t_out = t_out.max(freed);
            }
        }
        let n = buf.meta.payload_len as usize;
        let payload = slot.payload_mut();
        for (dst, src) in payload[..n].iter_mut().zip(buf.payload()) {
            *dst = src * 2.0 - 1.0;
        }
        let sum = checksum_f32(&payload[..n]);
        faults.corrupt_frame(LINK_PREPROCESS, buf.seq, &mut payload[..n]);
        slot.commit(&FrameMeta {
            t_stage_ns: t_out,
            payload_len: n as u32,
            checksum: sum,
            ..buf.meta
        });
        ctl.add_busy_ns(1, svc);
        ctl.add_processed(1, 1);
    }
    if !interrupted {
        ctl.set_done(1);
    }
}

fn precision_of(dtype: &str) -> Precision {
    match dtype {
        "f16" => Precision::F16,
        "i8" | "int8" => Precision::Int8,
        _ => Precision::F32,
    }
}

struct RungExec<'g> {
    prepared: PreparedExecutor<'g>,
}

impl<'g> RungExec<'g> {
    fn build(
        graph: &'g edgebench_graph::Graph,
        dtype: &str,
        seed: u64,
    ) -> Result<RungExec<'g>, RuntimeError> {
        let prepared = Executor::new(graph)
            .with_seed(seed)
            .with_precision(precision_of(dtype))
            .prepare()
            .map_err(|e| RuntimeError::Stage {
                stage: "inference".to_string(),
                reason: format!("executor build ({dtype}): {e}"),
            })?;
        Ok(RungExec { prepared })
    }

    fn run(&self, dims: [u32; 4], payload: &[f32]) -> u64 {
        let shape: Vec<usize> = dims.iter().map(|&d| (d as usize).max(1)).collect();
        let input = Tensor::from_vec(shape, payload.to_vec());
        let out = self
            .prepared
            .run(&input)
            .expect("prepared executor rejected a well-formed frame");
        checksum_f32(out.data())
    }
}

/// Inference: sentry-scheduled rung execution with per-rung service time and
/// energy from the fleet's ladder tables; optionally runs the real
/// `PreparedExecutor` hot path on every served frame.
pub(crate) fn run_inference(
    cfg: &RuntimeConfig,
    costs: &StageCosts,
    ctl: &Ctl,
    input: &RingBuffer,
    out: &RingBuffer,
) -> Result<(), RuntimeError> {
    let graph;
    let mut full_exec = None;
    let mut standby_exec = None;
    if cfg.exec == ExecMode::Real {
        graph = cfg.model.build();
        full_exec = Some(RungExec::build(&graph, costs.full.dtype, cfg.seed)?);
        if let (Some(sb), true) = (&costs.standby, cfg.sentry.is_some()) {
            standby_exec = Some(RungExec::build(&graph, sb.dtype, cfg.seed)?);
        }
    }

    let mut sentry = cfg.sentry.map(|sc| Sentry::new(sc, cfg.seed));
    let mut clock = 0u64;
    let mut buf = FrameBuf::for_ring(input);
    let mut energy_mj = 0.0f64;
    let mut digest = 0u64;
    let mut interrupted = false;

    loop {
        let clock_now = clock;
        match input.pop_into(&mut buf, deadline(), |b| clock_now.max(b.meta.t_stage_ns)) {
            Pop::Drained => break,
            Pop::TimedOut => {
                if ctl.stop_requested() {
                    interrupted = true;
                    break;
                }
                continue;
            }
            Pop::Popped => {}
        }
        let start = clock.max(buf.meta.t_stage_ns);
        if !buf.checksum_ok() {
            ctl.add_corrupted(1);
            ctl.push_event(start, buf.seq, EV_CORRUPT_INF);
            continue;
        }
        let hit = buf.meta.flags & FLAG_HIT != 0;
        let (run_standby, run_full, escalated, stood_down, missed) = match sentry.as_mut() {
            Some(s) => {
                let p = s.plan(buf.seq, hit);
                (
                    p.run_standby,
                    p.run_full,
                    p.escalated,
                    p.stood_down,
                    p.missed,
                )
            }
            None => (false, true, false, false, false),
        };

        let mut svc = 0u64;
        if run_standby {
            let sb = costs
                .standby
                .as_ref()
                .expect("sentry requires a standby rung");
            svc += sb.svc_ns;
            energy_mj += sb.energy_mj;
            if let Some(e) = &standby_exec {
                digest ^= e.run(buf.meta.dims, buf.payload());
            }
        }
        if run_full {
            svc += costs.full.svc_ns;
            energy_mj += costs.full.energy_mj;
            if let Some(e) = &full_exec {
                digest ^= e.run(buf.meta.dims, buf.payload());
            }
        }
        let done = start + svc;
        clock = done;

        ctl.add_sentry(
            u64::from(escalated),
            u64::from(stood_down),
            u64::from(missed),
        );
        ctl.add_served(u64::from(run_standby && !run_full), u64::from(run_full));
        if escalated {
            ctl.push_event(done, buf.seq, EV_ESCALATE);
        }
        if stood_down {
            ctl.push_event(done, buf.seq, EV_STANDDOWN);
        }
        if missed {
            ctl.push_event(done, buf.seq, EV_MISSED);
        }

        let reserved = loop {
            match out.reserve(cfg.policy, deadline()) {
                Reserve::Slot(slot) => break Some(slot),
                Reserve::TimedOut => {
                    if ctl.stop_requested() {
                        break None;
                    }
                }
            }
        };
        let Some(mut slot) = reserved else {
            interrupted = true;
            break;
        };
        let mut t_out = done;
        if cfg.policy == DropPolicy::Block {
            if let Some(freed) = slot.freed_stamp_ns() {
                t_out = t_out.max(freed);
            }
        }
        let payload = slot.payload_mut();
        payload[..DETECTION_ELEMS].fill(0.0);
        payload[0] = f32::from(u8::from(hit && run_full));
        payload[1] = f32::from(u8::from(run_standby && !run_full));
        payload[2] = f32::from(u8::from(escalated));
        let sum = checksum_f32(&payload[..DETECTION_ELEMS]);
        let mut flags = buf.meta.flags;
        if escalated {
            flags |= FLAG_ESCALATED;
        }
        if run_standby && !run_full {
            flags |= FLAG_STANDBY;
        }
        slot.commit(&FrameMeta {
            t_stage_ns: t_out,
            dims: [DETECTION_ELEMS as u32, 1, 1, 1],
            flags,
            payload_len: DETECTION_ELEMS as u32,
            checksum: sum,
            ..buf.meta
        });
        ctl.add_busy_ns(2, svc);
        ctl.add_processed(2, 1);
    }
    ctl.set_energy_mj(energy_mj);
    ctl.set_digest(digest);
    if !interrupted {
        ctl.set_done(2);
    }
    Ok(())
}

/// What the gateway observed, used to assemble the final report.
#[derive(Debug, Default)]
pub(crate) struct GatewayOut {
    pub completed: u64,
    pub latencies_ms: Vec<f64>,
    pub span_ns: u64,
    pub order_violations: u64,
}

/// Gateway: drain the detection ring, verify integrity one last time, and
/// account end-to-end virtual latency per frame.
pub(crate) fn run_gateway(ctl: &Ctl, input: &RingBuffer) -> GatewayOut {
    let mut out = GatewayOut::default();
    let mut buf = FrameBuf::for_ring(input);
    let mut gw_clock = 0u64;
    let mut last_seq: Option<u64> = None;
    let mut interrupted = false;

    loop {
        let clock_now = gw_clock;
        match input.pop_into(&mut buf, deadline(), |b| clock_now.max(b.meta.t_stage_ns)) {
            Pop::Drained => break,
            Pop::TimedOut => {
                if ctl.stop_requested() && input.is_closed() {
                    // Closed and nothing new within a slice: give up.
                    interrupted = true;
                    break;
                }
                continue;
            }
            Pop::Popped => {}
        }
        gw_clock = gw_clock.max(buf.meta.t_stage_ns);
        if let Some(prev) = last_seq {
            if buf.seq <= prev {
                out.order_violations += 1;
            }
        }
        last_seq = Some(buf.seq);
        if !buf.checksum_ok() {
            ctl.add_corrupted(2);
            ctl.push_event(buf.meta.t_stage_ns, buf.seq, EV_CORRUPT_GW);
            continue;
        }
        out.completed += 1;
        out.span_ns = out.span_ns.max(buf.meta.t_stage_ns);
        out.latencies_ms
            .push((buf.meta.t_stage_ns - buf.meta.t_arrival_ns) as f64 / 1e6);
        ctl.add_processed(3, 1);
    }
    if !interrupted {
        ctl.set_done(3);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctl_roundtrips_counters_and_events() {
        let path = std::env::temp_dir().join(format!("ebctl-test-{}", std::process::id()));
        let ctl = Ctl::create(&path, 8).unwrap();
        ctl.set_offered(10);
        ctl.add_corrupted(1);
        ctl.add_sentry(2, 1, 0);
        ctl.add_served(3, 4);
        ctl.set_energy_mj(12.5);
        ctl.add_busy_ns(2, 777);
        ctl.add_processed(2, 9);
        ctl.push_event(5, 1, EV_ESCALATE);
        ctl.push_event(3, 0, EV_CORRUPT_PRE);
        ctl.set_done(2);

        let other = Ctl::attach(&path).unwrap();
        assert_eq!(other.offered(), 10);
        assert_eq!(other.corrupted(1), 1);
        assert_eq!(other.sentry_counts(), (2, 1, 0));
        assert_eq!(other.served_counts(), (3, 4));
        assert_eq!(other.energy_mj(), 12.5);
        assert_eq!(other.busy_ns(2), 777);
        assert_eq!(other.processed(2), 9);
        assert!(other.done(2) && !other.done(0));
        assert_eq!(
            other.events(),
            vec![(3, 0, EV_CORRUPT_PRE), (5, 1, EV_ESCALATE)]
        );
        assert!(!other.stop_requested());
        ctl.request_stop();
        assert!(other.stop_requested());

        ctl.map().unlink();
        assert!(!path.exists());
    }

    #[test]
    fn ctl_event_region_is_bounded() {
        let path = std::env::temp_dir().join(format!("ebctl-bound-{}", std::process::id()));
        let ctl = Ctl::create(&path, 2).unwrap();
        ctl.map().unlink();
        for i in 0..5 {
            ctl.push_event(i, i, EV_MISSED);
        }
        assert_eq!(ctl.events().len(), 2);
    }

    #[test]
    fn precision_mapping_covers_ladder_dtypes() {
        assert_eq!(precision_of("f32"), Precision::F32);
        assert_eq!(precision_of("f16"), Precision::F16);
        assert_eq!(precision_of("i8"), Precision::Int8);
        assert_eq!(precision_of("int8"), Precision::Int8);
        assert_eq!(precision_of("anything"), Precision::F32);
    }
}
