//! Zero-copy multi-process serving runtime.
//!
//! A pipeline of four stages — **capture → preprocess → inference →
//! gateway** — connected by memory-mapped SPSC ring buffers
//! ([`ring::RingBuffer`]) carrying fixed-layout frame headers and raw `f32`
//! payloads: zero serialization on the frame path. Each stage can run as a
//! thread (replay/loopback mode) or as its own OS process (the CLI spawns
//! `edgebench-cli runtime --stage <name>` children over the same shared
//! files).
//!
//! ## Virtual-time replay
//!
//! The runtime exercises *real* IPC mechanics (mmap rings, futex wakeups,
//! checksums, backpressure) while accounting time *virtually*: every stage
//! advances a deterministic clock `t_out = max(stage_clock, t_in) + svc_ns`,
//! with service times taken from the same per-rung tables `serve::sim` uses.
//! Ring-full backpressure is folded in through the per-slot free-time stamps
//! (see [`ring`]): a blocking producer cannot stamp a frame earlier than the
//! virtual instant the consumer vacated the slot it reuses. The result is a
//! replay report that is byte-identical across runs at a fixed seed — and
//! directly comparable against the discrete-event simulator's prediction on
//! the same trace (`ext-runtime-vs-sim`).

pub mod report;
pub mod ring;
pub mod sentry;
pub mod shm;
mod stage;
pub mod supervise;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use edgebench_devices::faults::ChaosPlan;
use edgebench_devices::Device;
use edgebench_measure::stats::Samples;
use edgebench_models::Model;

use crate::serve::{Fleet, ReplicaSpec, TraceFile};
use ring::RingBuffer;
use shm::SharedMap;
use stage::{Ctl, StageExit, DETECTION_ELEMS, STAGE_NAMES};

pub use report::{RuntimeEvent, RuntimeEventKind, RuntimeReport, StageReport};
pub use ring::DropPolicy;
pub use sentry::SentryConfig;
pub use supervise::SuperviseConfig;

/// Errors surfaced by the runtime subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Invalid runtime configuration.
    Config {
        /// What was wrong.
        reason: String,
    },
    /// A shared-memory mapping failed.
    Shm {
        /// Backing file path.
        path: String,
        /// What went wrong.
        reason: String,
    },
    /// No deployable configuration for the model/device pair.
    NoDeployment {
        /// Model name.
        model: String,
        /// Device name.
        device: String,
    },
    /// A pipeline stage failed or exited abnormally.
    Stage {
        /// Stage name.
        stage: String,
        /// What went wrong.
        reason: String,
    },
    /// Trace generation failed.
    Trace {
        /// What went wrong.
        reason: String,
    },
    /// Filesystem error while managing the run directory.
    Io {
        /// What went wrong.
        reason: String,
    },
}

impl RuntimeError {
    pub(crate) fn config(reason: &str) -> RuntimeError {
        RuntimeError::Config {
            reason: reason.to_string(),
        }
    }

    pub(crate) fn shm(path: &Path, reason: &str) -> RuntimeError {
        RuntimeError::Shm {
            path: path.display().to_string(),
            reason: reason.to_string(),
        }
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Config { reason } => write!(f, "runtime config: {reason}"),
            RuntimeError::Shm { path, reason } => write!(f, "shared memory {path}: {reason}"),
            RuntimeError::NoDeployment { model, device } => {
                write!(f, "no deployable configuration for {model} on {device}")
            }
            RuntimeError::Stage { stage, reason } => write!(f, "stage {stage}: {reason}"),
            RuntimeError::Trace { reason } => write!(f, "trace: {reason}"),
            RuntimeError::Io { reason } => write!(f, "io: {reason}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// How real the inference stage's compute is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Charge per-rung service/energy tables only (fast, default).
    Model,
    /// Additionally run the real `PreparedExecutor` hot path per frame and
    /// fold output checksums into the report digest.
    Real,
}

/// Configuration for a runtime pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// Model served by the inference stage.
    pub model: Model,
    /// Device whose measured ladder provides service/energy tables.
    pub device: Device,
    /// Slots per ring (power of two).
    pub ring_capacity: usize,
    /// Backpressure policy on full rings.
    pub policy: DropPolicy,
    /// Sentry mode; `None` serves every frame with the full model.
    pub sentry: Option<SentryConfig>,
    /// Master seed for payloads, faults, and sentry recall draws.
    pub seed: u64,
    /// Virtual capture cost per payload element, ns.
    pub capture_ns_per_elem: u64,
    /// Virtual preprocess cost per payload element, ns.
    pub preprocess_ns_per_elem: u64,
    /// Per-bit flip probability on the IPC links (0 disables).
    pub ipc_flip_rate: f64,
    /// Whether inference really executes the model.
    pub exec: ExecMode,
    /// Pace capture in wall-clock time (live mode) instead of free-running.
    pub pace: bool,
    /// Base directory for shared files (default `/dev/shm` or tmp).
    pub shm_dir: Option<PathBuf>,
    /// Self-healing supervision; `None` keeps the fail-stop behavior
    /// (a dead stage degrades the run without recovery).
    pub supervise: Option<SuperviseConfig>,
    /// Deterministic chaos schedule injected into the stages.
    pub chaos: Option<ChaosPlan>,
}

impl RuntimeConfig {
    /// Defaults: capacity 8, block policy, no sentry, seed 42, modelled
    /// execution, small per-element stage costs.
    pub fn new(model: Model, device: Device) -> RuntimeConfig {
        RuntimeConfig {
            model,
            device,
            ring_capacity: 8,
            policy: DropPolicy::Block,
            sentry: None,
            seed: 42,
            capture_ns_per_elem: 2,
            preprocess_ns_per_elem: 4,
            ipc_flip_rate: 0.0,
            exec: ExecMode::Model,
            pace: false,
            shm_dir: None,
            supervise: None,
            chaos: None,
        }
    }

    /// Sets the ring capacity (power of two).
    pub fn with_ring_capacity(mut self, capacity: usize) -> RuntimeConfig {
        self.ring_capacity = capacity;
        self
    }

    /// Sets the backpressure policy.
    pub fn with_policy(mut self, policy: DropPolicy) -> RuntimeConfig {
        self.policy = policy;
        self
    }

    /// Enables sentry mode.
    pub fn with_sentry(mut self, sentry: SentryConfig) -> RuntimeConfig {
        self.sentry = Some(sentry);
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> RuntimeConfig {
        self.seed = seed;
        self
    }

    /// Sets the virtual per-element capture and preprocess costs (ns).
    pub fn with_stage_costs(mut self, capture: u64, preprocess: u64) -> RuntimeConfig {
        self.capture_ns_per_elem = capture;
        self.preprocess_ns_per_elem = preprocess;
        self
    }

    /// Sets the IPC link flip rate.
    pub fn with_ipc_flip_rate(mut self, rate: f64) -> RuntimeConfig {
        self.ipc_flip_rate = rate;
        self
    }

    /// Sets the execution mode.
    pub fn with_exec(mut self, exec: ExecMode) -> RuntimeConfig {
        self.exec = exec;
        self
    }

    /// Enables wall-clock pacing of the capture stage.
    pub fn with_pace(mut self, pace: bool) -> RuntimeConfig {
        self.pace = pace;
        self
    }

    /// Overrides the shared-file base directory.
    pub fn with_shm_dir(mut self, dir: PathBuf) -> RuntimeConfig {
        self.shm_dir = Some(dir);
        self
    }

    /// Enables self-healing supervision (crash/hang detection plus
    /// deterministic stage restarts).
    pub fn with_supervise(mut self, sup: SuperviseConfig) -> RuntimeConfig {
        self.supervise = Some(sup);
        self
    }

    /// Injects a deterministic chaos schedule into the stages.
    pub fn with_chaos(mut self, plan: ChaosPlan) -> RuntimeConfig {
        self.chaos = Some(plan);
        self
    }

    /// Validates static invariants.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Config`] on a zero or non-power-of-two ring
    /// capacity, or an out-of-range probability.
    pub fn validate(&self) -> Result<(), RuntimeError> {
        if self.ring_capacity == 0 || !self.ring_capacity.is_power_of_two() {
            return Err(RuntimeError::config(
                "ring capacity must be a non-zero power of two",
            ));
        }
        if !(0.0..=1.0).contains(&self.ipc_flip_rate) {
            return Err(RuntimeError::config("flip rate must be in [0, 1]"));
        }
        if let Some(s) = &self.sentry {
            if s.cooldown == 0 {
                return Err(RuntimeError::config("sentry cooldown must be positive"));
            }
            if !(0.0..=1.0).contains(&s.standby_recall) {
                return Err(RuntimeError::config("standby recall must be in [0, 1]"));
            }
        }
        if let Some(sup) = &self.supervise {
            if sup.heartbeat_ms < 10 {
                return Err(RuntimeError::config("heartbeat window must be >= 10 ms"));
            }
            if sup.restart_budget > 64 {
                return Err(RuntimeError::config("restart budget must be <= 64"));
            }
            if sup.backoff_factor < 1.0 {
                return Err(RuntimeError::config("backoff factor must be >= 1"));
            }
            if !(0.0..1.0).contains(&sup.jitter_frac) {
                return Err(RuntimeError::config("jitter fraction must be in [0, 1)"));
            }
        }
        if let Some(plan) = &self.chaos {
            if plan.has_hangs() && self.supervise.is_none() {
                return Err(RuntimeError::config(
                    "chaos hang events need supervision (stall detection) to recover",
                ));
            }
        }
        Ok(())
    }
}

/// Service/energy cost of one ladder rung at batch 1.
#[derive(Debug, Clone)]
pub(crate) struct RungCost {
    pub dtype: &'static str,
    pub svc_ns: u64,
    pub energy_mj: f64,
}

/// Per-stage cost tables derived from the serving fleet's ladder model —
/// the same numbers `serve::sim` predicts with, which is what makes the
/// sim-vs-real comparison apples-to-apples.
#[derive(Debug, Clone)]
pub(crate) struct StageCosts {
    pub elems: usize,
    pub dims: [u32; 4],
    pub full: RungCost,
    pub standby: Option<RungCost>,
}

impl StageCosts {
    pub(crate) fn build(cfg: &RuntimeConfig) -> Result<StageCosts, RuntimeError> {
        let spec = ReplicaSpec::best_for(cfg.model, cfg.device).ok_or_else(|| {
            RuntimeError::NoDeployment {
                model: cfg.model.name().to_string(),
                device: cfg.device.name().to_string(),
            }
        })?;
        let fleet = Fleet::new([spec]).map_err(|e| RuntimeError::Config {
            reason: format!("fleet model: {e}"),
        })?;
        let replica = &fleet.replicas[0];
        let rung_cost = |r: &crate::serve::RungModel| RungCost {
            dtype: r.dtype,
            svc_ns: r.svc_ns[0],
            energy_mj: r.energy_mj[0],
        };
        let full = rung_cost(&replica.rungs[0]);
        let standby = (replica.rungs.len() > 1)
            .then(|| rung_cost(replica.rungs.last().expect("len checked")));
        if cfg.sentry.is_some() && standby.is_none() {
            return Err(RuntimeError::config(
                "sentry mode needs a precision ladder with at least two rungs",
            ));
        }
        let shape = cfg.model.input_shape();
        let mut dims = [1u32; 4];
        for (d, s) in dims.iter_mut().zip(shape.dims()) {
            *d = *s as u32;
        }
        let elems: usize = shape.dims().iter().product();
        Ok(StageCosts {
            elems,
            dims,
            full,
            standby,
        })
    }
}

/// Removes the run directory (shared ring/ctl/trace files) on drop, so no
/// shm segment survives the run — even on panic.
struct DirGuard(PathBuf);

impl Drop for DirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Shared-file names inside a run directory.
const RING_FILES: [&str; 3] = ["ring-capture", "ring-preprocess", "ring-inference"];
const CTL_FILE: &str = "ctl";
const TRACE_FILE: &str = "trace.bin";

fn make_run_dir(cfg: &RuntimeConfig) -> Result<(PathBuf, DirGuard), RuntimeError> {
    let base = cfg.shm_dir.clone().unwrap_or_else(shm::shm_base_dir);
    let dir = base.join(format!(
        "ebrt-{}-{}-{}",
        std::process::id(),
        cfg.seed,
        RUN_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).map_err(|e| RuntimeError::Io {
        reason: format!("create {}: {e}", dir.display()),
    })?;
    let guard = DirGuard(dir.clone());
    Ok((dir, guard))
}

struct RunObjects {
    rings: [RingBuffer; 3],
    ctl: Ctl,
}

fn create_objects(
    dir: &Path,
    cfg: &RuntimeConfig,
    costs: &StageCosts,
    n_frames: usize,
) -> Result<RunObjects, RuntimeError> {
    let elems = [costs.elems, costs.elems, DETECTION_ELEMS];
    let mut rings = Vec::with_capacity(3);
    for (name, elems) in RING_FILES.iter().zip(elems) {
        let path = dir.join(name);
        let map = SharedMap::create(&path, RingBuffer::required_bytes(cfg.ring_capacity, elems))?;
        rings.push(RingBuffer::create(map, cfg.ring_capacity, elems)?);
    }
    // Latency ledger: one slot per frame id. Event region: worst case a few
    // events per frame plus restart/lost traffic bounded by the budget.
    let budget = cfg.supervise.map_or(0, |s| s.restart_budget as usize);
    let ctl = Ctl::create(
        &dir.join(CTL_FILE),
        n_frames,
        RECOVERY_LOG_CAP,
        n_frames * 6 + 64 + 4 * budget,
    )?;
    let rings: [RingBuffer; 3] = rings.try_into().expect("three rings");
    Ok(RunObjects { rings, ctl })
}

/// Capacity of the shared recovery log — comfortably above the maximum
/// 4 stages × 64-restart budget.
const RECOVERY_LOG_CAP: usize = 260;

fn attach_objects(dir: &Path, payloads_only: bool) -> Result<RunObjects, RuntimeError> {
    let _ = payloads_only;
    let mut rings = Vec::with_capacity(3);
    for name in RING_FILES {
        rings.push(RingBuffer::attach(SharedMap::open(&dir.join(name))?)?);
    }
    let ctl = Ctl::attach(&dir.join(CTL_FILE))?;
    let rings: [RingBuffer; 3] = rings.try_into().expect("three rings");
    Ok(RunObjects { rings, ctl })
}

fn assemble_report(
    mode: &'static str,
    cfg: &RuntimeConfig,
    ctl: &Ctl,
    rings: &[RingBuffer; 3],
    degraded: &[String],
) -> RuntimeReport {
    // Fold any leftover in-flight frames (a stage that died after the rest
    // of the pipeline finished, or an unsupervised fail-stop) as lost, so
    // the conservation invariant holds at assembly time.
    for s in 0..4 {
        if let Some(fid) = ctl.inflight(s) {
            ctl.add_lost(s, 1);
            ctl.push_event(ctl.clock_ns(s), fid, stage::EV_LOST_BASE + s as u32);
            ctl.set_inflight(s, 0);
        }
    }
    let (escalations, standdowns, missed) = ctl.sentry_counts();
    let (standby_frames, full_frames) = ctl.served_counts();
    let events = ctl
        .events()
        .into_iter()
        .map(|(t_ns, seq, code)| RuntimeEvent {
            t_ns,
            seq,
            kind: match code {
                stage::EV_ESCALATE => RuntimeEventKind::Escalate,
                stage::EV_STANDDOWN => RuntimeEventKind::Standdown,
                stage::EV_MISSED => RuntimeEventKind::MissedEscalation,
                stage::EV_CORRUPT_PRE => RuntimeEventKind::Corrupted {
                    stage: "preprocess",
                },
                stage::EV_CORRUPT_INF => RuntimeEventKind::Corrupted { stage: "inference" },
                stage::EV_CORRUPT_GW => RuntimeEventKind::Corrupted { stage: "gateway" },
                c if c >= stage::EV_RESTART_BASE => RuntimeEventKind::Restart {
                    stage: STAGE_NAMES[(c - stage::EV_RESTART_BASE) as usize],
                },
                c => RuntimeEventKind::Lost {
                    stage: STAGE_NAMES[(c - stage::EV_LOST_BASE) as usize],
                },
            },
        })
        .collect();
    let stages = STAGE_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| StageReport {
            stage: name,
            processed: ctl.processed(i),
            busy_s: ctl.busy_ns(i) as f64 / 1e9,
            restarts: ctl.restarts(i),
            lost: ctl.lost(i),
        })
        .collect();
    let recovery_ms = Samples::from_unsorted(
        ctl.recoveries()
            .iter()
            .map(|&(_, _, penalty_ns)| penalty_ns as f64 / 1e6)
            .collect(),
    );
    RuntimeReport {
        mode,
        policy: cfg.policy.name(),
        sentry: cfg.sentry.is_some(),
        offered: ctl.offered(),
        completed: ctl.completed(),
        dropped: rings.iter().map(|r| r.dropped()).sum(),
        corrupted: ctl.corrupted(0) + ctl.corrupted(1) + ctl.corrupted(2),
        escalations,
        standdowns,
        missed_escalations: missed,
        standby_frames,
        full_frames,
        energy_mj: ctl.energy_mj(),
        span_s: ctl.span_ns() as f64 / 1e9,
        latencies_ms: Samples::from_unsorted(ctl.ledger_latencies_ms()),
        order_violations: ctl.order_violations(),
        supervised: cfg.supervise.is_some(),
        restarts: (0..4).map(|s| ctl.restarts(s)).sum(),
        lost: (0..4).map(|s| ctl.lost(s)).sum(),
        duplicates: ctl.duplicates(),
        recovery_ms,
        degraded: degraded.to_vec(),
        stages,
        events,
        output_digest: ctl.digest(),
    }
}

/// Run the full pipeline as four threads in this process over real shared
/// rings — the loopback/replay mode. Deterministic: the report is a pure
/// function of `(cfg, trace)`.
///
/// With supervision enabled each stage runs under a restart wrapper plus a
/// heartbeat monitor; without it a stage panic or chaos kill degrades the
/// stage (stop flag raised, survivors drain) instead of aborting the run.
///
/// # Errors
///
/// [`RuntimeError`] on invalid configuration, no deployable ladder, or
/// shared memory failure.
pub fn run_replay(cfg: &RuntimeConfig, trace: &TraceFile) -> Result<RuntimeReport, RuntimeError> {
    cfg.validate()?;
    let costs = StageCosts::build(cfg)?;
    let (dir, _guard) = make_run_dir(cfg)?;
    let objs = create_objects(&dir, cfg, &costs, trace.points.len())?;
    stage::clear_local_stop();

    let (rings, ctl) = (&objs.rings, &objs.ctl);
    let mut degraded_flags = [false; 4];
    if let Some(sup) = cfg.supervise {
        let monitor_stop = AtomicBool::new(false);
        degraded_flags = std::thread::scope(|s| {
            let h_cap = s.spawn(|| {
                let _close = stage::CloseOnDrop {
                    ring: &rings[0],
                    ctl,
                };
                supervise::supervise_thread_stage(
                    &sup,
                    cfg.seed,
                    ctl,
                    0,
                    || stage::run_capture(cfg, &costs, ctl, trace, &rings[0], false),
                    || stage::run_capture_sink(ctl, trace),
                )
            });
            let h_pre = s.spawn(|| {
                let _close = stage::CloseOnDrop {
                    ring: &rings[1],
                    ctl,
                };
                supervise::supervise_thread_stage(
                    &sup,
                    cfg.seed,
                    ctl,
                    1,
                    || stage::run_preprocess(cfg, &costs, ctl, &rings[0], &rings[1], false),
                    || stage::run_consumer_sink(1, ctl, &rings[0]),
                )
            });
            let h_inf = s.spawn(|| {
                let _close = stage::CloseOnDrop {
                    ring: &rings[2],
                    ctl,
                };
                supervise::supervise_thread_stage(
                    &sup,
                    cfg.seed,
                    ctl,
                    2,
                    || stage::run_inference(cfg, &costs, ctl, &rings[1], &rings[2], false),
                    || stage::run_consumer_sink(2, ctl, &rings[1]),
                )
            });
            let h_gw = s.spawn(|| {
                supervise::supervise_thread_stage(
                    &sup,
                    cfg.seed,
                    ctl,
                    3,
                    || stage::run_gateway(cfg, ctl, &rings[2], false),
                    || stage::run_consumer_sink(3, ctl, &rings[2]),
                )
            });
            let h_mon = s.spawn(|| supervise::run_hang_monitor(ctl, &sup, &monitor_stop));
            let flags = [
                h_cap.join().unwrap_or(true),
                h_pre.join().unwrap_or(true),
                h_inf.join().unwrap_or(true),
                h_gw.join().unwrap_or(true),
            ];
            monitor_stop.store(true, Ordering::Release);
            let _ = h_mon.join();
            flags
        });
    } else {
        std::thread::scope(|s| {
            let h_cap = s.spawn(|| {
                let _close = stage::CloseOnDrop {
                    ring: &rings[0],
                    ctl,
                };
                stage::run_capture(cfg, &costs, ctl, trace, &rings[0], false)
            });
            let h_pre = s.spawn(|| {
                let _close = stage::CloseOnDrop {
                    ring: &rings[1],
                    ctl,
                };
                stage::run_preprocess(cfg, &costs, ctl, &rings[0], &rings[1], false)
            });
            let h_inf = s.spawn(|| {
                let _close = stage::CloseOnDrop {
                    ring: &rings[2],
                    ctl,
                };
                stage::run_inference(cfg, &costs, ctl, &rings[1], &rings[2], false)
            });
            let h_gw = s.spawn(|| stage::run_gateway(cfg, ctl, &rings[2], false));
            // A panicking stage raises the stop flag and closes its ring
            // via the guard; here we just classify each exit — a panic or
            // abnormal exit degrades that stage instead of aborting.
            for (i, h) in [h_cap, h_pre, h_inf, h_gw].into_iter().enumerate() {
                match h.join() {
                    Ok(StageExit::Done) | Ok(StageExit::Stopped) => {}
                    Ok(_) | Err(_) => {
                        degraded_flags[i] = true;
                        ctl.request_stop();
                    }
                }
            }
        });
    }

    let degraded: Vec<String> = STAGE_NAMES
        .iter()
        .zip(degraded_flags)
        .filter(|&(_, d)| d)
        .map(|(name, _)| name.to_string())
        .collect();
    let report = assemble_report("threads", cfg, ctl, rings, &degraded);
    for ring in rings {
        ring.map().unlink();
    }
    ctl.map().unlink();
    Ok(report)
}

/// Outcome of a multi-process run.
#[derive(Debug, Clone)]
pub struct ProcsOutcome {
    /// The gateway's report CSV (same shape as [`RuntimeReport::to_csv`]).
    pub report_csv: String,
    /// The gateway's event-log CSV.
    pub events_csv: String,
    /// Stages that exited without finishing naturally (SIGTERM/crash).
    pub degraded: Vec<String>,
}

/// Spawn each stage as its own OS process (children of `bin`, the
/// `edgebench-cli` binary) over shared ring files, supervise them, and
/// collect the gateway's report. If a middle stage dies — e.g. SIGTERM —
/// the supervisor raises the shared stop flag: upstream stages stop
/// blocking and drain out, the gateway reports the partial run, and every
/// shared file is removed.
///
/// # Errors
///
/// [`RuntimeError`] on setup failure, or [`RuntimeError::Stage`] when the
/// gateway dies before writing a report.
pub fn run_processes(
    cfg: &RuntimeConfig,
    trace: &TraceFile,
    bin: &Path,
) -> Result<ProcsOutcome, RuntimeError> {
    run_processes_with_kill(cfg, trace, bin, None)
}

/// Fault-injection hook for [`run_processes_with_kill`]: SIGTERM one stage
/// once it has processed a given number of frames.
#[derive(Debug, Clone, Copy)]
pub struct StageKill {
    /// Stage name (`capture`, `preprocess`, `inference`, `gateway`).
    pub stage: &'static str,
    /// Send the signal once the stage's processed counter reaches this.
    pub after_processed: u64,
}

/// Spawn one `runtime --stage <name>` child over the shared files in
/// `dir`; `sink` spawns the drain-and-account body used after a stage's
/// restart budget is exhausted. The gateway child additionally gets the
/// report/event output paths.
pub(crate) fn spawn_stage_child(
    bin: &Path,
    dir: &Path,
    cfg: &RuntimeConfig,
    stage: usize,
    sink: bool,
    report_path: &Path,
    events_path: &Path,
) -> Result<std::process::Child, RuntimeError> {
    let name = STAGE_NAMES[stage];
    let mut cmd = std::process::Command::new(bin);
    cmd.arg("runtime")
        .arg("--stage")
        .arg(name)
        .arg("--dir")
        .arg(dir)
        .args(child_flags(cfg));
    if sink {
        cmd.arg("--sink");
    }
    if stage == 3 {
        cmd.arg("--out")
            .arg(report_path)
            .arg("--events-out")
            .arg(events_path);
    }
    cmd.stdout(std::process::Stdio::null())
        .spawn()
        .map_err(|e| RuntimeError::Stage {
            stage: name.to_string(),
            reason: format!("spawn: {e}"),
        })
}

/// [`run_processes`] with an optional mid-run SIGTERM of one stage — the
/// graceful-degradation scenario: the victim drains out via its signal
/// handler, the supervisor detects the unfinished stage, raises the shared
/// stop flag, and the survivors drain and report the partial run.
///
/// # Errors
///
/// Same as [`run_processes`].
pub fn run_processes_with_kill(
    cfg: &RuntimeConfig,
    trace: &TraceFile,
    bin: &Path,
    kill_plan: Option<StageKill>,
) -> Result<ProcsOutcome, RuntimeError> {
    cfg.validate()?;
    let costs = StageCosts::build(cfg)?;
    let (dir, _guard) = make_run_dir(cfg)?;
    let objs = create_objects(&dir, cfg, &costs, trace.points.len())?;
    trace
        .write_to(&dir.join(TRACE_FILE))
        .map_err(|e| RuntimeError::Trace {
            reason: e.to_string(),
        })?;
    let report_path = dir.join("report.csv");
    let events_path = dir.join("events.csv");

    if let (Some(sup), None) = (cfg.supervise, kill_plan) {
        let degraded = supervise::run_supervised_processes(
            &sup,
            cfg,
            bin,
            &dir,
            &objs.ctl,
            &report_path,
            &events_path,
        )?;
        let report_csv =
            std::fs::read_to_string(&report_path).map_err(|_| RuntimeError::Stage {
                stage: "gateway".to_string(),
                reason: "no report written (gateway died before assembling it)".to_string(),
            })?;
        let events_csv = std::fs::read_to_string(&events_path).unwrap_or_default();
        return Ok(ProcsOutcome {
            report_csv,
            events_csv,
            degraded,
        });
    }

    let mut children = Vec::new();
    for i in 0..STAGE_NAMES.len() {
        let child = spawn_stage_child(bin, &dir, cfg, i, false, &report_path, &events_path)?;
        children.push((i, child, None::<std::process::ExitStatus>));
    }

    let mut degraded = Vec::new();
    let mut kill_pending = kill_plan;
    let hard_deadline = Instant::now() + Duration::from_secs(300);
    loop {
        if let Some(k) = kill_pending {
            if let Some(idx) = STAGE_NAMES.iter().position(|n| *n == k.stage) {
                if objs.ctl.processed(idx) >= k.after_processed {
                    shm::send_signal(children[idx].1.id(), shm::SIGTERM);
                    kill_pending = None;
                }
            } else {
                kill_pending = None;
            }
        }
        let mut all_done = true;
        for (i, child, status) in children.iter_mut() {
            if status.is_some() {
                continue;
            }
            match child.try_wait() {
                Ok(Some(st)) => {
                    *status = Some(st);
                    if !st.success() || !objs.ctl.done(*i) {
                        degraded.push(STAGE_NAMES[*i].to_string());
                        objs.ctl.request_stop();
                        // A stage that died abruptly (chaos kill, abort)
                        // never closed its output ring — close it here so
                        // its consumer drains out instead of waiting.
                        if *i < 3 {
                            objs.rings[*i].close();
                        }
                    }
                }
                Ok(None) => all_done = false,
                Err(_) => {
                    *status = Some(std::process::ExitStatus::default());
                }
            }
        }
        if all_done {
            break;
        }
        if Instant::now() > hard_deadline {
            objs.ctl.request_stop();
            for (_, child, status) in children.iter_mut() {
                if status.is_none() {
                    let _ = child.kill();
                    let _ = child.wait();
                }
            }
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let report_csv = std::fs::read_to_string(&report_path).map_err(|_| RuntimeError::Stage {
        stage: "gateway".to_string(),
        reason: "no report written (gateway died before assembling it)".to_string(),
    })?;
    let events_csv = std::fs::read_to_string(&events_path).unwrap_or_default();
    Ok(ProcsOutcome {
        report_csv,
        events_csv,
        degraded,
    })
}

fn child_flags(cfg: &RuntimeConfig) -> Vec<String> {
    let mut flags = vec![
        "--model".to_string(),
        cfg.model.name().to_string(),
        "--device".to_string(),
        cfg.device.name().to_string(),
        "--ring-capacity".to_string(),
        cfg.ring_capacity.to_string(),
        "--seed".to_string(),
        cfg.seed.to_string(),
        "--capture-ns".to_string(),
        cfg.capture_ns_per_elem.to_string(),
        "--preprocess-ns".to_string(),
        cfg.preprocess_ns_per_elem.to_string(),
        "--flip-rate".to_string(),
        cfg.ipc_flip_rate.to_string(),
    ];
    if cfg.policy == DropPolicy::DropOldest {
        flags.push("--drop-oldest".to_string());
    }
    if let Some(s) = &cfg.sentry {
        flags.push("--sentry".to_string());
        flags.push("--sentry-cooldown".to_string());
        flags.push(s.cooldown.to_string());
        flags.push("--sentry-recall".to_string());
        flags.push(s.standby_recall.to_string());
    }
    if cfg.exec == ExecMode::Real {
        flags.push("--exec".to_string());
        flags.push("real".to_string());
    }
    if cfg.pace {
        flags.push("--pace".to_string());
    }
    if let Some(sup) = &cfg.supervise {
        flags.push("--supervise".to_string());
        flags.push("--restart-budget".to_string());
        flags.push(sup.restart_budget.to_string());
        flags.push("--heartbeat-ms".to_string());
        flags.push(sup.heartbeat_ms.to_string());
    }
    if let Some(plan) = &cfg.chaos {
        if !plan.is_empty() {
            flags.push("--chaos".to_string());
            flags.push(plan.to_spec());
        }
    }
    flags
}

extern "C" {
    fn signal(signum: std::ffi::c_int, handler: extern "C" fn(std::ffi::c_int)) -> usize;
}

extern "C" fn on_sigterm(_sig: std::ffi::c_int) {
    stage::raise_local_stop();
}

/// Entry point for an `edgebench-cli runtime --stage <name>` child process:
/// attach the shared objects under `dir`, install a SIGTERM handler that
/// drains gracefully, and run the named stage (or, with `sink`, its
/// drain-and-account body for a budget-exhausted stage). The gateway stage
/// assembles the report and writes it (and the event log) to the given
/// paths. A chaos-killed stage exits abruptly without closing its rings so
/// the supervisor's replacement can reattach.
///
/// # Errors
///
/// [`RuntimeError`] on unknown stage name, attach failure, or a typed
/// stage failure (e.g. executor build/run rejection).
pub fn run_stage(
    name: &str,
    dir: &Path,
    cfg: &RuntimeConfig,
    sink: bool,
    out: Option<&Path>,
    events_out: Option<&Path>,
) -> Result<(), RuntimeError> {
    unsafe {
        signal(shm::SIGTERM, on_sigterm);
    }
    let costs = StageCosts::build(cfg)?;
    let objs = attach_objects(dir, false)?;
    let (rings, ctl) = (&objs.rings, &objs.ctl);
    match name {
        "capture" => {
            let trace =
                TraceFile::read_from(&dir.join(TRACE_FILE)).map_err(|e| RuntimeError::Trace {
                    reason: e.to_string(),
                })?;
            let _close = stage::CloseOnDrop {
                ring: &rings[0],
                ctl,
            };
            let exit = if sink {
                stage::run_capture_sink(ctl, &trace)
            } else {
                stage::run_capture(cfg, &costs, ctl, &trace, &rings[0], true)
            };
            supervise::finish_child(name, exit)
        }
        "preprocess" => {
            let _close = stage::CloseOnDrop {
                ring: &rings[1],
                ctl,
            };
            let exit = if sink {
                stage::run_consumer_sink(1, ctl, &rings[0])
            } else {
                stage::run_preprocess(cfg, &costs, ctl, &rings[0], &rings[1], true)
            };
            supervise::finish_child(name, exit)
        }
        "inference" => {
            let _close = stage::CloseOnDrop {
                ring: &rings[2],
                ctl,
            };
            let exit = if sink {
                stage::run_consumer_sink(2, ctl, &rings[1])
            } else {
                stage::run_inference(cfg, &costs, ctl, &rings[1], &rings[2], true)
            };
            supervise::finish_child(name, exit)
        }
        "gateway" => {
            let exit = if sink {
                stage::run_consumer_sink(3, ctl, &rings[2])
            } else {
                stage::run_gateway(cfg, ctl, &rings[2], true)
            };
            supervise::finish_child(name, exit)?;
            let report = assemble_report("procs", cfg, ctl, rings, &[]);
            if let Some(path) = out {
                std::fs::write(path, report.to_csv()).map_err(|e| RuntimeError::Io {
                    reason: format!("write {}: {e}", path.display()),
                })?;
            }
            if let Some(path) = events_out {
                std::fs::write(path, report.event_log().to_csv()).map_err(|e| {
                    RuntimeError::Io {
                        reason: format!("write {}: {e}", path.display()),
                    }
                })?;
            }
            Ok(())
        }
        other => Err(RuntimeError::Stage {
            stage: other.to_string(),
            reason: "unknown stage (expected capture|preprocess|inference|gateway)".to_string(),
        }),
    }
}
