//! Zero-copy SPSC ring buffer over a shared memory mapping.
//!
//! Layout (all offsets 8-aligned, little-endian host):
//!
//! ```text
//! +--------------------------------------------------------------+
//! | header (64 B)                                                |
//! |   magic u32 | version u32 | capacity u32 | slot_size u32     |
//! |   payload_elems u32 | pad u32                                |
//! |   head  AtomicU64   (next seq the producer will write)       |
//! |   tail  AtomicU64   (next seq the consumer will read)        |
//! |   dropped AtomicU64 (frames evicted by drop-oldest)          |
//! |   closed AtomicU32 | data_futex AtomicU32 | space_futex u32  |
//! +--------------------------------------------------------------+
//! | stamps: [AtomicU64; capacity]   virtual free-times per slot  |
//! +--------------------------------------------------------------+
//! | slots:  [Slot; capacity]        each slot_size bytes         |
//! |   commit AtomicU64 (0 = empty, seq+1 = committed)            |
//! |   seq u64 | t_arrival_ns u64 | t_stage_ns u64                |
//! |   dims [u32;4] | dtype u32 | flags u32 | payload_len u32|pad |
//! |   checksum u64 | frame_id u64 | payload [f32; payload_elems] |
//! +--------------------------------------------------------------+
//! ```
//!
//! Frames travel as raw header fields plus an `f32` payload — nothing is
//! serialized. Torn reads are possible only when drop-oldest eviction
//! overruns a slot mid-copy; the consumer detects that with a seqlock-style
//! re-check of the per-slot commit stamp and retries, so a torn frame is
//! never surfaced. The `stamps` array carries the *virtual* time at which the
//! consumer freed each slot, which is what lets a blocked producer account
//! for backpressure deterministically in replay mode (see the module docs in
//! [`crate::runtime`]).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use super::shm::{futex_wait, futex_wake, SharedMap};
use super::RuntimeError;

const MAGIC: u32 = 0x4542_5247; // "EBRG"
const VERSION: u32 = 2;
const HEADER_BYTES: usize = 64;
const SLOT_HEADER_BYTES: usize = 80;

/// Bounded wait slice for futex parks; a lost wakeup costs at most this much.
pub const RETRY_SLICE: Duration = Duration::from_millis(10);

/// Frame flag: ground-truth "object present" bit from the trace.
pub const FLAG_HIT: u32 = 1;
/// Frame flag: the sentry escalated this frame to the full model.
pub const FLAG_ESCALATED: u32 = 2;
/// Frame flag: frame was served by the standby rung only.
pub const FLAG_STANDBY: u32 = 4;

/// Backpressure policy when a ring is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropPolicy {
    /// Producer parks (bounded-retry) until the consumer frees a slot.
    Block,
    /// Producer evicts the oldest undelivered frame and keeps going.
    DropOldest,
}

impl DropPolicy {
    /// Stable flag-facing name.
    pub fn name(self) -> &'static str {
        match self {
            DropPolicy::Block => "block",
            DropPolicy::DropOldest => "drop-oldest",
        }
    }
}

/// Fixed-layout frame header written alongside the payload.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrameMeta {
    /// Stable frame identity: the trace point index, assigned once by
    /// capture and carried unchanged through every stage. Unlike the ring
    /// `seq` (which compacts when frames are lost to a crashed stage), the
    /// frame id survives restarts — it is what the gateway ledger and the
    /// chaos schedule key on.
    pub frame_id: u64,
    /// Virtual arrival time of the frame at the capture stage (ns).
    pub t_arrival_ns: u64,
    /// Virtual time the producing stage finished with the frame (ns).
    pub t_stage_ns: u64,
    /// Tensor dims (NCHW, zero-padded).
    pub dims: [u32; 4],
    /// Element dtype tag (0 = f32).
    pub dtype: u32,
    /// Flag bits (`FLAG_*`).
    pub flags: u32,
    /// Number of valid payload elements.
    pub payload_len: u32,
    /// `tensor::integrity` checksum over the valid payload.
    pub checksum: u64,
}

/// Consumer-side frame copy; reused across pops to avoid reallocation.
#[derive(Debug, Clone)]
pub struct FrameBuf {
    /// Sequence number assigned by the producer.
    pub seq: u64,
    /// Frame header fields (see [`FrameMeta`]).
    pub meta: FrameMeta,
    payload: Vec<f32>,
}

impl FrameBuf {
    /// A buffer sized for `ring`'s payload.
    pub fn for_ring(ring: &RingBuffer) -> FrameBuf {
        FrameBuf {
            seq: 0,
            meta: FrameMeta::default(),
            payload: vec![0.0; ring.payload_elems],
        }
    }

    /// The valid payload slice.
    pub fn payload(&self) -> &[f32] {
        &self.payload[..self.meta.payload_len as usize]
    }

    /// Mutable view of the valid payload (chaos corruption injection).
    pub(crate) fn payload_mut(&mut self) -> &mut [f32] {
        &mut self.payload[..self.meta.payload_len as usize]
    }

    /// Recompute the integrity checksum and compare against the header.
    pub fn checksum_ok(&self) -> bool {
        edgebench_tensor::integrity::checksum_f32(self.payload()) == self.meta.checksum
    }
}

/// Outcome of a producer reserve attempt.
#[derive(Debug)]
pub enum Reserve<'a> {
    /// A slot was claimed; commit it to publish the frame.
    Slot(SlotGuard<'a>),
    /// The deadline elapsed with the ring still full (Block policy only).
    TimedOut,
}

/// Outcome of a consumer pop attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Pop {
    /// A frame was copied into the caller's buffer.
    Popped,
    /// The deadline elapsed with no frame available.
    TimedOut,
    /// The ring is closed and fully drained.
    Drained,
}

/// Single-producer / single-consumer ring over a [`SharedMap`].
pub struct RingBuffer {
    map: SharedMap,
    capacity: u64,
    slot_size: usize,
    payload_elems: usize,
}

impl std::fmt::Debug for RingBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingBuffer")
            .field("path", &self.map.path())
            .field("capacity", &self.capacity)
            .field("payload_elems", &self.payload_elems)
            .finish()
    }
}

fn align8(n: usize) -> usize {
    (n + 7) & !7
}

impl RingBuffer {
    /// Bytes of shared memory needed for a ring of `capacity` slots carrying
    /// `payload_elems` f32 elements each.
    pub fn required_bytes(capacity: usize, payload_elems: usize) -> usize {
        HEADER_BYTES + capacity * 8 + capacity * Self::slot_bytes(payload_elems)
    }

    fn slot_bytes(payload_elems: usize) -> usize {
        align8(SLOT_HEADER_BYTES + payload_elems * 4)
    }

    /// Initialise a fresh ring inside `map` (which must be at least
    /// [`RingBuffer::required_bytes`] long and zero-filled).
    pub fn create(
        map: SharedMap,
        capacity: usize,
        payload_elems: usize,
    ) -> Result<RingBuffer, RuntimeError> {
        if capacity == 0 || !capacity.is_power_of_two() {
            return Err(RuntimeError::config(
                "ring capacity must be a non-zero power of two",
            ));
        }
        let need = Self::required_bytes(capacity, payload_elems);
        if map.len() < need {
            return Err(RuntimeError::shm(
                map.path(),
                &format!("map too small: {} < {need}", map.len()),
            ));
        }
        let ring = RingBuffer {
            map,
            capacity: capacity as u64,
            slot_size: Self::slot_bytes(payload_elems),
            payload_elems,
        };
        // Zero the control words explicitly (the file was truncated to zero,
        // but be defensive about reuse) and publish the header last.
        ring.head().store(0, Ordering::Relaxed);
        ring.tail().store(0, Ordering::Relaxed);
        ring.dropped_word().store(0, Ordering::Relaxed);
        ring.closed_word().store(0, Ordering::Relaxed);
        for i in 0..capacity {
            ring.stamp_word(i as u64).store(0, Ordering::Relaxed);
            ring.slot_commit(i as u64).store(0, Ordering::Relaxed);
        }
        unsafe {
            let base = ring.map.base().cast::<u32>();
            base.add(2).write(capacity as u32);
            base.add(3).write(ring.slot_size as u32);
            base.add(4).write(payload_elems as u32);
            base.add(1).write(VERSION);
            std::sync::atomic::fence(Ordering::Release);
            base.write(MAGIC);
        }
        Ok(ring)
    }

    /// Attach to a ring previously initialised by [`RingBuffer::create`] in
    /// another process, validating magic, version, and geometry.
    pub fn attach(map: SharedMap) -> Result<RingBuffer, RuntimeError> {
        if map.len() < HEADER_BYTES {
            return Err(RuntimeError::shm(map.path(), "map shorter than header"));
        }
        let (magic, version, capacity, slot_size, payload_elems) = unsafe {
            let base = map.base().cast::<u32>();
            std::sync::atomic::fence(Ordering::Acquire);
            (
                base.read(),
                base.add(1).read(),
                base.add(2).read() as usize,
                base.add(3).read() as usize,
                base.add(4).read() as usize,
            )
        };
        if magic != MAGIC {
            return Err(RuntimeError::shm(map.path(), "bad ring magic"));
        }
        if version != VERSION {
            return Err(RuntimeError::shm(map.path(), "ring version mismatch"));
        }
        if capacity == 0
            || !capacity.is_power_of_two()
            || slot_size != Self::slot_bytes(payload_elems)
            || map.len() < Self::required_bytes(capacity, payload_elems)
        {
            return Err(RuntimeError::shm(map.path(), "inconsistent ring geometry"));
        }
        Ok(RingBuffer {
            map,
            capacity: capacity as u64,
            slot_size,
            payload_elems,
        })
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Payload elements per slot.
    pub fn payload_elems(&self) -> usize {
        self.payload_elems
    }

    /// Frames evicted by drop-oldest so far.
    pub fn dropped(&self) -> u64 {
        self.dropped_word().load(Ordering::Acquire)
    }

    /// The underlying mapping (for path/unlink access).
    pub fn map(&self) -> &SharedMap {
        &self.map
    }

    // ---- raw field access -------------------------------------------------

    fn atomic_u64(&self, byte_off: usize) -> &AtomicU64 {
        debug_assert!(byte_off.is_multiple_of(8) && byte_off + 8 <= self.map.len());
        unsafe { &*self.map.base().add(byte_off).cast::<AtomicU64>() }
    }

    fn atomic_u32(&self, byte_off: usize) -> &AtomicU32 {
        debug_assert!(byte_off.is_multiple_of(4) && byte_off + 4 <= self.map.len());
        unsafe { &*self.map.base().add(byte_off).cast::<AtomicU32>() }
    }

    fn head(&self) -> &AtomicU64 {
        self.atomic_u64(24)
    }
    fn tail(&self) -> &AtomicU64 {
        self.atomic_u64(32)
    }
    fn dropped_word(&self) -> &AtomicU64 {
        self.atomic_u64(40)
    }
    fn closed_word(&self) -> &AtomicU32 {
        self.atomic_u32(48)
    }
    fn data_futex(&self) -> &AtomicU32 {
        self.atomic_u32(52)
    }
    fn space_futex(&self) -> &AtomicU32 {
        self.atomic_u32(56)
    }

    fn stamp_word(&self, seq: u64) -> &AtomicU64 {
        let idx = (seq % self.capacity) as usize;
        self.atomic_u64(HEADER_BYTES + idx * 8)
    }

    fn slot_off(&self, seq: u64) -> usize {
        let idx = (seq % self.capacity) as usize;
        HEADER_BYTES + self.capacity as usize * 8 + idx * self.slot_size
    }

    fn slot_commit(&self, seq: u64) -> &AtomicU64 {
        self.atomic_u64(self.slot_off(seq))
    }

    /// Raw pointer to a slot's header area past the commit word.
    fn slot_ptr(&self, seq: u64) -> *mut u8 {
        unsafe { self.map.base().add(self.slot_off(seq)) }
    }

    // ---- lifecycle --------------------------------------------------------

    /// Mark the ring closed: the consumer drains what is left, then sees
    /// [`Pop::Drained`]. Counters written by the producer before `close`
    /// are visible to a consumer that observed the closed flag.
    pub fn close(&self) {
        self.closed_word().store(1, Ordering::Release);
        self.data_futex().fetch_add(1, Ordering::Release);
        futex_wake(self.data_futex());
    }

    /// Whether the producer has closed the ring.
    pub fn is_closed(&self) -> bool {
        self.closed_word().load(Ordering::Acquire) == 1
    }

    // ---- producer ---------------------------------------------------------

    /// Claim the next slot for writing. With [`DropPolicy::Block`] this parks
    /// (bounded-retry) until space frees or `deadline` passes; with
    /// [`DropPolicy::DropOldest`] it evicts the oldest frame instead and
    /// never times out.
    pub fn reserve(&self, policy: DropPolicy, deadline: Instant) -> Reserve<'_> {
        loop {
            let head = self.head().load(Ordering::Relaxed);
            let tail = self.tail().load(Ordering::Acquire);
            if head.wrapping_sub(tail) < self.capacity {
                return Reserve::Slot(SlotGuard {
                    ring: self,
                    seq: head,
                });
            }
            match policy {
                DropPolicy::DropOldest => {
                    // Race the consumer for the oldest slot; whoever wins the
                    // CAS owns it. Losing just means space appeared.
                    if self
                        .tail()
                        .compare_exchange(tail, tail + 1, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                    {
                        self.dropped_word().fetch_add(1, Ordering::AcqRel);
                    }
                }
                DropPolicy::Block => {
                    let seen = self.space_futex().load(Ordering::Acquire);
                    if self.tail().load(Ordering::Acquire) != tail {
                        continue; // space freed between loads
                    }
                    if Instant::now() >= deadline {
                        return Reserve::TimedOut;
                    }
                    futex_wait(self.space_futex(), seen, RETRY_SLICE);
                }
            }
        }
    }

    // ---- consumer ---------------------------------------------------------

    /// Copy the next frame into `buf`. `stamp_fn` runs after a consistent
    /// copy but *before* the slot is released; the value it returns is stored
    /// as the slot's virtual free-time stamp, which a blocked producer reads
    /// to account for backpressure in virtual time. Return 0 when replay
    /// stamping is not needed.
    pub fn pop_into(
        &self,
        buf: &mut FrameBuf,
        deadline: Instant,
        mut stamp_fn: impl FnMut(&FrameBuf) -> u64,
    ) -> Pop {
        loop {
            let tail = self.tail().load(Ordering::Acquire);
            let head = self.head().load(Ordering::Acquire);
            if tail == head {
                if self.is_closed() && self.head().load(Ordering::Acquire) == tail {
                    return Pop::Drained;
                }
                let seen = self.data_futex().load(Ordering::Acquire);
                if self.head().load(Ordering::Acquire) != tail || self.is_closed() {
                    continue;
                }
                if Instant::now() >= deadline {
                    return Pop::TimedOut;
                }
                futex_wait(self.data_futex(), seen, RETRY_SLICE);
                continue;
            }

            let commit = self.slot_commit(tail).load(Ordering::Acquire);
            if commit != tail + 1 {
                // Either the producer has not finished this slot yet (head
                // advanced but commit pending is impossible — head is stored
                // after commit) or drop-oldest already moved tail past us.
                if Instant::now() >= deadline {
                    return Pop::TimedOut;
                }
                std::hint::spin_loop();
                continue;
            }

            self.read_slot(tail, buf);

            // Seqlock re-check: if drop-oldest lapped the ring and the
            // producer rewrote this slot mid-copy, the commit word changed.
            if self.slot_commit(tail).load(Ordering::Acquire) != tail + 1 {
                continue;
            }

            let stamp = stamp_fn(buf);
            self.stamp_word(tail).store(stamp, Ordering::Release);

            if self
                .tail()
                .compare_exchange(tail, tail + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.space_futex().fetch_add(1, Ordering::Release);
                futex_wake(self.space_futex());
                return Pop::Popped;
            }
            // Lost the slot to a drop-oldest eviction; try the next one.
        }
    }

    fn read_slot(&self, seq: u64, buf: &mut FrameBuf) {
        let p = self.slot_ptr(seq);
        unsafe {
            buf.seq = p.add(8).cast::<u64>().read_volatile();
            buf.meta.t_arrival_ns = p.add(16).cast::<u64>().read_volatile();
            buf.meta.t_stage_ns = p.add(24).cast::<u64>().read_volatile();
            let dims = p.add(32).cast::<u32>();
            for (i, d) in buf.meta.dims.iter_mut().enumerate() {
                *d = dims.add(i).read_volatile();
            }
            buf.meta.dtype = p.add(48).cast::<u32>().read_volatile();
            buf.meta.flags = p.add(52).cast::<u32>().read_volatile();
            buf.meta.payload_len = p.add(56).cast::<u32>().read_volatile();
            buf.meta.checksum = p.add(64).cast::<u64>().read_volatile();
            buf.meta.frame_id = p.add(72).cast::<u64>().read_volatile();
            let len = (buf.meta.payload_len as usize).min(self.payload_elems);
            buf.meta.payload_len = len as u32;
            std::ptr::copy_nonoverlapping(
                p.add(SLOT_HEADER_BYTES).cast::<f32>(),
                buf.payload.as_mut_ptr(),
                len,
            );
        }
    }
}

/// A reserved, not-yet-published slot. Write the payload via
/// [`SlotGuard::payload_mut`], then publish with [`SlotGuard::commit`].
/// Dropping without committing simply leaves the slot unclaimed (the next
/// reserve returns the same sequence number).
pub struct SlotGuard<'a> {
    ring: &'a RingBuffer,
    seq: u64,
}

impl std::fmt::Debug for SlotGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotGuard").field("seq", &self.seq).finish()
    }
}

impl SlotGuard<'_> {
    /// Sequence number this slot will publish as.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Virtual time at which this slot was freed by the consumer, if it has
    /// been through a full lap already. A blocking producer folds this into
    /// its virtual clock: the frame cannot have been written before the slot
    /// it reuses was vacated.
    pub fn freed_stamp_ns(&self) -> Option<u64> {
        if self.seq >= self.ring.capacity {
            Some(self.ring.stamp_word(self.seq).load(Ordering::Acquire))
        } else {
            None
        }
    }

    /// Mutable view of the slot payload for zero-copy filling.
    ///
    /// Single-producer exclusivity makes this the only writer; a consumer
    /// racing a drop-oldest eviction may observe a torn payload, which the
    /// seqlock commit re-check discards.
    pub fn payload_mut(&mut self) -> &mut [f32] {
        unsafe {
            // Invalidate the slot before mutation so the consumer skips it.
            self.ring.slot_commit(self.seq).store(0, Ordering::Release);
            std::slice::from_raw_parts_mut(
                self.ring
                    .slot_ptr(self.seq)
                    .add(SLOT_HEADER_BYTES)
                    .cast::<f32>(),
                self.ring.payload_elems,
            )
        }
    }

    /// Publish the frame: write the header, stamp the commit word, advance
    /// head, and wake the consumer.
    pub fn commit(self, meta: &FrameMeta) {
        let p = self.ring.slot_ptr(self.seq);
        unsafe {
            p.add(8).cast::<u64>().write_volatile(self.seq);
            p.add(16).cast::<u64>().write_volatile(meta.t_arrival_ns);
            p.add(24).cast::<u64>().write_volatile(meta.t_stage_ns);
            let dims = p.add(32).cast::<u32>();
            for (i, d) in meta.dims.iter().enumerate() {
                dims.add(i).write_volatile(*d);
            }
            p.add(48).cast::<u32>().write_volatile(meta.dtype);
            p.add(52).cast::<u32>().write_volatile(meta.flags);
            p.add(56).cast::<u32>().write_volatile(meta.payload_len);
            p.add(64).cast::<u64>().write_volatile(meta.checksum);
            p.add(72).cast::<u64>().write_volatile(meta.frame_id);
        }
        self.ring
            .slot_commit(self.seq)
            .store(self.seq + 1, Ordering::Release);
        self.ring.head().store(self.seq + 1, Ordering::Release);
        self.ring.data_futex().fetch_add(1, Ordering::Release);
        futex_wake(self.ring.data_futex());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn temp_ring(capacity: usize, elems: usize, tag: &str) -> RingBuffer {
        let path = std::env::temp_dir().join(format!(
            "ebring-test-{}-{}-{tag}",
            std::process::id(),
            capacity
        ));
        let map = SharedMap::create(&path, RingBuffer::required_bytes(capacity, elems)).unwrap();
        RingBuffer::create(map, capacity, elems).unwrap()
    }

    fn push(ring: &RingBuffer, value: f32, policy: DropPolicy) -> bool {
        match ring.reserve(policy, Instant::now() + Duration::from_secs(1)) {
            Reserve::Slot(mut slot) => {
                let seq = slot.seq();
                let payload = slot.payload_mut();
                payload[0] = value;
                let sum = edgebench_tensor::integrity::checksum_f32(&payload[..1]);
                slot.commit(&FrameMeta {
                    frame_id: seq + 100,
                    t_arrival_ns: seq * 10,
                    t_stage_ns: seq * 10 + 1,
                    dims: [1, 1, 1, 1],
                    dtype: 0,
                    flags: 0,
                    payload_len: 1,
                    checksum: sum,
                });
                true
            }
            Reserve::TimedOut => false,
        }
    }

    #[test]
    fn push_pop_roundtrip_preserves_frames() {
        let ring = temp_ring(8, 4, "roundtrip");
        ring.map().unlink();
        for i in 0..5 {
            assert!(push(&ring, i as f32, DropPolicy::Block));
        }
        let mut buf = FrameBuf::for_ring(&ring);
        for i in 0..5u64 {
            let got = ring.pop_into(&mut buf, Instant::now() + Duration::from_secs(1), |_| 0);
            assert_eq!(got, Pop::Popped);
            assert_eq!(buf.seq, i);
            assert_eq!(buf.meta.frame_id, i + 100);
            assert_eq!(buf.payload(), &[i as f32]);
            assert!(buf.checksum_ok());
            assert_eq!(buf.meta.t_arrival_ns, i * 10);
        }
    }

    #[test]
    fn block_policy_times_out_when_full() {
        let ring = temp_ring(2, 4, "block");
        ring.map().unlink();
        assert!(push(&ring, 0.0, DropPolicy::Block));
        assert!(push(&ring, 1.0, DropPolicy::Block));
        let t0 = Instant::now();
        match ring.reserve(DropPolicy::Block, t0 + Duration::from_millis(30)) {
            Reserve::TimedOut => {}
            Reserve::Slot(_) => panic!("expected timeout on full ring"),
        }
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn drop_oldest_conserves_frames() {
        let ring = temp_ring(4, 4, "dropold");
        ring.map().unlink();
        let offered = 11u64;
        for i in 0..offered {
            assert!(push(&ring, i as f32, DropPolicy::DropOldest));
        }
        ring.close();
        let mut buf = FrameBuf::for_ring(&ring);
        let mut delivered = 0u64;
        let mut last_seq = None;
        loop {
            match ring.pop_into(&mut buf, Instant::now() + Duration::from_secs(1), |_| 0) {
                Pop::Popped => {
                    if let Some(prev) = last_seq {
                        assert!(buf.seq > prev, "seq order violated: {prev} -> {}", buf.seq);
                    }
                    last_seq = Some(buf.seq);
                    assert!(buf.checksum_ok());
                    delivered += 1;
                }
                Pop::Drained => break,
                Pop::TimedOut => panic!("unexpected timeout"),
            }
        }
        assert_eq!(delivered + ring.dropped(), offered);
        assert_eq!(delivered, 4); // capacity survivors
    }

    #[test]
    fn close_then_drain_reports_drained() {
        let ring = temp_ring(4, 4, "drain");
        ring.map().unlink();
        push(&ring, 7.0, DropPolicy::Block);
        ring.close();
        let mut buf = FrameBuf::for_ring(&ring);
        assert_eq!(
            ring.pop_into(&mut buf, Instant::now() + Duration::from_secs(1), |_| 0),
            Pop::Popped
        );
        assert_eq!(
            ring.pop_into(&mut buf, Instant::now() + Duration::from_secs(1), |_| 0),
            Pop::Drained
        );
    }

    #[test]
    fn attach_sees_producer_frames() {
        let path = std::env::temp_dir().join(format!("ebring-attach-{}", std::process::id()));
        let map = SharedMap::create(&path, RingBuffer::required_bytes(4, 4)).unwrap();
        let ring = RingBuffer::create(map, 4, 4).unwrap();
        push(&ring, 42.0, DropPolicy::Block);

        let ring2 = RingBuffer::attach(SharedMap::open(&path).unwrap()).unwrap();
        assert_eq!(ring2.capacity(), 4);
        let mut buf = FrameBuf::for_ring(&ring2);
        assert_eq!(
            ring2.pop_into(&mut buf, Instant::now() + Duration::from_secs(1), |_| 0),
            Pop::Popped
        );
        assert_eq!(buf.payload(), &[42.0]);
        ring.map().unlink();
        assert!(!path.exists());
    }

    #[test]
    fn attach_rejects_garbage() {
        let path = std::env::temp_dir().join(format!("ebring-garbage-{}", std::process::id()));
        let map = SharedMap::create(&path, 4096).unwrap();
        map.unlink();
        assert!(RingBuffer::attach(map).is_err());
    }

    #[test]
    fn freed_stamp_surfaces_consumer_virtual_time() {
        let ring = temp_ring(2, 4, "stamp");
        ring.map().unlink();
        push(&ring, 0.0, DropPolicy::Block);
        push(&ring, 1.0, DropPolicy::Block);
        let mut buf = FrameBuf::for_ring(&ring);
        ring.pop_into(&mut buf, Instant::now() + Duration::from_secs(1), |_| 777);
        match ring.reserve(DropPolicy::Block, Instant::now() + Duration::from_secs(1)) {
            Reserve::Slot(slot) => {
                assert_eq!(slot.seq(), 2);
                assert_eq!(slot.freed_stamp_ns(), Some(777));
            }
            Reserve::TimedOut => panic!("space should be available"),
        }
    }

    #[test]
    fn threaded_spsc_delivers_in_order() {
        let ring = std::sync::Arc::new(temp_ring(8, 16, "spsc"));
        ring.map().unlink();
        let n = 2000u64;
        let producer = {
            let ring = std::sync::Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..n {
                    assert!(push(&ring, i as f32, DropPolicy::Block));
                }
                ring.close();
            })
        };
        let mut buf = FrameBuf::for_ring(&ring);
        let mut next = 0u64;
        loop {
            match ring.pop_into(&mut buf, Instant::now() + Duration::from_secs(10), |_| 0) {
                Pop::Popped => {
                    assert_eq!(buf.seq, next);
                    assert!(buf.checksum_ok());
                    next += 1;
                }
                Pop::Drained => break,
                Pop::TimedOut => panic!("stalled"),
            }
        }
        assert_eq!(next, n);
        producer.join().unwrap();
    }
}
