//! Sentry-mode controller for the inference stage.
//!
//! Modeled on the detr-mmap deployment pattern the paper's successor work
//! uses in the field: when nothing has been detected for a while, run only a
//! cheap standby model (the bottom rung of the precision ladder — int8 /
//! lowest fidelity) and escalate to the full model the moment the standby
//! net sees something. After `cooldown` consecutive quiet frames the
//! controller stands back down.
//!
//! ```text
//!            hit detected by standby rung
//!   Standby ────────────────────────────────▶ Alarmed
//!      ▲                                        │
//!      └────────────────────────────────────────┘
//!            cooldown consecutive no-hit frames
//! ```
//!
//! Detection is abstracted by the trace's ground-truth hit bit filtered
//! through `standby_recall`: the standby rung notices a true hit with
//! probability `recall` (drawn per-frame from a seeded stream, so replay is
//! deterministic). At the default `recall = 1.0` no escalation is ever
//! missed; lower recall quantifies the accuracy/energy trade-off of leaning
//! on the cheap rung.

use edgebench_devices::faults::rng::FaultRng;

/// Stream tag for standby-recall draws.
const TAG_SENTRY: u64 = 0x7374_6279; // "stby"

/// Sentry-mode tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SentryConfig {
    /// Consecutive quiet (no-hit) frames in Alarmed before standing down.
    pub cooldown: u32,
    /// Probability the standby rung notices a true hit (1.0 = perfect).
    pub standby_recall: f64,
}

impl Default for SentryConfig {
    fn default() -> SentryConfig {
        SentryConfig {
            cooldown: 8,
            standby_recall: 1.0,
        }
    }
}

/// Controller state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SentryMode {
    /// Running the standby rung only.
    Standby,
    /// Running the full model; counts quiet frames toward stand-down.
    Alarmed,
}

/// What the inference stage should do with one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FramePlan {
    /// Run the standby (bottom) rung on this frame.
    pub run_standby: bool,
    /// Run the full (top) rung on this frame.
    pub run_full: bool,
    /// This frame triggered a Standby → Alarmed escalation.
    pub escalated: bool,
    /// This frame completed an Alarmed → Standby stand-down.
    pub stood_down: bool,
    /// Ground-truth hit served by the standby rung only (recall miss).
    pub missed: bool,
}

/// The sentry state machine. Deterministic: every decision is a pure
/// function of `(seed, frame seq, ground-truth hit, prior state)`.
#[derive(Debug, Clone)]
pub struct Sentry {
    cfg: SentryConfig,
    seed: u64,
    mode: SentryMode,
    quiet: u32,
}

impl Sentry {
    /// A controller starting in Standby.
    pub fn new(cfg: SentryConfig, seed: u64) -> Sentry {
        Sentry {
            cfg,
            seed,
            mode: SentryMode::Standby,
            quiet: 0,
        }
    }

    /// Rebuild a controller from persisted `(mode, quiet)` state — used by
    /// a restarted inference stage to resume the state machine exactly
    /// where the crashed instance left it. `(0, 0)` (a fresh control
    /// block) is identical to [`Sentry::new`].
    pub fn resume(cfg: SentryConfig, seed: u64, state: (u32, u32)) -> Sentry {
        Sentry {
            cfg,
            seed,
            mode: if state.0 == 0 {
                SentryMode::Standby
            } else {
                SentryMode::Alarmed
            },
            quiet: state.1,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> SentryMode {
        self.mode
    }

    /// Persistable `(mode, quiet)` state; inverse of [`Sentry::resume`].
    pub fn state(&self) -> (u32, u32) {
        (u32::from(self.mode == SentryMode::Alarmed), self.quiet)
    }

    /// Decide how to serve frame `seq` given its ground-truth hit bit, and
    /// advance the state machine.
    pub fn plan(&mut self, seq: u64, hit: bool) -> FramePlan {
        match self.mode {
            SentryMode::Standby => {
                let detected = hit
                    && FaultRng::for_stream(self.seed, &[TAG_SENTRY, seq])
                        .chance(self.cfg.standby_recall);
                if detected {
                    self.mode = SentryMode::Alarmed;
                    self.quiet = 0;
                    FramePlan {
                        run_standby: true,
                        run_full: true,
                        escalated: true,
                        stood_down: false,
                        missed: false,
                    }
                } else {
                    FramePlan {
                        run_standby: true,
                        run_full: false,
                        escalated: false,
                        stood_down: false,
                        missed: hit,
                    }
                }
            }
            SentryMode::Alarmed => {
                if hit {
                    self.quiet = 0;
                } else {
                    self.quiet += 1;
                }
                let stood_down = self.quiet >= self.cfg.cooldown;
                if stood_down {
                    self.mode = SentryMode::Standby;
                    self.quiet = 0;
                }
                FramePlan {
                    run_standby: false,
                    run_full: true,
                    escalated: false,
                    stood_down,
                    missed: false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(hits: &[bool], cfg: SentryConfig) -> (Vec<FramePlan>, Sentry) {
        let mut sentry = Sentry::new(cfg, 42);
        let plans = hits
            .iter()
            .enumerate()
            .map(|(i, &h)| sentry.plan(i as u64, h))
            .collect();
        (plans, sentry)
    }

    #[test]
    fn perfect_recall_never_misses_an_escalation() {
        let hits = [false, false, true, true, false, false, false, true];
        let cfg = SentryConfig {
            cooldown: 2,
            standby_recall: 1.0,
        };
        let (plans, _) = run(&hits, cfg);
        // Frame 2: first hit escalates (standby + full both run).
        assert!(plans[2].escalated && plans[2].run_full && plans[2].run_standby);
        // Frame 3: already alarmed, full only.
        assert!(plans[3].run_full && !plans[3].run_standby);
        // Frames 4-5 quiet: stand-down completes on frame 5.
        assert!(plans[5].stood_down);
        // Frame 6: back in standby, cheap rung only.
        assert!(plans[6].run_standby && !plans[6].run_full);
        // Frame 7: hit from standby escalates again; nothing was missed.
        assert!(plans[7].escalated);
        assert!(plans.iter().all(|p| !p.missed));
    }

    #[test]
    fn zero_recall_misses_every_hit_and_stays_standby() {
        let hits = [true, true, true];
        let cfg = SentryConfig {
            cooldown: 4,
            standby_recall: 0.0,
        };
        let (plans, sentry) = run(&hits, cfg);
        assert!(plans.iter().all(|p| p.missed && !p.run_full));
        assert_eq!(sentry.mode(), SentryMode::Standby);
    }

    #[test]
    fn hit_during_alarm_resets_the_cooldown() {
        let hits = [true, false, false, true, false, false, false];
        let cfg = SentryConfig {
            cooldown: 3,
            standby_recall: 1.0,
        };
        let (plans, _) = run(&hits, cfg);
        // Quiet counter resets at frame 3; stand-down lands on frame 6.
        assert!(!plans[4].stood_down && !plans[5].stood_down);
        assert!(plans[6].stood_down);
    }

    #[test]
    fn resume_round_trips_state_mid_run() {
        let hits: Vec<bool> = (0..64).map(|i| i % 5 == 0).collect();
        let cfg = SentryConfig {
            cooldown: 3,
            standby_recall: 0.7,
        };
        let mut whole = Sentry::new(cfg, 7);
        let mut first = Sentry::new(cfg, 7);
        let full: Vec<FramePlan> = hits
            .iter()
            .enumerate()
            .map(|(i, &h)| whole.plan(i as u64, h))
            .collect();
        for (i, &h) in hits[..20].iter().enumerate() {
            first.plan(i as u64, h);
        }
        // Simulate a crash/restart at frame 20: persist and resume.
        let mut resumed = Sentry::resume(cfg, 7, first.state());
        let tail: Vec<FramePlan> = hits[20..]
            .iter()
            .enumerate()
            .map(|(i, &h)| resumed.plan((20 + i) as u64, h))
            .collect();
        assert_eq!(tail, full[20..]);
        assert_eq!(
            Sentry::resume(cfg, 7, (0, 0)).state(),
            Sentry::new(cfg, 7).state()
        );
    }

    #[test]
    fn decisions_replay_identically() {
        let hits: Vec<bool> = (0..200).map(|i| i % 7 == 0).collect();
        let cfg = SentryConfig {
            cooldown: 3,
            standby_recall: 0.6,
        };
        let (a, _) = run(&hits, cfg);
        let (b, _) = run(&hits, cfg);
        assert_eq!(a, b);
    }
}
