//! The runtime pipeline report: ServeReport-compatible metric names plus
//! runtime-specific counters (drops, corrupted frames, sentry activity),
//! rendered as byte-stable CSV.

use edgebench_measure::stats::Samples;
use edgebench_measure::trace::{EventEntry, EventLog};

/// A sentry / integrity event on the runtime timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeEvent {
    /// Virtual pipeline time, nanoseconds.
    pub t_ns: u64,
    /// Frame sequence number the event belongs to.
    pub seq: u64,
    /// What happened.
    pub kind: RuntimeEventKind,
}

/// Kinds of [`RuntimeEvent`]. `Display` strings are stable — they are part
/// of the byte-identical event-log contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeEventKind {
    /// Sentry escalated Standby → Alarmed on this frame.
    Escalate,
    /// Sentry stood down Alarmed → Standby after the cooldown.
    Standdown,
    /// A ground-truth hit was served by the standby rung only.
    MissedEscalation,
    /// A frame failed checksum verification at the named stage.
    Corrupted {
        /// Stage that detected the corruption.
        stage: &'static str,
    },
    /// An in-flight frame was lost when the named stage failed — the
    /// explicit at-most-once accounting of a crash/hang.
    Lost {
        /// Stage holding the frame when it failed.
        stage: &'static str,
    },
    /// The supervisor restarted the named stage (`seq` holds the attempt
    /// number, the timestamp the post-penalty resume instant).
    Restart {
        /// Stage that was restarted.
        stage: &'static str,
    },
}

impl std::fmt::Display for RuntimeEventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeEventKind::Escalate => write!(f, "sentry-escalate"),
            RuntimeEventKind::Standdown => write!(f, "sentry-standdown"),
            RuntimeEventKind::MissedEscalation => write!(f, "sentry-missed"),
            RuntimeEventKind::Corrupted { stage } => write!(f, "corrupted@{stage}"),
            RuntimeEventKind::Lost { stage } => write!(f, "lost@{stage}"),
            RuntimeEventKind::Restart { stage } => write!(f, "restart@{stage}"),
        }
    }
}

/// Per-stage accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name (`capture`, `preprocess`, `inference`, `gateway`).
    pub stage: &'static str,
    /// Frames the stage fully processed.
    pub processed: u64,
    /// Virtual busy time, seconds.
    pub busy_s: f64,
    /// Supervisor restarts of this stage.
    pub restarts: u64,
    /// Frames lost in-flight at this stage (crashes + budget exhaustion).
    pub lost: u64,
}

/// The full report of one runtime run, assembled by the gateway stage.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeReport {
    /// `threads` (in-process replay) or `procs` (multi-process).
    pub mode: &'static str,
    /// Backpressure policy name.
    pub policy: &'static str,
    /// Whether sentry mode was enabled.
    pub sentry: bool,
    /// Frames offered by the trace.
    pub offered: u64,
    /// Frames that reached the gateway intact.
    pub completed: u64,
    /// Frames evicted by drop-oldest backpressure (all rings).
    pub dropped: u64,
    /// Frames discarded after failing checksum verification.
    pub corrupted: u64,
    /// Standby → Alarmed transitions.
    pub escalations: u64,
    /// Alarmed → Standby transitions.
    pub standdowns: u64,
    /// Ground-truth hits served by the standby rung only.
    pub missed_escalations: u64,
    /// Frames served by the standby rung alone.
    pub standby_frames: u64,
    /// Frames served by the full model (including escalation frames).
    pub full_frames: u64,
    /// Total inference energy, millijoules (per-rung table model).
    pub energy_mj: f64,
    /// Virtual end-to-end span of the run, seconds.
    pub span_s: f64,
    /// End-to-end frame latencies, milliseconds (virtual time).
    pub latencies_ms: Samples,
    /// Frames the gateway observed arriving out of sequence order.
    pub order_violations: u64,
    /// Whether self-healing supervision was enabled.
    pub supervised: bool,
    /// Supervisor restarts across all stages.
    pub restarts: u64,
    /// Frames lost in-flight across all stages (accounted as `lost@stage`
    /// events; part of the conservation invariant).
    pub lost: u64,
    /// Frame ids the gateway saw more than once — at-most-once delivery
    /// keeps this at zero even under chaos.
    pub duplicates: u64,
    /// Virtual recovery penalties (detection + backoff) per restart, ms.
    pub recovery_ms: Samples,
    /// Stages that ended degraded (budget exhausted / unsupervised
    /// failure). Not part of the CSV: in process mode the gateway child
    /// assembles the CSV without the parent's degraded view.
    pub degraded: Vec<String>,
    /// Per-stage accounting, pipeline order.
    pub stages: Vec<StageReport>,
    /// Sentry / integrity event timeline.
    pub events: Vec<RuntimeEvent>,
    /// XOR-fold of output checksums when real execution ran (0 otherwise).
    pub output_digest: u64,
}

impl RuntimeReport {
    /// Mean energy per completed frame, millijoules.
    pub fn energy_per_frame_mj(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.energy_mj / self.completed as f64
        }
    }

    /// Completed frames per second of virtual span.
    pub fn goodput_qps(&self) -> f64 {
        if self.span_s <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.span_s
        }
    }

    /// The sentry/integrity timeline as a measurement [`EventLog`]
    /// (`time_s,frame,event` CSV — same shape as the serve event log).
    pub fn event_log(&self) -> EventLog {
        EventLog::from_entries(
            self.events
                .iter()
                .map(|e| EventEntry {
                    time_us: e.t_ns / 1_000,
                    frame: e.seq as usize,
                    label: e.kind.to_string(),
                })
                .collect(),
        )
    }

    /// Renders the report as `metric,value` CSV with fixed precision —
    /// byte-identical for identical runs, and using the same metric names
    /// as [`crate::serve::ServeReport::to_csv`] for the shared latency /
    /// goodput / energy rows so the sim-vs-real comparison is column-wise.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        let p = |s: &Samples, q: f64| -> f64 {
            if s.is_empty() {
                0.0
            } else {
                s.percentile(q)
            }
        };
        out.push_str(&format!("mode,{}\n", self.mode));
        out.push_str(&format!("policy,{}\n", self.policy));
        out.push_str(&format!("sentry,{}\n", u8::from(self.sentry)));
        out.push_str(&format!("offered,{}\n", self.offered));
        out.push_str(&format!("completed,{}\n", self.completed));
        out.push_str(&format!("dropped,{}\n", self.dropped));
        out.push_str(&format!("corrupted,{}\n", self.corrupted));
        out.push_str(&format!("escalations,{}\n", self.escalations));
        out.push_str(&format!("standdowns,{}\n", self.standdowns));
        out.push_str(&format!("missed_escalations,{}\n", self.missed_escalations));
        out.push_str(&format!("standby_frames,{}\n", self.standby_frames));
        out.push_str(&format!("full_frames,{}\n", self.full_frames));
        out.push_str(&format!("p50_ms,{:.3}\n", p(&self.latencies_ms, 50.0)));
        out.push_str(&format!("p95_ms,{:.3}\n", p(&self.latencies_ms, 95.0)));
        out.push_str(&format!("p99_ms,{:.3}\n", p(&self.latencies_ms, 99.0)));
        out.push_str(&format!("mean_ms,{:.3}\n", self.latencies_ms.mean()));
        out.push_str(&format!("goodput_qps,{:.3}\n", self.goodput_qps()));
        out.push_str(&format!("energy_mj,{:.3}\n", self.energy_mj));
        out.push_str(&format!(
            "energy_per_req_mj,{:.3}\n",
            self.energy_per_frame_mj()
        ));
        out.push_str(&format!("span_s,{:.3}\n", self.span_s));
        out.push_str(&format!("order_violations,{}\n", self.order_violations));
        out.push_str(&format!("output_digest,{:016x}\n", self.output_digest));
        out.push_str(&format!("supervised,{}\n", u8::from(self.supervised)));
        out.push_str(&format!("restarts,{}\n", self.restarts));
        out.push_str(&format!("lost,{}\n", self.lost));
        out.push_str(&format!("duplicates,{}\n", self.duplicates));
        out.push_str(&format!(
            "recovery_p50_ms,{:.3}\n",
            p(&self.recovery_ms, 50.0)
        ));
        out.push_str(&format!(
            "recovery_p95_ms,{:.3}\n",
            p(&self.recovery_ms, 95.0)
        ));
        out.push_str("\nstage,processed,busy_s,restarts,lost\n");
        for s in &self.stages {
            out.push_str(&format!(
                "{},{},{:.6},{},{}\n",
                s.stage, s.processed, s.busy_s, s.restarts, s.lost
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RuntimeReport {
        RuntimeReport {
            mode: "threads",
            policy: "block",
            sentry: true,
            offered: 10,
            completed: 9,
            dropped: 1,
            corrupted: 0,
            escalations: 2,
            standdowns: 1,
            missed_escalations: 0,
            standby_frames: 5,
            full_frames: 4,
            energy_mj: 90.0,
            span_s: 3.0,
            latencies_ms: Samples::from_unsorted(vec![1.0, 2.0, 3.0]),
            order_violations: 0,
            supervised: true,
            restarts: 2,
            lost: 1,
            duplicates: 0,
            recovery_ms: Samples::from_unsorted(vec![25.0, 45.0]),
            degraded: vec![],
            stages: vec![StageReport {
                stage: "capture",
                processed: 10,
                busy_s: 0.5,
                restarts: 2,
                lost: 1,
            }],
            events: vec![
                RuntimeEvent {
                    t_ns: 2_000_000,
                    seq: 3,
                    kind: RuntimeEventKind::Escalate,
                },
                RuntimeEvent {
                    t_ns: 1_000_000,
                    seq: 1,
                    kind: RuntimeEventKind::Corrupted {
                        stage: "preprocess",
                    },
                },
                RuntimeEvent {
                    t_ns: 3_000_000,
                    seq: 5,
                    kind: RuntimeEventKind::Lost { stage: "inference" },
                },
                RuntimeEvent {
                    t_ns: 4_000_000,
                    seq: 1,
                    kind: RuntimeEventKind::Restart { stage: "inference" },
                },
            ],
            output_digest: 0xdead_beef,
        }
    }

    #[test]
    fn csv_is_byte_stable_and_named_like_serve() {
        let r = sample_report();
        let csv = r.to_csv();
        assert_eq!(csv, r.clone().to_csv());
        for needle in [
            "p50_ms,",
            "p95_ms,",
            "p99_ms,",
            "goodput_qps,3.000",
            "energy_per_req_mj,10.000",
            "corrupted,0",
            "output_digest,00000000deadbeef",
            "supervised,1",
            "restarts,2",
            "lost,1",
            "duplicates,0",
            "recovery_p50_ms,",
            "recovery_p95_ms,",
            "stage,processed,busy_s,restarts,lost",
            "capture,10,0.500000,2,1",
        ] {
            assert!(csv.contains(needle), "missing {needle} in:\n{csv}");
        }
    }

    #[test]
    fn event_log_sorts_by_time() {
        let log = sample_report().event_log();
        let csv = log.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,frame,event");
        assert_eq!(lines[1], "0.001000,1,corrupted@preprocess");
        assert_eq!(lines[2], "0.002000,3,sentry-escalate");
        assert_eq!(lines[3], "0.003000,5,lost@inference");
        assert_eq!(lines[4], "0.004000,1,restart@inference");
    }

    #[test]
    fn ratios_handle_empty_runs() {
        let mut r = sample_report();
        r.completed = 0;
        r.span_s = 0.0;
        r.latencies_ms = Samples::from_unsorted(vec![]);
        assert_eq!(r.energy_per_frame_mj(), 0.0);
        assert_eq!(r.goodput_qps(), 0.0);
        assert!(r.to_csv().contains("p50_ms,0.000"));
    }
}
