//! Extension experiment: request-level resilience under degraded service.
//!
//! The paper characterizes devices in isolation; a deployed fleet also
//! faces stragglers, lost work, and flash crowds. This experiment drives
//! one heterogeneous MobileNetV2 fleet (RPi3 + Nano + TX2) through a
//! bursty trace with seeded stragglers and request loss, switching the
//! resilience mechanisms on cumulatively — `none`, `+hedge`, `+retry`,
//! `full` (breakers and the precision-degradation ladder) — and compares
//! tail latency, goodput, shed/failed mass, and the accuracy-proxy cost
//! of serving on cheaper rungs.

use super::Experiment;
use crate::report::Report;
use crate::serve::{
    BreakerConfig, Fleet, ReplicaSpec, RetryBudgetConfig, RoutePolicy, ServeConfig, ServeReport,
    Traffic,
};
use edgebench_devices::Device;
use edgebench_models::Model;

/// `ext-degradation` — resilience-arm comparison on a degraded fleet.
pub struct ExtDegradation;

/// p99 latency objective, milliseconds.
const SLO_MS: f64 = 150.0;

/// Requests per arm.
const REQUESTS: usize = 3000;

/// Base rate of the bursty trace, requests per second.
const RATE_HZ: f64 = 60.0;

fn fleet() -> Fleet {
    let rpi = ReplicaSpec::best_for(Model::MobileNetV2, Device::RaspberryPi3)
        .expect("rpi serves mobilenet");
    let nano = ReplicaSpec::best_for(Model::MobileNetV2, Device::JetsonNano)
        .expect("nano serves mobilenet");
    let tx2 =
        ReplicaSpec::best_for(Model::MobileNetV2, Device::JetsonTx2).expect("tx2 serves mobilenet");
    Fleet::new([rpi, nano, tx2]).expect("all replicas deploy")
}

/// Shared degraded environment: LEL routing, batching, 5 % stragglers at
/// 6×, 2 % lost batches, flash-crowd traffic.
fn base_cfg() -> ServeConfig {
    ServeConfig::new(SLO_MS)
        .with_policy(RoutePolicy::LeastExpectedLatency)
        .with_batch_max(4)
        .with_straggler(0.05, 6.0)
        .with_loss(0.02)
}

/// The cumulative resilience arms, as `(label, config)`.
fn arms() -> Vec<(&'static str, ServeConfig)> {
    vec![
        ("none", base_cfg()),
        ("+hedge", base_cfg().with_hedge_ms(2.0)),
        (
            "+retry",
            base_cfg()
                .with_hedge_ms(2.0)
                .with_retry_budget(RetryBudgetConfig::default()),
        ),
        (
            "full",
            base_cfg()
                .with_hedge_ms(2.0)
                .with_retry_budget(RetryBudgetConfig::default())
                .with_breaker(BreakerConfig::default())
                .with_ladder(true),
        ),
    ]
}

fn run_arm(fleet: &Fleet, cfg: &ServeConfig) -> ServeReport {
    let traffic = Traffic::from_flag("burst", RATE_HZ, 11).expect("burst is a known trace");
    fleet
        .serve(&traffic, REQUESTS, cfg)
        .expect("positive rate, non-empty fleet")
}

impl Experiment for ExtDegradation {
    fn id(&self) -> &'static str {
        "ext-degradation"
    }

    fn title(&self) -> &'static str {
        "Extension: degradation — hedging, retries, breakers and the precision ladder under stragglers + loss"
    }

    fn run(&self) -> Report {
        let fleet = fleet();
        let mut r = Report::new(
            self.title(),
            [
                "arm",
                "p99_ms",
                "goodput_qps",
                "within_slo",
                "shed",
                "failed",
                "retry_shed",
                "hedges",
                "hedge_wins",
                "retries",
                "breaker_trips",
                "degraded_share",
                "mean_fidelity",
            ],
        );
        for (label, cfg) in arms() {
            let rep = run_arm(&fleet, &cfg);
            let degraded_share: f64 = rep.rung_shares().iter().skip(1).sum();
            r.push_row([
                label.to_string(),
                format!("{:.1}", rep.p99_ms()),
                format!("{:.1}", rep.goodput_qps()),
                rep.within_slo.to_string(),
                rep.shed.to_string(),
                rep.failed.to_string(),
                rep.retry_shed.to_string(),
                rep.hedges.to_string(),
                rep.hedge_wins.to_string(),
                rep.retries.to_string(),
                rep.breaker_trips.to_string(),
                format!("{degraded_share:.4}"),
                format!("{:.4}", rep.mean_fidelity),
            ]);
        }
        r.push_note(
            "environment: rpi3+nano+tx2, burst traffic (4x crowds), 5% stragglers at 6x, 2% lost batches, 150 ms SLO",
        );
        r.push_note(
            "arms are cumulative: +hedge adds 2 ms hedging, +retry adds the token-bucket budget, full adds breakers and the fp32->fp16->int8 ladder",
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(r: &Report, name: &str) -> usize {
        r.columns().iter().position(|c| c == name).expect("column")
    }

    #[test]
    fn covers_all_four_arms() {
        let r = ExtDegradation.run();
        let arms: Vec<&str> = r.rows().iter().map(|row| row[0].as_str()).collect();
        assert_eq!(arms, ["none", "+hedge", "+retry", "full"]);
    }

    #[test]
    fn retries_recover_mass_lost_without_them() {
        let r = ExtDegradation.run();
        let failed = col(&r, "failed");
        let none: usize = r.rows()[0][failed].parse().unwrap();
        let retry: usize = r.rows()[2][failed].parse().unwrap();
        assert!(none > 0, "loss must fail requests without retries");
        assert!(retry < none, "retries {retry} vs none {none}");
    }

    #[test]
    fn full_arm_actually_exercises_the_ladder_accounting() {
        let r = ExtDegradation.run();
        let fid = col(&r, "mean_fidelity");
        for row in r.rows() {
            let f: f64 = row[fid].parse().unwrap();
            assert!(f > 0.9 && f <= 1.0, "{}: fidelity {f}", row[0]);
        }
    }
}
