//! Extension experiment: planet-scale serving — energy and carbon per
//! request across geo-distributed edge regions.
//!
//! Three regions (Jetson Nano / Jetson TX2 / Raspberry Pi 4) serve the
//! same model under diurnal traffic whose peaks are a third of a day
//! apart, each on its own grid-intensity day (coal-heavy us-east,
//! mid-carbon eu-west, hydro-clean ap-south). Every region runs the
//! full serving simulation — autoscaling on predicted sojourn, WAN
//! spillover to its neighbor, and an offload cloud tier sized by
//! [`crate::offload::best_split`] — and the report breaks out SLO
//! attainment, energy per request, and carbon per request by region.
//!
//! Two contrasts frame the table: an always-on arm (autoscaling
//! disabled) shows what the diurnal trough costs in energy when
//! replicas never park, and a half-day carbon phase shift shows how
//! much of the carbon bill is *when* the work runs rather than *where*.

use super::Experiment;
use crate::report::Report;
use crate::serve::geo::{default_regions, run_geo, GeoConfig, GeoReport, RegionSpec};

/// `ext-geo` — multi-region serving with energy and carbon accounting.
pub struct ExtGeo;

/// Requests per region: covers one full compressed day at the default
/// 20→240 Hz swing (mean ≈ 130 Hz over a 60 s day).
const N_PER_REGION: usize = 8000;

/// Worker fan-out; the result is byte-identical at any value.
const JOBS: usize = 4;

fn config() -> GeoConfig {
    GeoConfig::new(100.0)
}

fn regions(cfg: &GeoConfig) -> Vec<RegionSpec> {
    default_regions(cfg.period_s)
}

fn run(cfg: &GeoConfig) -> GeoReport {
    let regs = regions(cfg);
    run_geo(cfg, &regs, N_PER_REGION, JOBS).expect("default regions deploy")
}

/// Served-weighted mean SLO attainment across regions.
fn fleet_slo(geo: &GeoReport) -> f64 {
    let served: usize = geo.served();
    if served == 0 {
        return 0.0;
    }
    geo.regions
        .iter()
        .map(|r| r.slo_attainment * r.served() as f64)
        .sum::<f64>()
        / served as f64
}

impl Experiment for ExtGeo {
    fn id(&self) -> &'static str {
        "ext-geo"
    }

    fn title(&self) -> &'static str {
        "Extension: geo-distributed serving — SLO, energy, and carbon per request by region"
    }

    fn run(&self) -> Report {
        let cfg = config();
        let geo = run(&cfg);
        let mut r = geo.to_report(self.title());

        // Contrast 1: the same day with autoscaling disabled — every
        // replica burns idle power through the trough.
        let fixed = run(&GeoConfig {
            autoscale: None,
            ..cfg.clone()
        });
        r.push_note(format!(
            "autoscaling: slo {:.4} at {:.3} mJ/req vs always-on slo {:.4} at {:.3} mJ/req \
             ({} scale-ups, {} scale-downs across regions)",
            fleet_slo(&geo),
            geo.energy_per_request_mj(),
            fleet_slo(&fixed),
            fixed.energy_per_request_mj(),
            geo.regions.iter().map(|x| x.report.scale_ups).sum::<u64>(),
            geo.regions
                .iter()
                .map(|x| x.report.scale_downs)
                .sum::<u64>(),
        ));

        // Contrast 2: shift every grid's day by 12 hours while keeping
        // traffic and placement fixed — the energy bill is identical,
        // only the carbon bill moves with the time of day.
        let mut shifted_cfg = cfg.clone();
        shifted_cfg.cloud_grid = shifted_cfg
            .cloud_grid
            .with_phase_h(shifted_cfg.cloud_grid.phase_h + 12.0);
        let mut shifted_regions = regions(&cfg);
        for reg in &mut shifted_regions {
            reg.grid = reg.grid.with_phase_h(reg.grid.phase_h + 12.0);
        }
        let shifted = run_geo(&shifted_cfg, &shifted_regions, N_PER_REGION, JOBS)
            .expect("default regions deploy");
        r.push_note(format!(
            "time-of-day: {:.4} mg CO2/req on the real grid day vs {:.4} mg CO2/req with \
             grids shifted 12 h (energy unchanged at {:.3} mJ/req)",
            geo.carbon_per_request_mg(),
            shifted.carbon_per_request_mg(),
            geo.energy_per_request_mj(),
        ));
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_geo_reports_one_row_per_region_plus_total() {
        let report = ExtGeo.run();
        assert_eq!(report.rows().len(), regions(&config()).len() + 1);
        assert_eq!(report.notes().len(), 2);
        let total_served: f64 =
            report.cell_f64("total", "local").unwrap() + report.cell_f64("total", "cloud").unwrap();
        assert!(total_served > 0.0, "the fleet must serve traffic");
        // Regions sit on different grids, so carbon per request must
        // differ even where energy per request is close.
        let carbons: Vec<f64> = ["us-east", "eu-west", "ap-south"]
            .iter()
            .map(|reg| report.cell_f64(reg, "carbon_req_mg").unwrap())
            .collect();
        assert!(
            carbons.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-6),
            "carbon per request must vary by region: {carbons:?}"
        );
    }
}
