//! Fig 8: PyTorch vs TensorFlow vs TFLite on the Raspberry Pi.

use crate::experiments::{latency_ms, Experiment};
use crate::report::Report;
use edgebench_devices::Device;
use edgebench_frameworks::Framework;
use edgebench_models::Model;

const MODELS: [Model; 5] = [
    Model::ResNet18,
    Model::ResNet50,
    Model::ResNet101,
    Model::MobileNetV2,
    Model::InceptionV4,
];

/// Paper values in seconds: (pytorch, tensorflow, tflite).
fn paper_values(m: Model) -> (f64, f64, f64) {
    use Model::*;
    match m {
        ResNet18 => (6.57, 0.99, 0.87),
        ResNet50 => (8.3, 3.06, 2.46),
        ResNet101 => (15.32, 13.32, 8.86),
        MobileNetV2 => (8.28, 1.4, 0.48),
        InceptionV4 => (13.84, 8.87, 5.51),
        _ => unreachable!("fig8 uses the five classification models"),
    }
}

/// Fig 8 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig8;

impl Experiment for Fig8 {
    fn id(&self) -> &'static str {
        "fig8"
    }

    fn title(&self) -> &'static str {
        "Fig 8: RPi, PyTorch vs TensorFlow vs TFLite (s)"
    }

    fn run(&self) -> Report {
        let mut r = Report::new(
            self.title(),
            [
                "model",
                "pytorch_s",
                "tensorflow_s",
                "tflite_s",
                "speedup_vs_pt",
                "speedup_vs_tf",
                "paper_pt_s",
                "paper_tf_s",
                "paper_tflite_s",
            ],
        );
        let (mut spt, mut stf) = (Vec::new(), Vec::new());
        for m in MODELS {
            let pt = latency_ms(Framework::PyTorch, m, Device::RaspberryPi3).expect("runs") / 1e3;
            let tf =
                latency_ms(Framework::TensorFlow, m, Device::RaspberryPi3).expect("runs") / 1e3;
            let tfl = latency_ms(Framework::TfLite, m, Device::RaspberryPi3).expect("runs") / 1e3;
            spt.push(pt / tfl);
            stf.push(tf / tfl);
            let (ppt, ptf, ptfl) = paper_values(m);
            r.push_row([
                m.name().to_string(),
                format!("{pt:.2}"),
                format!("{tf:.2}"),
                format!("{tfl:.2}"),
                format!("{:.2}", pt / tfl),
                format!("{:.2}", tf / tfl),
                format!("{ppt:.2}"),
                format!("{ptf:.2}"),
                format!("{ptfl:.2}"),
            ]);
        }
        let mpt = spt.iter().sum::<f64>() / spt.len() as f64;
        let mtf = stf.iter().sum::<f64>() / stf.len() as f64;
        r.push_note(format!(
            "mean tflite speedup: {mpt:.2} over pytorch (paper 4.53), {mtf:.2} over tensorflow (paper 1.58)"
        ));
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tflite_is_fastest_on_every_model() {
        let r = Fig8.run();
        for m in MODELS {
            let tfl: f64 = r.cell_f64(m.name(), "tflite_s").unwrap();
            let tf: f64 = r.cell_f64(m.name(), "tensorflow_s").unwrap();
            let pt: f64 = r.cell_f64(m.name(), "pytorch_s").unwrap();
            assert!(tfl < tf && tfl < pt, "{m}: tflite {tfl} tf {tf} pt {pt}");
        }
    }

    #[test]
    fn mean_speedups_in_paper_bands() {
        let r = Fig8.run();
        let mut spt = Vec::new();
        let mut stf = Vec::new();
        for m in MODELS {
            spt.push(r.cell_f64(m.name(), "speedup_vs_pt").unwrap());
            stf.push(r.cell_f64(m.name(), "speedup_vs_tf").unwrap());
        }
        let mpt = spt.iter().sum::<f64>() / spt.len() as f64;
        let mtf = stf.iter().sum::<f64>() / stf.len() as f64;
        assert!((2.0..9.0).contains(&mpt), "vs pytorch {mpt} (paper 4.53)");
        assert!(
            (1.1..3.0).contains(&mtf),
            "vs tensorflow {mtf} (paper 1.58)"
        );
    }

    #[test]
    fn tflite_gains_most_on_mobilenet() {
        // Paper: MobileNet-v2's many fusable BN/activation nodes give
        // TFLite its largest TF-relative win (1.4 / 0.48 ≈ 2.9x).
        let r = Fig8.run();
        let mn: f64 = r.cell_f64("mobilenet-v2", "speedup_vs_tf").unwrap();
        let rn: f64 = r.cell_f64("resnet-18", "speedup_vs_tf").unwrap();
        assert!(mn > rn, "mobilenet {mn} vs resnet {rn}");
    }

    #[test]
    fn absolute_seconds_within_3x_of_paper() {
        let r = Fig8.run();
        for m in MODELS {
            let (ppt, ptf, ptfl) = paper_values(m);
            for (col, paper) in [
                ("pytorch_s", ppt),
                ("tensorflow_s", ptf),
                ("tflite_s", ptfl),
            ] {
                let ours: f64 = r.cell_f64(m.name(), col).unwrap();
                let ratio = ours / paper;
                assert!(
                    (0.25..=4.0).contains(&ratio),
                    "{m} {col}: {ours} vs {paper}"
                );
            }
        }
    }
}
