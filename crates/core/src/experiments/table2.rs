//! Table II: the framework specification/feature matrix, regenerated from
//! `edgebench-frameworks`' encoded `FrameworkInfo`.

use crate::experiments::Experiment;
use crate::report::Report;
use edgebench_frameworks::Framework;

fn yn(v: bool) -> &'static str {
    if v {
        "yes"
    } else {
        "no"
    }
}

/// Table II experiment.
#[derive(Debug, Clone, Copy)]
pub struct Table2;

impl Experiment for Table2 {
    fn id(&self) -> &'static str {
        "table2"
    }

    fn title(&self) -> &'static str {
        "Table II: framework specifications and optimizations"
    }

    fn run(&self) -> Report {
        let mut r = Report::new(
            self.title(),
            [
                "framework",
                "language",
                "industry",
                "training",
                "extra_steps",
                "mobile",
                "quant",
                "mixed_prec",
                "dyn_graph",
                "pruning",
                "fusion",
                "auto_tune",
                "fp16",
            ],
        );
        for &fw in Framework::all() {
            let i = fw.info();
            let o = i.optimizations;
            r.push_row([
                i.name,
                i.language,
                yn(i.industry_backed),
                yn(i.training),
                yn(i.extra_steps),
                yn(i.mobile_deployment),
                yn(o.quantization),
                yn(o.mixed_precision),
                yn(o.dynamic_graph),
                yn(o.pruning_exploitation),
                yn(o.fusion),
                yn(o.auto_tuning),
                yn(o.half_precision),
            ]);
        }
        r.push_note("regenerated from FrameworkInfo; see paper Table II for the star ratings we do not model");
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_the_papers_check_marks() {
        let r = Table2.run();
        // Spot-check the distinguishing cells of the paper's matrix.
        assert_eq!(r.cell("tensorrt", "mixed_prec"), Some("yes"));
        assert_eq!(r.cell("tensorrt", "auto_tune"), Some("yes"));
        assert_eq!(r.cell("tensorflow", "mixed_prec"), Some("no"));
        assert_eq!(r.cell("pytorch", "dyn_graph"), Some("yes"));
        assert_eq!(r.cell("tensorflow", "dyn_graph"), Some("no"));
        assert_eq!(r.cell("darknet", "quant"), Some("no"));
        assert_eq!(r.cell("darknet", "language"), Some("c"));
        assert_eq!(r.cell("tflite", "mobile"), Some("yes"));
        assert_eq!(r.cell("tflite", "extra_steps"), Some("yes"));
        assert_eq!(r.cell("caffe", "fusion"), Some("no"));
        assert_eq!(r.cell("ncsdk", "fusion"), Some("yes"));
    }

    #[test]
    fn all_nine_frameworks_are_listed() {
        assert_eq!(Table2.run().rows().len(), 9);
    }

    #[test]
    fn fp16_is_near_universal_quant_is_industry_wide() {
        // Paper: "inferencing using half-precision ... is supported by
        // almost all frameworks, similar to quantization."
        let r = Table2.run();
        let fp16_yes = r.rows().iter().filter(|row| row[12] == "yes").count();
        assert!(fp16_yes >= 7, "{fp16_yes}");
    }
}
