//! Extension experiments beyond the paper's evaluation:
//!
//! * `ext-nextgen` — the two devices the paper's footnotes anticipate
//!   (Raspberry Pi 4B; Intel NCS2 with its claimed 8× speedup).
//! * `ext-offload` — the cloud-offloading alternative the paper's
//!   introduction argues against, quantified per link quality.
//! * `ext-rnn` — the paper's stated future work: RNN/LSTM models run
//!   through the same characterization pipeline.

use crate::experiments::Experiment;
use crate::report::{fmt_ms, Report};
use edgebench_devices::offload::{best_split, edge_vs_cloud, Link};
use edgebench_devices::Device;
use edgebench_frameworks::deploy::{compile, compile_graph};
use edgebench_frameworks::Framework;
use edgebench_models::{rnn, Model};

/// Next-generation devices (paper footnotes ? and ◇ of Table III).
#[derive(Debug, Clone, Copy)]
pub struct ExtNextGen;

impl Experiment for ExtNextGen {
    fn id(&self) -> &'static str {
        "ext-nextgen"
    }

    fn title(&self) -> &'static str {
        "Extension: next-gen devices (RPi 4B, NCS2) vs the paper's units"
    }

    fn run(&self) -> Report {
        let mut r = Report::new(
            self.title(),
            [
                "model", "rpi3_ms", "rpi4_ms", "rpi_gain", "ncs_ms", "ncs2_ms", "ncs_gain",
            ],
        );
        for m in [
            Model::ResNet18,
            Model::ResNet50,
            Model::MobileNetV2,
            Model::InceptionV4,
        ] {
            let rpi3 = compile(Framework::TfLite, m, Device::RaspberryPi3)
                .and_then(|c| c.latency_ms())
                .ok();
            let rpi4 = compile(Framework::TfLite, m, Device::RaspberryPi4)
                .and_then(|c| c.latency_ms())
                .ok();
            let ncs = compile(Framework::Ncsdk, m, Device::MovidiusNcs)
                .and_then(|c| c.latency_ms())
                .ok();
            let ncs2 = compile(Framework::Ncsdk, m, Device::Ncs2)
                .and_then(|c| c.latency_ms())
                .ok();
            let gain = |a: Option<f64>, b: Option<f64>| match (a, b) {
                (Some(a), Some(b)) => format!("{:.2}", a / b),
                _ => "-".to_string(),
            };
            let cell = |v: Option<f64>| v.map(fmt_ms).unwrap_or_else(|| "x".to_string());
            r.push_row([
                m.name().to_string(),
                cell(rpi3),
                cell(rpi4),
                gain(rpi3, rpi4),
                cell(ncs),
                cell(ncs2),
                gain(ncs, ncs2),
            ]);
        }
        r.push_note(
            "paper footnotes: RPi 4B 'is expected to perform better'; NCS2 'claims an 8x speedup'",
        );
        r
    }
}

/// Edge vs cloud offloading across link qualities.
#[derive(Debug, Clone, Copy)]
pub struct ExtOffload;

impl Experiment for ExtOffload {
    fn id(&self) -> &'static str {
        "ext-offload"
    }

    fn title(&self) -> &'static str {
        "Extension: edge vs cloud offload (ms, GTX server)"
    }

    fn run(&self) -> Report {
        let mut r = Report::new(
            self.title(),
            [
                "model",
                "edge",
                "local_ms",
                "wifi_ms",
                "lte_ms",
                "weak_ms",
                "winner_on_weak",
                "best_split_k",
            ],
        );
        for (m, d) in [
            (Model::MobileNetV2, Device::RaspberryPi3),
            (Model::ResNet50, Device::RaspberryPi3),
            (Model::InceptionV4, Device::RaspberryPi3),
            (Model::ResNet50, Device::JetsonTx2),
        ] {
            let g = m.build();
            let server = Device::GtxTitanX;
            // All four combos use devices/precisions the roofline supports.
            let (local, wifi) = edge_vs_cloud(&g, d, Link::wifi(), server).expect("combo runs");
            let (_, lte) = edge_vs_cloud(&g, d, Link::lte(), server).expect("combo runs");
            let (_, weak) = edge_vs_cloud(&g, d, Link::weak(), server).expect("combo runs");
            let (k, _) = best_split(&g, d, Link::lte(), server).expect("combo runs");
            r.push_row([
                m.name().to_string(),
                d.name().to_string(),
                fmt_ms(local * 1e3),
                fmt_ms(wifi * 1e3),
                fmt_ms(lte * 1e3),
                fmt_ms(weak * 1e3),
                if local < weak { "edge" } else { "cloud" }.to_string(),
                format!("{k}/{}", g.len()),
            ]);
        }
        r.push_note("paper §I: offloading fails under limited connectivity / tight timing — the weak-link column");
        r
    }
}

/// RNN/LSTM characterization (the paper's future work).
#[derive(Debug, Clone, Copy)]
pub struct ExtRnn;

impl Experiment for ExtRnn {
    fn id(&self) -> &'static str {
        "ext-rnn"
    }

    fn title(&self) -> &'static str {
        "Extension: LSTM/GRU inference across edge devices (ms)"
    }

    fn run(&self) -> Report {
        let nets = [
            (
                "char-lstm-2x128-t32",
                rnn::char_lstm(32, 64, 128, 2).expect("builds"),
            ),
            (
                "char-lstm-2x512-t32",
                rnn::char_lstm(32, 64, 512, 2).expect("builds"),
            ),
            (
                "gru-256-t64",
                rnn::gru_classifier(64, 40, 256, 10).expect("builds"),
            ),
        ];
        let mut r = Report::new(
            self.title(),
            [
                "network",
                "gflop",
                "params_m",
                "flop_per_param",
                "rpi3_ms",
                "jetson-tx2_ms",
                "xeon_ms",
            ],
        );
        for (name, g) in &nets {
            let s = g.stats();
            let mut row = vec![
                name.to_string(),
                format!("{:.3}", s.flops as f64 / 1e9),
                format!("{:.2}", s.params as f64 / 1e6),
                format!("{:.1}", s.flop_per_param()),
            ];
            for d in [Device::RaspberryPi3, Device::JetsonTx2, Device::XeonCpu] {
                let ms = compile_graph(Framework::PyTorch, g.clone(), d)
                    .and_then(|c| c.latency_ms())
                    .map(fmt_ms)
                    .unwrap_or_else(|_| "x".to_string());
                row.push(ms);
            }
            r.push_row(row);
        }
        r.push_note("RNN steps re-stream the recurrent weight matrices: low flop/param, latency set by memory bandwidth and per-step dispatch");
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpi4_beats_rpi3_everywhere() {
        let r = ExtNextGen.run();
        for row in r.rows() {
            let (Ok(a), Ok(b)) = (row[1].parse::<f64>(), row[2].parse::<f64>()) else {
                continue;
            };
            assert!(b < a, "{}: rpi4 {b} !< rpi3 {a}", row[0]);
        }
    }

    #[test]
    fn ncs2_gain_is_in_the_claimed_band() {
        // Intel claimed "8x"; compute-bound models should approach it.
        let r = ExtNextGen.run();
        let g: f64 = r.cell_f64("inception-v4", "ncs_gain").unwrap();
        assert!((3.0..10.0).contains(&g), "gain {g}");
    }

    #[test]
    fn weak_links_keep_work_at_the_edge() {
        let r = ExtOffload.run();
        for row in r.rows() {
            if row[1] == "jetson-tx2" {
                assert_eq!(row[6], "edge");
            }
        }
        // At least the capable-edge rows keep work local on weak links.
        assert!(r.rows().iter().any(|row| row[6] == "edge"));
    }

    #[test]
    fn rnns_are_memory_intensive() {
        let r = ExtRnn.run();
        for row in r.rows() {
            let fpp: f64 = row[3].parse().unwrap();
            assert!(fpp < 150.0, "{}: flop/param {fpp}", row[0]);
        }
    }

    #[test]
    fn bigger_lstm_is_slower() {
        let r = ExtRnn.run();
        let small: f64 = r.cell_f64("char-lstm-2x128-t32", "jetson-tx2_ms").unwrap();
        let big: f64 = r.cell_f64("char-lstm-2x512-t32", "jetson-tx2_ms").unwrap();
        assert!(big > small);
    }
}
