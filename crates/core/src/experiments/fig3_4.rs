//! Figs 3 & 4: cross-framework time per inference on the Raspberry Pi and
//! the Jetson TX2 (DarkNet, Caffe, TensorFlow, PyTorch).

use crate::experiments::{latency_ms, Experiment};
use crate::report::{fmt_ms, Report};
use edgebench_devices::Device;
use edgebench_frameworks::Framework;
use edgebench_models::Model;

const MODELS: [Model; 7] = [
    Model::ResNet50,
    Model::ResNet101,
    Model::Xception,
    Model::MobileNetV2,
    Model::InceptionV4,
    Model::AlexNet,
    Model::Vgg16,
];

const FRAMEWORKS: [Framework; 4] = [
    Framework::DarkNet,
    Framework::Caffe,
    Framework::TensorFlow,
    Framework::PyTorch,
];

fn run_device(device: Device, title: &'static str, unit_scale: f64, unit: &str) -> Report {
    let mut r = Report::new(
        title,
        ["model", "darknet", "caffe", "tensorflow", "pytorch"].map(|c| {
            format!(
                "{c}{}",
                if c == "model" {
                    String::new()
                } else {
                    format!("_{unit}")
                }
            )
        }),
    );
    for m in MODELS {
        let mut row = vec![m.name().to_string()];
        for fw in FRAMEWORKS {
            use edgebench_frameworks::compat::{check, Barrier, Compat};
            let cell = match check(fw, m, device) {
                Compat::Unsupported(Barrier::MemoryError) => "mem-err".to_string(),
                Compat::Unsupported(_) => "n/a".to_string(),
                _ => match latency_ms(fw, m, device) {
                    Some(ms) => fmt_ms(ms * unit_scale),
                    None => "mem-err".to_string(),
                },
            };
            row.push(cell);
        }
        r.push_row(row);
    }
    r
}

/// Fig 3: the Raspberry Pi (seconds per inference).
#[derive(Debug, Clone, Copy)]
pub struct Fig3;

impl Experiment for Fig3 {
    fn id(&self) -> &'static str {
        "fig3"
    }

    fn title(&self) -> &'static str {
        "Fig 3: time per inference on RPi across frameworks (s)"
    }

    fn run(&self) -> Report {
        let mut r = run_device(Device::RaspberryPi3, self.title(), 1e-3, "s");
        r.push_note(
            "paper reference: mobilenet-v2 = 1.40 s (TF), 2.27 s (Caffe), 8.25 s (PyTorch)",
        );
        r.push_note(
            "paper: TF hits memory errors on AlexNet/VGG16; PyTorch survives via dynamic graph",
        );
        r
    }
}

/// Fig 4: the Jetson TX2 (milliseconds per inference).
#[derive(Debug, Clone, Copy)]
pub struct Fig4;

impl Experiment for Fig4 {
    fn id(&self) -> &'static str {
        "fig4"
    }

    fn title(&self) -> &'static str {
        "Fig 4: time per inference on Jetson TX2 across frameworks (ms)"
    }

    fn run(&self) -> Report {
        let mut r = run_device(Device::JetsonTx2, self.title(), 1.0, "ms");
        r.push_note("paper: PyTorch fastest on TX2; Caffe beats TF except MobileNet-v2");
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_tensorflow_wins_on_rpi_where_it_runs() {
        let r = Fig3.run();
        for m in ["resnet-50", "mobilenet-v2", "inception-v4"] {
            let tf: f64 = r.cell_f64(m, "tensorflow_s").unwrap();
            let pt: f64 = r.cell_f64(m, "pytorch_s").unwrap();
            assert!(tf < pt, "{m}: tf {tf} pt {pt}");
        }
    }

    #[test]
    fn fig3_memory_errors_match_paper() {
        let r = Fig3.run();
        assert_eq!(r.cell("alexnet", "tensorflow_s"), Some("mem-err"));
        assert_eq!(r.cell("vgg16", "tensorflow_s"), Some("mem-err"));
        // PyTorch runs them (slowly).
        assert!(r.cell_f64("vgg16", "pytorch_s").is_some());
    }

    #[test]
    fn fig3_mobilenet_magnitudes_match_paper() {
        // Paper: 1.40 / 2.27 / 8.25 seconds.
        let r = Fig3.run();
        let tf = r.cell_f64("mobilenet-v2", "tensorflow_s").unwrap();
        let cf = r.cell_f64("mobilenet-v2", "caffe_s").unwrap();
        let pt = r.cell_f64("mobilenet-v2", "pytorch_s").unwrap();
        assert!((0.45..4.5).contains(&tf), "tf {tf}");
        assert!(cf > tf, "caffe {cf} slower than tf {tf}");
        assert!(pt > cf, "pytorch {pt} slower than caffe {cf}");
        assert!((2.5..25.0).contains(&pt), "pt {pt}");
    }

    #[test]
    fn fig4_pytorch_wins_on_tx2() {
        let r = Fig4.run();
        for m in ["resnet-50", "inception-v4", "vgg16"] {
            let pt: f64 = r.cell_f64(m, "pytorch_ms").unwrap();
            let tf: f64 = r.cell_f64(m, "tensorflow_ms").unwrap();
            let cf: f64 = r.cell_f64(m, "caffe_ms").unwrap();
            assert!(pt < tf && pt < cf, "{m}: pt {pt} tf {tf} caffe {cf}");
        }
    }

    #[test]
    fn fig4_caffe_vs_tf_crossover_at_mobilenet() {
        let r = Fig4.run();
        let cf: f64 = r.cell_f64("mobilenet-v2", "caffe_ms").unwrap();
        let tf: f64 = r.cell_f64("mobilenet-v2", "tensorflow_ms").unwrap();
        assert!(cf > tf, "caffe {cf} must lose to tf {tf} on mobilenet-v2");
        let cf50: f64 = r.cell_f64("resnet-50", "caffe_ms").unwrap();
        let tf50: f64 = r.cell_f64("resnet-50", "tensorflow_ms").unwrap();
        assert!(cf50 < tf50);
    }

    #[test]
    fn darknet_gaps_are_marked() {
        let r = Fig3.run();
        assert_eq!(r.cell("xception", "darknet_s"), Some("n/a"));
        assert!(r.cell_f64("resnet-50", "darknet_s").is_some());
    }
}
