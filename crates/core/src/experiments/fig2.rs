//! Fig 2: time per inference on every edge device with its best-performing
//! framework.

use crate::experiments::Experiment;
use crate::report::{fmt_ms, Report};
use edgebench_devices::Device;
use edgebench_frameworks::deploy::compile;
use edgebench_frameworks::Framework;
use edgebench_models::Model;

/// The frameworks the paper deployed on each platform (Table IV): the "best
/// performing framework" of Fig 2 is chosen among these. Notably TensorRT
/// was evaluated on the Nano only — TX2 results "are with PyTorch with no
/// optimization".
fn candidates(device: Device) -> &'static [Framework] {
    use Framework::*;
    match device {
        Device::RaspberryPi3 => &[TfLite, TensorFlow, Caffe, PyTorch, DarkNet],
        Device::JetsonTx2 => &[PyTorch, TensorFlow, Caffe, DarkNet],
        Device::JetsonNano => &[TensorRt, PyTorch],
        Device::EdgeTpu => &[TfLite],
        Device::MovidiusNcs => &[Ncsdk],
        _ => &[TvmVta],
    }
}

/// Best latency among the paper's candidate frameworks for a device.
fn best_ms(model: Model, device: Device) -> Option<f64> {
    candidates(device)
        .iter()
        .filter_map(|&fw| compile(fw, model, device).ok()?.latency_ms().ok())
        .min_by(f64::total_cmp)
}

/// Paper values (ms) where the figure's data labels are legible; `None`
/// where the model/platform pair is incompatible or the label ambiguous.
fn paper_ms(device: Device, model: Model) -> Option<f64> {
    use Device::*;
    use Model::*;
    let v = match (device, model) {
        (RaspberryPi3, ResNet18) => 870.0,
        (RaspberryPi3, ResNet50) => 2460.0,
        (RaspberryPi3, MobileNetV2) => 480.0,
        (RaspberryPi3, InceptionV4) => 5510.0,
        (RaspberryPi3, AlexNet) => 2801.7,
        (RaspberryPi3, Vgg16) => 16485.0,
        (RaspberryPi3, TinyYolo) => 3246.0,
        (JetsonTx2, ResNet18) => 26.5,
        (JetsonTx2, ResNet50) => 54.3,
        (JetsonTx2, MobileNetV2) => 40.1,
        (JetsonTx2, InceptionV4) => 106.2,
        (JetsonTx2, AlexNet) => 15.6,
        (JetsonTx2, Vgg16) => 87.7,
        (JetsonTx2, SsdMobileNetV1) => 41.6,
        (JetsonTx2, TinyYolo) => 107.9,
        (JetsonTx2, C3d) => 196.8,
        (JetsonNano, ResNet18) => 23.0,
        (JetsonNano, ResNet50) => 32.0,
        (JetsonNano, MobileNetV2) => 18.0,
        (JetsonNano, InceptionV4) => 95.0,
        (JetsonNano, AlexNet) => 46.0,
        (JetsonNano, Vgg16) => 92.0,
        (JetsonNano, SsdMobileNetV1) => 32.0,
        (JetsonNano, TinyYolo) => 42.0,
        (JetsonNano, C3d) => 229.0,
        (EdgeTpu, MobileNetV2) => 2.9,
        _ => return None,
    };
    Some(v)
}

/// Fig 2 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig2;

impl Experiment for Fig2 {
    fn id(&self) -> &'static str {
        "fig2"
    }

    fn title(&self) -> &'static str {
        "Fig 2: time per inference (ms), best framework per edge device"
    }

    fn run(&self) -> Report {
        let mut cols: Vec<String> = vec!["model".to_string()];
        for &d in Device::edge_set() {
            cols.push(d.name().to_string());
            cols.push(format!("{}(paper)", d.name()));
        }
        let mut r = Report::new(self.title(), cols);
        for &m in Model::fig2_set() {
            let mut row = vec![m.name().to_string()];
            for &d in Device::edge_set() {
                let ours = best_ms(m, d).map(fmt_ms).unwrap_or_else(|| "x".to_string());
                row.push(ours);
                row.push(
                    paper_ms(d, m)
                        .map(fmt_ms)
                        .unwrap_or_else(|| "-".to_string()),
                );
            }
            r.push_row(row);
        }
        r.push_note(
            "x = incompatible (Table V); paper cells '-' where the figure's label is not legible",
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_gpu_and_asic_devices_win() {
        // Paper: "In most cases, either GPU-based devices or EdgeTPU
        // provides the best performance."
        let r = Fig2.run();
        for m in ["resnet-50", "mobilenet-v2", "inception-v4"] {
            let rpi: f64 = r.cell_f64(m, "rpi3").unwrap();
            let nano: f64 = r.cell_f64(m, "jetson-nano").unwrap();
            assert!(nano < rpi / 5.0, "{m}: nano {nano} rpi {rpi}");
        }
    }

    #[test]
    fn fig2_shape_matches_paper_within_3x() {
        // Shape fidelity: every legible paper cell is matched within ~3x.
        let r = Fig2.run();
        for &d in Device::edge_set() {
            for &m in Model::fig2_set() {
                let (Some(ours), Some(paper)) = (r.cell_f64(m.name(), d.name()), paper_ms(d, m))
                else {
                    continue;
                };
                let ratio = ours / paper;
                assert!(
                    (1.0 / 3.5..=3.5).contains(&ratio),
                    "{m} on {d}: ours {ours} vs paper {paper} (ratio {ratio:.2})"
                );
            }
        }
    }

    #[test]
    fn fig2_incompatible_cells_are_marked() {
        let r = Fig2.run();
        // SSD on RPi is code-incompatible; C3D blocked on EdgeTPU.
        assert_eq!(r.cell("ssd-mobilenet-v1", "rpi3"), Some("x"));
        assert_eq!(r.cell("c3d", "edgetpu"), Some("x"));
    }
}
