//! Table I (model inventory) and Fig 1 (models sorted by FLOP/param).

use crate::experiments::Experiment;
use crate::report::Report;
use edgebench_models::Model;

/// Table I: input size, GFLOP, parameters, FLOP/param — derived from the
/// graph builders, next to the paper's printed values.
#[derive(Debug, Clone, Copy)]
pub struct Table1;

impl Experiment for Table1 {
    fn id(&self) -> &'static str {
        "table1"
    }

    fn title(&self) -> &'static str {
        "Table I: DNN model inventory (derived vs paper)"
    }

    fn run(&self) -> Report {
        let mut r = Report::new(
            self.title(),
            [
                "model",
                "input",
                "gflop",
                "params_m",
                "flop_per_param",
                "paper_gflop",
                "paper_params_m",
            ],
        );
        for &m in Model::all() {
            let s = m.build().stats();
            let p = m.paper_ref();
            // The paper counts the YOLO/C3D rows at 2 FLOP per MAC.
            let flops_g = s.flops as f64 / 1e9 * if p.double_counted { 2.0 } else { 1.0 };
            r.push_row([
                m.name().to_string(),
                s.input_shape.to_string(),
                format!("{flops_g:.2}"),
                format!("{:.2}", s.params as f64 / 1e6),
                format!(
                    "{:.1}",
                    s.flop_per_param() * if p.double_counted { 2.0 } else { 1.0 }
                ),
                format!("{:.2}", p.flops_g),
                format!("{:.2}", p.params_m),
            ]);
        }
        r.push_note("yolov3/tinyyolo/c3d rows use the paper's 2-FLOP-per-MAC (DarkNet) convention");
        r
    }
}

/// Fig 1: models sorted by FLOP/param (compute intensity).
#[derive(Debug, Clone, Copy)]
pub struct Fig1;

impl Experiment for Fig1 {
    fn id(&self) -> &'static str {
        "fig1"
    }

    fn title(&self) -> &'static str {
        "Fig 1: models sorted by FLOP/param"
    }

    fn run(&self) -> Report {
        let mut rows: Vec<(Model, f64)> = Model::all()
            .iter()
            .map(|&m| {
                let s = m.build().stats();
                let mult = if m.paper_ref().double_counted {
                    2.0
                } else {
                    1.0
                };
                (m, s.flop_per_param() * mult)
            })
            .collect();
        rows.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut r = Report::new(self.title(), ["model", "flop_per_param"]);
        for (m, v) in rows {
            r.push_row([m.name().to_string(), format!("{v:.1}")]);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_within_tolerance_for_clean_models() {
        let r = Table1.run();
        // Models whose architectures are unambiguous must land within 6 %
        // of the paper's printed values.
        for m in [
            "resnet-18",
            "resnet-50",
            "resnet-101",
            "xception",
            "mobilenet-v2",
            "inception-v4",
            "vgg16",
            "vgg19",
        ] {
            let got = r.cell_f64(m, "gflop").unwrap();
            let want = r.cell_f64(m, "paper_gflop").unwrap();
            assert!((got - want).abs() / want < 0.06, "{m}: {got} vs {want}");
            let gp = r.cell_f64(m, "params_m").unwrap();
            let wp = r.cell_f64(m, "paper_params_m").unwrap();
            assert!((gp - wp).abs() / wp < 0.06, "{m} params: {gp} vs {wp}");
        }
    }

    #[test]
    fn fig1_order_matches_paper_extremes() {
        let r = Fig1.run();
        // Paper Fig 1: VGG-S 32x32 is the least compute-intense, C3D the most.
        assert_eq!(r.rows().first().unwrap()[0], "vgg-s-32");
        assert_eq!(r.rows().last().unwrap()[0], "c3d");
    }

    #[test]
    fn fig1_is_sorted() {
        let r = Fig1.run();
        let vals: Vec<f64> = r.rows().iter().map(|row| row[1].parse().unwrap()).collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]));
    }
}
