//! Figs 11 & 12: energy per inference across platforms, and the
//! latency-vs-active-power scatter.

use crate::experiments::Experiment;
use crate::report::{fmt_ms, Report};
use edgebench_devices::power::PowerModel;
use edgebench_devices::Device;
use edgebench_frameworks::compat::native_framework;
use edgebench_frameworks::deploy::compile;
use edgebench_frameworks::Framework;
use edgebench_models::Model;

const MODELS: [Model; 4] = [
    Model::ResNet18,
    Model::ResNet50,
    Model::MobileNetV2,
    Model::InceptionV4,
];

const DEVICES: [Device; 6] = [
    Device::RaspberryPi3,
    Device::JetsonNano,
    Device::JetsonTx2,
    Device::EdgeTpu,
    Device::MovidiusNcs,
    Device::GtxTitanX,
];

fn fw_for(device: Device) -> Framework {
    match device {
        Device::GtxTitanX => Framework::PyTorch,
        Device::RaspberryPi3 => Framework::TensorFlow,
        d => native_framework(d),
    }
}

fn energy_mj(device: Device, model: Model) -> Option<f64> {
    compile(fw_for(device), model, device)
        .ok()?
        .energy_mj()
        .ok()
}

/// Fig 11: energy per inference (mJ, log scale in the paper).
#[derive(Debug, Clone, Copy)]
pub struct Fig11;

impl Experiment for Fig11 {
    fn id(&self) -> &'static str {
        "fig11"
    }

    fn title(&self) -> &'static str {
        "Fig 11: energy per inference (mJ)"
    }

    fn run(&self) -> Report {
        let mut cols = vec!["model".to_string()];
        cols.extend(DEVICES.iter().map(|d| format!("{}_mj", d.name())));
        let mut r = Report::new(self.title(), cols);
        for m in MODELS {
            let mut row = vec![m.name().to_string()];
            for d in DEVICES {
                row.push(
                    energy_mj(d, m)
                        .map(fmt_ms)
                        .unwrap_or_else(|| "x".to_string()),
                );
            }
            r.push_row(row);
        }
        r.push_note("paper anchors: edgetpu/mobilenet-v2 ≈ 11 mJ; tx2 0.3–1 J; nano 84 mJ–0.5 J; gtx 1–5 J; rpi highest");
        r
    }
}

/// Fig 12: inference time vs active power (both log in the paper).
#[derive(Debug, Clone, Copy)]
pub struct Fig12;

impl Experiment for Fig12 {
    fn id(&self) -> &'static str {
        "fig12"
    }

    fn title(&self) -> &'static str {
        "Fig 12: inference time (ms) vs active power (W)"
    }

    fn run(&self) -> Report {
        let mut r = Report::new(self.title(), ["device", "model", "power_w", "latency_ms"]);
        for d in DEVICES {
            let p = PowerModel::for_device(d).active_w();
            for m in MODELS {
                let Some(ms) = compile(fw_for(d), m, d)
                    .ok()
                    .and_then(|c| c.latency_ms().ok())
                else {
                    continue;
                };
                r.push_row([
                    d.name().to_string(),
                    m.name().to_string(),
                    format!("{p:.2}"),
                    fmt_ms(ms),
                ]);
            }
        }
        r.push_note("paper: movidius = lowest power, edgetpu = lowest latency, nano balances both");
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpi_has_the_highest_energy_per_inference() {
        let r = Fig11.run();
        for m in MODELS {
            let rpi: f64 = r.cell_f64(m.name(), "rpi3_mj").unwrap();
            for d in DEVICES.iter().skip(1) {
                if let Some(v) = r.cell_f64(m.name(), &format!("{}_mj", d.name())) {
                    assert!(rpi > v, "{m}: rpi {rpi} vs {d} {v}");
                }
            }
        }
    }

    #[test]
    fn edgetpu_mobilenet_is_the_overall_minimum() {
        // Paper: "as low as 11 mJ per inference (MobileNet-v2 on EdgeTPU)".
        let r = Fig11.run();
        let v: f64 = r.cell_f64("mobilenet-v2", "edgetpu_mj").unwrap();
        assert!((3.0..40.0).contains(&v), "{v} mJ (paper 11)");
        for row in r.rows() {
            for cell in &row[1..] {
                if let Ok(x) = cell.parse::<f64>() {
                    assert!(x >= v, "{cell} beats edgetpu/mobilenet {v}");
                }
            }
        }
    }

    #[test]
    fn tx2_saves_about_5x_energy_vs_gtx() {
        // Paper: "an average of a 5x energy savings with respect to GTX
        // Titan X" for TX2.
        let r = Fig11.run();
        let mut ratios = Vec::new();
        for m in MODELS {
            let tx2: f64 = r.cell_f64(m.name(), "jetson-tx2_mj").unwrap();
            let gtx: f64 = r.cell_f64(m.name(), "gtx-titan-x_mj").unwrap();
            ratios.push(gtx / tx2);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!((2.0..15.0).contains(&mean), "mean ratio {mean} (paper ~5)");
    }

    #[test]
    fn fig12_movidius_lowest_power_edgetpu_lowest_latency() {
        let r = Fig12.run();
        let mov_p: f64 = r
            .rows()
            .iter()
            .find(|row| row[0] == "movidius-ncs")
            .unwrap()[2]
            .parse()
            .unwrap();
        for row in r.rows() {
            if row[0] != "movidius-ncs" {
                let p: f64 = row[2].parse().unwrap();
                assert!(p > mov_p, "{}: {p} W vs movidius {mov_p} W", row[0]);
            }
        }
        let min_latency_row = r
            .rows()
            .iter()
            .min_by(|a, b| {
                a[3].parse::<f64>()
                    .unwrap()
                    .total_cmp(&b[3].parse::<f64>().unwrap())
            })
            .unwrap();
        assert_eq!(min_latency_row[0], "edgetpu");
    }
}
