//! Extension experiment: graceful degradation of collaborative edge
//! inference under deterministic fault injection.
//!
//! The paper's field scenarios (drones over a disaster area, §I) and its
//! related-work line on model distribution (§VIII, Musical Chair / MoDNN)
//! meet here: a MobileNetV2 pipeline over four Raspberry Pi 3Bs serves a
//! sustained frame stream while devices drop out at increasing rates. Two
//! recovery policies are compared at every rate — Musical-Chair-style
//! repartitioning onto the survivors versus fail-stop — yielding the
//! throughput-vs-failure-rate and recovery-latency curves.

use super::Experiment;
use crate::report::Report;
use edgebench_devices::faults::{FaultProfile, ResilientPipeline, RetryPolicy};
use edgebench_devices::offload::Link;
use edgebench_devices::Device;
use edgebench_models::Model;

/// `ext-resilience` — throughput vs failure rate and recovery latency,
/// with and without repartitioning.
pub struct ExtResilience;

/// The collaborative-Pi LAN used throughout the distributed experiments.
fn lan() -> Link {
    Link {
        uplink_mbps: 90.0,
        downlink_mbps: 90.0,
        rtt_s: 0.002,
    }
}

/// Per-frame device-dropout rates swept by the experiment.
const DROPOUT_RATES: [f64; 5] = [0.0, 0.0005, 0.001, 0.002, 0.005];

/// Frames per scenario; long enough that every non-zero rate usually
/// loses at least one device.
const FRAMES: usize = 300;

/// Base seed; each arm reuses it so the two policies face the *same*
/// fault sequence and differ only in how they recover.
const SEED: u64 = 42;

impl Experiment for ExtResilience {
    fn id(&self) -> &'static str {
        "ext-resilience"
    }

    fn title(&self) -> &'static str {
        "Extension: resilience — throughput vs failure rate, MobileNetV2 on 4x RPi3 (repartition vs fail-stop)"
    }

    fn run(&self) -> Report {
        let mut r = Report::new(
            self.title(),
            [
                "scenario",
                "dropout",
                "policy",
                "frames_ok",
                "fps",
                "completion_pct",
                "lost",
                "reparts",
                "mean_recovery_ms",
            ],
        );
        let g = Model::MobileNetV2.build();
        for rate in DROPOUT_RATES {
            for (policy_name, policy) in [
                ("repartition", RetryPolicy::default()),
                ("fail-stop", RetryPolicy::default().without_repartition()),
            ] {
                let profile = FaultProfile::none(SEED).with_device_dropout(rate);
                let rep = ResilientPipeline::new(&g, Device::RaspberryPi3, lan(), 4, profile)
                    .with_policy(policy)
                    .run(FRAMES)
                    .expect("f32 on the Pi partitions");
                r.push_row([
                    format!("drop={rate}/{policy_name}"),
                    format!("{rate}"),
                    policy_name.to_string(),
                    rep.frames_completed.to_string(),
                    format!("{:.2}", rep.throughput_fps()),
                    format!("{:.1}", rep.completion_rate() * 100.0),
                    rep.devices_lost.to_string(),
                    rep.repartitions.to_string(),
                    format!("{:.1}", rep.mean_recovery_s() * 1e3),
                ]);
            }
        }
        r.push_note("both policies face identical fault sequences (same seed); they differ only in recovery");
        r.push_note("repartitioning trades a one-off weight-reload stall for sustained degraded throughput; fail-stop forfeits the rest of the mission");
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_the_policy_cross_product() {
        let r = ExtResilience.run();
        assert_eq!(r.rows().len(), DROPOUT_RATES.len() * 2);
        // Scenario labels are unique.
        let mut labels: Vec<&String> = r.rows().iter().map(|row| &row[0]).collect();
        let n = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }

    #[test]
    fn repartitioning_dominates_fail_stop_once_devices_die() {
        let r = ExtResilience.run();
        // Row pairs share a fault sequence; wherever fail-stop lost a
        // device, the repartition arm must have completed at least as many
        // frames, and strictly more in at least one scenario.
        let mut strictly_better = false;
        for pair in r.rows().chunks(2) {
            let (repart, failstop) = (&pair[0], &pair[1]);
            let ok_r: usize = repart[3].parse().unwrap();
            let ok_f: usize = failstop[3].parse().unwrap();
            assert!(ok_r >= ok_f, "repartition {ok_r} vs fail-stop {ok_f}");
            strictly_better |= ok_r > ok_f;
        }
        assert!(
            strictly_better,
            "no scenario lost a device; raise rates or frames"
        );
    }

    #[test]
    fn zero_rate_arms_are_clean_and_identical() {
        let r = ExtResilience.run();
        let repart = &r.rows()[0];
        let failstop = &r.rows()[1];
        assert_eq!(repart[3], FRAMES.to_string());
        assert_eq!(failstop[3], FRAMES.to_string());
        assert_eq!(repart[4], failstop[4], "fps must match with no faults");
        assert_eq!(repart[7], "0");
    }
}
