//! Table V: the model × platform compatibility matrix, regenerated from
//! the mechanical rules in `edgebench-frameworks::compat`.

use crate::experiments::Experiment;
use crate::report::Report;
use edgebench_devices::Device;
use edgebench_frameworks::compat::{check, native_framework};
use edgebench_models::Model;

/// Table V experiment.
#[derive(Debug, Clone, Copy)]
pub struct Table5;

impl Experiment for Table5 {
    fn id(&self) -> &'static str {
        "table5"
    }

    fn title(&self) -> &'static str {
        "Table V: model x platform compatibility (ok / dyn / code / conv / bram / oom)"
    }

    fn run(&self) -> Report {
        let mut cols = vec!["model".to_string()];
        cols.extend(Device::edge_set().iter().map(|d| d.name().to_string()));
        let mut r = Report::new(self.title(), cols);
        for &m in Model::fig2_set() {
            let mut row = vec![m.name().to_string()];
            for &d in Device::edge_set() {
                // The RPi uses the framework that *can* run the model where
                // one exists (the paper deploys all frameworks there).
                let verdict = if d == Device::RaspberryPi3 {
                    check(edgebench_frameworks::Framework::PyTorch, m, d)
                } else {
                    check(native_framework(d), m, d)
                };
                row.push(verdict.symbol().to_string());
            }
            r.push_row(row);
        }
        r.push_note("symbols: ok=runs, dyn=dynamic-graph fallback (^), code=code incompatibility (O), conv=edgetpu conversion barrier (4), bram=fpga resource limit (^^), oom=memory error");
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table V, transcribed for the Fig 2 model set.
    fn paper_cell(m: Model, d: Device) -> &'static str {
        use Device::*;
        use Model::*;
        match (m, d) {
            (AlexNet | Vgg16 | C3d, RaspberryPi3) => "dyn",
            (SsdMobileNetV1, RaspberryPi3) => "code",
            (ResNet18 | AlexNet | TinyYolo | C3d, EdgeTpu) => "conv",
            (C3d, MovidiusNcs) => "code",
            (ResNet18, PynqZ1) => "ok",
            (_, PynqZ1) => "bram",
            _ => "ok",
        }
    }

    #[test]
    fn matrix_matches_the_paper_cell_for_cell() {
        let r = Table5.run();
        for &m in Model::fig2_set() {
            for &d in Device::edge_set() {
                let got = r.cell(m.name(), d.name()).unwrap();
                let want = paper_cell(m, d);
                assert_eq!(got, want, "{m} on {d}");
            }
        }
    }
}
