//! Fig 7: PyTorch vs TensorRT on the Jetson Nano.

use crate::experiments::{latency_ms, Experiment};
use crate::report::{fmt_ms, Report};
use edgebench_devices::Device;
use edgebench_frameworks::Framework;
use edgebench_models::Model;

/// Paper values in ms: (pytorch, tensorrt) per Fig 2/7 model.
pub(crate) fn paper_values(m: Model) -> Option<(f64, f64)> {
    use Model::*;
    Some(match m {
        ResNet18 => (141.3, 23.0),
        ResNet50 => (215.0, 32.0),
        MobileNetV2 => (118.4, 18.0),
        InceptionV4 => (292.5, 95.0),
        AlexNet => (132.1, 46.0),
        Vgg16 => (290.7, 92.0),
        SsdMobileNetV1 => (191.7, 32.0),
        TinyYolo => (123.8, 42.0),
        C3d => (555.4, 229.0),
        _ => return None,
    })
}

/// Fig 7 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig7;

impl Experiment for Fig7 {
    fn id(&self) -> &'static str {
        "fig7"
    }

    fn title(&self) -> &'static str {
        "Fig 7: Jetson Nano, PyTorch vs TensorRT (ms)"
    }

    fn run(&self) -> Report {
        let mut r = Report::new(
            self.title(),
            [
                "model",
                "pytorch_ms",
                "tensorrt_ms",
                "speedup",
                "paper_pt_ms",
                "paper_trt_ms",
                "paper_speedup",
            ],
        );
        let mut speedups = Vec::new();
        for &m in Model::fig2_set() {
            let pt = latency_ms(Framework::PyTorch, m, Device::JetsonNano).expect("runs");
            let rt = latency_ms(Framework::TensorRt, m, Device::JetsonNano).expect("runs");
            let s = pt / rt;
            speedups.push(s);
            let (ppt, prt) = paper_values(m).expect("all fig2 models have paper values");
            r.push_row([
                m.name().to_string(),
                fmt_ms(pt),
                fmt_ms(rt),
                format!("{s:.2}"),
                fmt_ms(ppt),
                fmt_ms(prt),
                format!("{:.2}", ppt / prt),
            ]);
        }
        let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
        r.push_note(format!("mean speedup {mean:.2} (paper: 4.10)"));
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensorrt_always_wins() {
        let r = Fig7.run();
        for row in r.rows() {
            let s: f64 = row[3].parse().unwrap();
            assert!(s > 1.0, "{}: {s}", row[0]);
        }
    }

    #[test]
    fn mean_speedup_in_paper_band() {
        let r = Fig7.run();
        let speedups: Vec<f64> = r.rows().iter().map(|row| row[3].parse().unwrap()).collect();
        let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
        assert!((2.0..8.0).contains(&mean), "mean {mean} vs paper 4.10");
    }

    #[test]
    fn big_memory_models_gain_less() {
        // Paper: "models with large memory footprints (AlexNet and VGG16)
        // ... achieve smaller speedups compared to other models."
        let r = Fig7.run();
        let s = |m: &str| -> f64 { r.cell_f64(m, "speedup").unwrap() };
        let small_models = (s("resnet-18") + s("resnet-50") + s("mobilenet-v2")) / 3.0;
        let big_models = (s("alexnet") + s("vgg16")) / 2.0;
        assert!(
            big_models < small_models,
            "big {big_models} small {small_models}"
        );
    }

    #[test]
    fn latencies_within_3x_of_paper() {
        let r = Fig7.run();
        for row in r.rows() {
            let (ours, paper): (f64, f64) = (row[2].parse().unwrap(), row[5].parse().unwrap());
            let ratio = ours / paper;
            assert!(
                (0.33..=3.0).contains(&ratio),
                "{}: trt {ours} vs paper {paper}",
                row[0]
            );
        }
    }
}
