//! Figs 9 & 10: single-batch inference on HPC platforms vs the Jetson TX2,
//! all through PyTorch (the paper's common framework for this study).

use crate::experiments::{latency_ms, Experiment};
use crate::report::{fmt_ms, Report};
use edgebench_devices::Device;
use edgebench_frameworks::Framework;
use edgebench_models::Model;

const MODELS: [Model; 13] = [
    Model::ResNet18,
    Model::ResNet50,
    Model::ResNet101,
    Model::MobileNetV2,
    Model::InceptionV4,
    Model::AlexNet,
    Model::Vgg16,
    Model::Vgg19,
    Model::VggS224,
    Model::VggS32,
    Model::YoloV3,
    Model::TinyYolo,
    Model::C3d,
];

const DEVICES: [Device; 5] = [
    Device::JetsonTx2,
    Device::XeonCpu,
    Device::GtxTitanX,
    Device::TitanXp,
    Device::Rtx2080,
];

/// Fig 9: absolute latency.
#[derive(Debug, Clone, Copy)]
pub struct Fig9;

impl Experiment for Fig9 {
    fn id(&self) -> &'static str {
        "fig9"
    }

    fn title(&self) -> &'static str {
        "Fig 9: edge vs HPC, PyTorch time per inference (ms)"
    }

    fn run(&self) -> Report {
        let mut cols = vec!["model".to_string()];
        cols.extend(DEVICES.iter().map(|d| format!("{}_ms", d.name())));
        let mut r = Report::new(self.title(), cols);
        for m in MODELS {
            let mut row = vec![m.name().to_string()];
            for d in DEVICES {
                let ms = latency_ms(Framework::PyTorch, m, d).expect("hpc+tx2 run everything");
                row.push(fmt_ms(ms));
            }
            r.push_row(row);
        }
        r
    }
}

/// Fig 10: speedup of each platform over the Jetson TX2, with geomean.
#[derive(Debug, Clone, Copy)]
pub struct Fig10;

impl Experiment for Fig10 {
    fn id(&self) -> &'static str {
        "fig10"
    }

    fn title(&self) -> &'static str {
        "Fig 10: speedup over Jetson TX2 (PyTorch, single batch)"
    }

    fn run(&self) -> Report {
        let mut cols = vec!["model".to_string()];
        cols.extend(DEVICES.iter().skip(1).map(|d| format!("{}_x", d.name())));
        let mut r = Report::new(self.title(), cols);
        let mut logs: Vec<f64> = Vec::new();
        for m in MODELS {
            let tx2 = latency_ms(Framework::PyTorch, m, Device::JetsonTx2).expect("runs");
            let mut row = vec![m.name().to_string()];
            for d in DEVICES.iter().skip(1) {
                let ms = latency_ms(Framework::PyTorch, m, *d).expect("runs");
                let s = tx2 / ms;
                if d.spec().category == edgebench_devices::DeviceCategory::HpcGpu {
                    logs.push(s.ln());
                }
                row.push(format!("{s:.2}"));
            }
            r.push_row(row);
        }
        let geomean = (logs.iter().sum::<f64>() / logs.len() as f64).exp();
        r.push_note(format!(
            "geomean HPC-GPU speedup over TX2: {geomean:.2} (paper: ~3x average, geomean 2.99)"
        ));
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpc_gpus_beat_tx2_but_only_by_single_digits() {
        // The paper's headline: single-batch speedup over TX2 is "only 3x".
        let r = Fig10.run();
        let mut logs = Vec::new();
        for row in r.rows() {
            for col in ["gtx-titan-x_x", "titan-xp_x", "rtx-2080_x"] {
                let s: f64 = r.cell_f64(&row[0], col).unwrap();
                logs.push(s.ln());
            }
        }
        let geomean = (logs.iter().sum::<f64>() / logs.len() as f64).exp();
        assert!(
            (1.5..6.0).contains(&geomean),
            "geomean {geomean} (paper 2.99)"
        );
    }

    #[test]
    fn xeon_is_not_a_good_single_batch_machine() {
        // Paper: "on several benchmarks, the Xeon CPU performance is lower
        // than that of all platforms" — compute-bound models suffer.
        let r = Fig10.run();
        for m in ["resnet-50", "inception-v4", "c3d"] {
            let s: f64 = r.cell_f64(m, "xeon_x").unwrap();
            let g: f64 = r.cell_f64(m, "gtx-titan-x_x").unwrap();
            assert!(s < g, "{m}: xeon {s} should trail gtx {g}");
        }
    }

    #[test]
    fn memory_bound_models_gain_most_on_hpc_gpus() {
        // Paper: "benchmarks with large memory footprint such as VGG models
        // and C3D generally achieve higher speedups" (bigger caches/BW).
        let r = Fig10.run();
        let vgg: f64 = r.cell_f64("vgg16", "rtx-2080_x").unwrap();
        let res: f64 = r.cell_f64("resnet-50", "rtx-2080_x").unwrap();
        assert!(vgg > res, "vgg16 {vgg} vs resnet-50 {res}");
    }

    #[test]
    fn fig9_tx2_is_tens_of_ms() {
        let r = Fig9.run();
        let v: f64 = r.cell_f64("resnet-50", "jetson-tx2_ms").unwrap();
        assert!((15.0..160.0).contains(&v), "{v} (paper 54.3)");
    }
}
