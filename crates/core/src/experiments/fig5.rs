//! Fig 5: software-stack profiles of PyTorch and TensorFlow on the
//! Raspberry Pi (30 inferences) and the Jetson TX2 (1000 inferences).

use crate::experiments::Experiment;
use crate::report::Report;
use edgebench_devices::Device;
use edgebench_frameworks::deploy::compile;
use edgebench_frameworks::{stack, Framework};
use edgebench_models::Model;

/// Fig 5 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig5;

/// The paper profiles 30 inferences on the RPi and 1000 on the TX2 (§VI-B3).
fn inferences_for(device: Device) -> usize {
    if device == Device::RaspberryPi3 {
        30
    } else {
        1000
    }
}

impl Experiment for Fig5 {
    fn id(&self) -> &'static str {
        "fig5"
    }

    fn title(&self) -> &'static str {
        "Fig 5: software-stack profile shares (%)"
    }

    fn run(&self) -> Report {
        let mut r = Report::new(self.title(), ["stack", "category", "share_%"]);
        for (fw, device, label) in [
            (Framework::PyTorch, Device::RaspberryPi3, "(a) pytorch/rpi"),
            (
                Framework::TensorFlow,
                Device::RaspberryPi3,
                "(b) tensorflow/rpi",
            ),
            (Framework::PyTorch, Device::JetsonTx2, "(c) pytorch/tx2"),
            (
                Framework::TensorFlow,
                Device::JetsonTx2,
                "(d) tensorflow/tx2",
            ),
        ] {
            let compiled =
                compile(fw, Model::ResNet18, device).expect("resnet-18 deploys everywhere");
            let prof = stack::profile_run(&compiled, inferences_for(device)).expect("profiles");
            for s in &prof.slices {
                r.push_row([
                    label.to_string(),
                    s.category.clone(),
                    format!("{:.1}", prof.percent(&s.category)),
                ]);
            }
        }
        r.push_note("paper: (a) conv2d 81% | (b) base_layer 38%, session_run 34% | (c) data transfer 39% | (d) base_layer 51%, session_run 13%");
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn share(r: &Report, stack: &str, category: &str) -> f64 {
        r.rows()
            .iter()
            .find(|row| row[0] == stack && row[1] == category)
            .map(|row| row[2].parse().unwrap())
            .unwrap_or(0.0)
    }

    #[test]
    fn pytorch_rpi_is_conv_dominated() {
        let r = Fig5.run();
        assert!(share(&r, "(a) pytorch/rpi", "conv2d") > 50.0);
    }

    #[test]
    fn tensorflow_pays_graph_setup_on_both_hosts() {
        let r = Fig5.run();
        // RPi: 30-inference run can't amortize graph construction.
        assert!(share(&r, "(b) tensorflow/rpi", "graph_setup") > 10.0);
        // TX2: compute shrinks so setup still shows even over 1000 runs.
        assert!(share(&r, "(d) tensorflow/tx2", "graph_setup") > 5.0);
    }

    #[test]
    fn gpu_compute_share_is_smaller_than_cpu() {
        let r = Fig5.run();
        let cpu = share(&r, "(a) pytorch/rpi", "conv2d");
        let gpu = share(&r, "(c) pytorch/tx2", "conv2d");
        assert!(gpu < cpu, "gpu {gpu}% vs cpu {cpu}%");
    }

    #[test]
    fn tx2_pytorch_shows_data_transfer() {
        let r = Fig5.run();
        assert!(share(&r, "(c) pytorch/tx2", "data_transfer") > 5.0);
    }
}
