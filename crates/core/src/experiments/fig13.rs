//! Fig 13: bare-metal vs Docker inference time on the Raspberry Pi.

use crate::experiments::Experiment;
use crate::report::Report;
use edgebench_devices::Device;
use edgebench_frameworks::deploy::compile;
use edgebench_frameworks::Framework;
use edgebench_measure::docker::Virtualization;
use edgebench_models::Model;

const MODELS: [Model; 5] = [
    Model::ResNet18,
    Model::ResNet50,
    Model::MobileNetV2,
    Model::InceptionV4,
    Model::TinyYolo,
];

/// Paper values in seconds: (bare metal, docker).
fn paper_values(m: Model) -> (f64, f64) {
    use Model::*;
    match m {
        ResNet18 => (1.01, 1.06),
        ResNet50 => (3.15, 3.18),
        MobileNetV2 => (1.07, 1.10),
        InceptionV4 => (9.31, 9.54),
        TinyYolo => (0.96, 0.96),
        _ => unreachable!("fig13 uses five models"),
    }
}

/// Fig 13 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig13;

impl Experiment for Fig13 {
    fn id(&self) -> &'static str {
        "fig13"
    }

    fn title(&self) -> &'static str {
        "Fig 13: RPi bare metal vs Docker (s)"
    }

    fn run(&self) -> Report {
        let mut r = Report::new(
            self.title(),
            [
                "model",
                "bare_s",
                "docker_s",
                "slowdown_%",
                "paper_bare_s",
                "paper_docker_s",
                "paper_slowdown_%",
            ],
        );
        for m in MODELS {
            let c = compile(Framework::TensorFlow, m, Device::RaspberryPi3).expect("deploys");
            let bare = Virtualization::BareMetal.latency_s(&c).expect("runs");
            let dock = Virtualization::Docker.latency_s(&c).expect("runs");
            let (pb, pd) = paper_values(m);
            r.push_row([
                m.name().to_string(),
                format!("{bare:.2}"),
                format!("{dock:.2}"),
                format!("{:.1}", 100.0 * (dock / bare - 1.0)),
                format!("{pb:.2}"),
                format!("{pd:.2}"),
                format!("{:.1}", 100.0 * (pd / pb - 1.0)),
            ]);
        }
        r.push_note("paper: 'the overhead is almost negligible, within 5%, in all cases'");
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_is_within_5_percent_everywhere() {
        let r = Fig13.run();
        for row in r.rows() {
            let s: f64 = row[3].parse().unwrap();
            assert!((0.0..=5.0).contains(&s), "{}: {s}%", row[0]);
        }
    }

    #[test]
    fn docker_is_never_faster() {
        let r = Fig13.run();
        for row in r.rows() {
            let bare: f64 = row[1].parse().unwrap();
            let dock: f64 = row[2].parse().unwrap();
            assert!(dock >= bare);
        }
    }

    #[test]
    fn bare_metal_seconds_match_paper_scale() {
        let r = Fig13.run();
        for m in MODELS {
            let (pb, _) = paper_values(m);
            let ours: f64 = r.cell_f64(m.name(), "bare_s").unwrap();
            let ratio = ours / pb;
            assert!((0.2..=5.0).contains(&ratio), "{m}: {ours} vs paper {pb}");
        }
    }
}
