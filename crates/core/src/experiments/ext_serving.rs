//! Extension experiment: fleet serving — what the paper's single-device
//! latencies imply for a deployed inference service.
//!
//! The paper characterizes one device at a time; a deployment spreads
//! replicas behind a router and faces open-loop traffic with an SLO.
//! This experiment drives two MobileNetV2 fleets — a homogeneous
//! 3× Jetson Nano rack and a heterogeneous RPi3 + Nano + TX2 mix — with
//! Poisson traffic across offered rates, comparing dynamic batching
//! (off/on) and routing (round-robin vs least-expected-latency) by the
//! largest rate each configuration sustains under a 100 ms p99 SLO.

use super::Experiment;
use crate::report::Report;
use crate::serve::{Fleet, ReplicaSpec, RoutePolicy, ServeConfig};
use edgebench_devices::Device;
use edgebench_models::Model;

/// `ext-serving` — max sustainable QPS per fleet × routing × batching arm.
pub struct ExtServing;

/// p99 latency objective, milliseconds.
const SLO_MS: f64 = 100.0;

/// Offered Poisson rates probed per arm, requests per second.
const RATES: [f64; 8] = [25.0, 50.0, 100.0, 150.0, 250.0, 400.0, 700.0, 1000.0];

/// Requests per probe.
const REQUESTS: usize = 800;

/// The two fleets under test, as `(label, specs)`.
fn fleets() -> Vec<(&'static str, Vec<ReplicaSpec>)> {
    let nano = ReplicaSpec::best_for(Model::MobileNetV2, Device::JetsonNano)
        .expect("nano serves mobilenet");
    let rpi = ReplicaSpec::best_for(Model::MobileNetV2, Device::RaspberryPi3)
        .expect("rpi serves mobilenet");
    let tx2 =
        ReplicaSpec::best_for(Model::MobileNetV2, Device::JetsonTx2).expect("tx2 serves mobilenet");
    vec![
        ("3x-nano", vec![nano; 3]),
        ("rpi3+nano+tx2", vec![rpi, nano, tx2]),
    ]
}

impl Experiment for ExtServing {
    fn id(&self) -> &'static str {
        "ext-serving"
    }

    fn title(&self) -> &'static str {
        "Extension: serving — max sustainable QPS under a 100 ms p99 SLO (batching x routing x fleet)"
    }

    fn run(&self) -> Report {
        let mut r = Report::new(
            self.title(),
            [
                "fleet",
                "policy",
                "batch_max",
                "max_qps",
                "p99_ms",
                "goodput_qps",
                "shed_rate",
            ],
        );
        for (label, specs) in fleets() {
            let fleet = Fleet::new(specs).expect("all replicas deploy");
            for policy in [RoutePolicy::RoundRobin, RoutePolicy::LeastExpectedLatency] {
                for batch_max in [1usize, 8] {
                    let cfg = ServeConfig::new(SLO_MS)
                        .with_policy(policy)
                        .with_batch_max(batch_max);
                    let scan = fleet
                        .qps_scan(&RATES, REQUESTS, &cfg, 1)
                        .expect("positive rates");
                    // Report the best sustainable probe (or the lowest rate's
                    // numbers when nothing sustains).
                    let best = scan
                        .probes
                        .iter()
                        .rev()
                        .find(|p| p.sustainable)
                        .unwrap_or(&scan.probes[0]);
                    r.push_row([
                        label.to_string(),
                        policy.name().to_string(),
                        batch_max.to_string(),
                        scan.max_sustainable_qps()
                            .map(|q| format!("{q:.0}"))
                            .unwrap_or_else(|| "-".to_string()),
                        format!("{:.1}", best.p99_ms),
                        format!("{:.1}", best.goodput_qps),
                        format!("{:.4}", best.shed_rate),
                    ]);
                }
            }
        }
        r.push_note(
            "sustainable = p99 within SLO, <=1% shed, nothing lost; rates probed: 25..1000 QPS",
        );
        r.push_note("dynamic batching amortizes per-inference time; least-expected-latency keeps the RPi3 from dragging the heterogeneous fleet's tail");
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_qps(rows: &[Vec<String>], fleet: &str, policy: &str, batch: &str) -> f64 {
        rows.iter()
            .find(|row| row[0] == fleet && row[1] == policy && row[2] == batch)
            .map(|row| row[3].parse().unwrap_or(0.0))
            .expect("arm present")
    }

    #[test]
    fn covers_the_full_arm_cross_product() {
        let r = ExtServing.run();
        assert_eq!(r.rows().len(), 2 * 2 * 2);
    }

    #[test]
    fn batching_raises_sustainable_qps_on_the_nano_rack() {
        let r = ExtServing.run();
        let b1 = max_qps(r.rows(), "3x-nano", "least-expected-latency", "1");
        let b8 = max_qps(r.rows(), "3x-nano", "least-expected-latency", "8");
        assert!(b8 > b1, "batch-8 {b8} QPS vs batch-1 {b1} QPS");
    }

    #[test]
    fn heterogeneity_aware_routing_beats_round_robin() {
        let r = ExtServing.run();
        let rr = max_qps(r.rows(), "rpi3+nano+tx2", "round-robin", "8");
        let lel = max_qps(r.rows(), "rpi3+nano+tx2", "least-expected-latency", "8");
        assert!(lel > rr, "lel {lel} QPS vs round-robin {rr} QPS");
    }
}
