//! Fig 14 and Table VI: temperature behaviour under sustained Inception-v4
//! inference, and the cooling-equipment inventory.

use crate::experiments::Experiment;
use crate::report::Report;
use edgebench_devices::thermal::{ThermalEvent, ThermalSim, ThermalSpec};
use edgebench_devices::Device;
use edgebench_measure::thermal_camera::ThermalCamera;

const DEVICES: [Device; 5] = [
    Device::RaspberryPi3,
    Device::JetsonNano,
    Device::JetsonTx2,
    Device::EdgeTpu,
    Device::MovidiusNcs,
];

/// Sustained dissipation while looping Inception-v4 (the paper's heaviest
/// model): the Table III average power, except the RPi where the sustained
/// all-core NEON load draws beyond its lighter-model average.
fn sustained_power_w(d: Device) -> f64 {
    match d {
        Device::RaspberryPi3 => 3.5,
        _ => d.spec().avg_power_w,
    }
}

/// Fig 14 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig14;

impl Experiment for Fig14 {
    fn id(&self) -> &'static str {
        "fig14"
    }

    fn title(&self) -> &'static str {
        "Fig 14: temperature while executing DNNs (camera °C)"
    }

    fn run(&self) -> Report {
        let mut r = Report::new(
            self.title(),
            [
                "device",
                "idle_c",
                "peak_c",
                "steady_c",
                "fan",
                "throttled",
                "shutdown",
            ],
        );
        let mut cam = ThermalCamera::new(14);
        for d in DEVICES {
            let sim = ThermalSim::new(d);
            // Average several camera frames: single readings carry ±0.5 °C
            // sensor noise, which is wider than the smallest cross-device
            // rise gap this figure is meant to show (Movidius vs Edge TPU).
            let frames = 8;
            let idle = (0..frames).map(|_| cam.read_c(&sim)).sum::<f64>() / frames as f64;
            let spec = *sim.spec();
            let trace = sim.run_sustained(sustained_power_w(d), 2400.0, 1.0);
            let fan = trace
                .events
                .iter()
                .any(|e| matches!(e, ThermalEvent::FanOn(_, _)));
            let throttled = trace
                .events
                .iter()
                .any(|e| matches!(e, ThermalEvent::ThrottleOn(_, _)));
            let peak = trace
                .samples
                .iter()
                .map(|&(_, t)| t)
                .fold(f64::NEG_INFINITY, f64::max)
                - spec.camera_offset_c;
            r.push_row([
                d.name().to_string(),
                format!("{idle:.1}"),
                format!("{peak:.1}"),
                format!("{:.1}", trace.final_camera_temp_c(&spec)),
                if fan { "on" } else { "off" }.to_string(),
                if throttled { "yes" } else { "no" }.to_string(),
                if trace.shutdown { "yes" } else { "no" }.to_string(),
            ]);
        }
        r.push_note("paper: RPi annotates 'device shutdown'; TX2's fan keeps it below the fanless Nano; Movidius varies least");
        r
    }
}

/// Table VI experiment: cooling equipment and idle temperatures.
#[derive(Debug, Clone, Copy)]
pub struct Table6;

impl Experiment for Table6 {
    fn id(&self) -> &'static str {
        "table6"
    }

    fn title(&self) -> &'static str {
        "Table VI: cooling equipment and idle temperature"
    }

    fn run(&self) -> Report {
        let mut r = Report::new(
            self.title(),
            ["device", "heatsink", "fan", "idle_c", "paper_idle_c"],
        );
        for d in DEVICES {
            let spec = ThermalSpec::for_device(d);
            let sim = ThermalSim::new(d);
            r.push_row([
                d.name().to_string(),
                if spec.has_heatsink { "yes" } else { "no" }.to_string(),
                if spec.has_fan { "yes" } else { "no" }.to_string(),
                format!("{:.1}", sim.temp_c()),
                format!("{:.1}", spec.paper_idle_c),
            ]);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpi_shuts_down_and_only_rpi() {
        let r = Fig14.run();
        assert_eq!(r.cell("rpi3", "shutdown"), Some("yes"));
        for d in ["jetson-nano", "jetson-tx2", "edgetpu", "movidius-ncs"] {
            assert_eq!(r.cell(d, "shutdown"), Some("no"), "{d}");
        }
    }

    #[test]
    fn tx2_fan_activates_and_keeps_it_below_nano() {
        let r = Fig14.run();
        assert_eq!(r.cell("jetson-tx2", "fan"), Some("on"));
        let tx2: f64 = r.cell_f64("jetson-tx2", "steady_c").unwrap();
        let nano: f64 = r.cell_f64("jetson-nano", "steady_c").unwrap();
        assert!(tx2 < nano, "tx2 {tx2} vs nano {nano}");
    }

    #[test]
    fn movidius_has_smallest_rise() {
        let r = Fig14.run();
        // Peak rise, because the RPi's shutdown lets it cool back down.
        let rise = |d: &str| -> f64 {
            r.cell_f64(d, "peak_c").unwrap() - r.cell_f64(d, "idle_c").unwrap()
        };
        let mov = rise("movidius-ncs");
        for d in ["rpi3", "jetson-nano", "edgetpu"] {
            assert!(mov < rise(d), "{d}: movidius {mov} vs {}", rise(d));
        }
    }

    #[test]
    fn table6_idle_temps_match_paper() {
        let r = Table6.run();
        for row in r.rows() {
            let ours: f64 = row[3].parse().unwrap();
            let paper: f64 = row[4].parse().unwrap();
            assert!((ours - paper).abs() < 1.0, "{}: {ours} vs {paper}", row[0]);
        }
    }

    #[test]
    fn table6_equipment_matches_paper() {
        let r = Table6.run();
        assert_eq!(r.cell("rpi3", "heatsink"), Some("no"));
        assert_eq!(r.cell("jetson-tx2", "fan"), Some("yes"));
        assert_eq!(r.cell("jetson-nano", "fan"), Some("no"));
        assert_eq!(r.cell("movidius-ncs", "heatsink"), Some("yes"));
    }
}
