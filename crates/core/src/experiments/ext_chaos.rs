//! Extension experiment: goodput under chaos — supervision vs fail-stop.
//!
//! A fixed [`ChaosPlan`] injects kills, hangs, a panic, and payload
//! corruptions into the VGG-S-32/Nano zero-copy pipeline at scheduled
//! `(stage, frame)` coordinates. The supervised arm restarts every failed
//! stage deterministically (reattach to the live rings, resume from the
//! last committed seq, account the in-flight frame as an explicit
//! `lost@stage` event); the fail-stop arm runs the same campaign with a
//! zero restart budget, so each first failure permanently degrades its
//! stage to a drain-and-account sink.
//!
//! Both arms replay the identical seeded trace, so the table isolates the
//! supervisor: goodput over the campaign window, availability, recovery
//! latency percentiles, and the at-most-once ledger (zero duplicated
//! seqs, every loss an explicit event). The supervised arm runs twice and
//! the report notes whether the two CSVs are byte-identical — chaos is
//! virtual-clock-driven, so they must be.

use super::Experiment;
use crate::report::Report;
use crate::runtime::{self, RuntimeConfig, RuntimeReport, SuperviseConfig};
use crate::serve::{TraceFile, Traffic};
use edgebench_devices::faults::ChaosPlan;
use edgebench_devices::Device;
use edgebench_models::Model;

/// `ext-chaos` — chaos campaign on the zero-copy pipeline.
pub struct ExtChaos;

/// Trace seed: both arms replay identical arrivals.
const SEED: u64 = 83;

/// Frames in the campaign.
const FRAMES: usize = 240;

/// Offered rate; 240 frames at 60 fps give a 4 s campaign window.
const RATE_HZ: f64 = 60.0;

/// The paper's edge pipeline pair: VGG-S-32 on the Jetson Nano.
const MODEL: Model = Model::VggS32;
const DEVICE: Device = Device::JetsonNano;

/// Restart budget per stage for the supervised arm.
const BUDGET: u32 = 3;

/// The injected campaign: five kills/hangs, one panic, two payload
/// corruptions, spread so no stage exceeds the restart budget.
const CAMPAIGN: &str = "kill@0:30,kill@1:60,corrupt@2:90,hang@2:100,kill@3:140,\
                        corrupt@3:160,hang@1:180,panic@2:205";

fn campaign() -> ChaosPlan {
    ChaosPlan::parse(CAMPAIGN).expect("curated campaign spec is well-formed")
}

fn arm_config(budget: u32) -> RuntimeConfig {
    RuntimeConfig::new(MODEL, DEVICE)
        .with_seed(SEED)
        .with_ring_capacity(16)
        .with_supervise(
            SuperviseConfig::default()
                .with_restart_budget(budget)
                .with_heartbeat_ms(80),
        )
        .with_chaos(campaign())
}

fn run_arm(budget: u32) -> RuntimeReport {
    let trace = TraceFile::generate(&Traffic::poisson(RATE_HZ, SEED), FRAMES, 0.0, SEED)
        .expect("non-empty trace");
    runtime::run_replay(&arm_config(budget), &trace).expect("chaos replay")
}

/// Completed frames per second of the *offered* campaign window, so a
/// stage that dies early cannot inflate its rate by shrinking its span.
fn goodput_over_window(r: &RuntimeReport) -> f64 {
    r.completed as f64 / (FRAMES as f64 / RATE_HZ)
}

fn recovery_cell(r: &RuntimeReport, p: f64) -> String {
    if r.recovery_ms.is_empty() {
        "-".to_string()
    } else {
        format!("{:.1}", r.recovery_ms.percentile(p))
    }
}

impl Experiment for ExtChaos {
    fn id(&self) -> &'static str {
        "ext-chaos"
    }

    fn title(&self) -> &'static str {
        "Extension: chaos campaign — supervised restart vs fail-stop on the zero-copy pipeline"
    }

    fn run(&self) -> Report {
        let mut r = Report::new(
            self.title(),
            [
                "arm",
                "offered",
                "completed",
                "lost",
                "corrupted",
                "restarts",
                "duplicates",
                "degraded_stages",
                "goodput_qps",
                "availability_pct",
                "recovery_p50_ms",
                "recovery_p95_ms",
            ],
        );
        let supervised = run_arm(BUDGET);
        let rerun = run_arm(BUDGET);
        let failstop = run_arm(0);
        for (arm, rep) in [("supervised", &supervised), ("fail-stop", &failstop)] {
            r.push_row([
                arm.to_string(),
                rep.offered.to_string(),
                rep.completed.to_string(),
                rep.lost.to_string(),
                rep.corrupted.to_string(),
                rep.restarts.to_string(),
                rep.duplicates.to_string(),
                rep.degraded.len().to_string(),
                format!("{:.2}", goodput_over_window(rep)),
                format!("{:.1}", rep.completed as f64 / rep.offered as f64 * 100.0),
                recovery_cell(rep, 50.0),
                recovery_cell(rep, 95.0),
            ]);
        }
        let plan = campaign();
        r.push_note(format!(
            "campaign `{CAMPAIGN}`: {} stage failures ({} hangs) + {} corruptions; \
             supervised arm restarts {} times within a budget of {BUDGET}/stage and \
             degrades {} stages; fail-stop degrades {}",
            plan.failure_count(),
            plan.events()
                .iter()
                .filter(|e| e.kind == edgebench_devices::faults::ChaosKind::Hang)
                .count(),
            plan.len() - plan.failure_count(),
            supervised.restarts,
            supervised.degraded.len(),
            failstop.degraded.len(),
        ));
        r.push_note(format!(
            "at-most-once: {} duplicated seqs at the gateway; every loss is an explicit \
             lost@stage event and completed+dropped+corrupted+lost == offered in both arms",
            supervised.duplicates + failstop.duplicates,
        ));
        r.push_note(format!(
            "byte-identical across reruns: {}",
            supervised.to_csv() == rerun.to_csv(),
        ));
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supervision_beats_failstop_with_no_duplicates() {
        let report = ExtChaos.run();
        let sup_good = report.cell_f64("supervised", "goodput_qps").unwrap();
        let fs_good = report.cell_f64("fail-stop", "goodput_qps").unwrap();
        assert!(
            sup_good > fs_good,
            "supervised goodput {sup_good} must beat fail-stop {fs_good}"
        );
        for arm in ["supervised", "fail-stop"] {
            assert_eq!(report.cell_f64(arm, "duplicates"), Some(0.0), "{arm}");
        }
        // Every stage recovered within budget: nothing degraded, and the
        // restart count covers every scheduled stage failure.
        assert_eq!(report.cell_f64("supervised", "degraded_stages"), Some(0.0));
        let restarts = report.cell_f64("supervised", "restarts").unwrap();
        assert_eq!(restarts as usize, campaign().failure_count());
        assert!(report.notes()[2].contains("true"), "{}", report.notes()[2]);
    }

    #[test]
    fn both_arms_conserve_every_offered_frame() {
        for budget in [BUDGET, 0] {
            let rep = run_arm(budget);
            assert_eq!(
                rep.completed + rep.dropped + rep.corrupted + rep.lost,
                rep.offered,
                "budget {budget}: conservation must hold under chaos"
            );
        }
    }
}
