//! Fig 6: TensorFlow vs PyTorch single-batch latency on the GTX Titan X.

use crate::experiments::{latency_ms, Experiment};
use crate::report::{fmt_ms, Report};
use edgebench_devices::Device;
use edgebench_frameworks::Framework;
use edgebench_models::Model;

const MODELS: [Model; 4] = [
    Model::ResNet50,
    Model::MobileNetV2,
    Model::Vgg16,
    Model::Vgg19,
];

/// Fig 6 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig6;

impl Experiment for Fig6 {
    fn id(&self) -> &'static str {
        "fig6"
    }

    fn title(&self) -> &'static str {
        "Fig 6: GTX Titan X, TensorFlow vs PyTorch (ms)"
    }

    fn run(&self) -> Report {
        let mut r = Report::new(
            self.title(),
            ["model", "pytorch_ms", "tensorflow_ms", "speedup"],
        );
        for m in MODELS {
            let pt = latency_ms(Framework::PyTorch, m, Device::GtxTitanX).expect("runs");
            let tf = latency_ms(Framework::TensorFlow, m, Device::GtxTitanX).expect("runs");
            r.push_row([
                m.name().to_string(),
                fmt_ms(pt),
                fmt_ms(tf),
                format!("{:.2}", tf / pt),
            ]);
        }
        r.push_note("paper: TF behaves the same on the HPC GPU as on TX2 — slower than PyTorch");
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pytorch_wins_on_the_hpc_gpu_too() {
        let r = Fig6.run();
        for m in MODELS {
            let s: f64 = r.cell_f64(m.name(), "speedup").unwrap();
            assert!(s > 1.0, "{m}: tf/pt speedup {s}");
            assert!(s < 30.0, "{m}: gap implausibly large ({s})");
        }
    }

    #[test]
    fn latencies_are_hpc_scale() {
        // Paper Fig 6 y-axis: tens of ms.
        let r = Fig6.run();
        let pt: f64 = r.cell_f64("resnet-50", "pytorch_ms").unwrap();
        assert!((2.0..60.0).contains(&pt), "{pt}");
    }
}
