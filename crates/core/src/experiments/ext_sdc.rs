//! Extension experiment: silent-data-corruption defense.
//!
//! The paper characterizes healthy devices; long-deployed edge hardware
//! also suffers memory bit flips (DRAM disturbance, radiation, marginal
//! cells) that silently corrupt resident weights and in-flight
//! activations. This experiment runs a deterministic bit-flip campaign
//! against CifarNet — the seeded [`MemoryFaultModel`] flips weight bits
//! cumulatively and activation bits transiently — and sweeps
//! flip rate × scrub cadence × precision with the
//! [`GuardedExecutor`] defense armed versus a defenseless baseline.
//!
//! Outputs are classified against a pristine same-seed reference run at
//! two severities: `mismatched` counts any bitwise deviation (a one-ulp
//! wobble from a low mantissa bit counts), `corrupted_served` counts
//! *decision-level* corruption — the served top-1 class changed or the
//! output went non-finite. Detection coverage and the guards-on vs
//! guards-off comparison use the decision-level count: that is the
//! corruption a deployment actually pays for, and the only kind any
//! integrity guard can hope to catch (no envelope distinguishes a
//! clean output from one perturbed by 1e-7).
//!
//! The defended arms report the deterministic recovery cost (nodes
//! repaired, bytes rewritten); the undefended arms show how one
//! persistent weight flip poisons every inference after it.

use super::Experiment;
use crate::report::Report;
use edgebench_devices::faults::MemoryFaultModel;
use edgebench_graph::Graph;
use edgebench_models::Model;
use edgebench_tensor::{ExecError, Executor, GuardConfig, GuardedExecutor, Precision, Tensor};

/// `ext-sdc` — bit-flip injection vs the integrity-guard defense.
pub struct ExtSdc;

/// Weight seed shared by the pristine reference and the victim runs.
const SEED: u64 = 7;

/// Base seed of the fault campaign's flip draws.
const FAULT_SEED: u64 = 0x5dc0;

/// Inferences per arm.
const INFERENCES: usize = 12;

/// Clean inputs used to calibrate the activation envelopes.
const CALIBRATION: usize = 3;

/// Region-id namespace offset separating activation regions from weight
/// regions (which use the bare node index).
const ACT_REGION: u64 = 1 << 32;

/// The flip rates swept, flips per byte per inference. `1e-7` is the
/// acceptance-criterion rate; `5e-6` is a heavy-corruption regime where
/// the defenseless baseline degrades wholesale.
const RATES: [f64; 2] = [1e-7, 5e-6];

/// One sweep arm: a guard configuration at one flip rate and precision.
struct Arm {
    rate: f64,
    /// Scrub cadence in inferences (ignored when `guards` is off).
    cadence: u64,
    guards: bool,
}

fn arms() -> Vec<Arm> {
    let mut v = Vec::new();
    for &rate in &RATES {
        for &cadence in &[1u64, 8] {
            v.push(Arm {
                rate,
                cadence,
                guards: true,
            });
        }
        // One defenseless baseline per rate.
        v.push(Arm {
            rate,
            cadence: 0,
            guards: false,
        });
    }
    v
}

/// Outcome counters for one arm, all deterministic counts.
#[derive(Default)]
struct ArmResult {
    weight_flips: u64,
    act_flips: u64,
    served: u64,
    /// Served outputs differing bitwise from the reference at all.
    mismatched: u64,
    /// Served outputs with decision-level corruption (top-1 changed or
    /// non-finite).
    corrupted_served: u64,
    /// Inferences refused with a typed [`ExecError::Corrupted`].
    refused: u64,
    /// Corruption signals caught: checksum mismatches + guard trips.
    detected: u64,
    repairs: u64,
    repaired_bytes: u64,
}

impl ArmResult {
    /// Fraction of corruption signals caught before (or instead of)
    /// serving a decision-corrupted answer: caught / (caught + escaped).
    /// 1.0 when the campaign produced nothing to catch.
    fn coverage(&self) -> f64 {
        let caught = self.detected as f64;
        let escaped = self.corrupted_served as f64;
        if caught + escaped == 0.0 {
            1.0
        } else {
            caught / (caught + escaped)
        }
    }
}

fn argmax(data: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in data.iter().enumerate() {
        if v > data[best] {
            best = i;
        }
    }
    best
}

/// Flips activation bits in `t` for `(inference, attempt, node)` — keyed
/// on the attempt so the post-scrub retry sees an independent (usually
/// clean) transient draw, as a real soft error would.
fn inject_activations(
    model: &MemoryFaultModel,
    inference: usize,
    attempt: u32,
    node: usize,
    t: &mut Tensor,
    count: &mut u64,
) {
    let exposure = (inference as u64) * 2 + attempt as u64;
    for flip in model.flips(ACT_REGION + node as u64, exposure, t.data().len()) {
        let word = t.data()[flip.element].to_bits() ^ (1u32 << flip.bit);
        t.data_mut()[flip.element] = f32::from_bits(word);
        *count += 1;
    }
}

fn run_arm(
    graph: &Graph,
    precision: Precision,
    inputs: &[Tensor],
    refs: &[Tensor],
    cal: &[Tensor],
    arm: &Arm,
) -> ArmResult {
    let mk = || {
        Executor::new(graph)
            .with_seed(SEED)
            .with_precision(precision)
            .prepare()
            .expect("cifarnet plan is well-formed")
    };
    let wf = MemoryFaultModel::new(FAULT_SEED, arm.rate);
    let af = MemoryFaultModel::new(FAULT_SEED ^ 0xa5a5, arm.rate);
    let mut res = ArmResult::default();
    let classify = |res: &mut ArmResult, out: &Tensor, reference: &Tensor| {
        res.served += 1;
        if out.data() != reference.data() {
            res.mismatched += 1;
        }
        if out.data().iter().any(|v| !v.is_finite())
            || argmax(out.data()) != argmax(reference.data())
        {
            res.corrupted_served += 1;
        }
    };

    if arm.guards {
        let mut guard =
            GuardedExecutor::new(mk(), GuardConfig::default().with_cadence(arm.cadence));
        let cal_refs: Vec<&Tensor> = cal.iter().collect();
        guard.calibrate(&cal_refs).expect("calibration runs clean");
        for (i, input) in inputs.iter().enumerate() {
            for node in 0..guard.inner().node_count() {
                for flip in wf.flips(node as u64, i as u64, guard.inner().param_elems(node)) {
                    if guard
                        .inner_mut()
                        .corrupt_param_bit(node, flip.element, flip.bit)
                    {
                        res.weight_flips += 1;
                    }
                }
            }
            let act_count = &mut res.act_flips;
            let out = guard.run_injected(input, &mut |attempt, node, t| {
                inject_activations(&af, i, attempt, node, t, act_count)
            });
            match out {
                Ok(out) => classify(&mut res, &out, &refs[i]),
                Err(ExecError::Corrupted { .. }) => res.refused += 1,
                Err(e) => panic!("unexpected executor error: {e}"),
            }
        }
        let stats = guard.stats();
        res.detected = stats.checksum_mismatches + stats.guard_trips;
        res.repairs = stats.repairs;
        res.repaired_bytes = stats.repaired_bytes;
    } else {
        // Defenseless baseline: same flip streams, nothing watching.
        // Weight corruption accumulates for the whole campaign.
        let mut exec = mk();
        for (i, input) in inputs.iter().enumerate() {
            for node in 0..exec.node_count() {
                for flip in wf.flips(node as u64, i as u64, exec.param_elems(node)) {
                    if exec.corrupt_param_bit(node, flip.element, flip.bit) {
                        res.weight_flips += 1;
                    }
                }
            }
            let act_count = &mut res.act_flips;
            let (out, _) = exec
                .run_observed(input, &mut |node, t| {
                    inject_activations(&af, i, 0, node, t, act_count);
                    Ok(())
                })
                .expect("nothing checks, nothing fails");
            classify(&mut res, &out, &refs[i]);
        }
    }
    res
}

impl Experiment for ExtSdc {
    fn id(&self) -> &'static str {
        "ext-sdc"
    }

    fn title(&self) -> &'static str {
        "Extension: SDC — deterministic bit-flip injection vs checksum scrubbing and activation guards"
    }

    fn run(&self) -> Report {
        let graph = Model::CifarNet.build();
        let inputs: Vec<Tensor> = (0..INFERENCES)
            .map(|i| Tensor::random([1, 3, 32, 32], 100 + i as u64))
            .collect();
        let cal: Vec<Tensor> = (0..CALIBRATION)
            .map(|i| Tensor::random([1, 3, 32, 32], 900 + i as u64))
            .collect();
        let mut r = Report::new(
            self.title(),
            [
                "precision",
                "flip_rate",
                "cadence",
                "guards",
                "weight_flips",
                "act_flips",
                "served",
                "mismatched",
                "corrupted_served",
                "refused",
                "detected",
                "repairs",
                "repaired_bytes",
                "coverage",
            ],
        );
        for &precision in &[Precision::F32, Precision::Int8] {
            // Pristine references: expected output per input, shared by
            // every arm at this precision.
            let clean = Executor::new(&graph)
                .with_seed(SEED)
                .with_precision(precision)
                .prepare()
                .expect("cifarnet plan is well-formed");
            let refs: Vec<Tensor> = inputs
                .iter()
                .map(|x| clean.run(x).expect("clean run"))
                .collect();
            for arm in arms() {
                let res = run_arm(&graph, precision, &inputs, &refs, &cal, &arm);
                r.push_row([
                    match precision {
                        Precision::F32 => "f32".to_string(),
                        Precision::F16 => "f16".to_string(),
                        Precision::Int8 => "int8".to_string(),
                    },
                    format!("{:.0e}", arm.rate),
                    if arm.guards {
                        arm.cadence.to_string()
                    } else {
                        "-".to_string()
                    },
                    if arm.guards { "on" } else { "off" }.to_string(),
                    res.weight_flips.to_string(),
                    res.act_flips.to_string(),
                    res.served.to_string(),
                    res.mismatched.to_string(),
                    res.corrupted_served.to_string(),
                    res.refused.to_string(),
                    res.detected.to_string(),
                    res.repairs.to_string(),
                    res.repaired_bytes.to_string(),
                    format!("{:.4}", res.coverage()),
                ]);
            }
        }
        r.push_note(
            "campaign: cifarnet, 12 inferences/arm, seeded flips per (region, exposure); weight flips persist until repaired, activation flips are transient",
        );
        r.push_note(
            "mismatched = any bitwise deviation from the pristine same-seed reference; corrupted_served = top-1 class changed or non-finite; coverage = detected / (detected + corrupted_served)",
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The campaign is deterministic but not cheap in debug builds —
    /// compute it once and let every assertion share the report.
    fn report() -> &'static Report {
        static REPORT: OnceLock<Report> = OnceLock::new();
        REPORT.get_or_init(|| ExtSdc.run())
    }

    fn col(r: &Report, name: &str) -> usize {
        r.columns().iter().position(|c| c == name).expect("column")
    }

    #[test]
    fn covers_the_full_sweep() {
        let r = report();
        // 2 precisions x 2 rates x (2 guarded cadences + 1 baseline).
        assert_eq!(r.rows().len(), 12);
        let off = r
            .rows()
            .iter()
            .filter(|row| row[col(r, "guards")] == "off")
            .count();
        assert_eq!(off, 4);
    }

    #[test]
    fn guards_cut_corrupted_outputs_by_an_order_of_magnitude() {
        let r = report();
        let (guards, rate, cadence, corrupted, refused) = (
            col(r, "guards"),
            col(r, "flip_rate"),
            col(r, "cadence"),
            col(r, "corrupted_served"),
            col(r, "refused"),
        );
        // At the heavy rate the defenseless baseline serves wrong answers
        // wholesale; the cadence-1 defended arm serves at least 10x fewer
        // (refusing with a typed error is not serving a wrong answer).
        for precision in ["f32", "int8"] {
            let pick = |g: &str, c: &str, column: usize| -> u64 {
                r.rows()
                    .iter()
                    .find(|row| {
                        row[0] == precision
                            && row[rate] == "5e-6"
                            && row[guards] == g
                            && row[cadence] == c
                    })
                    .expect("arm present")[column]
                    .parse()
                    .unwrap()
            };
            let undefended = pick("off", "-", corrupted);
            let defended = pick("on", "1", corrupted);
            assert!(
                undefended >= 5,
                "{precision}: baseline must corrupt plenty, got {undefended}"
            );
            assert!(
                defended * 10 <= undefended,
                "{precision}: defended {defended} vs undefended {undefended}"
            );
            // Whatever the guards refused is accounted, not vanished.
            let served: u64 = pick("on", "1", col(r, "served"));
            assert_eq!(served + pick("on", "1", refused), INFERENCES as u64);
        }
    }

    #[test]
    fn cadence_one_coverage_meets_the_bar() {
        let r = report();
        let (guards, cadence, coverage) = (col(r, "guards"), col(r, "cadence"), col(r, "coverage"));
        for row in r.rows() {
            if row[guards] == "on" && row[cadence] == "1" {
                let cov: f64 = row[coverage].parse().unwrap();
                assert!(cov >= 0.99, "{}: coverage {cov}", row[0]);
            }
        }
    }

    #[test]
    fn defended_arms_actually_repair() {
        let r = report();
        let (guards, rate, repairs, bytes) = (
            col(r, "guards"),
            col(r, "flip_rate"),
            col(r, "repairs"),
            col(r, "repaired_bytes"),
        );
        for row in r.rows() {
            if row[guards] == "on" && row[rate] == "5e-6" {
                let n: u64 = row[repairs].parse().unwrap();
                let b: u64 = row[bytes].parse().unwrap();
                assert!(n > 0, "heavy-rate defended arm must repair something");
                assert!(b > 0, "repairs must rewrite bytes");
            }
        }
    }
}
