//! The experiment registry: one entry per table/figure of the paper.
//!
//! | id | paper artifact |
//! |---|---|
//! | `table1` | Table I — model FLOP/parameter inventory |
//! | `table2` | Table II — framework feature matrix |
//! | `fig1` | Fig 1 — models sorted by FLOP/param |
//! | `fig2` | Fig 2 — time per inference, best framework per edge device |
//! | `fig3` | Fig 3 — RPi cross-framework comparison |
//! | `fig4` | Fig 4 — Jetson TX2 cross-framework comparison |
//! | `fig5` | Fig 5 — software-stack profiles (PyTorch/TF × RPi/TX2) |
//! | `fig6` | Fig 6 — GTX Titan X: TensorFlow vs PyTorch |
//! | `fig7` | Fig 7 — Jetson Nano: PyTorch vs TensorRT |
//! | `fig8` | Fig 8 — RPi: PyTorch vs TensorFlow vs TFLite |
//! | `fig9` | Fig 9 — edge vs HPC latency (PyTorch) |
//! | `fig10` | Fig 10 — speedup over Jetson TX2, geomean |
//! | `fig11` | Fig 11 — energy per inference |
//! | `fig12` | Fig 12 — inference time vs active power |
//! | `fig13` | Fig 13 — bare-metal vs Docker |
//! | `fig14` | Fig 14 — temperature under sustained inference |
//! | `table3` | Table III — measured idle/average power |
//! | `table5` | Table V — model × platform compatibility |
//! | `table6` | Table VI — cooling equipment and idle temperatures |
//! | `ext-nextgen` | extension: RPi 4B / NCS2 (the paper's footnote devices) |
//! | `ext-offload` | extension: cloud-offload trade-off (paper §I motivation) |
//! | `ext-rnn` | extension: LSTM/GRU characterization (paper future work) |
//! | `ext-resilience` | extension: fault injection — throughput vs failure rate, recovery latency |
//! | `ext-serving` | extension: fleet serving — max sustainable QPS under an SLO (batching × routing) |
//! | `ext-degradation` | extension: request-level resilience — hedging, retries, breakers, precision ladder |
//! | `ext-sdc` | extension: silent-data-corruption — bit-flip injection vs integrity guards |
//! | `ext-runtime-vs-sim` | extension: zero-copy runtime — sim-predicted vs pipeline-measured latency/goodput |
//! | `ext-chaos` | extension: chaos campaign — supervised stage restart vs fail-stop goodput |
//! | `ext-geo` | extension: geo-distributed serving — SLO, energy, and carbon per request by region |

mod ext;
mod ext_chaos;
mod ext_degradation;
mod ext_geo;
mod ext_resilience;
mod ext_runtime;
mod ext_sdc;
mod ext_serving;
mod fig11_12;
mod fig13;
mod fig14;
mod fig2;
mod fig3_4;
mod fig5;
mod fig6;
mod fig7;
mod fig8;
mod fig9_10;
mod table1;
mod table2;
mod table3;
mod table5;

use crate::parallel;
use crate::report::Report;

/// One reproducible experiment from the paper's evaluation.
///
/// `Send + Sync` so the registry's run-all path can fan experiments over a
/// worker pool; implementations are stateless unit structs, which satisfy
/// both for free.
pub trait Experiment: Send + Sync {
    /// Registry id, e.g. `"fig7"`.
    fn id(&self) -> &'static str;
    /// Human-readable title.
    fn title(&self) -> &'static str;
    /// Runs the experiment, producing its report.
    fn run(&self) -> Report;
}

impl std::fmt::Debug for dyn Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Experiment({})", self.id())
    }
}

/// All experiments in paper order.
pub fn all() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(table1::Table1),
        Box::new(table1::Fig1),
        Box::new(table2::Table2),
        Box::new(fig2::Fig2),
        Box::new(fig3_4::Fig3),
        Box::new(fig3_4::Fig4),
        Box::new(fig5::Fig5),
        Box::new(fig6::Fig6),
        Box::new(fig7::Fig7),
        Box::new(fig8::Fig8),
        Box::new(fig9_10::Fig9),
        Box::new(fig9_10::Fig10),
        Box::new(fig11_12::Fig11),
        Box::new(fig11_12::Fig12),
        Box::new(fig13::Fig13),
        Box::new(fig14::Fig14),
        Box::new(fig14::Table6),
        Box::new(table3::Table3),
        Box::new(table5::Table5),
        Box::new(ext::ExtNextGen),
        Box::new(ext::ExtOffload),
        Box::new(ext::ExtRnn),
        Box::new(ext_resilience::ExtResilience),
        Box::new(ext_serving::ExtServing),
        Box::new(ext_degradation::ExtDegradation),
        Box::new(ext_sdc::ExtSdc),
        Box::new(ext_runtime::ExtRuntime),
        Box::new(ext_chaos::ExtChaos),
        Box::new(ext_geo::ExtGeo),
    ]
}

/// Looks up an experiment by id.
pub fn by_id(id: &str) -> Option<Box<dyn Experiment>> {
    all().into_iter().find(|e| e.id() == id)
}

/// Runs every registered experiment over `jobs` worker threads (`0` = the
/// OS-reported parallelism, `1` = serial), returning `(id, report)` pairs
/// in registry order regardless of worker count.
pub fn run_all(jobs: usize) -> Vec<(&'static str, Report)> {
    let exps = all();
    parallel::run_indexed(&exps, jobs, |_, e| (e.id(), e.run()))
}

/// Latency helper shared by experiments: milliseconds, or `None` when the
/// deployment is incompatible/infeasible.
pub(crate) fn latency_ms(
    fw: edgebench_frameworks::Framework,
    model: edgebench_models::Model,
    device: edgebench_devices::Device,
) -> Option<f64> {
    edgebench_frameworks::deploy::compile(fw, model, device)
        .ok()?
        .latency_ms()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_paper_artifact() {
        let ids: Vec<&str> = all().iter().map(|e| e.id()).collect();
        for want in [
            "table1",
            "table2",
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "table3",
            "table5",
            "table6",
            "ext-nextgen",
            "ext-offload",
            "ext-rnn",
            "ext-resilience",
            "ext-serving",
            "ext-degradation",
            "ext-sdc",
            "ext-runtime-vs-sim",
            "ext-chaos",
            "ext-geo",
        ] {
            assert!(ids.contains(&want), "missing {want}");
        }
        assert_eq!(ids.len(), 29);
    }

    #[test]
    fn experiments_md_documents_every_registered_id() {
        // EXPERIMENTS.md is the user-facing catalogue; registry and docs
        // must not drift apart.
        let doc = include_str!("../../../../EXPERIMENTS.md");
        for e in all() {
            let tag = format!("`{}`", e.id());
            assert!(doc.contains(&tag), "EXPERIMENTS.md is missing {tag}");
        }
        assert!(
            doc.contains(&format!("{} experiments", all().len())),
            "EXPERIMENTS.md count drifted from the registry ({})",
            all().len()
        );
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<&str> = all().iter().map(|e| e.id()).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn by_id_finds_and_misses() {
        assert!(by_id("fig7").is_some());
        assert!(by_id("fig99").is_none());
    }

    #[test]
    fn every_experiment_produces_nonempty_report() {
        for e in all() {
            let r = e.run();
            assert!(!r.rows().is_empty(), "{} produced no rows", e.id());
            assert!(!r.columns().is_empty(), "{} has no columns", e.id());
        }
    }

    #[test]
    fn run_all_parallel_matches_serial_in_order_and_content() {
        let serial = run_all(1);
        let parallel = run_all(4);
        assert_eq!(serial.len(), parallel.len());
        for ((id_s, rep_s), (id_p, rep_p)) in serial.iter().zip(&parallel) {
            assert_eq!(id_s, id_p);
            assert_eq!(rep_s, rep_p, "{id_s} differs under parallel run");
        }
        // And registry order is preserved.
        let ids: Vec<&str> = all().iter().map(|e| e.id()).collect();
        assert_eq!(serial.iter().map(|(id, _)| *id).collect::<Vec<_>>(), ids);
    }
}
