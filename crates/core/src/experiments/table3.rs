//! Table III (power rows): measured idle and DNN-executing average power,
//! recorded through the simulated instruments of `edgebench-measure`.

use crate::experiments::Experiment;
use crate::report::Report;
use edgebench_devices::power::PowerModel;
use edgebench_devices::Device;
use edgebench_measure::instruments::{meter_for, PowerMeter};

/// Table III experiment.
#[derive(Debug, Clone, Copy)]
pub struct Table3;

impl Experiment for Table3 {
    fn id(&self) -> &'static str {
        "table3"
    }

    fn title(&self) -> &'static str {
        "Table III: measured idle and average power (W)"
    }

    fn run(&self) -> Report {
        let mut r = Report::new(
            self.title(),
            ["device", "idle_w", "avg_w", "paper_idle_w", "paper_avg_w"],
        );
        for &d in Device::all() {
            let model = PowerModel::for_device(d);
            let mut meter = meter_for(d, 33);
            // Average 30 one-second samples at each operating point, as the
            // paper's meters log.
            let avg_of = |meter: &mut Box<dyn PowerMeter>, p: f64| -> f64 {
                (0..30).map(|_| meter.read_w(p)).sum::<f64>() / 30.0
            };
            let idle = avg_of(&mut meter, model.idle_w());
            let active = avg_of(&mut meter, model.active_w());
            r.push_row([
                d.name().to_string(),
                format!("{idle:.2}"),
                format!("{active:.2}"),
                format!("{:.2}", d.spec().idle_power_w),
                format!("{:.2}", d.spec().avg_power_w),
            ]);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_power_matches_table_iii_within_instrument_error() {
        let r = Table3.run();
        for row in r.rows() {
            let idle: f64 = row[1].parse().unwrap();
            let p_idle: f64 = row[3].parse().unwrap();
            let avg: f64 = row[2].parse().unwrap();
            let p_avg: f64 = row[4].parse().unwrap();
            assert!(
                (idle - p_idle).abs() < 0.05 + 0.01 * p_idle,
                "{}: idle",
                row[0]
            );
            assert!((avg - p_avg).abs() < 0.05 + 0.01 * p_avg, "{}: avg", row[0]);
        }
    }

    #[test]
    fn all_ten_platforms_are_reported() {
        assert_eq!(Table3.run().rows().len(), 10);
    }
}
