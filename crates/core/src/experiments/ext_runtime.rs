//! Extension experiment: sim-vs-real serving validation.
//!
//! The serving simulator (`serve::sim`) predicts latency and goodput from
//! calibrated per-rung service tables; the zero-copy runtime
//! (`runtime::run_replay`) pushes the *same seeded trace* through the real
//! pipeline mechanics — mmap rings, futex wakeups, checksums, backpressure
//! — with virtual-time accounting built on the same tables. If the two
//! agree, the simulator's capacity predictions can be trusted for
//! deployments that use the runtime; where they diverge, the delta
//! quantifies what pure queueing models miss (pipeline hand-off ordering,
//! ring-capacity backpressure).
//!
//! Arms: a moderate-load and a near-saturation Poisson trace (runtime
//! configured to match the simulator's assumptions: zero capture and
//! preprocess cost, ample ring capacity), a 4-slot ring showing blocking
//! backpressure, and a sentry arm on a sparse-hit trace showing the
//! standby-rung energy saving the simulator's always-full-model fleet
//! cannot predict.

use super::Experiment;
use crate::report::Report;
use crate::runtime::{self, RuntimeConfig, RuntimeReport, SentryConfig};
use crate::serve::{Fleet, ReplicaSpec, ServeConfig, ServeReport, TraceFile, Traffic};
use edgebench_devices::Device;
use edgebench_models::Model;

/// `ext-runtime-vs-sim` — simulator predictions vs runtime measurements.
pub struct ExtRuntime;

/// Trace seed shared by every arm: sim and runtime replay identical
/// arrivals and identical ground-truth hit bits.
const SEED: u64 = 61;

/// Frames per arm.
const FRAMES: usize = 300;

/// The validation model/device pair for the load arms.
const MODEL: Model = Model::MobileNetV2;
/// VGG-S-32 on the Nano has a two-rung ladder (f16 full, i8 standby) whose
/// standby rung draws ~76% of the full-rung energy — the sentry arm's pair.
const SENTRY_MODEL: Model = Model::VggS32;
const DEVICE: Device = Device::JetsonNano;

fn simulate(model: Model, trace: &TraceFile) -> ServeReport {
    let spec = ReplicaSpec::best_for(model, DEVICE).expect("deployable ladder");
    let fleet = Fleet::new([spec]).expect("single-replica fleet");
    let mut cfg = ServeConfig::new(60_000.0).with_batch_max(1).with_seed(SEED);
    cfg.admission = false;
    fleet
        .serve_arrivals(&trace.arrivals_s(), &cfg)
        .expect("non-empty trace")
}

fn measure(trace: &TraceFile, cfg: &RuntimeConfig) -> RuntimeReport {
    runtime::run_replay(cfg, trace).expect("runtime replay")
}

fn delta_pct(sim: f64, real: f64) -> String {
    if sim == 0.0 {
        "-".to_string()
    } else {
        format!("{:+.1}", (real - sim) / sim * 100.0)
    }
}

fn fmt(v: f64) -> String {
    format!("{v:.2}")
}

impl Experiment for ExtRuntime {
    fn id(&self) -> &'static str {
        "ext-runtime-vs-sim"
    }

    fn title(&self) -> &'static str {
        "Extension: runtime vs sim — one seeded trace through the serving simulator and the zero-copy pipeline"
    }

    fn run(&self) -> Report {
        let mut r = Report::new(
            self.title(),
            [
                "arm",
                "p50_sim_ms",
                "p50_rt_ms",
                "p50_delta_pct",
                "p95_sim_ms",
                "p95_rt_ms",
                "p95_delta_pct",
                "goodput_sim_qps",
                "goodput_rt_qps",
                "energy_rt_mj_per_frame",
            ],
        );
        // MobileNetV2-f16 on the Nano serves one frame in ~7.3 ms: ~136
        // fps capacity. 95 and 129 fps put the queue at ~70% and ~95%
        // utilization.
        let comparable = RuntimeConfig::new(MODEL, DEVICE)
            .with_seed(SEED)
            .with_stage_costs(0, 0)
            .with_ring_capacity(64);
        for (arm, rate_hz) in [("poisson-70pct-util", 95.0), ("poisson-95pct-util", 129.0)] {
            let trace = TraceFile::generate(&Traffic::poisson(rate_hz, SEED), FRAMES, 0.0, SEED)
                .expect("trace");
            let sim = simulate(MODEL, &trace);
            let rt = measure(&trace, &comparable);
            r.push_row([
                arm.to_string(),
                fmt(sim.p50_ms()),
                fmt(rt.latencies_ms.percentile(50.0)),
                delta_pct(sim.p50_ms(), rt.latencies_ms.percentile(50.0)),
                fmt(sim.p95_ms()),
                fmt(rt.latencies_ms.percentile(95.0)),
                delta_pct(sim.p95_ms(), rt.latencies_ms.percentile(95.0)),
                fmt(sim.goodput_qps()),
                fmt(rt.goodput_qps()),
                fmt(rt.energy_per_frame_mj()),
            ]);
        }

        // A 4-slot ring at near-saturation load: blocking backpressure
        // stalls producers, which the unbounded-queue simulator never sees.
        let tight = comparable.clone().with_ring_capacity(4);
        let trace =
            TraceFile::generate(&Traffic::poisson(129.0, SEED), FRAMES, 0.0, SEED).expect("trace");
        let sim = simulate(MODEL, &trace);
        let rt = measure(&trace, &tight);
        r.push_row([
            "ring-capacity-4".to_string(),
            fmt(sim.p50_ms()),
            fmt(rt.latencies_ms.percentile(50.0)),
            delta_pct(sim.p50_ms(), rt.latencies_ms.percentile(50.0)),
            fmt(sim.p95_ms()),
            fmt(rt.latencies_ms.percentile(95.0)),
            delta_pct(sim.p95_ms(), rt.latencies_ms.percentile(95.0)),
            fmt(sim.goodput_qps()),
            fmt(rt.goodput_qps()),
            fmt(rt.energy_per_frame_mj()),
        ]);

        // Sparse-hit trace with the sentry state machine on the VGG-S-32
        // ladder: most frames run only the cheap i8 standby rung. The sim
        // row predicts the always-full-model fleet; the runtime row
        // measures the saving.
        let trace =
            TraceFile::generate(&Traffic::poisson(60.0, SEED), FRAMES, 0.05, SEED).expect("trace");
        let sentry_base = RuntimeConfig::new(SENTRY_MODEL, DEVICE)
            .with_seed(SEED)
            .with_stage_costs(0, 0)
            .with_ring_capacity(64);
        let sim = simulate(SENTRY_MODEL, &trace);
        let plain = measure(&trace, &sentry_base);
        let sentry = measure(&trace, &sentry_base.with_sentry(SentryConfig::default()));
        r.push_row([
            "sentry-sparse-hits".to_string(),
            fmt(sim.p50_ms()),
            fmt(sentry.latencies_ms.percentile(50.0)),
            delta_pct(sim.p50_ms(), sentry.latencies_ms.percentile(50.0)),
            fmt(sim.p95_ms()),
            fmt(sentry.latencies_ms.percentile(95.0)),
            delta_pct(sim.p95_ms(), sentry.latencies_ms.percentile(95.0)),
            fmt(sim.goodput_qps()),
            fmt(sentry.goodput_qps()),
            fmt(sentry.energy_per_frame_mj()),
        ]);
        r.push_note(format!(
            "sentry energy: {:.2} mJ/frame vs {:.2} always-full ({:.0}% saved); \
             {} escalations, {} stand-downs, {} missed",
            sentry.energy_per_frame_mj(),
            plain.energy_per_frame_mj(),
            (1.0 - sentry.energy_per_frame_mj() / plain.energy_per_frame_mj()) * 100.0,
            sentry.escalations,
            sentry.standdowns,
            sentry.missed_escalations,
        ));
        r.push_note(
            "sim and runtime consume the identical seeded TraceFile; runtime arms use zero \
             capture/preprocess cost so deltas isolate the pipeline mechanics"
                .to_string(),
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_tracks_sim_at_moderate_load() {
        let report = ExtRuntime.run();
        let sim = report.cell_f64("poisson-70pct-util", "p50_sim_ms").unwrap();
        let rt = report.cell_f64("poisson-70pct-util", "p50_rt_ms").unwrap();
        assert!(sim > 0.0 && rt > 0.0);
        let ratio = rt / sim;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "runtime p50 {rt} should track sim p50 {sim}"
        );
        // The sentry arm runs cheaper than the always-full prediction.
        let note = &report.notes()[0];
        assert!(note.contains("saved"), "{note}");
        assert!(note.contains("0 missed"), "{note}");
    }
}
