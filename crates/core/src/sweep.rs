//! Generic parameter sweeps over the deployment space — the "workload
//! generator + parameter sweep" half of a benchmark harness. Experiments
//! cover the paper's exact figures; sweeps let a user explore every other
//! (model × framework × device × batch) combination with one call.

use crate::parallel;
use crate::report::{fmt_mj, fmt_ms, Report};
use edgebench_devices::faults::{run_single_device, stream_seed, FaultProfile};
use edgebench_devices::Device;
use edgebench_frameworks::deploy::{compile, DeployError};
use edgebench_frameworks::Framework;
use edgebench_models::Model;

/// One result row of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Model deployed.
    pub model: Model,
    /// Framework used.
    pub framework: Framework,
    /// Target device.
    pub device: Device,
    /// Batch size.
    pub batch: usize,
    /// Latency per inference in ms, when the deployment runs.
    pub latency_ms: Option<f64>,
    /// Energy per inference in mJ, when the deployment runs.
    pub energy_mj: Option<f64>,
    /// Failure description for infeasible combinations.
    pub error: Option<String>,
    /// Degradation description when a fault profile was active and the
    /// sustained run did not stay clean (thermal shutdown, device loss,
    /// dropped frames); `None` for clean or fault-free runs.
    pub fault: Option<String>,
}

/// A cartesian sweep over models, frameworks, devices and batch sizes.
///
/// # Examples
///
/// ```
/// use edgebench::sweep::Sweep;
/// use edgebench_devices::Device;
/// use edgebench_frameworks::Framework;
/// use edgebench_models::Model;
///
/// let rows = Sweep::new()
///     .models([Model::ResNet18, Model::MobileNetV2])
///     .frameworks([Framework::PyTorch])
///     .devices([Device::JetsonTx2])
///     .run();
/// assert_eq!(rows.len(), 2);
/// assert!(rows.iter().all(|r| r.latency_ms.is_some()));
/// ```
#[derive(Debug, Clone)]
pub struct Sweep {
    models: Vec<Model>,
    frameworks: Vec<Framework>,
    devices: Vec<Device>,
    batches: Vec<usize>,
    jobs: usize,
    fault: Option<FaultProfile>,
    fault_frames: usize,
}

impl Default for Sweep {
    fn default() -> Self {
        Sweep::new()
    }
}

impl Sweep {
    /// An empty sweep (defaults: batch 1; everything else must be set).
    pub fn new() -> Self {
        Sweep {
            models: Vec::new(),
            frameworks: Vec::new(),
            devices: Vec::new(),
            batches: vec![1],
            jobs: 1,
            fault: None,
            fault_frames: 500,
        }
    }

    /// Sets the models to sweep.
    pub fn models(mut self, models: impl IntoIterator<Item = Model>) -> Self {
        self.models = models.into_iter().collect();
        self
    }

    /// Sets the frameworks to sweep.
    pub fn frameworks(mut self, fws: impl IntoIterator<Item = Framework>) -> Self {
        self.frameworks = fws.into_iter().collect();
        self
    }

    /// Sets the devices to sweep.
    pub fn devices(mut self, devices: impl IntoIterator<Item = Device>) -> Self {
        self.devices = devices.into_iter().collect();
        self
    }

    /// Sets the batch sizes to sweep (default `[1]`).
    pub fn batches(mut self, batches: impl IntoIterator<Item = usize>) -> Self {
        self.batches = batches.into_iter().collect();
        self
    }

    /// Sets how many worker threads [`Sweep::run`] may use (default 1 —
    /// fully serial; `0` asks the OS for the available parallelism).
    ///
    /// Every grid cell is an independent pure function of its coordinates,
    /// and results are ordered by cell index, so the produced rows are
    /// identical — values *and* order — for every worker count.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Attaches a fault profile: every feasible cell additionally runs a
    /// sustained, fault-injected loop of [`Sweep::fault_frames`] frames.
    /// Each cell derives its own seed from the profile's base seed and the
    /// cell coordinates, so results never depend on evaluation order or
    /// worker count. Cells that hit thermal shutdown or lose their device
    /// produce structured degraded rows — never panics.
    pub fn fault_profile(mut self, profile: FaultProfile) -> Self {
        self.fault = Some(profile);
        self
    }

    /// Sets how many sustained frames each fault-injected cell simulates
    /// (default 500).
    pub fn fault_frames(mut self, frames: usize) -> Self {
        self.fault_frames = frames;
        self
    }

    /// The cartesian product of coordinates, in sweep order.
    fn cells(&self) -> Vec<(Model, Framework, Device, usize)> {
        let mut cells = Vec::with_capacity(
            self.models.len() * self.frameworks.len() * self.devices.len() * self.batches.len(),
        );
        for &model in &self.models {
            for &fw in &self.frameworks {
                for &device in &self.devices {
                    for &batch in &self.batches {
                        cells.push((model, fw, device, batch));
                    }
                }
            }
        }
        cells
    }

    /// Deploys and measures one grid cell; with a fault profile attached,
    /// additionally simulates the sustained fault-injected loop.
    fn run_cell(
        &self,
        &(model, fw, device, batch): &(Model, Framework, Device, usize),
    ) -> SweepRow {
        // Latency and energy are both amortized over the batch: the roofline
        // reports batch-total time, and energy = power × time inherits the
        // same batch-total scale.
        let outcome: Result<(f64, f64), DeployError> = compile(fw, model, device)
            .map(|c| c.with_batch(batch))
            .and_then(|c| {
                Ok((
                    c.latency_ms()? / batch as f64,
                    c.energy_mj()? / batch as f64,
                ))
            });
        let (mut latency_ms, energy_mj, error) = match outcome {
            Ok((l, e)) => (Some(l), Some(e), None),
            Err(err) => (None, None, Some(err.to_string())),
        };
        let mut fault = None;
        if let (Some(profile), Some(l), Some(e)) = (self.fault, latency_ms, energy_mj) {
            // Per-cell seed derived from the coordinates: independent of
            // evaluation order and of which other cells are in the grid.
            let cell_seed = stream_seed(
                profile.seed,
                &[model.name(), fw.name(), device.name(), &batch.to_string()],
            );
            let base_latency_s = l * batch as f64 / 1e3;
            let active_power_w = sustained_power_w(device, e / l); // mJ/ms = W
            let run = run_single_device(
                device,
                base_latency_s,
                active_power_w,
                self.fault_frames,
                &profile.with_seed(cell_seed),
            );
            if run.frames_completed > 0 {
                // Report the degraded (e.g. throttled) mean latency.
                latency_ms = Some(run.mean_latency_s * 1e3 / batch as f64);
            }
            fault = run.status();
        }
        SweepRow {
            model,
            framework: fw,
            device,
            batch,
            latency_ms,
            energy_mj,
            error,
            fault,
        }
    }

    /// Runs the full cartesian product, fanning cells over
    /// [`Sweep::jobs`] workers. Row order never depends on the worker
    /// count.
    pub fn run(&self) -> Vec<SweepRow> {
        parallel::run_indexed(&self.cells(), self.jobs, |_, cell| self.run_cell(cell))
    }

    /// Runs the sweep and renders it as a long-form [`Report`].
    pub fn to_report(&self, title: impl Into<String>) -> Report {
        let mut r = Report::new(
            title,
            [
                "model",
                "framework",
                "device",
                "batch",
                "latency_ms",
                "energy_mj",
                "status",
            ],
        );
        for row in self.run() {
            r.push_row([
                row.model.name().to_string(),
                row.framework.name().to_string(),
                row.device.name().to_string(),
                row.batch.to_string(),
                row.latency_ms
                    .map(fmt_ms)
                    .unwrap_or_else(|| "-".to_string()),
                row.energy_mj.map(fmt_mj).unwrap_or_else(|| "-".to_string()),
                row.error.or(row.fault).unwrap_or_else(|| "ok".to_string()),
            ]);
        }
        r
    }
}

/// Sustained back-to-back looping drives the RPi's bare SoC beyond its
/// Table III single-inference draw (the same calibration as fig14's
/// sustained Inception-v4 load: 3.5 W against the 2.73 W average);
/// every other platform dissipates its inference power. Shared with the
/// fleet serving simulator ([`crate::serve`]) so both sustained paths use
/// one thermal-power model.
pub(crate) fn sustained_power_w(device: Device, inference_power_w: f64) -> f64 {
    match device {
        Device::RaspberryPi3 => inference_power_w * 3.5 / device.spec().avg_power_w,
        _ => inference_power_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_product_size() {
        let rows = Sweep::new()
            .models([Model::ResNet18, Model::MobileNetV2])
            .frameworks([Framework::PyTorch, Framework::TensorFlow])
            .devices([Device::JetsonTx2, Device::XeonCpu])
            .batches([1, 8])
            .run();
        assert_eq!(rows.len(), 2 * 2 * 2 * 2);
    }

    #[test]
    fn infeasible_combinations_carry_errors_not_panics() {
        let rows = Sweep::new()
            .models([Model::Vgg16])
            .frameworks([Framework::TensorFlow])
            .devices([Device::RaspberryPi3])
            .run();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].latency_ms.is_none());
        assert!(rows[0].error.as_deref().unwrap_or("").contains("memory"));
    }

    #[test]
    fn batch_sweep_amortizes_per_inference_latency_on_gpus() {
        let rows = Sweep::new()
            .models([Model::ResNet50])
            .frameworks([Framework::PyTorch])
            .devices([Device::GtxTitanX])
            .batches([1, 16])
            .run();
        let l1 = rows[0].latency_ms.unwrap();
        let l16 = rows[1].latency_ms.unwrap();
        assert!(l16 < l1, "batch-16 per-inference {l16} vs batch-1 {l1}");
    }

    #[test]
    fn batch_sweep_amortizes_per_inference_energy_on_gpus() {
        // Mirrors the latency test above: energy = power × batch-total time,
        // so the per-inference column must divide by batch exactly as the
        // latency column does.
        let rows = Sweep::new()
            .models([Model::ResNet50])
            .frameworks([Framework::PyTorch])
            .devices([Device::GtxTitanX])
            .batches([1, 16])
            .run();
        let e1 = rows[0].energy_mj.unwrap();
        let e16 = rows[1].energy_mj.unwrap();
        assert!(e16 < e1, "batch-16 per-inference {e16} vs batch-1 {e1}");
    }

    #[test]
    fn parallel_sweep_rows_are_identical_to_serial() {
        let sweep = Sweep::new()
            .models([Model::ResNet18, Model::MobileNetV2, Model::Vgg16])
            .frameworks([Framework::PyTorch, Framework::TensorFlow, Framework::TfLite])
            .devices([Device::JetsonTx2, Device::RaspberryPi3, Device::XeonCpu])
            .batches([1, 4]);
        let serial = sweep.clone().jobs(1).run();
        for jobs in [0, 2, 5] {
            let parallel = sweep.clone().jobs(jobs).run();
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_sweep_report_is_byte_identical_to_serial() {
        let sweep = Sweep::new()
            .models([Model::ResNet18, Model::CifarNet])
            .frameworks([Framework::PyTorch, Framework::TfLite])
            .devices([Device::RaspberryPi3, Device::JetsonNano])
            .batches([1, 8]);
        let serial = sweep.clone().jobs(1).to_report("sweep").to_table_string();
        let parallel = sweep.clone().jobs(4).to_report("sweep").to_table_string();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn fault_sweep_is_deterministic_across_worker_counts() {
        let sweep = Sweep::new()
            .models([Model::ResNet18, Model::MobileNetV2, Model::CifarNet])
            .frameworks([Framework::PyTorch, Framework::TfLite])
            .devices([Device::RaspberryPi3, Device::JetsonNano])
            .fault_profile(FaultProfile::flaky_fleet(42))
            .fault_frames(300);
        let serial = sweep.clone().jobs(1).run();
        let report = sweep.clone().jobs(1).to_report("faulty").to_table_string();
        for jobs in [2, 4] {
            assert_eq!(serial, sweep.clone().jobs(jobs).run(), "jobs={jobs}");
            assert_eq!(
                report,
                sweep
                    .clone()
                    .jobs(jobs)
                    .to_report("faulty")
                    .to_table_string(),
                "jobs={jobs}"
            );
        }
        // The flaky fleet must actually degrade something over this grid.
        assert!(serial.iter().any(|r| r.fault.is_some()));
    }

    #[test]
    fn mid_sweep_thermal_shutdown_is_a_degraded_row_not_a_panic() {
        let rows = Sweep::new()
            .models([Model::InceptionV4])
            .frameworks([Framework::PyTorch])
            .devices([Device::RaspberryPi3, Device::JetsonTx2])
            .fault_profile(FaultProfile::none(7).with_thermal(true))
            .fault_frames(2000)
            .run();
        assert_eq!(rows.len(), 2);
        let rpi = &rows[0];
        assert!(
            rpi.fault
                .as_deref()
                .unwrap_or("")
                .contains("thermal-shutdown"),
            "rpi fault: {:?}",
            rpi.fault
        );
        assert!(rpi.latency_ms.is_some(), "completed frames still reported");
        // The fan-cooled TX2 survives the same workload.
        assert!(rows[1].fault.is_none(), "tx2 fault: {:?}", rows[1].fault);
    }

    #[test]
    fn fault_free_profile_leaves_rows_clean() {
        let rows = Sweep::new()
            .models([Model::ResNet18])
            .frameworks([Framework::PyTorch])
            .devices([Device::JetsonTx2])
            .fault_profile(FaultProfile::none(1))
            .run();
        assert!(rows[0].fault.is_none());
        assert!(rows[0].error.is_none());
    }

    #[test]
    fn report_has_one_row_per_combination() {
        let r = Sweep::new()
            .models([Model::CifarNet])
            .frameworks([Framework::TfLite, Framework::PyTorch])
            .devices([Device::RaspberryPi3])
            .to_report("sweep");
        assert_eq!(r.rows().len(), 2);
        assert!(r.rows().iter().all(|row| row.last().unwrap() == "ok"));
    }
}
