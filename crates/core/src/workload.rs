//! Workload generation and queueing analysis on top of the deployment
//! model.
//!
//! The paper measures isolated single-batch latency; a deployed edge system
//! faces *arrivals* — frames from a camera, requests from sensors. This
//! module generates arrival processes (periodic and Poisson), runs them
//! through a single-server FIFO queue whose service time is the deployed
//! model's latency, and reports the latency distribution an end user
//! actually experiences. The fleet-scale serving simulator
//! ([`crate::serve`]) builds on the same [`Arrivals`] processes.

use edgebench_measure::Samples;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;

/// Error produced by workload generation and queue simulation: invalid
/// configurations are typed results, never panics (same convention as
/// `distributed::PlanError` / `offload`'s `NoInput`).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The arrival rate must be strictly positive.
    NonPositiveRate {
        /// The offending rate, requests per second.
        rate_hz: f64,
    },
    /// The service time must be strictly positive.
    NonPositiveService {
        /// The offending service time, seconds.
        service_s: f64,
    },
    /// The run must contain at least one request.
    NoRequests,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WorkloadError::NonPositiveRate { rate_hz } => {
                write!(f, "arrival rate must be positive, got {rate_hz}")
            }
            WorkloadError::NonPositiveService { service_s } => {
                write!(f, "service time must be positive, got {service_s}")
            }
            WorkloadError::NoRequests => write!(f, "need at least one request"),
        }
    }
}

impl Error for WorkloadError {}

/// An inference-request arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Fixed-rate arrivals (a camera at N fps).
    Periodic {
        /// Requests per second.
        rate_hz: f64,
    },
    /// Poisson arrivals (independent sensor events) with a seed.
    Poisson {
        /// Mean requests per second.
        rate_hz: f64,
        /// RNG seed (runs are reproducible).
        seed: u64,
    },
}

impl Arrivals {
    /// The configured mean arrival rate, requests per second.
    pub fn rate_hz(&self) -> f64 {
        match *self {
            Arrivals::Periodic { rate_hz } | Arrivals::Poisson { rate_hz, .. } => rate_hz,
        }
    }

    /// Generates the first `n` arrival timestamps, seconds.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::NonPositiveRate`] when the configured rate is not
    /// strictly positive.
    pub fn timestamps(&self, n: usize) -> Result<Vec<f64>, WorkloadError> {
        let rate_hz = self.rate_hz();
        if rate_hz <= 0.0 {
            return Err(WorkloadError::NonPositiveRate { rate_hz });
        }
        Ok(match *self {
            Arrivals::Periodic { rate_hz } => (0..n).map(|i| i as f64 / rate_hz).collect(),
            Arrivals::Poisson { rate_hz, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut t = 0.0;
                (0..n)
                    .map(|_| {
                        // Exponential inter-arrival via inverse transform.
                        let u: f64 = rng.gen_range(1e-12..1.0);
                        t += -u.ln() / rate_hz;
                        t
                    })
                    .collect()
            }
        })
    }
}

/// Latency statistics of a simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueStats {
    /// Per-request latencies (queueing + service), seconds, sorted.
    latencies: Samples,
    /// Offered load ρ = arrival rate × service time.
    pub utilization: f64,
    /// Requests that finished after their successor arrived (backlog grew).
    pub backlogged: usize,
}

impl QueueStats {
    /// The `p`-th percentile latency (`p` in 0..=100).
    ///
    /// # Panics
    ///
    /// Panics if the run produced no samples or `p` is out of range.
    pub fn percentile_s(&self, p: f64) -> f64 {
        self.latencies.percentile(p)
    }

    /// Median latency.
    pub fn p50_s(&self) -> f64 {
        self.percentile_s(50.0)
    }

    /// Tail latency.
    pub fn p99_s(&self) -> f64 {
        self.percentile_s(99.0)
    }

    /// Mean latency.
    pub fn mean_s(&self) -> f64 {
        self.latencies.mean()
    }

    /// Whether the queue is unstable (offered load ≥ 1).
    pub fn saturated(&self) -> bool {
        self.utilization >= 1.0
    }
}

/// Simulates `n` requests from `arrivals` through a FIFO single-server
/// queue with deterministic service time `service_s` (the deployed model's
/// per-inference latency).
///
/// # Errors
///
/// [`WorkloadError::NonPositiveService`] if `service_s` is not positive,
/// [`WorkloadError::NoRequests`] if `n` is zero, and any error of
/// [`Arrivals::timestamps`].
pub fn simulate_queue(
    arrivals: Arrivals,
    service_s: f64,
    n: usize,
) -> Result<QueueStats, WorkloadError> {
    if service_s <= 0.0 {
        return Err(WorkloadError::NonPositiveService { service_s });
    }
    if n == 0 {
        return Err(WorkloadError::NoRequests);
    }
    let ts = arrivals.timestamps(n)?;
    let rate = n as f64 / ts.last().unwrap().max(f64::MIN_POSITIVE);
    let mut free_at = 0.0f64;
    let mut latencies: Vec<f64> = Vec::with_capacity(n);
    let mut backlogged = 0usize;
    for (i, &arr) in ts.iter().enumerate() {
        let start = free_at.max(arr);
        let done = start + service_s;
        latencies.push(done - arr);
        if let Some(&next) = ts.get(i + 1) {
            if done > next {
                backlogged += 1;
            }
        }
        free_at = done;
    }
    Ok(QueueStats {
        latencies: Samples::from_unsorted(latencies),
        utilization: rate * service_s,
        backlogged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_underload_has_zero_queueing() {
        // 10 fps camera, 20 ms inference: every frame is served immediately.
        let s = simulate_queue(Arrivals::Periodic { rate_hz: 10.0 }, 0.020, 1000).unwrap();
        assert!((s.p50_s() - 0.020).abs() < 1e-9);
        assert!((s.p99_s() - 0.020).abs() < 1e-9);
        assert_eq!(s.backlogged, 0);
        assert!(!s.saturated());
    }

    #[test]
    fn overload_grows_without_bound() {
        // 10 fps arrivals into a 150 ms server: each frame waits longer.
        let s = simulate_queue(Arrivals::Periodic { rate_hz: 10.0 }, 0.150, 500).unwrap();
        assert!(s.saturated());
        assert!(
            s.p99_s() > 10.0 * s.p50_s() || s.p99_s() > 1.0,
            "p99 {}",
            s.p99_s()
        );
        assert!(s.backlogged > 400);
    }

    #[test]
    fn poisson_tail_exceeds_median_below_saturation() {
        // ρ = 0.6: the classic M/D/1 regime — bursty arrivals queue.
        let s = simulate_queue(
            Arrivals::Poisson {
                rate_hz: 30.0,
                seed: 7,
            },
            0.020,
            20_000,
        )
        .unwrap();
        assert!(!s.saturated(), "utilization {}", s.utilization);
        assert!(
            s.p99_s() > 1.5 * s.p50_s(),
            "p99 {} p50 {}",
            s.p99_s(),
            s.p50_s()
        );
        assert!(s.mean_s() >= 0.020);
    }

    #[test]
    fn poisson_is_reproducible_per_seed() {
        let a = simulate_queue(
            Arrivals::Poisson {
                rate_hz: 10.0,
                seed: 1,
            },
            0.05,
            100,
        )
        .unwrap();
        let b = simulate_queue(
            Arrivals::Poisson {
                rate_hz: 10.0,
                seed: 1,
            },
            0.05,
            100,
        )
        .unwrap();
        let c = simulate_queue(
            Arrivals::Poisson {
                rate_hz: 10.0,
                seed: 2,
            },
            0.05,
            100,
        )
        .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn percentiles_are_monotone() {
        let s = simulate_queue(
            Arrivals::Poisson {
                rate_hz: 40.0,
                seed: 3,
            },
            0.02,
            5000,
        )
        .unwrap();
        let mut prev = 0.0;
        for p in [0.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = s.percentile_s(p);
            assert!(v >= prev, "p{p}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn queue_composes_with_the_deployment_model() {
        // End-to-end: an EdgeTPU smart camera at 60 fps has headroom; the
        // Movidius stick at 60 fps saturates (paper Fig 2 latencies).
        use edgebench_devices::Device;
        use edgebench_frameworks::deploy::compile;
        use edgebench_frameworks::Framework;
        use edgebench_models::Model;
        let tpu_ms = compile(Framework::TfLite, Model::MobileNetV2, Device::EdgeTpu)
            .unwrap()
            .latency_ms()
            .unwrap();
        let ncs_ms = compile(Framework::Ncsdk, Model::MobileNetV2, Device::MovidiusNcs)
            .unwrap()
            .latency_ms()
            .unwrap();
        let tpu = simulate_queue(Arrivals::Periodic { rate_hz: 60.0 }, tpu_ms / 1e3, 600).unwrap();
        let ncs = simulate_queue(Arrivals::Periodic { rate_hz: 60.0 }, ncs_ms / 1e3, 600).unwrap();
        assert!(!tpu.saturated());
        assert!(ncs.saturated());
    }

    #[test]
    fn invalid_configurations_are_typed_errors_not_panics() {
        assert_eq!(
            simulate_queue(Arrivals::Periodic { rate_hz: 1.0 }, 0.0, 10),
            Err(WorkloadError::NonPositiveService { service_s: 0.0 })
        );
        assert_eq!(
            simulate_queue(Arrivals::Periodic { rate_hz: 1.0 }, 0.1, 0),
            Err(WorkloadError::NoRequests)
        );
        assert_eq!(
            Arrivals::Periodic { rate_hz: 0.0 }.timestamps(5),
            Err(WorkloadError::NonPositiveRate { rate_hz: 0.0 })
        );
        assert_eq!(
            Arrivals::Poisson {
                rate_hz: -2.0,
                seed: 1
            }
            .timestamps(5),
            Err(WorkloadError::NonPositiveRate { rate_hz: -2.0 })
        );
        // Errors render a human-readable message.
        let msg = Arrivals::Periodic { rate_hz: 0.0 }
            .timestamps(5)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("rate must be positive"), "{msg}");
    }
}
