//! Command-line runner for the experiment registry.
//!
//! ```text
//! edgebench-cli list                  # list experiment ids
//! edgebench-cli run fig7              # run one experiment
//! edgebench-cli run all               # run every experiment (default)
//! edgebench-cli run all --jobs 4      # ... on 4 worker threads
//! edgebench-cli run all --jobs 0      # ... on all available cores
//! edgebench-cli summary resnet-50     # keras-style layer table for a model
//! edgebench-cli dot mobilenet-v2      # graphviz DOT of a model
//! edgebench-cli csv fig7              # one experiment as CSV
//! edgebench-cli infer --model cifarnet --batch 8 --threads 4
//!                                     # real tensor inference on the CPU backend
//! edgebench-cli resilience --dropout 0.002 --frames 300
//!                                     # fault-injected pipeline run
//! edgebench-cli resilience --seed 7 --link-loss 0.02 --events
//!                                     # ... printing the replayable event log
//! edgebench-cli serve --devices rpi3,jetson-nano,jetson-tx2 --rate 60
//!                                     # fleet serving simulation
//! edgebench-cli serve --policy rr --batch-max 1 --trace burst --csv
//!                                     # ... as byte-stable CSV
//! edgebench-cli serve --straggler 0.05,6 --hedge-ms 2 --retry-budget 10 \
//!     --breaker --ladder --events     # full resilience layer + event log
//! edgebench-cli geo --requests 10000 --jobs 4
//!                                     # multi-region diurnal serving with
//!                                     # autoscaling, WAN spillover, carbon
//! edgebench-cli geo --no-autoscale --engine heap --csv
//!                                     # ... always-on fleet on the oracle engine
//! edgebench-cli runtime --frames 300 --rate 60 --sentry
//!                                     # zero-copy pipeline loopback, sentry mode
//! edgebench-cli runtime --procs --ring-capacity 4 --drop-oldest
//!                                     # capture/preprocess/inference/gateway as
//!                                     # four OS processes over mmap rings
//! ```
//!
//! Reports are printed in registry order for every `--jobs` value; the flag
//! only changes wall-clock time, never output. The `resilience` and `serve`
//! commands are seed-deterministic: identical flags replay identical runs.
//!
//! Argument errors are typed ([`CliError`]): every malformed invocation
//! prints what was wrong plus the command's usage line and exits non-zero.

use edgebench::experiments;
use edgebench::runtime::{
    self, DropPolicy, ExecMode, RuntimeConfig, SentryConfig, SuperviseConfig,
};
use edgebench::serve::{
    geo, BreakerConfig, EngineKind, Fleet, ReplicaSpec, RetryBudgetConfig, RoutePolicy,
    ServeConfig, TraceFile, Traffic,
};
use edgebench_devices::faults::{
    ChaosPlan, FaultProfile, MemoryFaultModel, ResilientPipeline, RetryPolicy,
};
use edgebench_devices::offload::Link;
use edgebench_devices::Device;
use edgebench_graph::viz;
use edgebench_measure::EventLog;
use edgebench_models::Model;
use edgebench_tensor::{
    ExecError, Executor, GuardConfig, GuardedExecutor, KernelKind, Precision, PreparedExecutor,
    Tensor,
};
use std::env;
use std::fmt;
use std::path::PathBuf;
use std::process::ExitCode;

/// A typed CLI argument error. Rendering one tells the user what was
/// wrong with which flag; the command wrapper appends its usage line and
/// the process exits non-zero.
#[derive(Debug, Clone, PartialEq)]
enum CliError {
    /// A flag that needs a value was last on the line.
    MissingValue {
        /// The flag, e.g. `--rate`.
        flag: String,
    },
    /// A flag value failed to parse or was out of range.
    Invalid {
        /// The flag, e.g. `--dropout`.
        flag: String,
        /// The offending value as typed.
        value: String,
        /// What the flag expects, e.g. `a probability in [0, 1]`.
        expect: &'static str,
    },
    /// A flag the command does not know.
    UnknownFlag {
        /// The subcommand, e.g. `serve`.
        command: &'static str,
        /// The unknown flag as typed.
        flag: String,
    },
    /// Two flags (or a flag and a default) that contradict each other.
    Conflict {
        /// Human-readable description of the contradiction.
        message: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingValue { flag } => write!(f, "{flag} expects a value"),
            CliError::Invalid {
                flag,
                value,
                expect,
            } => write!(f, "{flag} got '{value}', expected {expect}"),
            CliError::UnknownFlag { command, flag } => {
                write!(f, "unknown {command} flag '{flag}'")
            }
            CliError::Conflict { message } => write!(f, "{message}"),
        }
    }
}

impl CliError {
    fn invalid(flag: &str, value: &str, expect: &'static str) -> CliError {
        CliError::Invalid {
            flag: flag.to_string(),
            value: value.to_string(),
            expect,
        }
    }
}

/// The value following `args[i]`, or a [`CliError::MissingValue`].
fn flag_value<'a>(args: &'a [String], i: usize, flag: &str) -> Result<&'a str, CliError> {
    args.get(i + 1)
        .map(String::as_str)
        .ok_or_else(|| CliError::MissingValue {
            flag: flag.to_string(),
        })
}

fn parse_num<T: std::str::FromStr>(
    s: &str,
    flag: &str,
    expect: &'static str,
) -> Result<T, CliError> {
    s.parse::<T>()
        .map_err(|_| CliError::invalid(flag, s, expect))
}

/// A probability flag: a float in `[0, 1]`.
fn parse_prob(s: &str, flag: &str) -> Result<f64, CliError> {
    let p: f64 = parse_num(s, flag, "a probability in [0, 1]")?;
    if (0.0..=1.0).contains(&p) {
        Ok(p)
    } else {
        Err(CliError::invalid(flag, s, "a probability in [0, 1]"))
    }
}

fn with_model(name: Option<&str>, f: impl Fn(&edgebench_graph::Graph) -> String) -> ExitCode {
    match name.and_then(Model::from_name) {
        Some(m) => {
            print!("{}", f(&m.build()));
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown model; one of:");
            for m in Model::all() {
                eprintln!("  {m}");
            }
            ExitCode::FAILURE
        }
    }
}

/// Extracts `--jobs N` / `--jobs=N` from `args` (any position), returning
/// the worker count.
fn take_jobs_flag(args: &mut Vec<String>) -> Result<usize, CliError> {
    let mut jobs = 1usize;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--jobs" {
            let value = flag_value(args, i, "--jobs")?.to_string();
            jobs = parse_num(&value, "--jobs", "a non-negative integer")?;
            args.drain(i..i + 2);
        } else if let Some(value) = args[i].strip_prefix("--jobs=") {
            jobs = parse_num(value, "--jobs", "a non-negative integer")?;
            args.remove(i);
        } else {
            i += 1;
        }
    }
    Ok(jobs)
}

/// Everything the `resilience` subcommand needs to run, parsed and
/// validated.
#[derive(Debug, PartialEq)]
struct ResilienceRun {
    model: Model,
    device: Device,
    stages: usize,
    frames: usize,
    seed: u64,
    dropout: f64,
    link_loss: f64,
    thermal: bool,
    policy: RetryPolicy,
    show_events: bool,
}

const RESILIENCE_USAGE: &str = "usage: edgebench-cli resilience [--model M] [--device D] \
     [--stages N] [--frames N] [--seed S] [--dropout P] [--link-loss P] [--thermal] \
     [--no-repartition] [--events]";

fn parse_resilience(args: &[String]) -> Result<ResilienceRun, CliError> {
    let mut run = ResilienceRun {
        model: Model::MobileNetV2,
        device: Device::RaspberryPi3,
        stages: 4,
        frames: 300,
        seed: 42,
        dropout: 0.0,
        link_loss: 0.0,
        thermal: false,
        policy: RetryPolicy::default(),
        show_events: false,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let consumed = match flag {
            "--model" => {
                let v = flag_value(args, i, flag)?;
                run.model = Model::from_name(v).ok_or_else(|| {
                    CliError::invalid(flag, v, "a known model (see `edgebench-cli summary`)")
                })?;
                2
            }
            "--device" => {
                let v = flag_value(args, i, flag)?;
                run.device = Device::from_name(v)
                    .ok_or_else(|| CliError::invalid(flag, v, "a known device"))?;
                2
            }
            "--stages" => {
                run.stages = parse_num(
                    flag_value(args, i, flag)?,
                    flag,
                    "a positive pipeline depth",
                )?;
                2
            }
            "--frames" => {
                run.frames = parse_num(flag_value(args, i, flag)?, flag, "a frame count")?;
                2
            }
            "--seed" => {
                run.seed = parse_num(flag_value(args, i, flag)?, flag, "an integer seed")?;
                2
            }
            "--dropout" => {
                run.dropout = parse_prob(flag_value(args, i, flag)?, flag)?;
                2
            }
            "--link-loss" => {
                run.link_loss = parse_prob(flag_value(args, i, flag)?, flag)?;
                2
            }
            "--thermal" => {
                run.thermal = true;
                1
            }
            "--no-repartition" => {
                run.policy = run.policy.without_repartition();
                1
            }
            "--events" => {
                run.show_events = true;
                1
            }
            other => {
                return Err(CliError::UnknownFlag {
                    command: "resilience",
                    flag: other.to_string(),
                })
            }
        };
        i += consumed;
    }
    if run.stages == 0 {
        return Err(CliError::invalid(
            "--stages",
            "0",
            "a positive pipeline depth",
        ));
    }
    Ok(run)
}

/// Runs one fault-injected pipeline simulation from parsed flags.
fn run_resilience(args: &[String]) -> ExitCode {
    let run = match parse_resilience(args) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{RESILIENCE_USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let lan = Link {
        uplink_mbps: 90.0,
        downlink_mbps: 90.0,
        rtt_s: 0.002,
    };
    let profile = FaultProfile::none(run.seed)
        .with_device_dropout(run.dropout)
        .with_link_loss(run.link_loss)
        .with_thermal(run.thermal);
    let g = run.model.build();
    let rep = match ResilientPipeline::new(&g, run.device, lan, run.stages, profile)
        .with_policy(run.policy)
        .run(run.frames)
    {
        Ok(rep) => rep,
        Err(e) => {
            eprintln!(
                "cannot plan {} over {}x {}: {e}",
                run.model,
                run.stages,
                run.device.name()
            );
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{} over {}x {} | seed {} | dropout {} | link-loss {}{}{}",
        run.model,
        run.stages,
        run.device.name(),
        run.seed,
        run.dropout,
        run.link_loss,
        if run.thermal { " | thermal" } else { "" },
        if run.policy.repartition {
            ""
        } else {
            " | fail-stop"
        },
    );
    println!(
        "frames: {}/{} completed, {} dropped | throughput {:.2} fps | mean latency {:.1} ms",
        rep.frames_completed,
        rep.frames_attempted,
        rep.frames_dropped,
        rep.throughput_fps(),
        rep.mean_latency_s * 1e3,
    );
    println!(
        "devices lost: {} | repartitions: {} | retries: {} | mean recovery {:.1} ms | final stages: {}",
        rep.devices_lost,
        rep.repartitions,
        rep.retries,
        rep.mean_recovery_s() * 1e3,
        rep.final_stages,
    );
    if run.show_events {
        print!("{}", EventLog::from_fault_events(&rep.events).to_csv());
    }
    ExitCode::SUCCESS
}

/// Everything the `infer` subcommand needs to run, parsed and validated.
#[derive(Debug, PartialEq)]
struct InferRun {
    model: Model,
    batch: usize,
    threads: usize,
    precision: Precision,
    iters: usize,
    seed: u64,
    sparsity: f32,
    kernel: KernelKind,
    /// Seeded bit-flip rate, flips per byte per inference (0 = off).
    flip_rate: f64,
    /// Seed of the bit-flip campaign's fault streams.
    flip_seed: u64,
    /// Arm the integrity guards (checksum scrubbing, activation
    /// envelopes, retry-once recovery).
    guards: bool,
}

const INFER_USAGE: &str = "usage: edgebench-cli infer [--model M] [--batch N] [--threads N] \
     [--precision f32|f16|int8] [--iters N] [--seed S] [--sparsity P] [--kernel auto|scalar|simd] \
     [--flip-rate P] [--flip-seed S] [--guards]";

fn parse_infer(args: &[String]) -> Result<InferRun, CliError> {
    let mut run = InferRun {
        model: Model::CifarNet,
        batch: 1,
        threads: 1,
        precision: Precision::F32,
        iters: 10,
        seed: 42,
        sparsity: 0.0,
        kernel: KernelKind::Auto,
        flip_rate: 0.0,
        flip_seed: 0x5dc,
        guards: false,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let consumed = match flag {
            "--model" => {
                let v = flag_value(args, i, flag)?;
                run.model = Model::from_name(v).ok_or_else(|| {
                    CliError::invalid(flag, v, "a known model (see `edgebench-cli summary`)")
                })?;
                2
            }
            "--batch" => {
                let v = flag_value(args, i, flag)?;
                run.batch = parse_num(v, flag, "a positive batch size")?;
                if run.batch == 0 {
                    return Err(CliError::invalid(flag, v, "a positive batch size"));
                }
                2
            }
            "--threads" => {
                run.threads = parse_num(
                    flag_value(args, i, flag)?,
                    flag,
                    "an intra-op worker count (0 = all cores)",
                )?;
                2
            }
            "--precision" => {
                let v = flag_value(args, i, flag)?;
                run.precision = match v {
                    "f32" => Precision::F32,
                    "f16" => Precision::F16,
                    "int8" => Precision::Int8,
                    _ => return Err(CliError::invalid(flag, v, "one of f32, f16, int8")),
                };
                2
            }
            "--iters" => {
                let v = flag_value(args, i, flag)?;
                run.iters = parse_num(v, flag, "a positive iteration count")?;
                if run.iters == 0 {
                    return Err(CliError::invalid(flag, v, "a positive iteration count"));
                }
                2
            }
            "--seed" => {
                run.seed = parse_num(flag_value(args, i, flag)?, flag, "an integer seed")?;
                2
            }
            "--sparsity" => {
                run.sparsity = parse_prob(flag_value(args, i, flag)?, flag)? as f32;
                2
            }
            "--kernel" => {
                let v = flag_value(args, i, flag)?;
                run.kernel = KernelKind::from_name(v)
                    .ok_or_else(|| CliError::invalid(flag, v, "one of auto, scalar, simd"))?;
                2
            }
            "--flip-rate" => {
                run.flip_rate = parse_prob(flag_value(args, i, flag)?, flag)?;
                2
            }
            "--flip-seed" => {
                run.flip_seed = parse_num(flag_value(args, i, flag)?, flag, "an integer seed")?;
                2
            }
            "--guards" => {
                run.guards = true;
                1
            }
            other => {
                return Err(CliError::UnknownFlag {
                    command: "infer",
                    flag: other.to_string(),
                })
            }
        };
        i += consumed;
    }
    Ok(run)
}

/// Runs real tensor inference on the CPU backend and reports throughput.
///
/// One warmup pass populates the prepared executor's arena; the timed
/// passes then run allocation-free. The output digest is printed so users
/// can confirm that `--threads` and `--kernel` never change a single
/// output byte, and so a corrupted run (`--flip-rate` > 0, no guards) has
/// a clean baseline to diff against.
fn run_infer(args: &[String]) -> ExitCode {
    let run = match parse_infer(args) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{INFER_USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let g = match run.model.build().with_batch(run.batch) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("cannot rebatch {} to {}: {e}", run.model, run.batch);
            return ExitCode::FAILURE;
        }
    };
    let input_id = g.input_ids()[0];
    let x = Tensor::random(g.node(input_id).output_shape().clone(), run.seed ^ 1);
    let exec = Executor::new(&g)
        .with_seed(run.seed)
        .with_precision(run.precision)
        .with_weight_sparsity(run.sparsity)
        .with_intra_op_threads(run.threads)
        .with_kernel(run.kernel)
        .prepare();
    let exec = match exec {
        Ok(e) => e,
        Err(e) => {
            eprintln!("prepare failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if run.flip_rate > 0.0 || run.guards {
        return run_infer_sdc(&run, exec, &x);
    }
    let (out, stats) = match exec.run_with_stats(&x) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("inference failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let t0 = std::time::Instant::now();
    for _ in 0..run.iters {
        if let Err(e) = exec.run(&x) {
            eprintln!("inference failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    let elapsed = t0.elapsed();
    let per_iter = elapsed.as_secs_f64() / run.iters as f64;
    let checksum = edgebench_tensor::integrity::checksum_f32(out.data());
    println!(
        "{} | batch {} | {:?} | {} intra-op thread(s) | sparsity {} | kernel {}",
        run.model,
        run.batch,
        run.precision,
        edgebench_tensor::pool::effective_threads(run.threads),
        run.sparsity,
        edgebench_tensor::simd::resolve(run.kernel).name(),
    );
    println!(
        "latency {:.3} ms/batch | throughput {:.1} img/s | peak live {:.1} KiB | {} ops",
        per_iter * 1e3,
        run.batch as f64 / per_iter,
        stats.peak_live_bytes as f64 / 1024.0,
        stats.ops_executed,
    );
    println!("output checksum {checksum:016x}");
    ExitCode::SUCCESS
}

/// Flips seeded activation bits in `t` for `(iteration, attempt, node)`.
/// Activation regions live at `(1 << 32) + node` so their draws are
/// disjoint from the weight regions (bare node index).
fn flip_activation_bits(
    model: &MemoryFaultModel,
    iteration: u64,
    attempt: u32,
    node: usize,
    t: &mut Tensor,
    count: &mut u64,
) {
    let exposure = iteration * 2 + attempt as u64;
    for flip in model.flips((1 << 32) + node as u64, exposure, t.data().len()) {
        let word = t.data()[flip.element].to_bits() ^ (1u32 << flip.bit);
        t.data_mut()[flip.element] = f32::from_bits(word);
        *count += 1;
    }
}

/// Runs the seeded bit-flip campaign behind `infer --flip-rate`: weight
/// flips persist across iterations (repaired only when `--guards` arms
/// the scrubbing), activation flips are transient. Every printed count is
/// a pure function of the flags, so identical invocations replay
/// identical campaigns.
fn run_infer_sdc(run: &InferRun, exec: PreparedExecutor<'_>, x: &Tensor) -> ExitCode {
    let wf = MemoryFaultModel::new(run.flip_seed, run.flip_rate);
    let af = MemoryFaultModel::new(run.flip_seed ^ 0xa5a5, run.flip_rate);
    let mut weight_flips = 0u64;
    let mut act_flips = 0u64;
    println!(
        "{} | batch {} | {:?} | flip rate {:e}/byte/inference | seed {} | guards {}",
        run.model,
        run.batch,
        run.precision,
        run.flip_rate,
        run.flip_seed,
        if run.guards { "on" } else { "off" },
    );
    if run.guards {
        let mut guard = GuardedExecutor::new(exec, GuardConfig::default());
        let cal: Vec<Tensor> = (0..2)
            .map(|i| Tensor::random(x.shape().clone(), run.seed ^ (0x100 + i)))
            .collect();
        let cal_refs: Vec<&Tensor> = cal.iter().collect();
        if let Err(e) = guard.calibrate(&cal_refs) {
            eprintln!("calibration failed: {e}");
            return ExitCode::FAILURE;
        }
        let t0 = std::time::Instant::now();
        let (mut served, mut refused) = (0u64, 0u64);
        for i in 0..run.iters {
            for node in 0..guard.inner().node_count() {
                for flip in wf.flips(node as u64, i as u64, guard.inner().param_elems(node)) {
                    if guard
                        .inner_mut()
                        .corrupt_param_bit(node, flip.element, flip.bit)
                    {
                        weight_flips += 1;
                    }
                }
            }
            let counter = &mut act_flips;
            let res = guard.run_injected(x, &mut |attempt, node, t| {
                flip_activation_bits(&af, i as u64, attempt, node, t, counter)
            });
            match res {
                Ok(_) => served += 1,
                Err(ExecError::Corrupted { .. }) => refused += 1,
                Err(e) => {
                    eprintln!("inference failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let per_iter = t0.elapsed().as_secs_f64() / run.iters as f64;
        let s = guard.stats();
        println!(
            "latency {:.3} ms/batch | flips injected: {weight_flips} weight, {act_flips} activation",
            per_iter * 1e3,
        );
        println!(
            "served {served} | refused {refused} | scrubs {} | checksum mismatches {} | \
             repairs {} ({} bytes rewritten) | guard trips {} | retries {} | recovered {}",
            s.scrubs,
            s.checksum_mismatches,
            s.repairs,
            s.repaired_bytes,
            s.guard_trips,
            s.retries,
            s.recovered,
        );
    } else {
        let mut exec = exec;
        let t0 = std::time::Instant::now();
        let mut checksum = 0u64;
        for i in 0..run.iters {
            for node in 0..exec.node_count() {
                for flip in wf.flips(node as u64, i as u64, exec.param_elems(node)) {
                    if exec.corrupt_param_bit(node, flip.element, flip.bit) {
                        weight_flips += 1;
                    }
                }
            }
            let counter = &mut act_flips;
            let res = exec.run_observed(x, &mut |node, t| {
                flip_activation_bits(&af, i as u64, 0, node, t, counter);
                Ok(())
            });
            match res {
                Ok((out, _)) => checksum = edgebench_tensor::integrity::checksum_f32(out.data()),
                Err(e) => {
                    eprintln!("inference failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let per_iter = t0.elapsed().as_secs_f64() / run.iters as f64;
        println!(
            "latency {:.3} ms/batch | flips injected: {weight_flips} weight, {act_flips} activation",
            per_iter * 1e3,
        );
        println!(
            "final output checksum {checksum:016x} (corruption accumulates unrepaired; \
             compare against --flip-rate 0)"
        );
    }
    ExitCode::SUCCESS
}

/// Everything the `serve` subcommand needs to run, parsed and validated.
#[derive(Debug, PartialEq)]
struct ServeRun {
    model: Model,
    devices: Vec<Device>,
    replicas: usize,
    rate_hz: f64,
    trace: String,
    frames: usize,
    csv: bool,
    show_events: bool,
    cfg: ServeConfig,
}

const SERVE_USAGE: &str = "usage: edgebench-cli serve [--model M] [--devices D1,D2,..] \
     [--replicas N] [--rate HZ] [--trace steady|poisson|diurnal|burst] [--slo-ms MS] \
     [--batch-max N] [--batch-delay-ms MS] [--policy rr|jsq|lel] [--seed S] [--frames N] \
     [--dropout P] [--thermal] [--power-scale X] [--no-admission] [--straggler P,FACTOR] \
     [--loss P] [--hedge-ms MS] [--retry-budget TOKENS] [--breaker] [--ladder] [--sdc P] \
     [--no-sdc-guards] [--engine calendar|heap] [--events] [--csv]";

fn parse_serve(args: &[String]) -> Result<ServeRun, CliError> {
    let mut run = ServeRun {
        model: Model::MobileNetV2,
        devices: vec![Device::RaspberryPi3, Device::JetsonNano, Device::JetsonTx2],
        replicas: 1,
        rate_hz: 30.0,
        trace: "poisson".to_string(),
        frames: 2000,
        csv: false,
        show_events: false,
        cfg: ServeConfig::new(100.0),
    };
    let mut delay_set = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let consumed = match flag {
            "--model" => {
                let v = flag_value(args, i, flag)?;
                run.model = Model::from_name(v).ok_or_else(|| {
                    CliError::invalid(flag, v, "a known model (see `edgebench-cli summary`)")
                })?;
                2
            }
            "--devices" => {
                let list = flag_value(args, i, flag)?;
                let parsed: Option<Vec<Device>> = list.split(',').map(Device::from_name).collect();
                match parsed {
                    Some(d) if !d.is_empty() => run.devices = d,
                    _ => {
                        return Err(CliError::invalid(
                            flag,
                            list,
                            "a comma-separated list of known devices",
                        ))
                    }
                }
                2
            }
            "--replicas" => {
                let v = flag_value(args, i, flag)?;
                run.replicas = parse_num(v, flag, "a positive replica count")?;
                if run.replicas == 0 {
                    return Err(CliError::invalid(flag, v, "a positive replica count"));
                }
                2
            }
            "--rate" => {
                let v = flag_value(args, i, flag)?;
                run.rate_hz = parse_num(v, flag, "a positive rate in req/s")?;
                if run.rate_hz <= 0.0 {
                    return Err(CliError::invalid(flag, v, "a positive rate in req/s"));
                }
                2
            }
            "--trace" => {
                run.trace = flag_value(args, i, flag)?.to_string();
                2
            }
            "--slo-ms" => {
                run.cfg.slo_ms = parse_num(
                    flag_value(args, i, flag)?,
                    flag,
                    "a latency objective in ms",
                )?;
                2
            }
            "--batch-max" => {
                run.cfg.batch_max =
                    parse_num(flag_value(args, i, flag)?, flag, "a batch size limit")?;
                2
            }
            "--batch-delay-ms" => {
                run.cfg.batch_delay_ms =
                    parse_num(flag_value(args, i, flag)?, flag, "a delay in ms")?;
                delay_set = true;
                2
            }
            "--policy" => {
                let v = flag_value(args, i, flag)?;
                run.cfg.policy = RoutePolicy::from_name(v)
                    .ok_or_else(|| CliError::invalid(flag, v, "one of rr, jsq, lel"))?;
                2
            }
            "--seed" => {
                run.cfg.seed = parse_num(flag_value(args, i, flag)?, flag, "an integer seed")?;
                2
            }
            "--frames" => {
                run.frames = parse_num(flag_value(args, i, flag)?, flag, "a request count")?;
                2
            }
            "--dropout" => {
                run.cfg.replica_dropout = parse_prob(flag_value(args, i, flag)?, flag)?;
                2
            }
            "--power-scale" => {
                run.cfg.power_scale =
                    parse_num(flag_value(args, i, flag)?, flag, "a power multiplier")?;
                2
            }
            "--straggler" => {
                let v = flag_value(args, i, flag)?;
                let expect = "P,FACTOR (probability, inflation >= 1)";
                let (p_s, f_s) = v
                    .split_once(',')
                    .ok_or_else(|| CliError::invalid(flag, v, expect))?;
                let p = parse_prob(p_s, flag)?;
                let factor: f64 = parse_num(f_s, flag, expect)?;
                if factor < 1.0 {
                    return Err(CliError::invalid(flag, v, expect));
                }
                run.cfg = run.cfg.with_straggler(p, factor);
                2
            }
            "--loss" => {
                let p = parse_prob(flag_value(args, i, flag)?, flag)?;
                run.cfg = run.cfg.with_loss(p);
                2
            }
            "--hedge-ms" => {
                let v = flag_value(args, i, flag)?;
                let ms: f64 = parse_num(v, flag, "a non-negative slack in ms")?;
                if ms < 0.0 {
                    return Err(CliError::invalid(flag, v, "a non-negative slack in ms"));
                }
                run.cfg = run.cfg.with_hedge_ms(ms);
                2
            }
            "--retry-budget" => {
                let v = flag_value(args, i, flag)?;
                let tokens: f64 = parse_num(v, flag, "a positive token count")?;
                if tokens <= 0.0 {
                    return Err(CliError::invalid(flag, v, "a positive token count"));
                }
                run.cfg = run.cfg.with_retry_budget(RetryBudgetConfig {
                    initial_tokens: tokens,
                    ..RetryBudgetConfig::default()
                });
                2
            }
            "--breaker" => {
                run.cfg = run.cfg.with_breaker(BreakerConfig::default());
                1
            }
            "--ladder" => {
                run.cfg = run.cfg.with_ladder(true);
                1
            }
            "--sdc" => {
                let p = parse_prob(flag_value(args, i, flag)?, flag)?;
                run.cfg = run.cfg.with_sdc(p);
                2
            }
            "--no-sdc-guards" => {
                run.cfg = run.cfg.with_sdc_guards(false);
                1
            }
            "--engine" => {
                let v = flag_value(args, i, flag)?;
                let engine = EngineKind::from_name(v)
                    .ok_or_else(|| CliError::invalid(flag, v, "one of calendar, heap"))?;
                run.cfg = run.cfg.with_engine(engine);
                2
            }
            "--thermal" => {
                run.cfg.thermal = true;
                1
            }
            "--no-admission" => {
                run.cfg.admission = false;
                1
            }
            "--events" => {
                run.show_events = true;
                1
            }
            "--csv" => {
                run.csv = true;
                1
            }
            other => {
                return Err(CliError::UnknownFlag {
                    command: "serve",
                    flag: other.to_string(),
                })
            }
        };
        i += consumed;
    }
    if delay_set && run.cfg.batch_max <= 1 {
        return Err(CliError::Conflict {
            message: "--batch-delay-ms has no effect with --batch-max 1 (batching is off)"
                .to_string(),
        });
    }
    if Traffic::from_flag(&run.trace, run.rate_hz, run.cfg.seed).is_none() {
        return Err(CliError::invalid(
            "--trace",
            &run.trace,
            "one of steady, poisson, diurnal, burst",
        ));
    }
    Ok(run)
}

/// Runs one fleet serving simulation from parsed flags.
fn run_serve(args: &[String]) -> ExitCode {
    let run = match parse_serve(args) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{SERVE_USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let traffic = Traffic::from_flag(&run.trace, run.rate_hz, run.cfg.seed)
        .expect("trace validated at parse time");
    let mut specs = Vec::new();
    for &device in &run.devices {
        let Some(spec) = ReplicaSpec::best_for(run.model, device) else {
            eprintln!(
                "{} has no feasible framework on {}",
                run.model,
                device.name()
            );
            return ExitCode::FAILURE;
        };
        specs.extend(std::iter::repeat_n(spec, run.replicas));
    }
    let fleet = match Fleet::new(specs) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot build fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match fleet.serve(&traffic, run.frames, &run.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if run.csv {
        print!("{}", report.to_csv());
    } else {
        let title = format!(
            "serve: {} x{} | {} trace @ {} req/s | SLO {} ms",
            run.model,
            fleet.len(),
            traffic.kind(),
            run.rate_hz,
            run.cfg.slo_ms,
        );
        println!("{}", report.to_report(title).to_table_string());
        println!("{}", report.replica_report("replicas").to_table_string());
    }
    if run.show_events {
        print!("{}", report.events_csv());
    }
    ExitCode::SUCCESS
}

/// Everything the `geo` subcommand needs to run, parsed and validated.
#[derive(Debug, PartialEq)]
struct GeoRun {
    cfg: geo::GeoConfig,
    requests: usize,
    csv: bool,
}

const GEO_USAGE: &str = "usage: edgebench-cli geo [--model M] [--slo-ms MS] [--requests N] \
     [--base-hz HZ] [--peak-hz HZ] [--period-s S] [--wan-rtt-ms MS] [--import N] \
     [--batch-max N] [--no-autoscale] [--engine calendar|heap] [--seed S] [--csv]";

fn parse_geo(args: &[String]) -> Result<GeoRun, CliError> {
    let mut run = GeoRun {
        cfg: geo::GeoConfig::new(100.0),
        requests: 8000,
        csv: false,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let consumed = match flag {
            "--model" => {
                let v = flag_value(args, i, flag)?;
                run.cfg.model = Model::from_name(v).ok_or_else(|| {
                    CliError::invalid(flag, v, "a known model (see `edgebench-cli summary`)")
                })?;
                2
            }
            "--slo-ms" => {
                let v = flag_value(args, i, flag)?;
                run.cfg.slo_ms = parse_num(v, flag, "a positive SLO in ms")?;
                if run.cfg.slo_ms <= 0.0 {
                    return Err(CliError::invalid(flag, v, "a positive SLO in ms"));
                }
                2
            }
            "--requests" => {
                let v = flag_value(args, i, flag)?;
                run.requests = parse_num(v, flag, "a positive request count")?;
                if run.requests == 0 {
                    return Err(CliError::invalid(flag, v, "a positive request count"));
                }
                2
            }
            "--base-hz" => {
                let v = flag_value(args, i, flag)?;
                run.cfg.base_hz = parse_num(v, flag, "a positive rate in req/s")?;
                if run.cfg.base_hz <= 0.0 {
                    return Err(CliError::invalid(flag, v, "a positive rate in req/s"));
                }
                2
            }
            "--peak-hz" => {
                let v = flag_value(args, i, flag)?;
                run.cfg.peak_hz = parse_num(v, flag, "a positive rate in req/s")?;
                if run.cfg.peak_hz <= 0.0 {
                    return Err(CliError::invalid(flag, v, "a positive rate in req/s"));
                }
                2
            }
            "--period-s" => {
                let v = flag_value(args, i, flag)?;
                run.cfg.period_s = parse_num(v, flag, "a positive period in seconds")?;
                if run.cfg.period_s <= 0.0 {
                    return Err(CliError::invalid(flag, v, "a positive period in seconds"));
                }
                2
            }
            "--wan-rtt-ms" => {
                let v = flag_value(args, i, flag)?;
                run.cfg.wan_rtt_ms = parse_num(v, flag, "a non-negative RTT in ms")?;
                if run.cfg.wan_rtt_ms < 0.0 {
                    return Err(CliError::invalid(flag, v, "a non-negative RTT in ms"));
                }
                2
            }
            "--import" => {
                let v = flag_value(args, i, flag)?;
                run.cfg.import_replicas = parse_num(v, flag, "a spillover replica count")?;
                2
            }
            "--batch-max" => {
                let v = flag_value(args, i, flag)?;
                run.cfg.batch_max = parse_num(v, flag, "a positive batch size")?;
                if run.cfg.batch_max == 0 {
                    return Err(CliError::invalid(flag, v, "a positive batch size"));
                }
                2
            }
            "--no-autoscale" => {
                run.cfg.autoscale = None;
                1
            }
            "--engine" => {
                let v = flag_value(args, i, flag)?;
                run.cfg.engine = EngineKind::from_name(v)
                    .ok_or_else(|| CliError::invalid(flag, v, "one of calendar, heap"))?;
                2
            }
            "--seed" => {
                run.cfg.seed = parse_num(flag_value(args, i, flag)?, flag, "a u64 seed")?;
                2
            }
            "--csv" => {
                run.csv = true;
                1
            }
            other => {
                return Err(CliError::UnknownFlag {
                    command: "geo",
                    flag: other.to_string(),
                })
            }
        };
        i += consumed;
    }
    if run.cfg.peak_hz < run.cfg.base_hz {
        return Err(CliError::Conflict {
            message: "--peak-hz must be at least --base-hz".to_string(),
        });
    }
    Ok(run)
}

/// Runs the multi-region serving simulation from parsed flags.
fn run_geo(args: &[String], jobs: usize) -> ExitCode {
    let run = match parse_geo(args) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{GEO_USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let regions = geo::default_regions(run.cfg.period_s);
    let report = match geo::run_geo(&run.cfg, &regions, run.requests, jobs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("geo failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let title = format!(
        "geo: {} | {} regions x {} reqs | {}..{} req/s over {} s | SLO {} ms | {} engine",
        run.cfg.model,
        regions.len(),
        run.requests,
        run.cfg.base_hz,
        run.cfg.peak_hz,
        run.cfg.period_s,
        run.cfg.slo_ms,
        run.cfg.engine.name(),
    );
    let rendered = report.to_report(title);
    if run.csv {
        print!("{}", rendered.to_csv());
    } else {
        println!("{}", rendered.to_table_string());
        println!(
            "fleet: {:.3} mJ/req | {:.4} mg CO2/req",
            report.energy_per_request_mj(),
            report.carbon_per_request_mg(),
        );
    }
    ExitCode::SUCCESS
}

/// Everything the `runtime` subcommand needs to run, parsed and validated.
#[derive(Debug, PartialEq)]
struct RuntimeRun {
    cfg: RuntimeConfig,
    frames: usize,
    rate_hz: f64,
    trace: String,
    hit_rate: f64,
    procs: bool,
    stage: Option<String>,
    dir: Option<PathBuf>,
    out: Option<PathBuf>,
    events_out: Option<PathBuf>,
    trace_in: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    show_events: bool,
    sink: bool,
    chaos_events: Option<usize>,
    chaos_seed: Option<u64>,
}

const RUNTIME_USAGE: &str = "usage: edgebench-cli runtime [--model M] [--device D] [--frames N] \
     [--rate HZ] [--trace steady|poisson|diurnal|burst] [--hit-rate P] [--seed S] \
     [--ring-capacity N] [--block | --drop-oldest] [--sentry] [--sentry-cooldown N] \
     [--sentry-recall P] [--flip-rate P] [--capture-ns N] [--preprocess-ns N] \
     [--exec model|real] [--pace] [--supervise] [--restart-budget N] [--heartbeat-ms N] \
     [--chaos SPEC | --chaos-events N [--chaos-seed S]] [--procs] \
     [--stage S --dir D [--sink]] [--out PATH] [--events-out PATH] \
     [--trace-in PATH | --trace-out PATH] [--events]";

fn parse_runtime(args: &[String]) -> Result<RuntimeRun, CliError> {
    let mut run = RuntimeRun {
        cfg: RuntimeConfig::new(Model::MobileNetV2, Device::JetsonNano),
        frames: 300,
        rate_hz: 60.0,
        trace: "poisson".to_string(),
        hit_rate: 0.1,
        procs: false,
        stage: None,
        dir: None,
        out: None,
        events_out: None,
        trace_in: None,
        trace_out: None,
        show_events: false,
        sink: false,
        chaos_events: None,
        chaos_seed: None,
    };
    let mut policy_flag: Option<&'static str> = None;
    let mut sentry = false;
    let mut cooldown: Option<u32> = None;
    let mut recall: Option<f64> = None;
    let mut supervise = false;
    let mut restart_budget: Option<u32> = None;
    let mut heartbeat_ms: Option<u64> = None;
    let mut chaos_spec: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let consumed = match flag {
            "--model" => {
                let v = flag_value(args, i, flag)?;
                run.cfg.model = Model::from_name(v).ok_or_else(|| {
                    CliError::invalid(flag, v, "a known model (see `edgebench-cli summary`)")
                })?;
                2
            }
            "--device" => {
                let v = flag_value(args, i, flag)?;
                run.cfg.device = Device::from_name(v)
                    .ok_or_else(|| CliError::invalid(flag, v, "a known device"))?;
                2
            }
            "--frames" => {
                let v = flag_value(args, i, flag)?;
                run.frames = parse_num(v, flag, "a positive frame count")?;
                if run.frames == 0 {
                    return Err(CliError::invalid(flag, v, "a positive frame count"));
                }
                2
            }
            "--rate" => {
                let v = flag_value(args, i, flag)?;
                run.rate_hz = parse_num(v, flag, "a positive rate in frames/s")?;
                if run.rate_hz <= 0.0 {
                    return Err(CliError::invalid(flag, v, "a positive rate in frames/s"));
                }
                2
            }
            "--trace" => {
                run.trace = flag_value(args, i, flag)?.to_string();
                2
            }
            "--hit-rate" => {
                run.hit_rate = parse_prob(flag_value(args, i, flag)?, flag)?;
                2
            }
            "--seed" => {
                run.cfg.seed = parse_num(flag_value(args, i, flag)?, flag, "an integer seed")?;
                2
            }
            "--ring-capacity" => {
                let v = flag_value(args, i, flag)?;
                let expect = "a power-of-two slot count >= 1";
                run.cfg.ring_capacity = parse_num(v, flag, expect)?;
                if run.cfg.ring_capacity == 0 || !run.cfg.ring_capacity.is_power_of_two() {
                    return Err(CliError::invalid(flag, v, expect));
                }
                2
            }
            "--block" => {
                if policy_flag == Some("--drop-oldest") {
                    return Err(CliError::Conflict {
                        message: "--block and --drop-oldest are mutually exclusive backpressure \
                                  policies"
                            .to_string(),
                    });
                }
                policy_flag = Some("--block");
                run.cfg.policy = DropPolicy::Block;
                1
            }
            "--drop-oldest" => {
                if policy_flag == Some("--block") {
                    return Err(CliError::Conflict {
                        message: "--block and --drop-oldest are mutually exclusive backpressure \
                                  policies"
                            .to_string(),
                    });
                }
                policy_flag = Some("--drop-oldest");
                run.cfg.policy = DropPolicy::DropOldest;
                1
            }
            "--sentry" => {
                sentry = true;
                1
            }
            "--sentry-cooldown" => {
                let v = flag_value(args, i, flag)?;
                let n: u32 = parse_num(v, flag, "a positive quiet-frame count")?;
                if n == 0 {
                    return Err(CliError::invalid(flag, v, "a positive quiet-frame count"));
                }
                cooldown = Some(n);
                2
            }
            "--sentry-recall" => {
                recall = Some(parse_prob(flag_value(args, i, flag)?, flag)?);
                2
            }
            "--flip-rate" => {
                run.cfg.ipc_flip_rate = parse_prob(flag_value(args, i, flag)?, flag)?;
                2
            }
            "--capture-ns" => {
                run.cfg.capture_ns_per_elem =
                    parse_num(flag_value(args, i, flag)?, flag, "ns per payload element")?;
                2
            }
            "--preprocess-ns" => {
                run.cfg.preprocess_ns_per_elem =
                    parse_num(flag_value(args, i, flag)?, flag, "ns per payload element")?;
                2
            }
            "--exec" => {
                let v = flag_value(args, i, flag)?;
                run.cfg.exec = match v {
                    "model" => ExecMode::Model,
                    "real" => ExecMode::Real,
                    _ => return Err(CliError::invalid(flag, v, "one of model, real")),
                };
                2
            }
            "--pace" => {
                run.cfg.pace = true;
                1
            }
            "--supervise" => {
                supervise = true;
                1
            }
            "--restart-budget" => {
                let v = flag_value(args, i, flag)?;
                restart_budget = Some(parse_num(v, flag, "a restart count (0..=64)")?);
                2
            }
            "--heartbeat-ms" => {
                let v = flag_value(args, i, flag)?;
                let ms: u64 = parse_num(v, flag, "a heartbeat period in ms (>= 10)")?;
                heartbeat_ms = Some(ms);
                2
            }
            "--chaos" => {
                chaos_spec = Some(flag_value(args, i, flag)?.to_string());
                2
            }
            "--chaos-events" => {
                let v = flag_value(args, i, flag)?;
                let n: usize = parse_num(v, flag, "a positive chaos event count")?;
                if n == 0 {
                    return Err(CliError::invalid(flag, v, "a positive chaos event count"));
                }
                run.chaos_events = Some(n);
                2
            }
            "--chaos-seed" => {
                run.chaos_seed = Some(parse_num(
                    flag_value(args, i, flag)?,
                    flag,
                    "an integer seed",
                )?);
                2
            }
            "--sink" => {
                run.sink = true;
                1
            }
            "--procs" => {
                run.procs = true;
                1
            }
            "--stage" => {
                run.stage = Some(flag_value(args, i, flag)?.to_string());
                2
            }
            "--dir" => {
                run.dir = Some(PathBuf::from(flag_value(args, i, flag)?));
                2
            }
            "--out" => {
                run.out = Some(PathBuf::from(flag_value(args, i, flag)?));
                2
            }
            "--events-out" => {
                run.events_out = Some(PathBuf::from(flag_value(args, i, flag)?));
                2
            }
            "--trace-in" => {
                run.trace_in = Some(PathBuf::from(flag_value(args, i, flag)?));
                2
            }
            "--trace-out" => {
                run.trace_out = Some(PathBuf::from(flag_value(args, i, flag)?));
                2
            }
            "--events" => {
                run.show_events = true;
                1
            }
            other => {
                return Err(CliError::UnknownFlag {
                    command: "runtime",
                    flag: other.to_string(),
                })
            }
        };
        i += consumed;
    }
    if (cooldown.is_some() || recall.is_some()) && !sentry {
        return Err(CliError::Conflict {
            message: "--sentry-cooldown / --sentry-recall only make sense with --sentry"
                .to_string(),
        });
    }
    if sentry {
        let mut sc = SentryConfig::default();
        if let Some(n) = cooldown {
            sc.cooldown = n;
        }
        if let Some(r) = recall {
            sc.standby_recall = r;
        }
        run.cfg.sentry = Some(sc);
    }
    if (restart_budget.is_some() || heartbeat_ms.is_some()) && !supervise {
        return Err(CliError::Conflict {
            message: "--restart-budget / --heartbeat-ms only make sense with --supervise"
                .to_string(),
        });
    }
    if supervise {
        let mut sup = SuperviseConfig::default();
        if let Some(b) = restart_budget {
            sup = sup.with_restart_budget(b);
        }
        if let Some(ms) = heartbeat_ms {
            sup = sup.with_heartbeat_ms(ms);
        }
        run.cfg.supervise = Some(sup);
    }
    if chaos_spec.is_some() && run.chaos_events.is_some() {
        return Err(CliError::Conflict {
            message: "--chaos gives an explicit schedule; --chaos-events generates one — pick one"
                .to_string(),
        });
    }
    if run.chaos_seed.is_some() && run.chaos_events.is_none() {
        return Err(CliError::Conflict {
            message: "--chaos-seed only seeds a generated campaign (--chaos-events)".to_string(),
        });
    }
    if let Some(spec) = &chaos_spec {
        let plan = ChaosPlan::parse(spec).map_err(|e| CliError::Conflict {
            message: format!("--chaos got '{spec}': {e}"),
        })?;
        run.cfg.chaos = Some(plan);
    }
    if run.sink && run.stage.is_none() {
        return Err(CliError::Conflict {
            message: "--sink drains one child stage; it needs --stage".to_string(),
        });
    }
    if run.trace_in.is_some() && run.trace_out.is_some() {
        return Err(CliError::Conflict {
            message: "--trace-in replays a recorded trace; --trace-out records a fresh one — \
                      pick one"
                .to_string(),
        });
    }
    if run.stage.is_some() && run.dir.is_none() {
        return Err(CliError::Conflict {
            message: "--stage needs --dir (the run directory the supervisor created)".to_string(),
        });
    }
    if run.stage.is_some() && run.procs {
        return Err(CliError::Conflict {
            message: "--stage runs one child stage; --procs is the supervisor — pick one"
                .to_string(),
        });
    }
    if Traffic::from_flag(&run.trace, run.rate_hz, run.cfg.seed).is_none() {
        return Err(CliError::invalid(
            "--trace",
            &run.trace,
            "one of steady, poisson, diurnal, burst",
        ));
    }
    Ok(run)
}

/// Loads or generates the runtime trace for parsed flags.
fn runtime_trace(run: &RuntimeRun) -> Result<TraceFile, String> {
    if let Some(path) = &run.trace_in {
        return TraceFile::read_from(path).map_err(|e| format!("{}: {e}", path.display()));
    }
    let traffic = Traffic::from_flag(&run.trace, run.rate_hz, run.cfg.seed)
        .expect("trace validated at parse time");
    TraceFile::generate(&traffic, run.frames, run.hit_rate, run.cfg.seed).map_err(|e| e.to_string())
}

/// Runs the zero-copy pipeline runtime from parsed flags: a child stage
/// (`--stage`), the multi-process supervisor (`--procs`), or the in-process
/// thread loopback (default).
fn run_runtime(args: &[String]) -> ExitCode {
    let mut run = match parse_runtime(args) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{RUNTIME_USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let (Some(stage), Some(dir)) = (&run.stage, &run.dir) {
        return match runtime::run_stage(
            stage,
            dir,
            &run.cfg,
            run.sink,
            run.out.as_deref(),
            run.events_out.as_deref(),
        ) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("stage {stage} failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let trace = match runtime_trace(&run) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot load trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(n) = run.chaos_events {
        let seed = run.chaos_seed.unwrap_or(run.cfg.seed);
        run.cfg.chaos = Some(ChaosPlan::generate(seed, n, trace.points.len() as u64));
    }
    let run = run;
    if let Some(path) = &run.trace_out {
        return match trace.write_to(path) {
            Ok(()) => {
                println!(
                    "wrote {} frames ({} hits) to {}",
                    trace.points.len(),
                    trace.points.iter().filter(|p| p.hit).count(),
                    path.display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cannot write trace: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if run.procs {
        let bin = match env::current_exe() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot locate own binary for child stages: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match runtime::run_processes(&run.cfg, &trace, &bin) {
            Ok(outcome) => {
                print!("{}", outcome.report_csv);
                if run.show_events {
                    print!("{}", outcome.events_csv);
                }
                if !outcome.degraded.is_empty() {
                    eprintln!("degraded stages: {}", outcome.degraded.join(", "));
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("runtime failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match runtime::run_replay(&run.cfg, &trace) {
        Ok(report) => {
            if let Some(path) = &run.out {
                if let Err(e) = std::fs::write(path, report.to_csv()) {
                    eprintln!("cannot write report: {e}");
                    return ExitCode::FAILURE;
                }
            } else {
                print!("{}", report.to_csv());
            }
            if run.show_events {
                print!("{}", report.event_log().to_csv());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("runtime failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_all(jobs: usize) -> ExitCode {
    for (_, report) in experiments::run_all(jobs) {
        println!("{}", report.to_table_string());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = env::args().skip(1).collect();
    let jobs = match take_jobs_flag(&mut args) {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match args.first().map(String::as_str) {
        Some("list") => {
            for e in experiments::all() {
                println!("{:8}  {}", e.id(), e.title());
            }
            ExitCode::SUCCESS
        }
        Some("run") => match args.get(1).map(String::as_str) {
            None | Some("all") => run_all(jobs),
            Some(id) => match experiments::by_id(id) {
                Some(e) => {
                    println!("{}", e.run().to_table_string());
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("unknown experiment '{id}'; try `edgebench-cli list`");
                    ExitCode::FAILURE
                }
            },
        },
        Some("csv") => match args.get(1).and_then(|id| experiments::by_id(id)) {
            Some(e) => {
                print!("{}", e.run().to_csv());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown experiment; try `edgebench-cli list`");
                ExitCode::FAILURE
            }
        },
        Some("summary") => with_model(args.get(1).map(String::as_str), viz::summary),
        Some("dot") => with_model(args.get(1).map(String::as_str), viz::to_dot),
        Some("infer") => run_infer(&args[1..]),
        Some("resilience") => run_resilience(&args[1..]),
        Some("serve") => run_serve(&args[1..]),
        Some("geo") => run_geo(&args[1..], jobs),
        Some("runtime") => run_runtime(&args[1..]),
        None => run_all(jobs),
        Some(other) => {
            eprintln!(
                "unknown command '{other}'; usage: edgebench-cli [--jobs N] [list | run <id|all> | csv <id> | summary <model> | dot <model> | infer [flags] | resilience [flags] | serve [flags] | geo [flags] | runtime [flags]]"
            );
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn missing_value_is_typed() {
        let err = parse_serve(&argv("--rate")).unwrap_err();
        assert_eq!(
            err,
            CliError::MissingValue {
                flag: "--rate".to_string()
            }
        );
        assert_eq!(err.to_string(), "--rate expects a value");
    }

    #[test]
    fn out_of_range_probability_is_invalid() {
        let err = parse_serve(&argv("--loss 1.5")).unwrap_err();
        assert!(
            matches!(&err, CliError::Invalid { flag, .. } if flag == "--loss"),
            "{err:?}"
        );
        assert!(err.to_string().contains("probability in [0, 1]"));
        assert!(parse_serve(&argv("--dropout -0.1")).is_err());
    }

    #[test]
    fn unknown_flag_names_the_command() {
        let err = parse_serve(&argv("--warp-speed 9")).unwrap_err();
        assert_eq!(
            err,
            CliError::UnknownFlag {
                command: "serve",
                flag: "--warp-speed".to_string()
            }
        );
        let err = parse_resilience(&argv("--warp-speed")).unwrap_err();
        assert_eq!(
            err,
            CliError::UnknownFlag {
                command: "resilience",
                flag: "--warp-speed".to_string()
            }
        );
        let err = parse_geo(&argv("--warp-speed")).unwrap_err();
        assert_eq!(
            err,
            CliError::UnknownFlag {
                command: "geo",
                flag: "--warp-speed".to_string()
            }
        );
    }

    #[test]
    fn serve_engine_flag_selects_the_oracle_heap() {
        let run = parse_serve(&argv("--engine heap")).unwrap();
        assert_eq!(run.cfg.engine, EngineKind::BinaryHeap);
        assert_eq!(
            parse_serve(&argv("")).unwrap().cfg.engine,
            EngineKind::Calendar,
            "calendar is the default engine"
        );
        let err = parse_serve(&argv("--engine bogus")).unwrap_err();
        assert!(err.to_string().contains("one of calendar, heap"), "{err}");
    }

    #[test]
    fn geo_flags_parse_into_the_config() {
        let run = parse_geo(&argv(
            "--model resnet-18 --slo-ms 150 --requests 500 --base-hz 10 --peak-hz 90 \
             --period-s 45 --wan-rtt-ms 120 --import 2 --batch-max 4 --no-autoscale \
             --engine heap --seed 9 --csv",
        ))
        .unwrap();
        assert_eq!(run.cfg.model, Model::ResNet18);
        assert_eq!(run.cfg.slo_ms, 150.0);
        assert_eq!(run.requests, 500);
        assert_eq!(run.cfg.base_hz, 10.0);
        assert_eq!(run.cfg.peak_hz, 90.0);
        assert_eq!(run.cfg.period_s, 45.0);
        assert_eq!(run.cfg.wan_rtt_ms, 120.0);
        assert_eq!(run.cfg.import_replicas, 2);
        assert_eq!(run.cfg.batch_max, 4);
        assert_eq!(run.cfg.autoscale, None);
        assert_eq!(run.cfg.engine, EngineKind::BinaryHeap);
        assert_eq!(run.cfg.seed, 9);
        assert!(run.csv);
    }

    #[test]
    fn geo_rejects_an_inverted_diurnal_swing() {
        let err = parse_geo(&argv("--base-hz 100 --peak-hz 50")).unwrap_err();
        assert!(
            matches!(&err, CliError::Conflict { .. }),
            "inverted swing must be a typed conflict: {err:?}"
        );
    }

    #[test]
    fn batch_delay_without_batching_conflicts() {
        let err = parse_serve(&argv("--batch-max 1 --batch-delay-ms 5")).unwrap_err();
        assert!(matches!(err, CliError::Conflict { .. }), "{err:?}");
        // With batching on, the same delay parses fine.
        assert!(parse_serve(&argv("--batch-max 4 --batch-delay-ms 5")).is_ok());
    }

    #[test]
    fn zero_replicas_is_rejected() {
        let err = parse_serve(&argv("--replicas 0")).unwrap_err();
        assert!(matches!(&err, CliError::Invalid { flag, .. } if flag == "--replicas"));
    }

    #[test]
    fn unknown_trace_is_invalid() {
        let err = parse_serve(&argv("--trace sawtooth")).unwrap_err();
        assert!(matches!(&err, CliError::Invalid { flag, .. } if flag == "--trace"));
    }

    #[test]
    fn resilience_flags_parse_into_the_config() {
        let run = parse_serve(&argv(
            "--straggler 0.05,6 --loss 0.02 --hedge-ms 2 --retry-budget 10 --breaker --ladder --events",
        ))
        .unwrap();
        assert_eq!(run.cfg.resilience.hedge_ms, Some(2.0));
        assert_eq!(
            run.cfg.resilience.retry.map(|r| r.initial_tokens),
            Some(10.0)
        );
        assert!(run.cfg.resilience.breaker.is_some());
        assert!(run.cfg.resilience.ladder);
        assert_eq!(run.cfg.resilience.faults.straggler, 0.05);
        assert_eq!(run.cfg.resilience.faults.straggler_factor, 6.0);
        assert_eq!(run.cfg.resilience.faults.loss, 0.02);
        assert!(run.show_events);
    }

    #[test]
    fn malformed_straggler_pairs_are_rejected() {
        assert!(parse_serve(&argv("--straggler 0.05")).is_err());
        assert!(parse_serve(&argv("--straggler 0.05,0.5")).is_err());
        assert!(parse_serve(&argv("--straggler 1.5,4")).is_err());
    }

    #[test]
    fn defaults_parse_clean() {
        let run = parse_serve(&[]).unwrap();
        assert!(!run.cfg.resilience.is_active());
        assert_eq!(run.replicas, 1);
        let run = parse_resilience(&[]).unwrap();
        assert_eq!(run.frames, 300);
    }

    #[test]
    fn infer_flags_parse_into_the_run() {
        let run = parse_infer(&argv(
            "--model mobilenet-v2 --batch 8 --threads 4 --precision int8 --iters 3 --seed 7 --sparsity 0.5 --kernel scalar",
        ))
        .unwrap();
        assert_eq!(run.model, Model::MobileNetV2);
        assert_eq!(run.batch, 8);
        assert_eq!(run.threads, 4);
        assert_eq!(run.precision, Precision::Int8);
        assert_eq!(run.iters, 3);
        assert_eq!(run.seed, 7);
        assert_eq!(run.sparsity, 0.5);
        assert_eq!(run.kernel, KernelKind::Scalar);
        let run = parse_infer(&argv("--kernel simd")).unwrap();
        assert_eq!(run.kernel, KernelKind::Simd);
    }

    #[test]
    fn infer_defaults_parse_clean() {
        let run = parse_infer(&[]).unwrap();
        assert_eq!(run.model, Model::CifarNet);
        assert_eq!(run.batch, 1);
        assert_eq!(run.threads, 1);
        assert_eq!(run.precision, Precision::F32);
        assert_eq!(run.kernel, KernelKind::Auto);
    }

    #[test]
    fn infer_rejects_bad_values() {
        assert!(matches!(
            parse_infer(&argv("--batch 0")).unwrap_err(),
            CliError::Invalid { .. }
        ));
        assert!(matches!(
            parse_infer(&argv("--precision f64")).unwrap_err(),
            CliError::Invalid { .. }
        ));
        assert!(matches!(
            parse_infer(&argv("--kernel gpu")).unwrap_err(),
            CliError::Invalid { .. }
        ));
        assert!(matches!(
            parse_infer(&argv("--iters 0")).unwrap_err(),
            CliError::Invalid { .. }
        ));
        assert_eq!(
            parse_infer(&argv("--turbo")).unwrap_err(),
            CliError::UnknownFlag {
                command: "infer",
                flag: "--turbo".to_string()
            }
        );
    }

    #[test]
    fn sdc_infer_flags_parse_into_the_run() {
        let run = parse_infer(&argv("--flip-rate 1e-6 --flip-seed 9 --guards")).unwrap();
        assert_eq!(run.flip_rate, 1e-6);
        assert_eq!(run.flip_seed, 9);
        assert!(run.guards);
        // Defaults: fault injection and guards are both off.
        let run = parse_infer(&[]).unwrap();
        assert_eq!(run.flip_rate, 0.0);
        assert_eq!(run.flip_seed, 0x5dc);
        assert!(!run.guards);
        // The flip rate is a probability; 2 flips/byte is nonsense.
        assert!(matches!(
            parse_infer(&argv("--flip-rate 2")).unwrap_err(),
            CliError::Invalid { .. }
        ));
    }

    #[test]
    fn sdc_serve_flags_parse_into_the_config() {
        let run = parse_serve(&argv("--sdc 0.1")).unwrap();
        assert_eq!(run.cfg.resilience.sdc.corruption, 0.1);
        assert!(run.cfg.resilience.sdc.guards, "guards default on");
        let run = parse_serve(&argv("--sdc 0.1 --no-sdc-guards")).unwrap();
        assert!(!run.cfg.resilience.sdc.guards);
        assert!(parse_serve(&argv("--sdc 1.5")).is_err());
    }

    #[test]
    fn runtime_flags_parse_into_the_config() {
        let run = parse_runtime(&argv(
            "--model mobilenet-v2 --device jetson-nano --frames 120 --rate 45 --hit-rate 0.2 \
             --seed 9 --ring-capacity 16 --drop-oldest --sentry --sentry-cooldown 4 \
             --sentry-recall 0.9 --flip-rate 1e-6 --exec real --pace",
        ))
        .unwrap();
        assert_eq!(run.cfg.model, Model::MobileNetV2);
        assert_eq!(run.cfg.device, Device::JetsonNano);
        assert_eq!(run.frames, 120);
        assert_eq!(run.rate_hz, 45.0);
        assert_eq!(run.hit_rate, 0.2);
        assert_eq!(run.cfg.seed, 9);
        assert_eq!(run.cfg.ring_capacity, 16);
        assert_eq!(run.cfg.policy, DropPolicy::DropOldest);
        assert_eq!(
            run.cfg.sentry,
            Some(SentryConfig {
                cooldown: 4,
                standby_recall: 0.9
            })
        );
        assert_eq!(run.cfg.ipc_flip_rate, 1e-6);
        assert_eq!(run.cfg.exec, ExecMode::Real);
        assert!(run.cfg.pace);
    }

    #[test]
    fn runtime_defaults_parse_clean() {
        let run = parse_runtime(&[]).unwrap();
        assert_eq!(run.cfg.ring_capacity, 8);
        assert_eq!(run.cfg.policy, DropPolicy::Block);
        assert_eq!(run.cfg.sentry, None);
        assert_eq!(run.cfg.exec, ExecMode::Model);
        assert!(!run.procs && run.stage.is_none());
    }

    #[test]
    fn runtime_rejects_bad_ring_capacity() {
        for bad in ["0", "3", "-1", "lots"] {
            let err = parse_runtime(&argv(&format!("--ring-capacity {bad}"))).unwrap_err();
            assert!(
                matches!(&err, CliError::Invalid { flag, .. } if flag == "--ring-capacity"),
                "{bad}: {err:?}"
            );
        }
        assert!(parse_runtime(&argv("--ring-capacity 4")).is_ok());
    }

    #[test]
    fn runtime_rejects_unknown_model_and_device() {
        let err = parse_runtime(&argv("--model squeezenet-9000")).unwrap_err();
        assert!(matches!(&err, CliError::Invalid { flag, .. } if flag == "--model"));
        let err = parse_runtime(&argv("--device abacus")).unwrap_err();
        assert!(matches!(&err, CliError::Invalid { flag, .. } if flag == "--device"));
    }

    #[test]
    fn runtime_conflicting_policies_are_rejected() {
        let err = parse_runtime(&argv("--block --drop-oldest")).unwrap_err();
        assert!(matches!(err, CliError::Conflict { .. }), "{err:?}");
        let err = parse_runtime(&argv("--drop-oldest --block")).unwrap_err();
        assert!(matches!(err, CliError::Conflict { .. }), "{err:?}");
        // Repeating the same policy is fine.
        assert!(parse_runtime(&argv("--block --block")).is_ok());
    }

    #[test]
    fn runtime_sentry_knobs_require_sentry() {
        let err = parse_runtime(&argv("--sentry-cooldown 4")).unwrap_err();
        assert!(matches!(err, CliError::Conflict { .. }), "{err:?}");
        let err = parse_runtime(&argv("--sentry-recall 0.5")).unwrap_err();
        assert!(matches!(err, CliError::Conflict { .. }), "{err:?}");
        assert!(parse_runtime(&argv("--sentry --sentry-cooldown 4")).is_ok());
        assert!(parse_runtime(&argv("--sentry --sentry-cooldown 0")).is_err());
        assert!(parse_runtime(&argv("--sentry --sentry-recall 1.2")).is_err());
    }

    #[test]
    fn runtime_trace_io_and_stage_conflicts() {
        let err = parse_runtime(&argv("--trace-in a.bin --trace-out b.bin")).unwrap_err();
        assert!(matches!(err, CliError::Conflict { .. }), "{err:?}");
        let err = parse_runtime(&argv("--stage capture")).unwrap_err();
        assert!(matches!(err, CliError::Conflict { .. }), "{err:?}");
        let err = parse_runtime(&argv("--stage capture --dir /tmp/x --procs")).unwrap_err();
        assert!(matches!(err, CliError::Conflict { .. }), "{err:?}");
        assert!(parse_runtime(&argv("--stage capture --dir /tmp/x")).is_ok());
    }

    #[test]
    fn runtime_rejects_bad_probabilities_and_frames() {
        assert!(parse_runtime(&argv("--hit-rate 1.5")).is_err());
        assert!(parse_runtime(&argv("--flip-rate -0.1")).is_err());
        assert!(parse_runtime(&argv("--frames 0")).is_err());
        assert!(parse_runtime(&argv("--rate 0")).is_err());
        assert_eq!(
            parse_runtime(&argv("--warp-speed")).unwrap_err(),
            CliError::UnknownFlag {
                command: "runtime",
                flag: "--warp-speed".to_string()
            }
        );
    }

    #[test]
    fn runtime_supervise_flags_parse_into_the_config() {
        let run =
            parse_runtime(&argv("--supervise --restart-budget 5 --heartbeat-ms 120")).unwrap();
        let sup = run.cfg.supervise.expect("--supervise sets the config");
        assert_eq!(sup.restart_budget, 5);
        assert_eq!(sup.heartbeat_ms, 120);
        // Bare --supervise takes the defaults.
        let run = parse_runtime(&argv("--supervise")).unwrap();
        assert_eq!(run.cfg.supervise, Some(SuperviseConfig::default()));
        // The knobs alone are a conflict, mirroring the sentry idiom.
        let err = parse_runtime(&argv("--restart-budget 3")).unwrap_err();
        assert!(matches!(err, CliError::Conflict { .. }), "{err:?}");
        let err = parse_runtime(&argv("--heartbeat-ms 50")).unwrap_err();
        assert!(matches!(err, CliError::Conflict { .. }), "{err:?}");
    }

    #[test]
    fn runtime_chaos_flags_parse_and_conflict() {
        let run = parse_runtime(&argv("--supervise --chaos kill@1:37,hang@2:90")).unwrap();
        let plan = run.cfg.chaos.expect("--chaos sets the plan");
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.to_spec(), "kill@1:37,hang@2:90");
        // A generated campaign is deferred until the trace length is known.
        let run = parse_runtime(&argv("--supervise --chaos-events 6 --chaos-seed 9")).unwrap();
        assert_eq!(run.chaos_events, Some(6));
        assert_eq!(run.chaos_seed, Some(9));
        assert!(run.cfg.chaos.is_none());
        // Explicit and generated schedules are mutually exclusive.
        let err = parse_runtime(&argv("--chaos kill@1:3 --chaos-events 2")).unwrap_err();
        assert!(matches!(err, CliError::Conflict { .. }), "{err:?}");
        let err = parse_runtime(&argv("--chaos-seed 4")).unwrap_err();
        assert!(matches!(err, CliError::Conflict { .. }), "{err:?}");
        let err = parse_runtime(&argv("--chaos wedge@9:1")).unwrap_err();
        assert!(matches!(err, CliError::Conflict { .. }), "{err:?}");
        assert!(parse_runtime(&argv("--chaos-events 0")).is_err());
    }

    #[test]
    fn runtime_sink_requires_a_stage() {
        let err = parse_runtime(&argv("--sink")).unwrap_err();
        assert!(matches!(err, CliError::Conflict { .. }), "{err:?}");
        let run = parse_runtime(&argv("--stage inference --dir /tmp/x --sink")).unwrap();
        assert!(run.sink);
    }

    #[test]
    fn jobs_flag_is_extracted_anywhere() {
        let mut args = argv("run all --jobs 4");
        assert_eq!(take_jobs_flag(&mut args), Ok(4));
        assert_eq!(args, argv("run all"));
        let mut args = argv("--jobs=0 run");
        assert_eq!(take_jobs_flag(&mut args), Ok(0));
        let mut args = argv("run --jobs");
        assert!(take_jobs_flag(&mut args).is_err());
    }
}
