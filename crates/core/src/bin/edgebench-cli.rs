//! Command-line runner for the experiment registry.
//!
//! ```text
//! edgebench-cli list                  # list experiment ids
//! edgebench-cli run fig7              # run one experiment
//! edgebench-cli run all               # run every experiment (default)
//! edgebench-cli run all --jobs 4      # ... on 4 worker threads
//! edgebench-cli run all --jobs 0      # ... on all available cores
//! edgebench-cli summary resnet-50     # keras-style layer table for a model
//! edgebench-cli dot mobilenet-v2      # graphviz DOT of a model
//! edgebench-cli csv fig7              # one experiment as CSV
//! ```
//!
//! Reports are printed in registry order for every `--jobs` value; the flag
//! only changes wall-clock time, never output.

use edgebench::experiments;
use edgebench_graph::viz;
use edgebench_models::Model;
use std::env;
use std::process::ExitCode;

fn with_model(name: Option<&str>, f: impl Fn(&edgebench_graph::Graph) -> String) -> ExitCode {
    match name.and_then(Model::from_name) {
        Some(m) => {
            print!("{}", f(&m.build()));
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown model; one of:");
            for m in Model::all() {
                eprintln!("  {m}");
            }
            ExitCode::FAILURE
        }
    }
}

/// Extracts `--jobs N` / `--jobs=N` from `args` (any position), returning
/// the worker count. Errors carry the message to print.
fn take_jobs_flag(args: &mut Vec<String>) -> Result<usize, String> {
    let mut jobs = 1usize;
    let mut i = 0;
    while i < args.len() {
        let parse = |s: &str| -> Result<usize, String> {
            s.parse::<usize>()
                .map_err(|_| format!("--jobs expects a non-negative integer, got '{s}'"))
        };
        if args[i] == "--jobs" {
            let value = args.get(i + 1).ok_or("--jobs expects a value".to_string())?;
            jobs = parse(value)?;
            args.drain(i..i + 2);
        } else if let Some(value) = args[i].strip_prefix("--jobs=") {
            jobs = parse(value)?;
            args.remove(i);
        } else {
            i += 1;
        }
    }
    Ok(jobs)
}

fn run_all(jobs: usize) -> ExitCode {
    for (_, report) in experiments::run_all(jobs) {
        println!("{}", report.to_table_string());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = env::args().skip(1).collect();
    let jobs = match take_jobs_flag(&mut args) {
        Ok(jobs) => jobs,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match args.first().map(String::as_str) {
        Some("list") => {
            for e in experiments::all() {
                println!("{:8}  {}", e.id(), e.title());
            }
            ExitCode::SUCCESS
        }
        Some("run") => match args.get(1).map(String::as_str) {
            None | Some("all") => run_all(jobs),
            Some(id) => match experiments::by_id(id) {
                Some(e) => {
                    println!("{}", e.run().to_table_string());
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("unknown experiment '{id}'; try `edgebench-cli list`");
                    ExitCode::FAILURE
                }
            },
        },
        Some("csv") => match args.get(1).and_then(|id| experiments::by_id(id)) {
            Some(e) => {
                print!("{}", e.run().to_csv());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown experiment; try `edgebench-cli list`");
                ExitCode::FAILURE
            }
        },
        Some("summary") => with_model(args.get(1).map(String::as_str), viz::summary),
        Some("dot") => with_model(args.get(1).map(String::as_str), viz::to_dot),
        None => run_all(jobs),
        Some(other) => {
            eprintln!(
                "unknown command '{other}'; usage: edgebench-cli [--jobs N] [list | run <id|all> | csv <id> | summary <model> | dot <model>]"
            );
            ExitCode::FAILURE
        }
    }
}
