//! Command-line runner for the experiment registry.
//!
//! ```text
//! edgebench-cli list                  # list experiment ids
//! edgebench-cli run fig7              # run one experiment
//! edgebench-cli run all               # run every experiment (default)
//! edgebench-cli run all --jobs 4      # ... on 4 worker threads
//! edgebench-cli run all --jobs 0      # ... on all available cores
//! edgebench-cli summary resnet-50     # keras-style layer table for a model
//! edgebench-cli dot mobilenet-v2      # graphviz DOT of a model
//! edgebench-cli csv fig7              # one experiment as CSV
//! edgebench-cli resilience --dropout 0.002 --frames 300
//!                                     # fault-injected pipeline run
//! edgebench-cli resilience --seed 7 --link-loss 0.02 --events
//!                                     # ... printing the replayable event log
//! edgebench-cli serve --devices rpi3,jetson-nano,jetson-tx2 --rate 60
//!                                     # fleet serving simulation
//! edgebench-cli serve --policy rr --batch-max 1 --trace burst --csv
//!                                     # ... as byte-stable CSV
//! ```
//!
//! Reports are printed in registry order for every `--jobs` value; the flag
//! only changes wall-clock time, never output. The `resilience` and `serve`
//! commands are seed-deterministic: identical flags replay identical runs.

use edgebench::experiments;
use edgebench::serve::{Fleet, ReplicaSpec, RoutePolicy, ServeConfig, Traffic};
use edgebench_devices::faults::{FaultProfile, ResilientPipeline, RetryPolicy};
use edgebench_devices::offload::Link;
use edgebench_devices::Device;
use edgebench_graph::viz;
use edgebench_measure::EventLog;
use edgebench_models::Model;
use std::env;
use std::process::ExitCode;

fn with_model(name: Option<&str>, f: impl Fn(&edgebench_graph::Graph) -> String) -> ExitCode {
    match name.and_then(Model::from_name) {
        Some(m) => {
            print!("{}", f(&m.build()));
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown model; one of:");
            for m in Model::all() {
                eprintln!("  {m}");
            }
            ExitCode::FAILURE
        }
    }
}

/// Extracts `--jobs N` / `--jobs=N` from `args` (any position), returning
/// the worker count. Errors carry the message to print.
fn take_jobs_flag(args: &mut Vec<String>) -> Result<usize, String> {
    let mut jobs = 1usize;
    let mut i = 0;
    while i < args.len() {
        let parse = |s: &str| -> Result<usize, String> {
            s.parse::<usize>()
                .map_err(|_| format!("--jobs expects a non-negative integer, got '{s}'"))
        };
        if args[i] == "--jobs" {
            let value = args
                .get(i + 1)
                .ok_or("--jobs expects a value".to_string())?;
            jobs = parse(value)?;
            args.drain(i..i + 2);
        } else if let Some(value) = args[i].strip_prefix("--jobs=") {
            jobs = parse(value)?;
            args.remove(i);
        } else {
            i += 1;
        }
    }
    Ok(jobs)
}

/// Parses the flags of the `resilience` subcommand and runs one
/// fault-injected pipeline simulation.
fn run_resilience(args: &[String]) -> ExitCode {
    let mut model = Model::MobileNetV2;
    let mut device = Device::RaspberryPi3;
    let mut stages = 4usize;
    let mut frames = 300usize;
    let mut seed = 42u64;
    let mut dropout = 0.0f64;
    let mut link_loss = 0.0f64;
    let mut thermal = false;
    let mut policy = RetryPolicy::default();
    let mut show_events = false;

    fn value<'a>(args: &'a [String], i: usize, flag: &str) -> Result<&'a str, String> {
        args.get(i + 1)
            .map(String::as_str)
            .ok_or_else(|| format!("{flag} expects a value"))
    }
    fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
        s.parse::<T>()
            .map_err(|_| format!("{flag} got invalid value '{s}'"))
    }

    let mut i = 0;
    let outcome: Result<(), String> = loop {
        let Some(flag) = args.get(i).map(String::as_str) else {
            break Ok(());
        };
        let consumed = match flag {
            "--model" => match value(args, i, flag).map(Model::from_name) {
                Ok(Some(m)) => {
                    model = m;
                    2
                }
                Ok(None) => break Err("unknown model; try `edgebench-cli summary`".to_string()),
                Err(e) => break Err(e),
            },
            "--device" => match value(args, i, flag).map(Device::from_name) {
                Ok(Some(d)) => {
                    device = d;
                    2
                }
                Ok(None) => break Err("unknown device".to_string()),
                Err(e) => break Err(e),
            },
            "--stages" => match value(args, i, flag).and_then(|v| parse(v, flag)) {
                Ok(v) => {
                    stages = v;
                    2
                }
                Err(e) => break Err(e),
            },
            "--frames" => match value(args, i, flag).and_then(|v| parse(v, flag)) {
                Ok(v) => {
                    frames = v;
                    2
                }
                Err(e) => break Err(e),
            },
            "--seed" => match value(args, i, flag).and_then(|v| parse(v, flag)) {
                Ok(v) => {
                    seed = v;
                    2
                }
                Err(e) => break Err(e),
            },
            "--dropout" => match value(args, i, flag).and_then(|v| parse(v, flag)) {
                Ok(v) => {
                    dropout = v;
                    2
                }
                Err(e) => break Err(e),
            },
            "--link-loss" => match value(args, i, flag).and_then(|v| parse(v, flag)) {
                Ok(v) => {
                    link_loss = v;
                    2
                }
                Err(e) => break Err(e),
            },
            "--thermal" => {
                thermal = true;
                1
            }
            "--no-repartition" => {
                policy = policy.without_repartition();
                1
            }
            "--events" => {
                show_events = true;
                1
            }
            other => break Err(format!("unknown resilience flag '{other}'")),
        };
        i += consumed;
    };
    if let Err(msg) = outcome {
        eprintln!("{msg}");
        eprintln!(
            "usage: edgebench-cli resilience [--model M] [--device D] [--stages N] [--frames N] \
             [--seed S] [--dropout P] [--link-loss P] [--thermal] [--no-repartition] [--events]"
        );
        return ExitCode::FAILURE;
    }

    let lan = Link {
        uplink_mbps: 90.0,
        downlink_mbps: 90.0,
        rtt_s: 0.002,
    };
    let profile = FaultProfile::none(seed)
        .with_device_dropout(dropout)
        .with_link_loss(link_loss)
        .with_thermal(thermal);
    let g = model.build();
    let rep = match ResilientPipeline::new(&g, device, lan, stages, profile)
        .with_policy(policy)
        .run(frames)
    {
        Ok(rep) => rep,
        Err(e) => {
            eprintln!("cannot plan {model} over {stages}x {}: {e}", device.name());
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{model} over {stages}x {} | seed {seed} | dropout {dropout} | link-loss {link_loss}{}{}",
        device.name(),
        if thermal { " | thermal" } else { "" },
        if policy.repartition {
            ""
        } else {
            " | fail-stop"
        },
    );
    println!(
        "frames: {}/{} completed, {} dropped | throughput {:.2} fps | mean latency {:.1} ms",
        rep.frames_completed,
        rep.frames_attempted,
        rep.frames_dropped,
        rep.throughput_fps(),
        rep.mean_latency_s * 1e3,
    );
    println!(
        "devices lost: {} | repartitions: {} | retries: {} | mean recovery {:.1} ms | final stages: {}",
        rep.devices_lost,
        rep.repartitions,
        rep.retries,
        rep.mean_recovery_s() * 1e3,
        rep.final_stages,
    );
    if show_events {
        print!("{}", EventLog::from_fault_events(&rep.events).to_csv());
    }
    ExitCode::SUCCESS
}

/// Parses the flags of the `serve` subcommand and runs one fleet serving
/// simulation.
fn run_serve(args: &[String]) -> ExitCode {
    let mut model = Model::MobileNetV2;
    let mut devices: Vec<Device> =
        vec![Device::RaspberryPi3, Device::JetsonNano, Device::JetsonTx2];
    let mut replicas = 1usize;
    let mut rate_hz = 30.0f64;
    let mut trace = "poisson".to_string();
    let mut frames = 2000usize;
    let mut csv = false;
    let mut cfg = ServeConfig::new(100.0);

    fn value<'a>(args: &'a [String], i: usize, flag: &str) -> Result<&'a str, String> {
        args.get(i + 1)
            .map(String::as_str)
            .ok_or_else(|| format!("{flag} expects a value"))
    }
    fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
        s.parse::<T>()
            .map_err(|_| format!("{flag} got invalid value '{s}'"))
    }

    let mut i = 0;
    let outcome: Result<(), String> = loop {
        let Some(flag) = args.get(i).map(String::as_str) else {
            break Ok(());
        };
        let consumed = match flag {
            "--model" => match value(args, i, flag).map(Model::from_name) {
                Ok(Some(m)) => {
                    model = m;
                    2
                }
                Ok(None) => break Err("unknown model; try `edgebench-cli summary`".to_string()),
                Err(e) => break Err(e),
            },
            "--devices" => match value(args, i, flag) {
                Ok(list) => {
                    let parsed: Option<Vec<Device>> =
                        list.split(',').map(Device::from_name).collect();
                    match parsed {
                        Some(d) if !d.is_empty() => {
                            devices = d;
                            2
                        }
                        _ => break Err(format!("--devices got an unknown device in '{list}'")),
                    }
                }
                Err(e) => break Err(e),
            },
            "--replicas" => match value(args, i, flag).and_then(|v| parse(v, flag)) {
                Ok(v) => {
                    replicas = v;
                    2
                }
                Err(e) => break Err(e),
            },
            "--rate" => match value(args, i, flag).and_then(|v| parse(v, flag)) {
                Ok(v) => {
                    rate_hz = v;
                    2
                }
                Err(e) => break Err(e),
            },
            "--trace" => match value(args, i, flag) {
                Ok(v) => {
                    trace = v.to_string();
                    2
                }
                Err(e) => break Err(e),
            },
            "--slo-ms" => match value(args, i, flag).and_then(|v| parse(v, flag)) {
                Ok(v) => {
                    cfg.slo_ms = v;
                    2
                }
                Err(e) => break Err(e),
            },
            "--batch-max" => match value(args, i, flag).and_then(|v| parse(v, flag)) {
                Ok(v) => {
                    cfg.batch_max = v;
                    2
                }
                Err(e) => break Err(e),
            },
            "--batch-delay-ms" => match value(args, i, flag).and_then(|v| parse(v, flag)) {
                Ok(v) => {
                    cfg.batch_delay_ms = v;
                    2
                }
                Err(e) => break Err(e),
            },
            "--policy" => match value(args, i, flag).map(RoutePolicy::from_name) {
                Ok(Some(p)) => {
                    cfg.policy = p;
                    2
                }
                Ok(None) => break Err("unknown policy; one of rr, jsq, lel".to_string()),
                Err(e) => break Err(e),
            },
            "--seed" => match value(args, i, flag).and_then(|v| parse(v, flag)) {
                Ok(v) => {
                    cfg.seed = v;
                    2
                }
                Err(e) => break Err(e),
            },
            "--frames" => match value(args, i, flag).and_then(|v| parse(v, flag)) {
                Ok(v) => {
                    frames = v;
                    2
                }
                Err(e) => break Err(e),
            },
            "--dropout" => match value(args, i, flag).and_then(|v| parse(v, flag)) {
                Ok(v) => {
                    cfg.replica_dropout = v;
                    2
                }
                Err(e) => break Err(e),
            },
            "--power-scale" => match value(args, i, flag).and_then(|v| parse(v, flag)) {
                Ok(v) => {
                    cfg.power_scale = v;
                    2
                }
                Err(e) => break Err(e),
            },
            "--thermal" => {
                cfg.thermal = true;
                1
            }
            "--no-admission" => {
                cfg.admission = false;
                1
            }
            "--csv" => {
                csv = true;
                1
            }
            other => break Err(format!("unknown serve flag '{other}'")),
        };
        i += consumed;
    };
    let traffic = match outcome.and_then(|()| {
        Traffic::from_flag(&trace, rate_hz, cfg.seed).ok_or_else(|| {
            format!("unknown trace '{trace}'; one of steady, poisson, diurnal, burst")
        })
    }) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: edgebench-cli serve [--model M] [--devices D1,D2,..] [--replicas N] \
                 [--rate HZ] [--trace steady|poisson|diurnal|burst] [--slo-ms MS] [--batch-max N] \
                 [--batch-delay-ms MS] [--policy rr|jsq|lel] [--seed S] [--frames N] \
                 [--dropout P] [--thermal] [--power-scale X] [--no-admission] [--csv]"
            );
            return ExitCode::FAILURE;
        }
    };
    let mut specs = Vec::new();
    for &device in &devices {
        let Some(spec) = ReplicaSpec::best_for(model, device) else {
            eprintln!("{model} has no feasible framework on {}", device.name());
            return ExitCode::FAILURE;
        };
        specs.extend(std::iter::repeat_n(spec, replicas.max(1)));
    }
    let fleet = match Fleet::new(specs) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot build fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match fleet.serve(&traffic, frames, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if csv {
        print!("{}", report.to_csv());
    } else {
        let title = format!(
            "serve: {model} x{} | {} trace @ {rate_hz} req/s | SLO {} ms",
            fleet.len(),
            traffic.kind(),
            cfg.slo_ms,
        );
        println!("{}", report.to_report(title).to_table_string());
        println!("{}", report.replica_report("replicas").to_table_string());
    }
    ExitCode::SUCCESS
}

fn run_all(jobs: usize) -> ExitCode {
    for (_, report) in experiments::run_all(jobs) {
        println!("{}", report.to_table_string());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = env::args().skip(1).collect();
    let jobs = match take_jobs_flag(&mut args) {
        Ok(jobs) => jobs,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match args.first().map(String::as_str) {
        Some("list") => {
            for e in experiments::all() {
                println!("{:8}  {}", e.id(), e.title());
            }
            ExitCode::SUCCESS
        }
        Some("run") => match args.get(1).map(String::as_str) {
            None | Some("all") => run_all(jobs),
            Some(id) => match experiments::by_id(id) {
                Some(e) => {
                    println!("{}", e.run().to_table_string());
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("unknown experiment '{id}'; try `edgebench-cli list`");
                    ExitCode::FAILURE
                }
            },
        },
        Some("csv") => match args.get(1).and_then(|id| experiments::by_id(id)) {
            Some(e) => {
                print!("{}", e.run().to_csv());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown experiment; try `edgebench-cli list`");
                ExitCode::FAILURE
            }
        },
        Some("summary") => with_model(args.get(1).map(String::as_str), viz::summary),
        Some("dot") => with_model(args.get(1).map(String::as_str), viz::to_dot),
        Some("resilience") => run_resilience(&args[1..]),
        Some("serve") => run_serve(&args[1..]),
        None => run_all(jobs),
        Some(other) => {
            eprintln!(
                "unknown command '{other}'; usage: edgebench-cli [--jobs N] [list | run <id|all> | csv <id> | summary <model> | dot <model> | resilience [flags] | serve [flags]]"
            );
            ExitCode::FAILURE
        }
    }
}
