//! Command-line runner for the experiment registry.
//!
//! ```text
//! edgebench-cli list              # list experiment ids
//! edgebench-cli run fig7          # run one experiment
//! edgebench-cli run all           # run every experiment (default)
//! edgebench-cli summary resnet-50 # keras-style layer table for a model
//! edgebench-cli dot mobilenet-v2  # graphviz DOT of a model
//! edgebench-cli csv fig7          # one experiment as CSV
//! ```

use edgebench::experiments;
use edgebench_graph::viz;
use edgebench_models::Model;
use std::env;
use std::process::ExitCode;

fn with_model(name: Option<&str>, f: impl Fn(&edgebench_graph::Graph) -> String) -> ExitCode {
    match name.and_then(Model::from_name) {
        Some(m) => {
            print!("{}", f(&m.build()));
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown model; one of:");
            for m in Model::all() {
                eprintln!("  {m}");
            }
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            for e in experiments::all() {
                println!("{:8}  {}", e.id(), e.title());
            }
            ExitCode::SUCCESS
        }
        Some("run") => match args.get(1).map(String::as_str) {
            None | Some("all") => {
                for e in experiments::all() {
                    println!("{}", e.run().to_table_string());
                }
                ExitCode::SUCCESS
            }
            Some(id) => match experiments::by_id(id) {
                Some(e) => {
                    println!("{}", e.run().to_table_string());
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("unknown experiment '{id}'; try `edgebench-cli list`");
                    ExitCode::FAILURE
                }
            },
        },
        Some("csv") => match args.get(1).and_then(|id| experiments::by_id(id)) {
            Some(e) => {
                print!("{}", e.run().to_csv());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown experiment; try `edgebench-cli list`");
                ExitCode::FAILURE
            }
        },
        Some("summary") => with_model(args.get(1).map(String::as_str), viz::summary),
        Some("dot") => with_model(args.get(1).map(String::as_str), viz::to_dot),
        None => {
            for e in experiments::all() {
                println!("{}", e.run().to_table_string());
            }
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command '{other}'; usage: edgebench-cli [list | run <id|all> | csv <id> | summary <model> | dot <model>]");
            ExitCode::FAILURE
        }
    }
}
