//! # edgebench
//!
//! The experiment harness of the reproduction: one [`Experiment`] per table
//! and figure of the paper's evaluation, each regenerating the same
//! rows/series the paper reports (paper reference values are carried
//! alongside model outputs wherever the paper prints them).
//!
//! ## Example
//!
//! ```
//! use edgebench::experiments;
//!
//! let report = experiments::by_id("fig7").expect("registered").run();
//! let text = report.to_table_string();
//! assert!(text.contains("tensorrt"));
//! ```
//!
//! Run every experiment:
//!
//! ```no_run
//! for exp in edgebench::experiments::all() {
//!     println!("{}", exp.run().to_table_string());
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod parallel;
pub mod report;
pub mod runtime;
pub mod serve;
pub mod sweep;
pub mod workload;

pub use experiments::Experiment;
pub use report::Report;
