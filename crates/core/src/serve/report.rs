//! Serving-run results: fleet-level SLO/goodput/energy metrics plus a
//! per-replica breakdown, with fixed-precision CSV rendering so
//! identically-seeded runs serialize byte-identically.

use super::RoutePolicy;
use crate::report::Report;
use edgebench_measure::Samples;

/// Per-replica outcome of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaReport {
    /// Stable replica label (`device/framework`).
    pub label: String,
    /// Whether the replica was still alive at the end of the run.
    pub alive: bool,
    /// Whether the replica died mid-run (fault or thermal shutdown).
    pub died: bool,
    /// Whether thermal throttling ever engaged.
    pub throttled: bool,
    /// Requests this replica completed.
    pub completed: usize,
    /// Batches this replica served.
    pub batches: u64,
    /// Active energy spent serving, millijoules.
    pub energy_mj: f64,
    /// Total time spent serving batches, seconds.
    pub busy_s: f64,
}

impl ReplicaReport {
    /// Mean served batch size (0 when no batch fired).
    pub fn mean_batch(&self) -> f64 {
        if self.batches > 0 {
            self.completed as f64 / self.batches as f64
        } else {
            0.0
        }
    }

    /// Stable status string: `ok`, `throttled`, or `DEAD`.
    pub fn status(&self) -> &'static str {
        if self.died {
            "DEAD"
        } else if self.throttled {
            "throttled"
        } else {
            "ok"
        }
    }
}

/// Result of one fleet serving simulation ([`super::Fleet::serve`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Routing policy the run used.
    pub policy: RoutePolicy,
    /// The latency objective, milliseconds.
    pub slo_ms: f64,
    /// Requests offered by the trace.
    pub offered: usize,
    /// Requests completed.
    pub completed: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Requests lost (no alive replica to serve them).
    pub failed: usize,
    /// Completed requests that met the SLO.
    pub within_slo: usize,
    /// Makespan of the run, seconds (last processed event).
    pub span_s: f64,
    /// Total active energy across the fleet, millijoules.
    pub energy_mj: f64,
    /// Time-averaged number of admitted requests in the system (Little's
    /// law: equals throughput × mean sojourn in steady state).
    pub mean_in_system: f64,
    /// Largest per-replica queue depth observed.
    pub max_queue_len: usize,
    /// Completed-request latencies, milliseconds (sorted).
    pub(crate) latencies_ms: Samples,
    /// Per-replica breakdown, in fleet order.
    pub replicas: Vec<ReplicaReport>,
}

impl ServeReport {
    /// The `p`-th percentile of completed-request latency, milliseconds
    /// (0 when nothing completed).
    pub fn percentile_ms(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            0.0
        } else {
            self.latencies_ms.percentile(p)
        }
    }

    /// Median latency, milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.percentile_ms(50.0)
    }

    /// 95th-percentile latency, milliseconds.
    pub fn p95_ms(&self) -> f64 {
        self.percentile_ms(95.0)
    }

    /// Tail latency, milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.percentile_ms(99.0)
    }

    /// Mean latency, milliseconds (0 when nothing completed).
    pub fn mean_ms(&self) -> f64 {
        if self.latencies_ms.is_empty() {
            0.0
        } else {
            self.latencies_ms.mean()
        }
    }

    /// Within-SLO completions per second.
    pub fn goodput_qps(&self) -> f64 {
        if self.span_s > 0.0 {
            self.within_slo as f64 / self.span_s
        } else {
            0.0
        }
    }

    /// Completions per second, SLO or not.
    pub fn throughput_qps(&self) -> f64 {
        if self.span_s > 0.0 {
            self.completed as f64 / self.span_s
        } else {
            0.0
        }
    }

    /// Fraction of offered requests shed by admission control.
    pub fn shed_rate(&self) -> f64 {
        if self.offered > 0 {
            self.shed as f64 / self.offered as f64
        } else {
            0.0
        }
    }

    /// Mean active energy per completed request, millijoules (0 when
    /// nothing completed).
    pub fn energy_per_request_mj(&self) -> f64 {
        if self.completed > 0 {
            self.energy_mj / self.completed as f64
        } else {
            0.0
        }
    }

    /// Fleet-level metrics as a two-column `metric,value` [`Report`].
    pub fn to_report(&self, title: impl Into<String>) -> Report {
        let mut r = Report::new(title, ["metric", "value"]);
        for (metric, value) in self.summary_rows() {
            r.push_row([metric.to_string(), value]);
        }
        r
    }

    /// Per-replica breakdown as a [`Report`] table.
    pub fn replica_report(&self, title: impl Into<String>) -> Report {
        let mut r = Report::new(
            title,
            [
                "replica",
                "status",
                "completed",
                "batches",
                "mean_batch",
                "busy_s",
                "energy_mj",
            ],
        );
        for rep in &self.replicas {
            r.push_row([
                rep.label.clone(),
                rep.status().to_string(),
                rep.completed.to_string(),
                rep.batches.to_string(),
                format!("{:.2}", rep.mean_batch()),
                format!("{:.3}", rep.busy_s),
                format!("{:.3}", rep.energy_mj),
            ]);
        }
        r
    }

    /// Renders the whole run as CSV: the metric section, a blank line,
    /// then the per-replica section. Fixed-precision numbers — two runs
    /// with identical inputs serialize byte-identically.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        for (metric, value) in self.summary_rows() {
            out.push_str(&format!("{metric},{value}\n"));
        }
        out.push('\n');
        out.push_str("replica,status,completed,batches,mean_batch,busy_s,energy_mj\n");
        for rep in &self.replicas {
            out.push_str(&format!(
                "{},{},{},{},{:.2},{:.3},{:.3}\n",
                rep.label,
                rep.status(),
                rep.completed,
                rep.batches,
                rep.mean_batch(),
                rep.busy_s,
                rep.energy_mj
            ));
        }
        out
    }

    /// The fleet-level metric rows, in stable order.
    fn summary_rows(&self) -> Vec<(&'static str, String)> {
        vec![
            ("policy", self.policy.name().to_string()),
            ("slo_ms", format!("{:.3}", self.slo_ms)),
            ("offered", self.offered.to_string()),
            ("completed", self.completed.to_string()),
            ("shed", self.shed.to_string()),
            ("failed", self.failed.to_string()),
            ("within_slo", self.within_slo.to_string()),
            ("shed_rate", format!("{:.4}", self.shed_rate())),
            ("p50_ms", format!("{:.3}", self.p50_ms())),
            ("p95_ms", format!("{:.3}", self.p95_ms())),
            ("p99_ms", format!("{:.3}", self.p99_ms())),
            ("mean_ms", format!("{:.3}", self.mean_ms())),
            ("goodput_qps", format!("{:.3}", self.goodput_qps())),
            ("throughput_qps", format!("{:.3}", self.throughput_qps())),
            (
                "energy_per_req_mj",
                format!("{:.3}", self.energy_per_request_mj()),
            ),
            ("mean_in_system", format!("{:.3}", self.mean_in_system)),
            ("max_queue_len", self.max_queue_len.to_string()),
            ("span_s", format!("{:.3}", self.span_s)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> ServeReport {
        ServeReport {
            policy: RoutePolicy::RoundRobin,
            slo_ms: 100.0,
            offered: 0,
            completed: 0,
            shed: 0,
            failed: 0,
            within_slo: 0,
            span_s: 0.0,
            energy_mj: 0.0,
            mean_in_system: 0.0,
            max_queue_len: 0,
            latencies_ms: Samples::from_unsorted(Vec::new()),
            replicas: Vec::new(),
        }
    }

    #[test]
    fn empty_run_reports_zeroes_not_panics() {
        let r = empty_report();
        assert_eq!(r.p99_ms(), 0.0);
        assert_eq!(r.mean_ms(), 0.0);
        assert_eq!(r.goodput_qps(), 0.0);
        assert_eq!(r.shed_rate(), 0.0);
        assert_eq!(r.energy_per_request_mj(), 0.0);
        assert!(r.to_csv().starts_with("metric,value\n"));
    }

    #[test]
    fn replica_status_strings_are_stable() {
        let mut rep = ReplicaReport {
            label: "jetson-nano/tensorrt".to_string(),
            alive: true,
            died: false,
            throttled: false,
            completed: 10,
            batches: 4,
            energy_mj: 1.0,
            busy_s: 0.5,
        };
        assert_eq!(rep.status(), "ok");
        assert!((rep.mean_batch() - 2.5).abs() < 1e-12);
        rep.throttled = true;
        assert_eq!(rep.status(), "throttled");
        rep.died = true;
        assert_eq!(rep.status(), "DEAD");
    }

    #[test]
    fn csv_has_both_sections() {
        let mut r = empty_report();
        r.replicas.push(ReplicaReport {
            label: "rpi3/tflite".to_string(),
            alive: true,
            died: false,
            throttled: false,
            completed: 0,
            batches: 0,
            energy_mj: 0.0,
            busy_s: 0.0,
        });
        let csv = r.to_csv();
        assert!(csv.contains("\n\nreplica,status,"), "{csv}");
        assert!(
            csv.contains("rpi3/tflite,ok,0,0,0.00,0.000,0.000\n"),
            "{csv}"
        );
    }
}
