//! Serving-run results: fleet-level SLO/goodput/energy metrics, the
//! resilience counters (hedges, retries, breaker transitions, ladder
//! steps), a per-replica breakdown, and the replayable event log — all
//! with fixed-precision CSV rendering so identically-seeded runs
//! serialize byte-identically.

use super::RoutePolicy;
use crate::report::Report;
use edgebench_measure::{EventLog, Samples, ServeEvent};

/// Per-replica outcome of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaReport {
    /// Stable replica label (`device/framework`).
    pub label: String,
    /// Whether the replica was still alive at the end of the run.
    pub alive: bool,
    /// Whether the replica died mid-run (fault or thermal shutdown).
    pub died: bool,
    /// Whether thermal throttling ever engaged.
    pub throttled: bool,
    /// Requests this replica completed.
    pub completed: usize,
    /// Batches this replica served.
    pub batches: u64,
    /// Active energy spent serving, millijoules.
    pub energy_mj: f64,
    /// Total time spent serving batches, seconds.
    pub busy_s: f64,
    /// Degradation-ladder rung at the end of the run (0 = native
    /// precision; always 0 when the ladder is off).
    pub rung: usize,
    /// Final circuit-breaker state (`closed`/`open`/`half-open`, or `-`
    /// when breakers are disabled).
    pub breaker: &'static str,
}

impl ReplicaReport {
    /// Mean served batch size (0 when no batch fired).
    pub fn mean_batch(&self) -> f64 {
        if self.batches > 0 {
            self.completed as f64 / self.batches as f64
        } else {
            0.0
        }
    }

    /// Stable status string: `ok`, `throttled`, or `DEAD`.
    pub fn status(&self) -> &'static str {
        if self.died {
            "DEAD"
        } else if self.throttled {
            "throttled"
        } else {
            "ok"
        }
    }
}

/// Result of one fleet serving simulation ([`super::Fleet::serve`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Routing policy the run used.
    pub policy: RoutePolicy,
    /// The latency objective, milliseconds.
    pub slo_ms: f64,
    /// Requests offered by the trace.
    pub offered: usize,
    /// Requests completed.
    pub completed: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Requests lost (no alive replica to serve them, or a lost batch
    /// with no retry policy configured).
    pub failed: usize,
    /// Completed requests that met the SLO.
    pub within_slo: usize,
    /// Hedge duplicates dispatched.
    pub hedges: usize,
    /// Requests won by their hedge copy.
    pub hedge_wins: usize,
    /// Retry attempts dispatched (each spent one budget token).
    pub retries: usize,
    /// Requests shed because the retry budget or attempt cap ran out —
    /// counted separately from admission [`shed`](Self::shed).
    pub retry_shed: usize,
    /// Batch results discarded because the integrity guards caught a
    /// corruption (one count per affected request copy).
    pub sdc_detected: usize,
    /// Free re-dispatches issued after a detected corruption (no retry
    /// token spent).
    pub sdc_retries: usize,
    /// Completed requests whose served answer was silently corrupted
    /// (only possible with guards off; a subset of
    /// [`completed`](Self::completed)).
    pub corrupted_served: usize,
    /// Requests whose detected-corruption retry was corrupted again — a
    /// typed terminal outcome, counted separately from
    /// [`failed`](Self::failed).
    pub corrupted_failed: usize,
    /// Circuit-breaker Closed→Open transitions across the fleet.
    pub breaker_trips: u64,
    /// Circuit-breaker HalfOpen→Closed recoveries across the fleet.
    pub breaker_recoveries: u64,
    /// Degradation-ladder step-downs across the fleet.
    pub ladder_down: u64,
    /// Degradation-ladder step-ups (recoveries) across the fleet.
    pub ladder_up: u64,
    /// Autoscaler scale-up actions (standby replicas activated).
    pub scale_ups: u64,
    /// Autoscaler scale-down actions (replicas parked).
    pub scale_downs: u64,
    /// Operational carbon across the fleet, milligrams CO₂ (0 unless a
    /// [`super::CarbonProfile`] is attached).
    pub carbon_mg: f64,
    /// Completions per ladder rung (index 0 = native precision).
    pub served_per_rung: Vec<usize>,
    /// Mean accuracy-proxy fidelity over completed requests (1.0 when
    /// everything ran at native precision; 0 when nothing completed).
    pub mean_fidelity: f64,
    /// Makespan of the run, seconds (last processed event).
    pub span_s: f64,
    /// Total active energy across the fleet, millijoules.
    pub energy_mj: f64,
    /// Time-averaged number of admitted requests in the system (Little's
    /// law: equals throughput × mean sojourn in steady state).
    pub mean_in_system: f64,
    /// Largest per-replica queue depth observed.
    pub max_queue_len: usize,
    /// Completed-request latencies, milliseconds (sorted).
    pub(crate) latencies_ms: Samples,
    /// Per-replica breakdown, in fleet order.
    pub replicas: Vec<ReplicaReport>,
    /// Resilience event stream, in emission order (empty when the
    /// resilience layer is off).
    pub events: Vec<ServeEvent>,
}

impl ServeReport {
    /// The `p`-th percentile of completed-request latency, milliseconds
    /// (0 when nothing completed).
    pub fn percentile_ms(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            0.0
        } else {
            self.latencies_ms.percentile(p)
        }
    }

    /// Median latency, milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.percentile_ms(50.0)
    }

    /// 95th-percentile latency, milliseconds.
    pub fn p95_ms(&self) -> f64 {
        self.percentile_ms(95.0)
    }

    /// Tail latency, milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.percentile_ms(99.0)
    }

    /// Mean latency, milliseconds (0 when nothing completed).
    pub fn mean_ms(&self) -> f64 {
        if self.latencies_ms.is_empty() {
            0.0
        } else {
            self.latencies_ms.mean()
        }
    }

    /// Within-SLO completions per second.
    pub fn goodput_qps(&self) -> f64 {
        if self.span_s > 0.0 {
            self.within_slo as f64 / self.span_s
        } else {
            0.0
        }
    }

    /// Completions per second, SLO or not.
    pub fn throughput_qps(&self) -> f64 {
        if self.span_s > 0.0 {
            self.completed as f64 / self.span_s
        } else {
            0.0
        }
    }

    /// Fraction of offered requests shed by admission control.
    pub fn shed_rate(&self) -> f64 {
        if self.offered > 0 {
            self.shed as f64 / self.offered as f64
        } else {
            0.0
        }
    }

    /// Fraction of offered requests that were hedged.
    pub fn hedge_rate(&self) -> f64 {
        if self.offered > 0 {
            self.hedges as f64 / self.offered as f64
        } else {
            0.0
        }
    }

    /// Fraction of completed requests that met the SLO (0 when nothing
    /// completed).
    pub fn slo_attainment(&self) -> f64 {
        if self.completed > 0 {
            self.within_slo as f64 / self.completed as f64
        } else {
            0.0
        }
    }

    /// Fraction of completed requests served at each ladder rung, in
    /// rung order (all mass at rung 0 when the ladder is off).
    pub fn rung_shares(&self) -> Vec<f64> {
        if self.completed == 0 {
            return vec![0.0; self.served_per_rung.len()];
        }
        self.served_per_rung
            .iter()
            .map(|&n| n as f64 / self.completed as f64)
            .collect()
    }

    /// Mean active energy per completed request, millijoules (0 when
    /// nothing completed).
    pub fn energy_per_request_mj(&self) -> f64 {
        if self.completed > 0 {
            self.energy_mj / self.completed as f64
        } else {
            0.0
        }
    }

    /// Mean operational carbon per completed request, milligrams CO₂ (0
    /// when nothing completed or no carbon profile was attached).
    pub fn carbon_per_request_mg(&self) -> f64 {
        if self.completed > 0 {
            self.carbon_mg / self.completed as f64
        } else {
            0.0
        }
    }

    /// Renders the resilience event stream as a stable CSV event log
    /// (header only when no events fired).
    pub fn events_csv(&self) -> String {
        EventLog::from_serve_events(&self.events).to_csv()
    }

    /// Fleet-level metrics as a two-column `metric,value` [`Report`].
    pub fn to_report(&self, title: impl Into<String>) -> Report {
        let mut r = Report::new(title, ["metric", "value"]);
        for (metric, value) in self.summary_rows() {
            r.push_row([metric, value]);
        }
        r
    }

    /// Per-replica breakdown as a [`Report`] table.
    pub fn replica_report(&self, title: impl Into<String>) -> Report {
        let mut r = Report::new(
            title,
            [
                "replica",
                "status",
                "completed",
                "batches",
                "mean_batch",
                "busy_s",
                "energy_mj",
                "rung",
                "breaker",
            ],
        );
        for rep in &self.replicas {
            r.push_row([
                rep.label.clone(),
                rep.status().to_string(),
                rep.completed.to_string(),
                rep.batches.to_string(),
                format!("{:.2}", rep.mean_batch()),
                format!("{:.3}", rep.busy_s),
                format!("{:.3}", rep.energy_mj),
                rep.rung.to_string(),
                rep.breaker.to_string(),
            ]);
        }
        r
    }

    /// Renders the whole run as CSV: the metric section, a blank line,
    /// then the per-replica section. Fixed-precision numbers — two runs
    /// with identical inputs serialize byte-identically.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        for (metric, value) in self.summary_rows() {
            out.push_str(&format!("{metric},{value}\n"));
        }
        out.push('\n');
        out.push_str("replica,status,completed,batches,mean_batch,busy_s,energy_mj,rung,breaker\n");
        for rep in &self.replicas {
            out.push_str(&format!(
                "{},{},{},{},{:.2},{:.3},{:.3},{},{}\n",
                rep.label,
                rep.status(),
                rep.completed,
                rep.batches,
                rep.mean_batch(),
                rep.busy_s,
                rep.energy_mj,
                rep.rung,
                rep.breaker
            ));
        }
        out
    }

    /// The fleet-level metric rows, in stable order.
    fn summary_rows(&self) -> Vec<(String, String)> {
        let mut rows: Vec<(String, String)> = vec![
            ("policy".into(), self.policy.name().to_string()),
            ("slo_ms".into(), format!("{:.3}", self.slo_ms)),
            ("offered".into(), self.offered.to_string()),
            ("completed".into(), self.completed.to_string()),
            ("shed".into(), self.shed.to_string()),
            ("failed".into(), self.failed.to_string()),
            ("within_slo".into(), self.within_slo.to_string()),
            ("shed_rate".into(), format!("{:.4}", self.shed_rate())),
            ("p50_ms".into(), format!("{:.3}", self.p50_ms())),
            ("p95_ms".into(), format!("{:.3}", self.p95_ms())),
            ("p99_ms".into(), format!("{:.3}", self.p99_ms())),
            ("mean_ms".into(), format!("{:.3}", self.mean_ms())),
            ("goodput_qps".into(), format!("{:.3}", self.goodput_qps())),
            (
                "throughput_qps".into(),
                format!("{:.3}", self.throughput_qps()),
            ),
            (
                "energy_per_req_mj".into(),
                format!("{:.3}", self.energy_per_request_mj()),
            ),
            ("carbon_mg".into(), format!("{:.3}", self.carbon_mg)),
            (
                "carbon_per_req_mg".into(),
                format!("{:.4}", self.carbon_per_request_mg()),
            ),
            (
                "mean_in_system".into(),
                format!("{:.3}", self.mean_in_system),
            ),
            ("max_queue_len".into(), self.max_queue_len.to_string()),
            ("span_s".into(), format!("{:.3}", self.span_s)),
            ("hedges".into(), self.hedges.to_string()),
            ("hedge_wins".into(), self.hedge_wins.to_string()),
            ("hedge_rate".into(), format!("{:.4}", self.hedge_rate())),
            ("retries".into(), self.retries.to_string()),
            ("retry_shed".into(), self.retry_shed.to_string()),
            ("sdc_detected".into(), self.sdc_detected.to_string()),
            ("sdc_retries".into(), self.sdc_retries.to_string()),
            ("corrupted_served".into(), self.corrupted_served.to_string()),
            ("corrupted_failed".into(), self.corrupted_failed.to_string()),
            ("breaker_trips".into(), self.breaker_trips.to_string()),
            (
                "breaker_recoveries".into(),
                self.breaker_recoveries.to_string(),
            ),
            ("ladder_down".into(), self.ladder_down.to_string()),
            ("ladder_up".into(), self.ladder_up.to_string()),
            ("scale_ups".into(), self.scale_ups.to_string()),
            ("scale_downs".into(), self.scale_downs.to_string()),
            ("mean_fidelity".into(), format!("{:.4}", self.mean_fidelity)),
        ];
        for (i, share) in self.rung_shares().iter().enumerate() {
            rows.push((format!("served_rung{i}"), format!("{share:.4}")));
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> ServeReport {
        ServeReport {
            policy: RoutePolicy::RoundRobin,
            slo_ms: 100.0,
            offered: 0,
            completed: 0,
            shed: 0,
            failed: 0,
            within_slo: 0,
            hedges: 0,
            hedge_wins: 0,
            retries: 0,
            retry_shed: 0,
            sdc_detected: 0,
            sdc_retries: 0,
            corrupted_served: 0,
            corrupted_failed: 0,
            breaker_trips: 0,
            breaker_recoveries: 0,
            ladder_down: 0,
            ladder_up: 0,
            scale_ups: 0,
            scale_downs: 0,
            carbon_mg: 0.0,
            served_per_rung: vec![0],
            mean_fidelity: 0.0,
            span_s: 0.0,
            energy_mj: 0.0,
            mean_in_system: 0.0,
            max_queue_len: 0,
            latencies_ms: Samples::from_unsorted(Vec::new()),
            replicas: Vec::new(),
            events: Vec::new(),
        }
    }

    #[test]
    fn empty_run_reports_zeroes_not_panics() {
        let r = empty_report();
        assert_eq!(r.p99_ms(), 0.0);
        assert_eq!(r.mean_ms(), 0.0);
        assert_eq!(r.goodput_qps(), 0.0);
        assert_eq!(r.shed_rate(), 0.0);
        assert_eq!(r.hedge_rate(), 0.0);
        assert_eq!(r.slo_attainment(), 0.0);
        assert_eq!(r.energy_per_request_mj(), 0.0);
        assert_eq!(r.carbon_per_request_mg(), 0.0);
        assert_eq!(r.rung_shares(), vec![0.0]);
        assert!(r.to_csv().starts_with("metric,value\n"));
        assert_eq!(r.events_csv(), "time_s,frame,event\n");
    }

    #[test]
    fn replica_status_strings_are_stable() {
        let mut rep = ReplicaReport {
            label: "jetson-nano/tensorrt".to_string(),
            alive: true,
            died: false,
            throttled: false,
            completed: 10,
            batches: 4,
            energy_mj: 1.0,
            busy_s: 0.5,
            rung: 0,
            breaker: "-",
        };
        assert_eq!(rep.status(), "ok");
        assert!((rep.mean_batch() - 2.5).abs() < 1e-12);
        rep.throttled = true;
        assert_eq!(rep.status(), "throttled");
        rep.died = true;
        assert_eq!(rep.status(), "DEAD");
    }

    #[test]
    fn csv_has_both_sections() {
        let mut r = empty_report();
        r.replicas.push(ReplicaReport {
            label: "rpi3/tflite".to_string(),
            alive: true,
            died: false,
            throttled: false,
            completed: 0,
            batches: 0,
            energy_mj: 0.0,
            busy_s: 0.0,
            rung: 1,
            breaker: "closed",
        });
        let csv = r.to_csv();
        assert!(csv.contains("\n\nreplica,status,"), "{csv}");
        assert!(
            csv.contains("rpi3/tflite,ok,0,0,0.00,0.000,0.000,1,closed\n"),
            "{csv}"
        );
    }

    #[test]
    fn summary_includes_resilience_rows() {
        let mut r = empty_report();
        r.offered = 100;
        r.completed = 80;
        r.within_slo = 60;
        r.hedges = 10;
        r.served_per_rung = vec![60, 20];
        let csv = r.to_csv();
        assert!(csv.contains("hedge_rate,0.1000\n"), "{csv}");
        assert!(csv.contains("served_rung0,0.7500\n"), "{csv}");
        assert!(csv.contains("served_rung1,0.2500\n"), "{csv}");
        assert!((r.slo_attainment() - 0.75).abs() < 1e-12);
    }
}
