//! `edgebench-serve`: a deterministic discrete-event simulator of a
//! heterogeneous edge fleet serving open-loop inference traffic.
//!
//! The paper (and [`crate::workload`]) characterizes one device against one
//! arrival process; a deployed system is a *fleet* — replicas of
//! model × framework × device deployments behind a router, with queues,
//! dynamic batching, SLOs and load shedding. This module turns the
//! calibrated deployment/thermal/fault models into throughput–latency–
//! energy curves under sustained load:
//!
//! * [`traffic`] — open-loop traffic: steady [`crate::workload::Arrivals`]
//!   plus diurnal (phase-shiftable) and bursty non-homogeneous Poisson
//!   traces.
//! * [`engine`] — the pluggable event queue: the default calendar queue
//!   (bucketed time wheel + overflow heap, zero-allocation steady state)
//!   and the `BinaryHeap` oracle it is proven byte-identical against.
//! * [`sim`] — the event loop: per-replica dynamic batching (max batch
//!   size + max queue delay), SLO-aware routing (round-robin,
//!   join-shortest-queue, least-expected-latency), admission control,
//!   autoscaling, carbon accounting, thermal coupling and seeded
//!   replica-death faults.
//! * [`geo`] — the planet-scale tier: multiple edge regions with
//!   phase-shifted diurnal traffic, WAN spillover replicas, a cloud
//!   offload tier (via `offload::best_split`) and per-region grid
//!   carbon intensity, simulated in parallel with per-region derived
//!   seeds (byte-identical at any worker count).
//! * [`report`] — [`ServeReport`]: p50/p95/p99 latency, goodput, shed
//!   rate and energy per request, with byte-stable CSV rendering.
//! * [`resilience`] — request-level resilience: hedged requests, retry
//!   budgets, per-replica circuit breakers and the graceful-degradation
//!   precision ladder (fp32 → fp16 → int8), driven by the seeded
//!   straggler/loss model in `devices::faults::service`.
//!
//! Everything is a pure function of the configuration (including the
//! seed), so identical inputs replay byte-identical reports at any
//! `--jobs` worker count — the same discipline as `devices::faults`.

pub mod engine;
pub mod geo;
pub mod report;
pub mod resilience;
pub mod sim;
pub mod traffic;

pub use engine::EngineKind;
pub use geo::{GeoConfig, GeoReport, RegionReport, RegionSpec};
pub use report::{ReplicaReport, ServeReport};
pub use resilience::{
    BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker, ResilienceConfig, RetryBudget,
    RetryBudgetConfig, SdcConfig,
};
pub use sim::{QpsProbe, QpsScan};
pub use traffic::{TraceError, TraceFile, TracePoint, Traffic};

use crate::parallel;
use crate::workload::WorkloadError;
use edgebench_devices::faults::{stream_seed, ServiceFaults};
use edgebench_devices::Device;
use edgebench_frameworks::deploy::{compile, CompiledModel, DeployError};
use edgebench_frameworks::ladder::{cheaper_dtypes, fidelity_proxy};
use edgebench_frameworks::Framework;
use edgebench_models::Model;
use std::error::Error;
use std::fmt;

/// Largest batch size the per-replica service tables cover; configs may
/// ask for any [`ServeConfig::batch_max`] up to this cap.
pub const MAX_BATCH: usize = 32;

/// The one milliseconds→nanoseconds conversion for the whole serve stack.
///
/// Every config knob is in fractional milliseconds while the event loop
/// runs on an integer nanosecond clock; ad-hoc `(ms * 1e6) as u64` casts
/// truncate (249.999999… ms becomes 249_999_999 ns) and turn NaN or
/// negative inputs into an unspecified value. This helper rounds to the
/// nearest nanosecond, maps NaN and negative durations to zero, and
/// saturates at `u64::MAX` — so every call site agrees on the same clock
/// arithmetic.
pub fn ms_to_ns(ms: f64) -> u64 {
    to_ns(ms, 1e6)
}

/// Seconds→nanoseconds companion of [`ms_to_ns`], with the same rounding
/// and saturation contract. Arrival traces are generated in fractional
/// seconds; converting them with a bare `(t * 1e9) as u64` cast inherits
/// every edge case `ms_to_ns` exists to fix.
pub fn s_to_ns(s: f64) -> u64 {
    to_ns(s, 1e9)
}

/// Shared conversion core: scales, rounds to the nearest nanosecond, maps
/// NaN and non-positive durations to zero, and saturates at `u64::MAX`.
fn to_ns(value: f64, scale: f64) -> u64 {
    let ns = value * scale;
    if ns.is_nan() || ns <= 0.0 {
        return 0;
    }
    if ns >= u64::MAX as f64 {
        return u64::MAX;
    }
    ns.round() as u64
}

/// One serving replica: a model deployed through a framework onto a
/// device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaSpec {
    /// Model served.
    pub model: Model,
    /// Framework used.
    pub framework: Framework,
    /// Device hosting the replica.
    pub device: Device,
}

impl ReplicaSpec {
    /// Stable report label, e.g. `jetson-nano/tensorrt`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.device.name(), self.framework.name())
    }

    /// The replica running `model` on `device` through its
    /// lowest-latency feasible framework, or `None` when nothing deploys.
    pub fn best_for(model: Model, device: Device) -> Option<ReplicaSpec> {
        let (framework, _) = edgebench_frameworks::deploy::best_framework(model, device)?;
        Some(ReplicaSpec {
            model,
            framework,
            device,
        })
    }
}

/// How the router picks a replica for each arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Cycle through alive replicas regardless of their state.
    RoundRobin,
    /// Fewest requests queued or in flight (ties break to the lowest
    /// replica index).
    JoinShortestQueue,
    /// Smallest *predicted* completion latency, using each replica's own
    /// batch service table — the heterogeneity-aware policy.
    LeastExpectedLatency,
}

impl RoutePolicy {
    /// Stable report/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            RoutePolicy::RoundRobin => "round-robin",
            RoutePolicy::JoinShortestQueue => "join-shortest-queue",
            RoutePolicy::LeastExpectedLatency => "least-expected-latency",
        }
    }

    /// Parses a policy from its [`RoutePolicy::name`] (or the short
    /// aliases `rr`, `jsq`, `lel`).
    pub fn from_name(name: &str) -> Option<RoutePolicy> {
        match name {
            "round-robin" | "rr" => Some(RoutePolicy::RoundRobin),
            "join-shortest-queue" | "jsq" => Some(RoutePolicy::JoinShortestQueue),
            "least-expected-latency" | "lel" => Some(RoutePolicy::LeastExpectedLatency),
            _ => None,
        }
    }
}

impl fmt::Display for RoutePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Autoscaling policy: a periodic evaluation tick compares the best
/// routable replica's *predicted sojourn* (the same signal admission
/// control and least-expected-latency routing use) against fractions of
/// the SLO. Sustained pressure activates the next standby replica after
/// a warm-up delay; sustained slack parks the highest-indexed idle
/// replica, never dropping below `min_replicas`. Parked replicas keep
/// their precomputed tables (warm standbys) but receive no traffic and
/// draw no energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Replicas that always stay active (the scale-down floor; clamped
    /// to at least 1).
    pub min_replicas: usize,
    /// Evaluation period, milliseconds.
    pub eval_ms: f64,
    /// Activation delay for a scaled-up replica (model load + first
    /// inference warm-up), milliseconds.
    pub warmup_ms: f64,
    /// Scale up when the predicted sojourn exceeds this fraction of the
    /// SLO.
    pub up_frac: f64,
    /// Scale down when the predicted sojourn is below this fraction of
    /// the SLO.
    pub down_frac: f64,
}

impl Default for AutoscaleConfig {
    /// One always-on replica, 250 ms evaluation, 500 ms warm-up, scale
    /// up above 80 % of the SLO, down below 20 %.
    fn default() -> AutoscaleConfig {
        AutoscaleConfig {
            min_replicas: 1,
            eval_ms: 250.0,
            warmup_ms: 500.0,
            up_frac: 0.8,
            down_frac: 0.2,
        }
    }
}

/// Grid carbon intensity at a replica's location: an hourly
/// grams-CO₂-per-kWh table over a (simulated) day, so carbon per request
/// varies with *when* the energy was drawn, not just how much. The
/// simulated day defaults to 86 400 s but can be compressed so short
/// runs still sweep the full diurnal intensity swing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarbonProfile {
    /// Grid intensity by local hour of day, gCO₂/kWh.
    pub hourly_g_per_kwh: [f64; 24],
    /// Length of the simulated day, seconds (86 400 for wall-clock days;
    /// compress it to sweep the table faster in short runs).
    pub day_s: f64,
    /// Local-time offset of the region, hours (shifts which table entry
    /// simulation time 0 lands on).
    pub phase_h: f64,
}

impl CarbonProfile {
    /// A flat profile: the same intensity all day.
    pub fn flat(g_per_kwh: f64) -> CarbonProfile {
        CarbonProfile {
            hourly_g_per_kwh: [g_per_kwh; 24],
            day_s: 86_400.0,
            phase_h: 0.0,
        }
    }

    /// Returns the profile with the given simulated-day length.
    pub fn with_day_s(mut self, day_s: f64) -> CarbonProfile {
        self.day_s = day_s;
        self
    }

    /// Returns the profile with the given local-time phase, hours.
    pub fn with_phase_h(mut self, phase_h: f64) -> CarbonProfile {
        self.phase_h = phase_h;
        self
    }

    /// Grid intensity at simulation time `t_s` seconds, gCO₂/kWh.
    pub fn intensity_at(&self, t_s: f64) -> f64 {
        let day = if self.day_s > 0.0 {
            self.day_s
        } else {
            86_400.0
        };
        let frac = (t_s / day + self.phase_h / 24.0).rem_euclid(1.0);
        self.hourly_g_per_kwh[((frac * 24.0) as usize).min(23)]
    }

    /// Mean intensity over the day, gCO₂/kWh.
    pub fn mean_g_per_kwh(&self) -> f64 {
        self.hourly_g_per_kwh.iter().sum::<f64>() / 24.0
    }
}

/// Serving-run configuration: SLO, batching policy, routing, admission
/// control, thermal/fault coupling and the seed every random decision
/// derives from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Per-request latency objective, milliseconds (p99 target).
    pub slo_ms: f64,
    /// Dynamic batching: largest batch a replica fires (1 = batching
    /// off). Capped at [`MAX_BATCH`] and at each replica's largest
    /// feasible batch.
    pub batch_max: usize,
    /// Dynamic batching: longest a queued request may wait for its batch
    /// to fill before a partial batch fires, milliseconds.
    pub batch_delay_ms: f64,
    /// Routing policy across replicas.
    pub policy: RoutePolicy,
    /// Admission control: shed a request at arrival when its predicted
    /// sojourn on the chosen replica already exceeds the SLO.
    pub admission: bool,
    /// Couple each replica to its device's `ThermalSim`: sustained load
    /// throttles clocks mid-run; crossing the shutdown limit kills the
    /// replica (HPC devices have no thermal model and never throttle).
    pub thermal: bool,
    /// Dissipation multiplier for the thermal coupling (models a hot
    /// enclosure or high ambient; 1.0 = the calibrated sustained power).
    pub power_scale: f64,
    /// Per-batch probability that the firing replica dies permanently
    /// (seeded, order-independent draw per `(replica, batch index)`).
    pub replica_dropout: f64,
    /// Scripted deterministic kill: `(batch index, replica)` — the
    /// replica dies when it starts its Nth batch. For tests.
    pub kill_replica: Option<(u64, usize)>,
    /// Request-level resilience policies (hedging, retry budget, circuit
    /// breakers, degradation ladder) and the straggler/loss fault model.
    /// Default: everything off.
    pub resilience: ResilienceConfig,
    /// Predicted-sojourn autoscaling across the fleet's replicas.
    /// Default: off (every replica always active).
    pub autoscale: Option<AutoscaleConfig>,
    /// Event-queue engine: the calendar queue (default) or the
    /// `BinaryHeap` oracle it is proven byte-identical against.
    pub engine: EngineKind,
    /// Base seed for traffic and fault streams.
    pub seed: u64,
}

impl ServeConfig {
    /// A sensible default configuration under the given SLO: batching on
    /// (max 8, 2 ms flush), least-expected-latency routing, admission
    /// control on, no thermal or fault coupling, seed 42.
    pub fn new(slo_ms: f64) -> ServeConfig {
        ServeConfig {
            slo_ms,
            batch_max: 8,
            batch_delay_ms: 2.0,
            policy: RoutePolicy::LeastExpectedLatency,
            admission: true,
            thermal: false,
            power_scale: 1.0,
            replica_dropout: 0.0,
            kill_replica: None,
            resilience: ResilienceConfig::default(),
            autoscale: None,
            engine: EngineKind::Calendar,
            seed: 42,
        }
    }

    /// Returns the config with predicted-sojourn autoscaling enabled.
    pub fn with_autoscale(mut self, auto: AutoscaleConfig) -> ServeConfig {
        self.autoscale = Some(auto);
        self
    }

    /// Returns the config with the given event-queue engine.
    pub fn with_engine(mut self, engine: EngineKind) -> ServeConfig {
        self.engine = engine;
        self
    }

    /// Returns the config with the given maximum batch size.
    pub fn with_batch_max(mut self, batch_max: usize) -> ServeConfig {
        self.batch_max = batch_max;
        self
    }

    /// Returns the config with the given batch flush delay.
    pub fn with_batch_delay_ms(mut self, delay_ms: f64) -> ServeConfig {
        self.batch_delay_ms = delay_ms;
        self
    }

    /// Returns the config with the given routing policy.
    pub fn with_policy(mut self, policy: RoutePolicy) -> ServeConfig {
        self.policy = policy;
        self
    }

    /// Returns the config with admission control switched on or off.
    pub fn with_admission(mut self, on: bool) -> ServeConfig {
        self.admission = on;
        self
    }

    /// Returns the config with thermal coupling switched on or off.
    pub fn with_thermal(mut self, on: bool) -> ServeConfig {
        self.thermal = on;
        self
    }

    /// Returns the config with the given thermal power multiplier.
    pub fn with_power_scale(mut self, scale: f64) -> ServeConfig {
        self.power_scale = scale;
        self
    }

    /// Returns the config with the given per-batch replica-death rate.
    pub fn with_replica_dropout(mut self, p: f64) -> ServeConfig {
        self.replica_dropout = p;
        self
    }

    /// Returns the config with a scripted `(batch index, replica)` kill.
    pub fn with_kill_replica(mut self, batch: u64, replica: usize) -> ServeConfig {
        self.kill_replica = Some((batch, replica));
        self
    }

    /// Returns the config with a different base seed.
    pub fn with_seed(mut self, seed: u64) -> ServeConfig {
        self.seed = seed;
        self
    }

    /// Returns the config with hedged requests enabled: a duplicate
    /// dispatch fires once a request has waited its replica's predicted
    /// sojourn plus `slack_ms` without completing.
    pub fn with_hedge_ms(mut self, slack_ms: f64) -> ServeConfig {
        self.resilience.hedge_ms = Some(slack_ms);
        self
    }

    /// Returns the config with a token-bucket retry budget for lost
    /// requests.
    pub fn with_retry_budget(mut self, budget: RetryBudgetConfig) -> ServeConfig {
        self.resilience.retry = Some(budget);
        self
    }

    /// Returns the config with per-replica circuit breakers.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> ServeConfig {
        self.resilience.breaker = Some(breaker);
        self
    }

    /// Returns the config with the graceful-degradation precision ladder
    /// switched on or off.
    pub fn with_ladder(mut self, on: bool) -> ServeConfig {
        self.resilience.ladder = on;
        self
    }

    /// Returns the config with the given straggler/loss fault model.
    pub fn with_service_faults(mut self, faults: ServiceFaults) -> ServeConfig {
        self.resilience.faults = faults;
        self
    }

    /// Returns the config with the given per-batch straggler probability
    /// and inflation factor.
    pub fn with_straggler(mut self, p: f64, factor: f64) -> ServeConfig {
        self.resilience.faults = self.resilience.faults.with_straggler(p, factor);
        self
    }

    /// Returns the config with the given per-batch request-loss
    /// probability.
    pub fn with_loss(mut self, p: f64) -> ServeConfig {
        self.resilience.faults = self.resilience.faults.with_loss(p);
        self
    }

    /// Returns the config with the given per-batch silent-data-corruption
    /// probability (seeded, order-independent draw per
    /// `(replica, batch index)`).
    pub fn with_sdc(mut self, p: f64) -> ServeConfig {
        self.resilience.sdc.corruption = p;
        self
    }

    /// Returns the config with the replica-side integrity guards switched
    /// on or off. Guards on (the default): a corrupted batch is detected,
    /// counts as a breaker error, and each affected request gets one free
    /// re-dispatch. Guards off: corrupted results are served silently.
    pub fn with_sdc_guards(mut self, on: bool) -> ServeConfig {
        self.resilience.sdc.guards = on;
        self
    }
}

/// Error produced when building a [`Fleet`] or running a serve
/// simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The fleet has no replicas.
    EmptyFleet,
    /// A replica's batch-1 deployment is infeasible.
    Deploy {
        /// Index of the failing replica.
        replica: usize,
        /// Its label (`device/framework`).
        label: String,
        /// The underlying deployment error.
        source: DeployError,
    },
    /// The traffic configuration is invalid.
    Workload(WorkloadError),
    /// No framework can deploy the model on the device (geo tier
    /// region or cloud placement).
    NoDeployment {
        /// The model that cannot be placed.
        model: Model,
        /// The device nothing deploys onto.
        device: Device,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::EmptyFleet => write!(f, "fleet has no replicas"),
            ServeError::Deploy {
                replica,
                label,
                source,
            } => {
                write!(f, "replica {replica} ({label}) cannot deploy: {source}")
            }
            ServeError::Workload(e) => write!(f, "traffic: {e}"),
            ServeError::NoDeployment { model, device } => {
                write!(
                    f,
                    "no framework deploys {} on {}",
                    model.name(),
                    device.name()
                )
            }
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Deploy { source, .. } => Some(source),
            ServeError::Workload(e) => Some(e),
            ServeError::EmptyFleet | ServeError::NoDeployment { .. } => None,
        }
    }
}

impl From<WorkloadError> for ServeError {
    fn from(e: WorkloadError) -> Self {
        ServeError::Workload(e)
    }
}

/// One rung of a replica's degradation ladder: the batch service table
/// the replica uses while serving at this precision.
#[derive(Debug, Clone)]
pub(crate) struct RungModel {
    /// Stable precision name (`fp32` / `fp16` / `int8`-style, from
    /// `DType::name`).
    pub dtype: &'static str,
    /// Accuracy proxy served at this rung, in `[0, 1]`.
    pub fidelity: f64,
    /// `svc_ns[b-1]` = batch-total service time at batch size `b`, ns.
    pub svc_ns: Vec<u64>,
    /// `energy_mj[b-1]` = batch-total active energy at batch size `b`.
    pub energy_mj: Vec<f64>,
    /// Sustained dissipation while serving a batch, watts (RPi-calibrated
    /// like the sweep's fault loop).
    pub active_power_w: Vec<f64>,
}

impl RungModel {
    /// Builds the batch table for one deployment variant, capping at the
    /// first infeasible batch size. `None` when even batch 1 fails.
    fn build(compiled: &CompiledModel, device: Device) -> Option<RungModel> {
        let mut svc_ns = Vec::new();
        let mut energy_mj = Vec::new();
        let mut active_power_w = Vec::new();
        for b in 1..=MAX_BATCH {
            let c = compiled.clone().with_batch(b);
            let (Ok(lat_ms), Ok(e_mj)) = (c.latency_ms(), c.energy_mj()) else {
                break; // larger batches are infeasible (OOM); cap here
            };
            svc_ns.push(ms_to_ns(lat_ms).max(1));
            // mJ / ms = W, then the sustained-loop calibration (RPi draws
            // beyond its single-inference average under back-to-back load).
            active_power_w.push(crate::sweep::sustained_power_w(device, e_mj / lat_ms));
            energy_mj.push(e_mj);
        }
        if svc_ns.is_empty() {
            return None;
        }
        let dtype = compiled.graph().dtype();
        Some(RungModel {
            dtype: dtype.name(),
            fidelity: fidelity_proxy(dtype),
            svc_ns,
            energy_mj,
            active_power_w,
        })
    }

    fn truncate(&mut self, len: usize) {
        self.svc_ns.truncate(len);
        self.energy_mj.truncate(len);
        self.active_power_w.truncate(len);
    }
}

/// Per-replica deployment economics, precomputed once per fleet: the
/// batch-total service time and energy at every batch size the
/// deployment supports (from the same batch model as [`crate::sweep`]),
/// at every precision rung of the degradation ladder. Rung 0 is the
/// framework's native precision; deeper rungs are strictly cheaper
/// re-lowerings (kept only when elementwise faster, and truncated so all
/// rungs cover the same batch range).
#[derive(Debug, Clone)]
pub(crate) struct ReplicaModel {
    /// The replica's static description.
    pub spec: ReplicaSpec,
    /// The degradation ladder; `rungs[0]` always exists.
    pub rungs: Vec<RungModel>,
}

impl ReplicaModel {
    fn build(index: usize, spec: ReplicaSpec) -> Result<ReplicaModel, ServeError> {
        let deploy_err = |source| ServeError::Deploy {
            replica: index,
            label: spec.label(),
            source,
        };
        let compiled = compile(spec.framework, spec.model, spec.device).map_err(deploy_err)?;
        let Some(native) = RungModel::build(&compiled, spec.device) else {
            // Even batch 1 is infeasible: surface the deployment error.
            let c1 = compiled.with_batch(1);
            let source = c1
                .latency_ms()
                .and_then(|_| c1.energy_mj())
                .expect_err("batch-1 deployment failed above");
            return Err(deploy_err(source));
        };
        let len = native.svc_ns.len();
        let mut rungs = vec![native];
        for &dtype in cheaper_dtypes(compiled.graph().dtype()) {
            let variant = compiled.clone().with_precision(dtype);
            let Some(mut rung) = RungModel::build(&variant, spec.device) else {
                continue; // no execution path at this precision
            };
            rung.truncate(len);
            let prev = rungs.last().expect("rung 0 present");
            let strictly_cheaper = rung.svc_ns.len() == len
                && rung
                    .svc_ns
                    .iter()
                    .zip(&prev.svc_ns)
                    .all(|(new, old)| new < old);
            if strictly_cheaper {
                rungs.push(rung);
            }
        }
        Ok(ReplicaModel { spec, rungs })
    }

    /// The native-precision batch service table.
    pub fn native(&self) -> &RungModel {
        &self.rungs[0]
    }

    /// Largest feasible batch size for this replica (identical at every
    /// rung by construction).
    pub fn max_batch(&self) -> usize {
        self.native().svc_ns.len()
    }
}

/// A built fleet: replica specs plus their precomputed batch service
/// tables. Build once, then run any number of [`Fleet::serve`] /
/// [`Fleet::qps_scan`] simulations against it.
#[derive(Debug, Clone)]
pub struct Fleet {
    pub(crate) replicas: Vec<ReplicaModel>,
    /// Per-replica grid carbon intensity (`None` = no carbon
    /// accounting for that replica), parallel to `replicas`.
    pub(crate) carbon: Vec<Option<CarbonProfile>>,
}

impl Fleet {
    /// Builds a fleet from replica specs, precomputing each replica's
    /// batch latency/energy table (batch sizes 1..=[`MAX_BATCH`], capped
    /// at the largest feasible batch).
    ///
    /// # Errors
    ///
    /// [`ServeError::EmptyFleet`] for an empty spec list;
    /// [`ServeError::Deploy`] when a replica cannot deploy at batch 1.
    pub fn new(specs: impl IntoIterator<Item = ReplicaSpec>) -> Result<Fleet, ServeError> {
        let specs: Vec<ReplicaSpec> = specs.into_iter().collect();
        if specs.is_empty() {
            return Err(ServeError::EmptyFleet);
        }
        let replicas = specs
            .into_iter()
            .enumerate()
            .map(|(i, s)| ReplicaModel::build(i, s))
            .collect::<Result<Vec<_>, _>>()?;
        let carbon = vec![None; replicas.len()];
        Ok(Fleet { replicas, carbon })
    }

    /// Returns the fleet with every replica on the given grid carbon
    /// profile (a single-region fleet).
    pub fn with_carbon_profile(mut self, profile: CarbonProfile) -> Fleet {
        self.carbon = vec![Some(profile); self.replicas.len()];
        self
    }

    /// Attaches a grid carbon profile to one replica (heterogeneous
    /// placements — e.g. WAN-imported replicas on a *different* grid).
    ///
    /// # Panics
    ///
    /// Panics when `replica` is out of range.
    pub fn set_carbon_profile(&mut self, replica: usize, profile: CarbonProfile) {
        self.carbon[replica] = Some(profile);
    }

    /// A homogeneous fleet: `count` identical replicas.
    ///
    /// # Errors
    ///
    /// Same as [`Fleet::new`] (`count == 0` is [`ServeError::EmptyFleet`]).
    pub fn homogeneous(spec: ReplicaSpec, count: usize) -> Result<Fleet, ServeError> {
        Fleet::new(std::iter::repeat_n(spec, count))
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the fleet is empty (never true for a built fleet).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The replica specs, in fleet order.
    pub fn specs(&self) -> Vec<ReplicaSpec> {
        self.replicas.iter().map(|r| r.spec).collect()
    }

    /// Replica `replica`'s degradation ladder: one
    /// `(precision, fidelity, batch service table in ns)` triple per
    /// rung, native precision first. Rungs are strictly cheaper than
    /// their predecessor at every batch size by construction.
    ///
    /// # Panics
    ///
    /// Panics when `replica` is out of range.
    pub fn ladder_of(&self, replica: usize) -> Vec<(&'static str, f64, Vec<u64>)> {
        self.replicas[replica]
            .rungs
            .iter()
            .map(|r| (r.dtype, r.fidelity, r.svc_ns.clone()))
            .collect()
    }

    /// Serves `n` requests of `traffic` through the fleet under `cfg`,
    /// returning the full report. Deterministic: a pure function of
    /// `(fleet, traffic, n, cfg)`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Workload`] when the traffic configuration is
    /// invalid (non-positive rate, zero requests).
    pub fn serve(
        &self,
        traffic: &Traffic,
        n: usize,
        cfg: &ServeConfig,
    ) -> Result<ServeReport, ServeError> {
        if n == 0 {
            return Err(ServeError::Workload(WorkloadError::NoRequests));
        }
        let arrivals = traffic.timestamps(n)?;
        Ok(sim::run_owned(self, arrivals, cfg))
    }

    /// Serves a pre-materialized arrival trace (seconds, non-decreasing)
    /// through the fleet — the entry point the runtime's sim-vs-real
    /// validation uses so both sides consume byte-identical
    /// [`TraceFile`] arrivals.
    ///
    /// # Errors
    ///
    /// [`ServeError::Workload`] when the trace is empty.
    pub fn serve_arrivals(
        &self,
        arrive_s: &[f64],
        cfg: &ServeConfig,
    ) -> Result<ServeReport, ServeError> {
        if arrive_s.is_empty() {
            return Err(ServeError::Workload(WorkloadError::NoRequests));
        }
        Ok(sim::run(self, arrive_s, cfg))
    }

    /// Probes each rate in `rates` with a Poisson trace of `n` requests
    /// and reports which are sustainable under the SLO (p99 within
    /// `cfg.slo_ms`, ≤ 1 % shed, no lost requests), fanning probes over
    /// `jobs` worker threads. Each probe derives its own seed from the
    /// rate, so results are byte-identical for every worker count.
    ///
    /// # Errors
    ///
    /// [`ServeError::Workload`] when any rate is not strictly positive
    /// or `n` is zero.
    pub fn qps_scan(
        &self,
        rates: &[f64],
        n: usize,
        cfg: &ServeConfig,
        jobs: usize,
    ) -> Result<QpsScan, ServeError> {
        if n == 0 {
            return Err(ServeError::Workload(WorkloadError::NoRequests));
        }
        if let Some(&bad) = rates.iter().find(|r| **r <= 0.0) {
            return Err(ServeError::Workload(WorkloadError::NonPositiveRate {
                rate_hz: bad,
            }));
        }
        let probes = parallel::run_indexed(rates, jobs, |_, &rate_hz| {
            let traffic = Traffic::poisson(
                rate_hz,
                stream_seed(cfg.seed, &["qps-probe", &format!("{rate_hz:.6}")]),
            );
            let report = self
                .serve(&traffic, n, cfg)
                .expect("rates and n validated above");
            QpsProbe::from_report(rate_hz, &report)
        });
        Ok(QpsScan { probes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_to_ns_rounds_to_nearest() {
        assert_eq!(ms_to_ns(1.0), 1_000_000);
        assert_eq!(ms_to_ns(0.5), 500_000);
        // The truncation bug this replaces: 249.9999999 ms is 249_999_999.9 ns
        // and must round *up* to 250 ms, not chop to 249_999_999.
        assert_eq!(ms_to_ns(249.999_999_9), 250_000_000);
        assert_eq!(ms_to_ns(0.000_000_4), 0);
        assert_eq!(ms_to_ns(0.000_000_6), 1);
    }

    #[test]
    fn ms_to_ns_rejects_nan_and_negatives() {
        assert_eq!(ms_to_ns(f64::NAN), 0);
        assert_eq!(ms_to_ns(-1.0), 0);
        assert_eq!(ms_to_ns(-0.0), 0);
        assert_eq!(ms_to_ns(f64::NEG_INFINITY), 0);
    }

    #[test]
    fn ms_to_ns_saturates_at_the_clock_ceiling() {
        assert_eq!(ms_to_ns(f64::INFINITY), u64::MAX);
        assert_eq!(ms_to_ns(1e300), u64::MAX);
        // Just under the ceiling still converts normally.
        assert!(ms_to_ns(1e12) < u64::MAX);
    }

    #[test]
    fn s_to_ns_rounds_to_nearest() {
        assert_eq!(s_to_ns(1.0), 1_000_000_000);
        assert_eq!(s_to_ns(0.5), 500_000_000);
        // The truncation bug this replaces: the cast form chops
        // 0.2499999999 s to 249_999_999 ns instead of rounding up.
        assert_eq!(s_to_ns(0.249_999_999_9), 250_000_000);
        assert_eq!(s_to_ns(0.000_000_000_4), 0);
        assert_eq!(s_to_ns(0.000_000_000_6), 1);
    }

    #[test]
    fn s_to_ns_rejects_nan_and_negatives() {
        assert_eq!(s_to_ns(f64::NAN), 0);
        assert_eq!(s_to_ns(-1.0), 0);
        assert_eq!(s_to_ns(-0.0), 0);
        assert_eq!(s_to_ns(f64::NEG_INFINITY), 0);
    }

    #[test]
    fn s_to_ns_saturates_at_the_clock_ceiling() {
        assert_eq!(s_to_ns(f64::INFINITY), u64::MAX);
        assert_eq!(s_to_ns(1e300), u64::MAX);
        // Just under the ceiling still converts normally.
        assert!(s_to_ns(1e9) < u64::MAX);
    }

    #[test]
    fn route_policy_names_round_trip() {
        for p in [
            RoutePolicy::RoundRobin,
            RoutePolicy::JoinShortestQueue,
            RoutePolicy::LeastExpectedLatency,
        ] {
            assert_eq!(RoutePolicy::from_name(p.name()), Some(p));
        }
        assert_eq!(
            RoutePolicy::from_name("lel"),
            Some(RoutePolicy::LeastExpectedLatency)
        );
        assert_eq!(RoutePolicy::from_name("rr"), Some(RoutePolicy::RoundRobin));
        assert_eq!(
            RoutePolicy::from_name("jsq"),
            Some(RoutePolicy::JoinShortestQueue)
        );
        assert_eq!(RoutePolicy::from_name("random"), None);
    }

    #[test]
    fn empty_fleet_is_a_typed_error() {
        assert_eq!(Fleet::new([]).unwrap_err(), ServeError::EmptyFleet);
    }

    #[test]
    fn infeasible_replica_is_a_typed_error() {
        // VGG16 through static-graph TensorFlow does not fit RPi RAM.
        let err = Fleet::new([ReplicaSpec {
            model: Model::Vgg16,
            framework: Framework::TensorFlow,
            device: Device::RaspberryPi3,
        }])
        .unwrap_err();
        assert!(
            matches!(err, ServeError::Deploy { replica: 0, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("rpi3"), "{err}");
    }

    #[test]
    fn service_tables_amortize_or_cap() {
        let fleet = Fleet::new([ReplicaSpec {
            model: Model::MobileNetV2,
            framework: Framework::TensorRt,
            device: Device::JetsonNano,
        }])
        .unwrap();
        let r = &fleet.replicas[0];
        assert!(r.max_batch() >= 8);
        // Batch-total time grows with batch size, but per-inference time
        // shrinks (the sweep's amortization, viewed from the scheduler).
        let svc = &r.native().svc_ns;
        let per1 = svc[0];
        let per8 = svc[7] / 8;
        assert!(svc[7] > per1);
        assert!(per8 < per1, "batch 8: {per8} vs batch-1 {per1}");
        // The RPi3 runs out of memory beyond batch 4: the table caps there
        // instead of erroring.
        let rpi = Fleet::new([ReplicaSpec {
            model: Model::MobileNetV2,
            framework: Framework::TfLite,
            device: Device::RaspberryPi3,
        }])
        .unwrap();
        let cap = rpi.replicas[0].max_batch();
        assert!((4..8).contains(&cap), "rpi3 cap {cap}");
    }

    #[test]
    fn best_for_picks_a_feasible_framework() {
        let spec = ReplicaSpec::best_for(Model::MobileNetV2, Device::JetsonNano).unwrap();
        assert_eq!(spec.framework, Framework::TensorRt);
        assert!(ReplicaSpec::best_for(Model::C3d, Device::MovidiusNcs).is_none());
    }
}
