//! The planet-scale tier: multiple edge regions, each a [`Fleet`] of
//! local replicas plus WAN-imported spillover replicas from its
//! neighbor, with phase-shifted diurnal traffic, a cloud offload tier
//! and per-region grid carbon intensity.
//!
//! Each region runs an independent serving simulation seeded from
//! `stream_seed(seed, ["geo", region.name])`, so regions fan out over
//! the worker pool ([`crate::parallel`]) and the combined
//! [`GeoReport`] is byte-identical at any `--jobs` count.
//!
//! Modeling choices, all deliberately static so regions stay
//! embarrassingly parallel:
//!
//! * **WAN spillover** — each region imports `import_replicas` replicas
//!   of its neighbor region's device, with every batch service time
//!   inflated by the WAN round trip. The router's
//!   least-expected-latency policy then only reaches across the WAN
//!   when the local queue is deep enough to amortize the RTT. Imported
//!   replicas accrue carbon on the *neighbor's* grid.
//! * **Cloud tier** — requests the region sheds (admission control)
//!   fall through to a cloud endpoint whose latency comes from the
//!   Neurosurgeon-style [`best_split`] partition between the region's
//!   device and the cloud server over the configured link, and whose
//!   energy/carbon come from the cloud device's batch-1 table at the
//!   cloud grid's mean intensity.
//! * **Diurnal phase** — region `i` serves the shared diurnal curve
//!   shifted by its `phase_s`, so peaks roll around the planet instead
//!   of landing at once; the carbon day is phase-shifted the same way.

use super::{
    s_to_ns, AutoscaleConfig, CarbonProfile, EngineKind, Fleet, ReplicaSpec, ServeConfig,
    ServeError, ServeReport, Traffic,
};
use crate::parallel;
use crate::report::Report;
use edgebench_devices::faults::stream_seed;
use edgebench_devices::offload::{best_split, Link};
use edgebench_devices::Device;
use edgebench_measure::Samples;
use edgebench_models::Model;

/// One edge region of a geo deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSpec {
    /// Stable region name (seeds and report rows key off it).
    pub name: String,
    /// The device its local replicas run on.
    pub device: Device,
    /// Local replica count.
    pub replicas: usize,
    /// Diurnal phase of this region's traffic (and carbon day), seconds.
    pub phase_s: f64,
    /// The region's grid carbon intensity.
    pub grid: CarbonProfile,
}

/// Geo-deployment configuration shared by every region.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoConfig {
    /// Model served everywhere.
    pub model: Model,
    /// Per-request latency objective, milliseconds.
    pub slo_ms: f64,
    /// Trough arrival rate per region, requests per second.
    pub base_hz: f64,
    /// Peak arrival rate per region, requests per second.
    pub peak_hz: f64,
    /// Diurnal period (the compressed "day"), seconds.
    pub period_s: f64,
    /// Inter-region WAN round trip, milliseconds.
    pub wan_rtt_ms: f64,
    /// Spillover replicas each region imports from its neighbor.
    pub import_replicas: usize,
    /// Cloud server device for the offload tier.
    pub cloud: Device,
    /// Edge→cloud link for the offload-latency model.
    pub cloud_link: Link,
    /// Grid carbon intensity at the cloud site.
    pub cloud_grid: CarbonProfile,
    /// Autoscaling policy per region (None = all replicas always on).
    pub autoscale: Option<AutoscaleConfig>,
    /// Event-queue engine for every region's simulation.
    pub engine: EngineKind,
    /// Largest batch a replica fires.
    pub batch_max: usize,
    /// Base seed; each region derives its own streams from it.
    pub seed: u64,
}

impl GeoConfig {
    /// A sensible default geo config under the given SLO: MobileNetV2,
    /// a 20→240 Hz diurnal swing over a 60 s compressed day, 80 ms WAN
    /// RTT, one spillover replica per region, a GTX Titan X cloud over
    /// LTE on a mid-carbon grid, autoscaling on, calendar engine.
    pub fn new(slo_ms: f64) -> GeoConfig {
        GeoConfig {
            model: Model::MobileNetV2,
            slo_ms,
            base_hz: 20.0,
            peak_hz: 240.0,
            period_s: 60.0,
            wan_rtt_ms: 80.0,
            import_replicas: 1,
            cloud: Device::GtxTitanX,
            cloud_link: Link::lte(),
            cloud_grid: CarbonProfile::flat(300.0),
            autoscale: Some(AutoscaleConfig::default()),
            engine: EngineKind::Calendar,
            batch_max: 8,
            seed: 42,
        }
    }

    /// Returns the config with a different base seed.
    pub fn with_seed(mut self, seed: u64) -> GeoConfig {
        self.seed = seed;
        self
    }

    /// Returns the config with the given event-queue engine.
    pub fn with_engine(mut self, engine: EngineKind) -> GeoConfig {
        self.engine = engine;
        self
    }
}

/// A sinusoidal grid-intensity day between `min` and `max` gCO₂/kWh:
/// cleanest at hour 0, dirtiest at hour 12, compressed to `day_s`.
fn diurnal_grid(min_g: f64, max_g: f64, day_s: f64) -> CarbonProfile {
    let mut hourly = [0.0; 24];
    for (h, g) in hourly.iter_mut().enumerate() {
        let swing = 0.5 * (1.0 - (std::f64::consts::TAU * h as f64 / 24.0).cos());
        *g = min_g + (max_g - min_g) * swing;
    }
    CarbonProfile {
        hourly_g_per_kwh: hourly,
        day_s,
        phase_h: 0.0,
    }
}

/// Three canonical regions spanning the planet: device heterogeneity
/// (Jetson Nano / Jetson TX2 / Raspberry Pi 4), traffic phases a third
/// of a day apart, and grids from coal-heavy to hydro-clean. `day_s`
/// compresses both the traffic day and the carbon day so short runs
/// still sweep the full swing.
pub fn default_regions(day_s: f64) -> Vec<RegionSpec> {
    vec![
        RegionSpec {
            name: "us-east".to_string(),
            device: Device::JetsonNano,
            replicas: 3,
            phase_s: 0.0,
            grid: diurnal_grid(350.0, 550.0, day_s),
        },
        RegionSpec {
            name: "eu-west".to_string(),
            device: Device::JetsonTx2,
            replicas: 3,
            phase_s: day_s / 3.0,
            grid: diurnal_grid(150.0, 320.0, day_s).with_phase_h(8.0),
        },
        RegionSpec {
            name: "ap-south".to_string(),
            device: Device::RaspberryPi4,
            replicas: 4,
            phase_s: 2.0 * day_s / 3.0,
            grid: diurnal_grid(45.0, 120.0, day_s).with_phase_h(16.0),
        },
    ]
}

/// One region's outcome: the full local [`ServeReport`] plus the cloud
/// tier and the combined (local + cloud) latency metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionReport {
    /// Region name.
    pub name: String,
    /// The local fleet's serving report (shed = sent to cloud).
    pub report: ServeReport,
    /// Requests the region offloaded to the cloud tier.
    pub cloud_requests: usize,
    /// Cloud round-trip latency for this region, milliseconds.
    pub cloud_ms: f64,
    /// Energy the cloud tier spent on this region's offloads, mJ.
    pub cloud_energy_mj: f64,
    /// Carbon the cloud tier emitted for this region, milligrams CO₂.
    pub cloud_carbon_mg: f64,
    /// Combined p99 over local completions and cloud offloads, ms.
    pub p99_ms: f64,
    /// Combined SLO attainment over local completions and cloud
    /// offloads.
    pub slo_attainment: f64,
}

impl RegionReport {
    /// Requests served somewhere (locally or in the cloud).
    pub fn served(&self) -> usize {
        self.report.completed + self.cloud_requests
    }

    /// Total energy attributable to the region, millijoules.
    pub fn total_energy_mj(&self) -> f64 {
        self.report.energy_mj + self.cloud_energy_mj
    }

    /// Total operational carbon attributable to the region, mg CO₂.
    pub fn total_carbon_mg(&self) -> f64 {
        self.report.carbon_mg + self.cloud_carbon_mg
    }

    /// Mean energy per served request, millijoules.
    pub fn energy_per_request_mj(&self) -> f64 {
        if self.served() > 0 {
            self.total_energy_mj() / self.served() as f64
        } else {
            0.0
        }
    }

    /// Mean carbon per served request, milligrams CO₂.
    pub fn carbon_per_request_mg(&self) -> f64 {
        if self.served() > 0 {
            self.total_carbon_mg() / self.served() as f64
        } else {
            0.0
        }
    }
}

/// The combined multi-region outcome ([`run_geo`]).
#[derive(Debug, Clone, PartialEq)]
pub struct GeoReport {
    /// Per-region outcomes, in region order.
    pub regions: Vec<RegionReport>,
}

impl GeoReport {
    /// Requests offered across all regions.
    pub fn offered(&self) -> usize {
        self.regions.iter().map(|r| r.report.offered).sum()
    }

    /// Requests served across all regions (local + cloud).
    pub fn served(&self) -> usize {
        self.regions.iter().map(RegionReport::served).sum()
    }

    /// Fleet-wide mean carbon per served request, mg CO₂.
    pub fn carbon_per_request_mg(&self) -> f64 {
        let served = self.served();
        if served > 0 {
            self.regions
                .iter()
                .map(RegionReport::total_carbon_mg)
                .sum::<f64>()
                / served as f64
        } else {
            0.0
        }
    }

    /// Fleet-wide mean energy per served request, millijoules.
    pub fn energy_per_request_mj(&self) -> f64 {
        let served = self.served();
        if served > 0 {
            self.regions
                .iter()
                .map(RegionReport::total_energy_mj)
                .sum::<f64>()
                / served as f64
        } else {
            0.0
        }
    }

    /// Renders one row per region plus a `total` row, byte-stable.
    pub fn to_report(&self, title: impl Into<String>) -> Report {
        let mut r = Report::new(
            title,
            [
                "region",
                "offered",
                "local",
                "cloud",
                "failed",
                "p99_ms",
                "slo_att",
                "energy_req_mj",
                "carbon_req_mg",
                "scale_ups",
                "scale_downs",
            ],
        );
        for reg in &self.regions {
            r.push_row([
                reg.name.clone(),
                reg.report.offered.to_string(),
                reg.report.completed.to_string(),
                reg.cloud_requests.to_string(),
                reg.report.failed.to_string(),
                format!("{:.3}", reg.p99_ms),
                format!("{:.4}", reg.slo_attainment),
                format!("{:.3}", reg.energy_per_request_mj()),
                format!("{:.4}", reg.carbon_per_request_mg()),
                reg.report.scale_ups.to_string(),
                reg.report.scale_downs.to_string(),
            ]);
        }
        let worst_p99 = self.regions.iter().map(|x| x.p99_ms).fold(0.0f64, f64::max);
        let served: usize = self.served();
        let within: f64 = self
            .regions
            .iter()
            .map(|x| x.slo_attainment * x.served() as f64)
            .sum();
        r.push_row([
            "total".to_string(),
            self.offered().to_string(),
            self.regions
                .iter()
                .map(|x| x.report.completed)
                .sum::<usize>()
                .to_string(),
            self.regions
                .iter()
                .map(|x| x.cloud_requests)
                .sum::<usize>()
                .to_string(),
            self.regions
                .iter()
                .map(|x| x.report.failed)
                .sum::<usize>()
                .to_string(),
            format!("{worst_p99:.3}"),
            format!(
                "{:.4}",
                if served > 0 {
                    within / served as f64
                } else {
                    0.0
                }
            ),
            format!("{:.3}", self.energy_per_request_mj()),
            format!("{:.4}", self.carbon_per_request_mg()),
            self.regions
                .iter()
                .map(|x| x.report.scale_ups)
                .sum::<u64>()
                .to_string(),
            self.regions
                .iter()
                .map(|x| x.report.scale_downs)
                .sum::<u64>()
                .to_string(),
        ]);
        r
    }
}

/// Builds one region's fleet: `replicas` local replicas on the region's
/// device and grid, plus `import_replicas` WAN spillover replicas of the
/// neighbor's device with every batch service time inflated by the WAN
/// round trip, accruing carbon on the neighbor's grid. Local replicas
/// come first so autoscaling activates local capacity before reaching
/// across the WAN.
fn region_fleet(
    cfg: &GeoConfig,
    region: &RegionSpec,
    neighbor: &RegionSpec,
) -> Result<Fleet, ServeError> {
    let local =
        ReplicaSpec::best_for(cfg.model, region.device).ok_or(ServeError::NoDeployment {
            model: cfg.model,
            device: region.device,
        })?;
    let imported =
        ReplicaSpec::best_for(cfg.model, neighbor.device).ok_or(ServeError::NoDeployment {
            model: cfg.model,
            device: neighbor.device,
        })?;
    let specs = std::iter::repeat_n(local, region.replicas)
        .chain(std::iter::repeat_n(imported, cfg.import_replicas));
    let mut fleet = Fleet::new(specs)?;
    let wan_ns = s_to_ns(cfg.wan_rtt_ms / 1e3);
    for i in 0..region.replicas + cfg.import_replicas {
        if i < region.replicas {
            fleet.set_carbon_profile(i, region.grid);
        } else {
            fleet.set_carbon_profile(i, neighbor.grid);
            for rung in &mut fleet.replicas[i].rungs {
                for svc in &mut rung.svc_ns {
                    *svc = svc.saturating_add(wan_ns);
                }
            }
        }
    }
    Ok(fleet)
}

/// Runs the multi-region simulation: each region serves `n_per_region`
/// requests of its phase-shifted diurnal trace, fanned over `jobs`
/// workers. Every region derives its streams from
/// `stream_seed(cfg.seed, ["geo", name])`, so the result is
/// byte-identical at any worker count.
///
/// # Errors
///
/// [`ServeError::NoDeployment`] when the model cannot be placed on a
/// region or cloud device; otherwise whatever [`Fleet::serve`] surfaces.
pub fn run_geo(
    cfg: &GeoConfig,
    regions: &[RegionSpec],
    n_per_region: usize,
    jobs: usize,
) -> Result<GeoReport, ServeError> {
    if regions.is_empty() {
        return Err(ServeError::EmptyFleet);
    }
    // Cloud-side economics are region-independent: batch-1 energy on the
    // cloud device, carbon at the cloud grid's mean intensity.
    let cloud_spec =
        ReplicaSpec::best_for(cfg.model, cfg.cloud).ok_or(ServeError::NoDeployment {
            model: cfg.model,
            device: cfg.cloud,
        })?;
    let cloud_fleet = Fleet::new([cloud_spec])?;
    let cloud_energy_mj = cloud_fleet.replicas[0].native().energy_mj[0];
    let cloud_carbon_mg = cloud_energy_mj * cfg.cloud_grid.mean_g_per_kwh() / 3.6e6;
    let graph = cfg.model.build();
    let results = parallel::run_indexed(regions, jobs, |i, region| {
        let neighbor = &regions[(i + 1) % regions.len()];
        let fleet = region_fleet(cfg, region, neighbor)?;
        let seed = stream_seed(cfg.seed, &["geo", &region.name]);
        let serve_cfg = {
            let mut c = ServeConfig::new(cfg.slo_ms)
                .with_batch_max(cfg.batch_max)
                .with_engine(cfg.engine)
                .with_seed(seed);
            c.autoscale = cfg.autoscale;
            c
        };
        let traffic = Traffic::Diurnal {
            base_hz: cfg.base_hz,
            peak_hz: cfg.peak_hz,
            period_s: cfg.period_s,
            phase_s: region.phase_s,
            seed,
        };
        let report = fleet.serve(&traffic, n_per_region, &serve_cfg)?;
        // Shed requests fall through to the cloud tier at the
        // Neurosurgeon split latency for this region's device.
        let (_, split_s) = best_split(&graph, region.device, cfg.cloud_link, cfg.cloud)
            .expect("model graphs have inputs and run at native precision");
        let cloud_ms = 1e3 * split_s;
        let cloud_requests = report.shed;
        // Combined latency distribution: local completions plus one
        // `cloud_ms` sample per offloaded request.
        let mut merged = report.latencies_ms.sorted().to_vec();
        merged.extend(std::iter::repeat_n(cloud_ms, cloud_requests));
        let samples = Samples::from_unsorted(merged);
        let (p99_ms, within) = if samples.is_empty() {
            (0.0, 0)
        } else {
            let cloud_within = if cloud_ms <= cfg.slo_ms {
                cloud_requests
            } else {
                0
            };
            (samples.percentile(99.0), report.within_slo + cloud_within)
        };
        let served = report.completed + cloud_requests;
        Ok(RegionReport {
            name: region.name.clone(),
            cloud_requests,
            cloud_ms,
            cloud_energy_mj: cloud_energy_mj * cloud_requests as f64,
            cloud_carbon_mg: cloud_carbon_mg * cloud_requests as f64,
            p99_ms,
            slo_attainment: if served > 0 {
                within as f64 / served as f64
            } else {
                0.0
            },
            report,
        })
    });
    let regions = results
        .into_iter()
        .collect::<Result<Vec<RegionReport>, ServeError>>()?;
    Ok(GeoReport { regions })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> GeoConfig {
        GeoConfig {
            peak_hz: 160.0,
            ..GeoConfig::new(100.0)
        }
    }

    #[test]
    fn default_regions_deploy_and_serve() {
        let cfg = small_cfg();
        let regions = default_regions(cfg.period_s);
        let geo = run_geo(&cfg, &regions, 1500, 2).unwrap();
        assert_eq!(geo.regions.len(), 3);
        for r in &geo.regions {
            assert_eq!(r.report.offered, 1500);
            assert!(r.report.completed > 0, "{}: {:?}", r.name, r.report);
            assert!(r.total_energy_mj() > 0.0);
            assert!(r.total_carbon_mg() > 0.0, "{} carbon", r.name);
            assert_eq!(
                r.report.offered,
                r.report.completed + r.report.shed + r.report.failed
            );
        }
        // Heterogeneous grids: carbon per request differs across regions.
        let c0 = geo.regions[0].carbon_per_request_mg();
        let c2 = geo.regions[2].carbon_per_request_mg();
        assert!(
            (c0 - c2).abs() / c0.max(c2) > 0.2,
            "coal {c0} vs hydro {c2}"
        );
        let csv = geo.to_report("geo").to_csv();
        assert!(csv.contains("us-east"), "{csv}");
        assert!(csv.contains("total"), "{csv}");
    }

    #[test]
    fn geo_runs_are_byte_identical_across_jobs() {
        let cfg = small_cfg();
        let regions = default_regions(cfg.period_s);
        let serial = run_geo(&cfg, &regions, 1200, 1).unwrap();
        for jobs in [2, 8] {
            let par = run_geo(&cfg, &regions, 1200, jobs).unwrap();
            assert_eq!(serial, par, "jobs={jobs}");
            assert_eq!(
                serial.to_report("geo").to_csv(),
                par.to_report("geo").to_csv(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn engines_agree_on_the_geo_tier() {
        let cfg = small_cfg();
        let regions = default_regions(cfg.period_s);
        let cal = run_geo(
            &cfg.clone().with_engine(EngineKind::Calendar),
            &regions,
            1200,
            4,
        )
        .unwrap();
        let heap = run_geo(
            &cfg.clone().with_engine(EngineKind::BinaryHeap),
            &regions,
            1200,
            4,
        )
        .unwrap();
        assert_eq!(cal, heap);
    }

    #[test]
    fn time_of_day_moves_carbon_per_request() {
        // Same region, same traffic, two phase offsets of the carbon
        // day half a cycle apart: the energy is identical but the grid
        // intensity at serving time differs.
        let cfg = small_cfg();
        let mk = |phase_h: f64| {
            vec![RegionSpec {
                name: "solo".to_string(),
                device: Device::JetsonNano,
                replicas: 3,
                phase_s: 0.0,
                grid: diurnal_grid(50.0, 500.0, cfg.period_s).with_phase_h(phase_h),
            }]
        };
        let clean = run_geo(&cfg, &mk(0.0), 1500, 1).unwrap();
        let dirty = run_geo(&cfg, &mk(12.0), 1500, 1).unwrap();
        assert_eq!(
            clean.regions[0].report.energy_mj,
            dirty.regions[0].report.energy_mj
        );
        let a = clean.regions[0].report.carbon_mg;
        let b = dirty.regions[0].report.carbon_mg;
        assert!(a > 0.0 && b > 0.0);
        assert!((a - b).abs() / a.max(b) > 0.1, "phase0 {a} vs phase12 {b}");
    }

    #[test]
    fn autoscaling_holds_slo_through_the_peak() {
        let cfg = small_cfg();
        let regions = default_regions(cfg.period_s);
        let geo = run_geo(&cfg, &regions, 2000, 2).unwrap();
        let mut saw_scaling = false;
        for r in &geo.regions {
            saw_scaling |= r.report.scale_ups > 0;
            assert!(
                r.slo_attainment > 0.9,
                "{}: slo attainment {} through the diurnal peak",
                r.name,
                r.slo_attainment
            );
        }
        assert!(saw_scaling, "the diurnal peak must trigger scale-ups");
    }

    #[test]
    fn empty_region_list_is_a_typed_error() {
        let cfg = small_cfg();
        assert_eq!(
            run_geo(&cfg, &[], 100, 1).unwrap_err(),
            ServeError::EmptyFleet
        );
    }
}
